"""Setup shim for legacy editable installs (offline environments).

The runtime environment for this reproduction has no network access and no
`wheel` package, so PEP 660 editable installs are unavailable; this
setup.py lets `pip install -e .` fall back to `setup.py develop`.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Dutta & Guerraoui, 'The inherent price of "
        "indulgence' (PODC 2002): the t+2 tight bound for indulgent "
        "consensus."
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # PEP 561: ship the inline annotations to downstream type checkers.
    package_data={"repro": ["py.typed"]},
)
