"""Tests for declarative grids and the seeded schedule-family layer."""

import pytest

from repro.engine.grids import (
    DETERMINISTIC_KINDS,
    SEEDED_KINDS,
    FamilySpec,
    GridError,
    GridSpec,
    build_schedule,
    case_seed,
    default_sweep_grid,
    expand_family,
    expand_grid,
    family,
)
from repro.model.schedule import Schedule


class TestCaseSeed:
    def test_deterministic(self):
        assert case_seed(0, "es", 3) == case_seed(0, "es", 3)

    def test_sensitive_to_every_component(self):
        base = case_seed(0, "es", 3)
        assert case_seed(1, "es", 3) != base
        assert case_seed(0, "scs", 3) != base
        assert case_seed(0, "es", 4) != base

    def test_no_index_collisions_in_practice(self):
        seeds = {case_seed(0, "es", i) for i in range(1000)}
        assert len(seeds) == 1000


class TestFamilySpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(GridError, match="unknown family kind"):
            family("x", "not_a_kind")

    def test_zero_count_rejected(self):
        with pytest.raises(GridError, match="count"):
            family("x", "random_es", count=0)

    def test_params_are_sorted_pairs(self):
        fam = family("k", "killer", rounds_per_cycle=2, f=1)
        assert fam.params == (("f", 1), ("rounds_per_cycle", 2))


class TestBuildSchedule:
    @pytest.mark.parametrize("kind", SEEDED_KINDS)
    def test_seeded_kinds(self, kind):
        fam = family(kind, kind, horizon=10)
        schedule = build_schedule(fam, 5, 2, seed=42)
        assert isinstance(schedule, Schedule)
        assert (schedule.n, schedule.t, schedule.horizon) == (5, 2, 10)

    def test_seed_changes_seeded_schedules(self):
        fam = family("es", "random_es", horizon=12)
        a = build_schedule(fam, 5, 2, seed=1)
        b = build_schedule(fam, 5, 2, seed=2)
        assert a != b  # astronomically unlikely to collide

    @pytest.mark.parametrize("kind", DETERMINISTIC_KINDS)
    def test_deterministic_kinds(self, kind):
        params = {}
        if kind == "killer":
            params["rounds_per_cycle"] = 2
        if kind == "async_prefix":
            params["k"] = 2
        if kind == "rotating":
            params["async_rounds"] = 2
        fam = family(kind, kind, horizon=12, **params)
        assert build_schedule(fam, 5, 2, seed=0) == build_schedule(
            fam, 5, 2, seed=99
        )


class TestExpandFamily:
    def test_seeded_labels_embed_derived_seed(self):
        fam = family("es", "random_es", count=3)
        instances = expand_family(fam, 5, 2, master_seed=7)
        assert len(instances) == 3
        for i, (label, _schedule) in enumerate(instances):
            assert label == f"es[{i}]@{case_seed(7, 'es', i)}"

    def test_singleton_deterministic_label_is_bare_name(self):
        fam = family("cascade", "cascade")
        (label, _schedule), = expand_family(fam, 5, 2, master_seed=0)
        assert label == "cascade"

    def test_reexpansion_identical(self):
        fam = family("scs", "random_scs", count=5)
        assert expand_family(fam, 5, 2, 3) == expand_family(fam, 5, 2, 3)


class TestGridSpec:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(GridError, match="unknown algorithm"):
            GridSpec(n=5, t=2, algorithms=("nope",),
                     families=(family("es", "random_es"),))

    def test_duplicate_family_names_rejected(self):
        with pytest.raises(GridError, match="duplicate family names"):
            GridSpec(
                n=5, t=2, algorithms=("att2",),
                families=(family("es", "random_es"),
                          family("es", "random_scs")),
            )

    def test_empty_axes_rejected(self):
        with pytest.raises(GridError, match="at least one algorithm"):
            GridSpec(n=5, t=2, algorithms=(),
                     families=(family("es", "random_es"),))
        with pytest.raises(GridError, match="at least one schedule family"):
            GridSpec(n=5, t=2, algorithms=("att2",), families=())

    def test_bad_proposal_mode_rejected(self):
        with pytest.raises(GridError, match="proposal_mode"):
            GridSpec(n=5, t=2, algorithms=("att2",),
                     families=(family("es", "random_es"),),
                     proposal_mode="zeros")

    def test_case_count(self):
        spec = GridSpec(
            n=5, t=2, algorithms=("att2", "floodset"),
            families=(family("es", "random_es", count=4),
                      family("ff", "failure_free")),
        )
        assert spec.case_count == 2 * (4 + 1)


class TestExpandGrid:
    def _spec(self, **overrides):
        defaults = dict(
            n=5, t=2,
            algorithms=("att2", "hurfin_raynal"),
            families=(family("es", "random_es", count=3),
                      family("ff", "failure_free")),
            seed=11,
        )
        defaults.update(overrides)
        return GridSpec(**defaults)

    def test_count_order_and_indices(self):
        cases = expand_grid(self._spec())
        assert len(cases) == 8
        assert [case.index for case in cases] == list(range(8))
        # Algorithm-major order, families in declaration order.
        assert [case.algorithm for case in cases] == (
            ["att2"] * 4 + ["hurfin_raynal"] * 4
        )
        assert [case.workload for case in cases[:4]] == [
            case.workload for case in cases[4:]
        ]

    def test_same_schedule_for_every_algorithm(self):
        cases = expand_grid(self._spec())
        assert cases[0].schedule == cases[4].schedule

    def test_reexpansion_identical(self):
        assert expand_grid(self._spec()) == expand_grid(self._spec())

    def test_seed_changes_seeded_schedules_only(self):
        a = expand_grid(self._spec())
        b = expand_grid(self._spec(seed=12))
        assert a[0].schedule != b[0].schedule      # random_es instance
        assert a[3].schedule == b[3].schedule      # failure_free

    def test_range_proposals(self):
        cases = expand_grid(self._spec())
        assert all(case.proposals == (0, 1, 2, 3, 4) for case in cases)

    def test_random_proposals_are_seeded_and_valid(self):
        cases = expand_grid(self._spec(proposal_mode="random"))
        again = expand_grid(self._spec(proposal_mode="random"))
        assert [c.proposals for c in cases] == [c.proposals for c in again]
        assert any(c.proposals != (0, 1, 2, 3, 4) for c in cases)
        assert all(len(c.proposals) == 5 for c in cases)


class TestDefaultSweepGrid:
    def test_meets_the_acceptance_floor(self):
        grid = default_sweep_grid()
        assert len(grid.algorithms) >= 3
        assert grid.case_count >= 100

    def test_scales_by_config(self):
        small = default_sweep_grid(cases_per_family=2)
        big = default_sweep_grid(cases_per_family=40)
        assert big.case_count > 2 * small.case_count


class TestProfileGrids:
    def test_unknown_profile_rejected(self):
        from repro.engine.grids import profile_grids

        with pytest.raises(GridError, match="unknown sweep profile"):
            profile_grids("nope")

    def test_large_profile_shape(self):
        from repro.engine.grids import profile_grids

        grids = profile_grids("large")
        assert [label for label, _grid in grids] == ["n25", "n50"]
        by_label = dict(grids)
        assert (by_label["n25"].n, by_label["n25"].t) == (25, 8)
        assert (by_label["n50"].n, by_label["n50"].t) == (50, 16)
        # long horizons: the stock formula at large t
        assert all(
            fam.horizon == max(12, 3 * grid.t + 6)
            for _label, grid in grids
            for fam in grid.families
        )
        # every profile grid expands cleanly
        for _label, grid in grids:
            cases = expand_grid(grid)
            assert len(cases) == grid.case_count

    def test_profile_seed_threads_through(self):
        from repro.engine.grids import profile_grids

        a = profile_grids("large", seed=1)
        b = profile_grids("large", seed=2)
        assert a[0][1].seed == 1
        assert b[0][1].seed == 2
        assert a[0][1] != b[0][1]


class TestXLargeProfile:
    def test_xlarge_profile_shape(self):
        from repro.engine.grids import profile_grids

        grids = profile_grids("xlarge")
        assert [label for label, _grid in grids] == ["n100"]
        _label, grid = grids[0]
        assert (grid.n, grid.t) == (100, 32)
        # one instance per family keeps the n=100 milestone a smoke-sized
        # run; the long horizon comes from the stock formula.
        assert all(fam.horizon == 102 for fam in grid.families)
        assert grid.case_count == len(grid.algorithms) * sum(
            fam.count for fam in grid.families
        )

    def test_xlarge_expands_without_building_schedules_eagerly(self):
        # Expansion builds the 100-process schedules; it must stay a
        # sub-second operation so the CLI can print its banner fast.
        from repro.engine.grids import profile_grids

        _label, grid = profile_grids("xlarge")[0]
        cases = expand_grid(grid)
        assert len(cases) == grid.case_count
        assert all(case.schedule.n == 100 for case in cases)
