"""Worker inventories: strict validation, TOML parsing, the 3.10 fallback.

A typo in a hosts file must never silently drop a machine from the
sweep, so everything unknown is a loud :class:`OrchestratorError` — and
the fallback parser (for interpreters without :mod:`tomllib`) must agree
byte-for-byte with the real one on the supported subset, which the
parity test below pins.
"""

import pytest

from repro.engine.orchestrator import (
    OrchestratorError,
    WorkerSpec,
    load_workers_file,
    local_workers,
    workers_from_data,
)
from repro.engine.orchestrator import workers as workers_module

HOSTS_TOML = """\
# Example inventory mixing local and remote workers.
[defaults]
python = "python3"
repo = "/srv/repro"

[[workers]]
name = "local-a"

[[workers]]
name = "big-box"
host = "node1.example.com"
python = "python3.12"

[[workers]]
host = "sweeps@node2"
repo = "/home/sweeps/repro"
"""


class TestWorkerSpec:
    def test_rejects_empty_name(self):
        with pytest.raises(OrchestratorError, match="non-empty name"):
            WorkerSpec(name="")

    def test_remote_requires_repo(self):
        with pytest.raises(OrchestratorError, match="needs repo="):
            WorkerSpec(name="box", host="node1")

    def test_local_needs_no_repo(self):
        worker = WorkerSpec(name="here")
        assert not worker.is_remote
        assert worker.describe() == "here (local)"

    def test_remote_describe_names_the_host(self):
        worker = WorkerSpec(name="box", host="node1", repo="/srv/repro")
        assert worker.is_remote
        assert worker.describe() == "box (ssh node1)"


class TestLocalWorkers:
    def test_names_are_unique_and_stable(self):
        assert [w.name for w in local_workers(3)] == [
            "local-0", "local-1", "local-2",
        ]

    @pytest.mark.parametrize("count", [0, -1])
    def test_rejects_non_positive_counts(self, count):
        with pytest.raises(OrchestratorError, match="at least one"):
            local_workers(count)


class TestWorkersFromData:
    def test_defaults_merge_under_explicit_keys(self):
        workers = workers_from_data(
            {
                "defaults": {"python": "python3", "repo": "/srv/repro"},
                "workers": [
                    {"name": "a"},
                    {"name": "b", "host": "node1", "python": "python3.12"},
                ],
            }
        )
        assert workers[0].python == "python3"
        assert workers[1].python == "python3.12"
        assert workers[1].repo == "/srv/repro"  # default filled it

    def test_name_defaults_to_host_then_position(self):
        workers = workers_from_data(
            {"workers": [{"host": "node1", "repo": "/r"}, {}]}
        )
        assert workers[0].name == "node1"
        assert workers[1].name == "local-1"

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(OrchestratorError, match="unknown workers-file"):
            workers_from_data({"wrokers": []})

    def test_unknown_worker_key_rejected(self):
        with pytest.raises(OrchestratorError, match="unknown keys"):
            workers_from_data({"workers": [{"host": "n", "rpeo": "/r"}]})

    def test_unknown_defaults_key_rejected(self):
        # [defaults] cannot carry per-machine identity like name/host
        with pytest.raises(OrchestratorError, match=r"\[defaults\] keys"):
            workers_from_data({"defaults": {"name": "x"}, "workers": [{}]})

    def test_non_string_value_rejected(self):
        with pytest.raises(OrchestratorError, match="must be a string"):
            workers_from_data({"workers": [{"name": 3}]})

    def test_duplicate_names_rejected(self):
        with pytest.raises(OrchestratorError, match="duplicate worker"):
            workers_from_data({"workers": [{"name": "x"}, {"name": "x"}]})

    @pytest.mark.parametrize("data", [{}, {"workers": []}, {"workers": "x"}])
    def test_empty_inventories_rejected(self, data):
        with pytest.raises(OrchestratorError, match=r"\[\[workers\]\]"):
            workers_from_data(data)


class TestLoadWorkersFile:
    def test_parses_the_documented_example(self, tmp_path):
        path = tmp_path / "hosts.toml"
        path.write_text(HOSTS_TOML)
        workers = load_workers_file(str(path))
        assert [w.name for w in workers] == [
            "local-a", "big-box", "sweeps@node2",
        ]
        assert not workers[0].is_remote
        assert workers[1].python == "python3.12"
        assert workers[1].repo == "/srv/repro"
        assert workers[2].repo == "/home/sweeps/repro"

    def test_missing_file_is_a_clean_error(self, tmp_path):
        with pytest.raises(OrchestratorError, match="cannot read"):
            load_workers_file(str(tmp_path / "nope.toml"))

    def test_invalid_toml_is_a_clean_error(self, tmp_path):
        path = tmp_path / "hosts.toml"
        path.write_text("workers = [[[")
        with pytest.raises(OrchestratorError, match="not valid TOML|subset"):
            load_workers_file(str(path))


class TestFallbackParser:
    """The tomllib-free path a 3.10 worker coordinator takes."""

    def test_agrees_with_tomllib_on_the_supported_subset(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "hosts.toml"
        path.write_text(HOSTS_TOML)
        reference = load_workers_file(str(path))
        monkeypatch.setattr(workers_module, "tomllib", None)
        assert load_workers_file(str(path)) == reference

    def test_unsupported_syntax_is_loud_not_misread(
        self, tmp_path, monkeypatch
    ):
        # The fallback must never *mis*read a file the real parser would
        # accept — anything outside the subset names its line and dies.
        monkeypatch.setattr(workers_module, "tomllib", None)
        path = tmp_path / "hosts.toml"
        path.write_text('[[workers]]\nname = "a"\nslots = 3\n')
        with pytest.raises(OrchestratorError, match="line 3"):
            load_workers_file(str(path))

    def test_key_outside_any_table_is_rejected(self, monkeypatch, tmp_path):
        monkeypatch.setattr(workers_module, "tomllib", None)
        path = tmp_path / "hosts.toml"
        path.write_text('python = "python3"\n')
        with pytest.raises(OrchestratorError, match="outside any table"):
            load_workers_file(str(path))

    def test_comments_and_inline_comments_are_skipped(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setattr(workers_module, "tomllib", None)
        path = tmp_path / "hosts.toml"
        path.write_text(
            '# heading\n[[workers]]\nname = "a"  # trailing comment\n'
        )
        workers = load_workers_file(str(path))
        assert [w.name for w in workers] == ["a"]
