"""Engine determinism: the execution backend must not be observable.

The acceptance criterion lives here: the stock ``sweep`` grid (>= 100
cases over >= 3 algorithms) executed on a 4-worker process pool — or a
thread pool — yields records identical (including canonical JSON bytes)
to serial execution of the same grid, and re-expanding a grid with the
same seed replays identically under :mod:`repro.sim.replay`.  Shard
determinism across backends lives in ``test_shards.py``.
"""

from repro.engine import (
    GridSpec,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_sweep_grid,
    expand_grid,
    family,
    run_batch,
)
from repro.sim.kernel import run_algorithm
from repro.sim.replay import replay, roundtrip


def _small_grid(seed=5):
    return GridSpec(
        n=5,
        t=2,
        algorithms=("att2", "floodset", "hurfin_raynal"),
        families=(
            family("es", "random_es", count=6, horizon=12),
            family("scs", "random_scs", count=4, horizon=8),
            family("cascade", "cascade", horizon=12),
        ),
        seed=seed,
        proposal_mode="random",
    )


class TestWorkerCountInvariance:
    def test_small_grid_parallel_matches_serial(self):
        grid = _small_grid()
        serial = run_batch(grid, executor=SerialExecutor())
        parallel = run_batch(grid, executor=ProcessExecutor(4))
        assert serial.records == parallel.records
        assert serial.to_json() == parallel.to_json()

    def test_thread_backend_matches_serial(self):
        grid = _small_grid()
        serial = run_batch(grid, executor=SerialExecutor())
        threaded = run_batch(grid, executor=ThreadExecutor(4))
        assert serial.records == threaded.records
        assert serial.to_json() == threaded.to_json()

    def test_acceptance_grid_parallel_matches_serial(self):
        """The ISSUE's acceptance check: >= 100 cases, >= 3 algorithms."""
        grid = default_sweep_grid()
        cases = expand_grid(grid)
        assert len(cases) >= 100
        assert len({case.algorithm for case in cases}) >= 3
        serial = run_batch(cases, executor=SerialExecutor())
        parallel = run_batch(cases, executor=ProcessExecutor(4))
        assert serial.records == parallel.records
        assert serial.to_json() == parallel.to_json()

    def test_streaming_sees_same_records_in_any_order(self):
        grid = _small_grid()
        streamed: dict[int, object] = {}
        run_batch(grid, executor=ProcessExecutor(4),
                  on_record=lambda index, record:
                      streamed.__setitem__(index, record))
        serial = run_batch(grid, executor=SerialExecutor())
        assert [streamed[i] for i in sorted(streamed)] == list(serial.records)


class TestSeedReplay:
    def test_reexpanded_grid_replays_identically(self):
        grid = _small_grid(seed=9)
        first = expand_grid(grid)
        second = expand_grid(grid)
        assert first == second
        for case in first[:8]:
            trace = run_algorithm(
                case.resolve_factory(), case.schedule, list(case.proposals)
            )
            # replay() raises SimulationError on any divergence.
            fresh = replay(trace, case.resolve_factory())
            assert fresh.decisions == trace.decisions

    def test_grid_schedules_survive_serialization(self):
        # Schedules exported from a batch can be re-imported bit-for-bit,
        # so archived sweeps can be re-executed elsewhere.
        for case in expand_grid(_small_grid())[:6]:
            assert roundtrip(case.schedule) == case.schedule
