"""Orchestrator robustness: retry, reassign, heartbeat, partial failure.

The driver tests run against a scripted in-process
:class:`WorkerBackend` that injects exactly the failure the test is
about — a kill mid-shard (``ShardFailure``), a hang past the timeout, a
flaky-then-succeed worker, a permanently dead shard — and assert the
orchestration still converges on the byte-exact merged result (or
reports precisely what is missing).  One test at the bottom exercises
the real :class:`LocalWorkerBackend` end to end with subprocess workers
and an injected SIGKILL, pinning the acceptance contract: the merged
export is byte-identical to a serial whole-grid sweep even when a
worker dies mid-shard.
"""

import asyncio
import json

import pytest

from repro.analysis.sweep import SweepRecord
from repro.engine import (
    BatchResult,
    GridSpec,
    ShardSpec,
    expand_grid,
    family,
    run_batch,
)
from repro.engine.orchestrator import (
    LocalWorkerBackend,
    OrchestratorError,
    ShardFailure,
    WorkerSpec,
    local_workers,
    orchestrate,
)


def _record(index):
    """A minimal engine-shaped record with a distinct ``case_index``."""
    return SweepRecord(
        algorithm="att2",
        workload=f"w{index}",
        n=3,
        t=1,
        crashes=0,
        sync_from=1,
        global_round=2,
        first_round=2,
        deciders=3,
        agreement_ok=True,
        validity_ok=True,
        messages=10 + index,
        horizon=8,
        case_index=index,
    )


#: Cases per scripted "grid" — shard i of N owns indices {i, i+N, ...}.
TOTAL_CASES = 8


def _shard_result(shard):
    records = tuple(
        _record(index)
        for index in range(TOTAL_CASES)
        if index % shard.count == shard.index
    )
    return BatchResult(records=records)


def _full_result(shard_count):
    return BatchResult.merge(
        [_shard_result(ShardSpec(i, shard_count)) for i in range(shard_count)]
    )


class ScriptedBackend:
    """A :class:`WorkerBackend` whose failures are scripted per attempt.

    ``faults`` maps ``(shard_index, attempt)`` to a fault:

    * an exception instance — raised by that attempt;
    * the string ``"hang"`` — the attempt blocks until cancelled (the
      driver's timeout or heartbeat must kill it);
    * a ``BatchResult`` — returned instead of the shard's true result
      (for merge-conflict injection).

    ``dead_workers`` makes ``probe`` report those workers dead, feeding
    the heartbeat monitor.  Every call is logged in ``calls`` as
    ``(worker, shard_index, attempt)``.
    """

    def __init__(self, faults=None, dead_workers=()):
        self.faults = dict(faults or {})
        self.dead_workers = set(dead_workers)
        self.calls = []
        self.warmed = []
        self.warm_error = None

    async def run_shard(self, worker, shard, attempt):
        self.calls.append((worker.name, shard.index, attempt))
        fault = self.faults.get((shard.index, attempt))
        if isinstance(fault, Exception):
            raise fault
        if fault == "hang":
            await asyncio.Event().wait()  # cancellation is the only exit
        if isinstance(fault, BatchResult):
            return fault
        return _shard_result(shard)

    async def warm(self, worker):
        self.warmed.append(worker.name)
        if self.warm_error is not None:
            raise self.warm_error

    async def probe(self, worker):
        return worker.name not in self.dead_workers


def _run(backend, *, workers=2, shards=4, **kwargs):
    kwargs.setdefault("backoff", 0.01)
    kwargs.setdefault("heartbeat", None)
    return orchestrate(local_workers(workers), backend, shards, **kwargs)


class TestDriverHappyPath:
    def test_all_shards_complete_and_merge_byte_identically(self):
        backend = ScriptedBackend()
        report = _run(backend)
        assert report.complete
        assert len(report.completed) == 4
        assert report.total_attempts == 4
        assert report.result.to_json() == _full_result(4).to_json()

    def test_events_stream_launch_then_complete(self):
        events = []
        _run(ScriptedBackend(), on_event=events.append)
        kinds = [event.kind for event in events]
        assert kinds.count("launch") == 4
        assert kinds.count("complete") == 4
        assert all(kind in ("launch", "complete") for kind in kinds)
        # every event names its shard and worker for the progress stream
        assert all(
            event.shard is not None and event.worker for event in events
        )

    def test_outcomes_are_per_shard_and_sorted(self):
        report = _run(ScriptedBackend())
        assert [outcome.shard for outcome in report.outcomes] == [0, 1, 2, 3]
        assert all(outcome.attempts == 1 for outcome in report.outcomes)
        assert sum(outcome.cases for outcome in report.outcomes) == TOTAL_CASES


class TestDriverRetries:
    def test_flaky_shard_retries_then_succeeds(self):
        backend = ScriptedBackend(
            faults={(1, 1): ShardFailure("worker killed mid-shard")}
        )
        events = []
        report = _run(backend, on_event=events.append)
        assert report.complete
        assert report.result.to_json() == _full_result(4).to_json()
        outcome = report.outcomes[1]
        assert outcome.attempts == 2
        retries = [event for event in events if event.kind == "retry"]
        assert len(retries) == 1
        assert "killed mid-shard" in retries[0].detail

    def test_retry_reassigns_to_a_fresh_worker(self):
        backend = ScriptedBackend(faults={(0, 1): ShardFailure("boom")})
        report = _run(backend)
        outcome = report.outcomes[0]
        assert outcome.attempts == 2
        first, second = outcome.workers_tried
        assert first != second  # the failing worker is excluded on retry

    def test_single_worker_exclusion_resets_instead_of_deadlocking(self):
        # With one worker, excluding the failure would exclude everyone;
        # the driver resets the exclusion so the retry can still run.
        backend = ScriptedBackend(faults={(0, 1): ShardFailure("boom")})
        report = _run(backend, workers=1, shards=2)
        assert report.complete
        assert report.outcomes[0].workers_tried == ("local-0", "local-0")

    def test_permanent_failure_exhausts_attempts_and_reports(self):
        backend = ScriptedBackend(
            faults={
                (2, 1): ShardFailure("dead"),
                (2, 2): ShardFailure("dead"),
                (2, 3): ShardFailure("dead"),
            }
        )
        report = _run(backend, retries=2)
        assert not report.complete
        assert [outcome.shard for outcome in report.failed] == [2]
        failed = report.failed[0]
        assert failed.attempts == 3
        assert "dead" in failed.error
        # everything else still merged into a usable partial result
        merged_indices = sorted(
            record.case_index for record in report.result.records
        )
        assert merged_indices == [
            index for index in range(TOTAL_CASES) if index % 4 != 2
        ]
        text = report.describe()
        assert "FAILED after 3 attempts" in text
        assert "repro sweep --shard I/N" in text  # the recovery hint

    def test_zero_retries_means_exactly_one_attempt(self):
        backend = ScriptedBackend(faults={(3, 1): ShardFailure("once")})
        report = _run(backend, retries=0)
        assert not report.complete
        assert report.failed[0].attempts == 1
        assert len(backend.calls) == 4  # no shard ran twice

    def test_unexpected_backend_exception_is_bounded_like_a_failure(self):
        # A backend defect must not crash the orchestration: it consumes
        # attempts and lands in the report like any shard failure.
        backend = ScriptedBackend(
            faults={
                (1, 1): RuntimeError("backend bug"),
                (1, 2): RuntimeError("backend bug"),
            }
        )
        report = _run(backend, retries=1)
        assert not report.complete
        assert "RuntimeError: backend bug" in report.failed[0].error


class TestDriverTimeouts:
    def test_hang_past_timeout_is_retried(self):
        backend = ScriptedBackend(faults={(1, 1): "hang"})
        events = []
        report = _run(backend, timeout=0.2, on_event=events.append)
        assert report.complete
        assert report.result.to_json() == _full_result(4).to_json()
        retries = [event for event in events if event.kind == "retry"]
        assert len(retries) == 1
        assert "timed out" in retries[0].detail

    def test_hang_on_every_attempt_fails_the_shard(self):
        backend = ScriptedBackend(
            faults={(0, 1): "hang", (0, 2): "hang"}
        )
        report = _run(backend, retries=1, timeout=0.1)
        assert not report.complete
        assert "timed out" in report.failed[0].error
        assert report.failed[0].attempts == 2


class TestDriverHeartbeat:
    def test_dead_worker_probe_cancels_and_reassigns(self):
        # local-0's first attempt hangs forever and its probe reports
        # dead: the heartbeat monitor must cancel the attempt long
        # before the (absent) timeout would, and the shard must complete
        # on the surviving worker.
        class HangFirstBackend(ScriptedBackend):
            async def run_shard(self, worker, shard, attempt):
                if worker.name == "local-0" and not any(
                    name == "local-0" and a > 1 or name != "local-0"
                    for name, _shard, a in self.calls
                ):
                    self.calls.append((worker.name, shard.index, attempt))
                    self.dead_workers.add("local-0")
                    await asyncio.Event().wait()
                return await super().run_shard(worker, shard, attempt)

        backend = HangFirstBackend()
        events = []
        report = _run(
            backend,
            shards=2,
            timeout=None,
            heartbeat=0.05,
            on_event=events.append,
        )
        assert report.complete
        assert report.result.to_json() == _full_result(2).to_json()
        assert any(event.kind == "worker-dead" for event in events)
        retried = [
            event for event in events
            if event.kind == "retry" and "heartbeat lost" in event.detail
        ]
        assert len(retried) == 1


class TestDriverMergeSafety:
    def test_overlapping_export_is_rejected_and_retried(self):
        # A confused worker returning another shard's records must not
        # corrupt the merged result: the overlap check turns it into an
        # ordinary retryable failure.
        backend = ScriptedBackend(
            faults={(1, 1): _shard_result(ShardSpec(0, 4))}
        )
        events = []
        report = _run(backend, on_event=events.append)
        assert report.complete
        assert report.result.to_json() == _full_result(4).to_json()
        retries = [event for event in events if event.kind == "retry"]
        assert len(retries) == 1
        assert "merge rejected" in retries[0].detail


class TestDriverWarm:
    def test_warm_runs_once_per_worker_before_launch(self):
        backend = ScriptedBackend()
        events = []
        _run(backend, warm=True, on_event=events.append)
        assert sorted(backend.warmed) == ["local-0", "local-1"]
        warm_events = [event for event in events if event.kind == "warm"]
        assert len(warm_events) == 2
        # warming strictly precedes every launch
        first_launch = next(
            i for i, event in enumerate(events) if event.kind == "launch"
        )
        assert all(
            events.index(event) < first_launch for event in warm_events
        )

    def test_warm_failure_is_best_effort_not_fatal(self):
        backend = ScriptedBackend()
        backend.warm_error = OSError("no route to host")
        events = []
        report = _run(backend, warm=True, on_event=events.append)
        assert report.complete  # the sweep still ran
        warm_events = [event for event in events if event.kind == "warm"]
        assert any("continuing" in event.detail for event in warm_events)


class TestDriverValidation:
    def test_rejects_empty_worker_list(self):
        with pytest.raises(OrchestratorError, match="at least one worker"):
            orchestrate([], ScriptedBackend(), 2)

    def test_rejects_bad_shard_count(self):
        with pytest.raises(OrchestratorError, match="shard count"):
            orchestrate(local_workers(1), ScriptedBackend(), 0)

    def test_rejects_negative_retries(self):
        with pytest.raises(OrchestratorError, match="retries"):
            orchestrate(local_workers(1), ScriptedBackend(), 1, retries=-1)

    def test_rejects_duplicate_worker_names(self):
        twins = [WorkerSpec(name="twin"), WorkerSpec(name="twin")]
        with pytest.raises(OrchestratorError, match="duplicate"):
            orchestrate(twins, ScriptedBackend(), 2)


def _tiny_grid(tmp_path):
    grid = GridSpec(
        n=3,
        t=1,
        algorithms=("att2", "floodset"),
        families=(
            family("es", "random_es", count=3, horizon=10),
            family("ff", "failure_free", horizon=10),
        ),
        seed=7,
        proposal_mode="random",
    )
    path = tmp_path / "grid.json"
    path.write_text(json.dumps(grid.to_data()))
    return grid, path


class TestLocalBackendEndToEnd:
    """The acceptance contract, against real subprocess workers."""

    def test_chaos_killed_shard_retries_to_byte_identical_output(
        self, tmp_path
    ):
        grid, grid_path = _tiny_grid(tmp_path)
        serial = run_batch(expand_grid(grid))
        backend = LocalWorkerBackend(
            grid_args=("--grid", str(grid_path)),
            workdir=str(tmp_path / "work"),
            chaos_kill=frozenset({1}),
            chaos_kill_delay=0.05,
        )
        report = orchestrate(
            local_workers(2),
            backend,
            3,
            backoff=0.05,
            heartbeat=None,
        )
        assert report.complete
        assert report.outcomes[1].attempts >= 2  # the kill really fired
        assert report.result.to_json() == serial.to_json()

    def test_missing_grid_fails_every_attempt_with_stderr_tail(
        self, tmp_path
    ):
        backend = LocalWorkerBackend(
            grid_args=("--grid", str(tmp_path / "nope.json")),
            workdir=str(tmp_path / "work"),
        )
        report = orchestrate(
            local_workers(1), backend, 1, retries=0, heartbeat=None
        )
        assert not report.complete
        assert "no usable export" in report.failed[0].error
