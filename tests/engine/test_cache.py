"""Tests for the content-addressed result cache (repro.engine.cache)."""

import json
import linecache

import pytest

from repro import ATt2, Schedule
from repro.algorithms import registry
from repro.algorithms.registry import (
    AlgorithmInfo,
    algorithm_source_hash,
    clear_source_hash_cache,
)
from repro.engine import (
    Case,
    ProcessExecutor,
    ResultCache,
    run_batch,
    run_cases,
)
from repro.engine import executors as executors_module


def _case(index, algorithm="att2", workload="ff", n=3, t=1, horizon=8,
          factory=None, proposals=None):
    return Case(
        index=index,
        algorithm=algorithm,
        workload=workload,
        schedule=Schedule.failure_free(n, t, horizon),
        proposals=tuple(proposals if proposals is not None else range(n)),
        factory=factory,
    )


def _small_batch():
    return [
        _case(0, algorithm="att2", workload="att2/ff"),
        _case(1, algorithm="floodset", workload="floodset/ff"),
        _case(2, algorithm="att2", workload="att2/ff9", horizon=9),
    ]


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestSourceHash:
    def test_stable_and_memoized(self):
        clear_source_hash_cache()
        first = algorithm_source_hash("att2")
        assert first is not None and len(first) == 64
        assert algorithm_source_hash("att2") == first

    def test_distinct_per_algorithm(self):
        hashes = {
            algorithm_source_hash(name)
            for name in ("att2", "att2_optimized", "floodset", "adiamond_s")
        }
        assert len(hashes) == 4

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            algorithm_source_hash("nope")

    def test_fingerprint_covers_composed_dependencies(self):
        # att2 delegates to an underlying consensus (Chandra-Toueg by
        # default) and to suspicion-tracking helpers; editing either must
        # invalidate att2's entries, so both belong to its module closure.
        names = {
            module.__name__
            for module in registry._source_modules(
                registry._entries()["att2"]
            )
        }
        assert "repro.algorithms.chandra_toueg" in names
        assert "repro.algorithms.suspicion" in names
        assert "repro.algorithms.base" in names

    def test_subclass_fingerprint_covers_parent_module(self):
        names = {
            module.__name__
            for module in registry._source_modules(
                registry._entries()["att2_optimized"]
            )
        }
        assert "repro.core.att2" in names


class TestCaseKey:
    def test_key_is_content_addressed(self, cache):
        assert cache.case_key(_case(0)) == cache.case_key(
            _case(7, workload="other-label")
        )

    def test_key_varies_with_inputs(self, cache):
        base = cache.case_key(_case(0))
        assert cache.case_key(_case(0, algorithm="floodset")) != base
        assert cache.case_key(_case(0, horizon=9)) != base
        assert cache.case_key(_case(0, proposals=(9, 9, 9))) != base

    def test_explicit_factory_is_uncacheable(self, cache):
        case = _case(0, factory=ATt2.factory())
        assert cache.case_key(case) is None
        assert cache.lookup(case) is None
        assert (cache.hits, cache.misses) == (0, 0)

    def test_non_primitive_proposals_are_uncacheable(self, cache):
        # Value is Any; a default object repr embeds a memory address, so
        # such proposals have no stable fingerprint and must never key.
        case = _case(0, proposals=(object(), 1, 2))
        assert cache.case_key(case) is None
        assert cache.case_key(_case(0, proposals=(0, "a", 1.5))) is not None


class TestHitMissPartitioning:
    def test_cold_then_warm(self, cache):
        cases = _small_batch()
        cold = run_cases(cases, cache=cache)
        assert (cache.hits, cache.misses) == (0, 3)
        assert cache.entry_count() == 3

        warm = run_cases(cases, cache=cache)
        assert (cache.hits, cache.misses) == (3, 3)
        assert warm == cold
        assert warm == run_cases(cases)  # cache changes nothing but time

    def test_hit_restamps_label_and_index(self, cache):
        run_cases([_case(0, workload="first-label")], cache=cache)
        (record,) = run_cases(
            [_case(5, workload="second-label")], cache=cache
        )
        assert cache.hits == 1
        assert record.workload == "second-label"
        assert record.case_index == 5

    def test_warm_run_executes_zero_cases(self, cache, monkeypatch):
        cases = _small_batch()
        cold = run_cases(cases, cache=cache)

        def boom(case):
            raise AssertionError(f"kernel executed case {case.index}")

        monkeypatch.setattr(executors_module, "execute_case", boom)
        assert run_cases(cases, cache=cache) == cold

    def test_partial_warmth_executes_only_misses(self, cache, monkeypatch):
        cases = _small_batch()
        run_cases(cases[:1], cache=cache)
        executed = []
        real = executors_module.execute_case
        monkeypatch.setattr(
            executors_module, "execute_case",
            lambda case: executed.append(case.index) or real(case),
        )
        run_cases(cases, cache=cache)
        assert executed == [1, 2]

    def test_on_record_streams_hits_and_misses(self, cache):
        cases = _small_batch()
        run_cases(cases[:2], cache=cache)
        seen = []
        run_cases(cases, cache=cache,
                  on_record=lambda index, record: seen.append(index))
        assert sorted(seen) == [0, 1, 2]

    def test_identical_cases_in_one_batch_execute_once(
        self, cache, monkeypatch
    ):
        # Same (algorithm, schedule, proposals) under different labels:
        # one kernel execution serves all of them, re-stamped.
        cases = [
            _case(0, workload="baseline"),
            _case(1, workload="repeat-a"),
            _case(2, workload="repeat-b"),
        ]
        executed = []
        real = executors_module.run_case
        monkeypatch.setattr(
            executors_module, "run_case",
            lambda *args, **kwargs: (
                executed.append(args[0]) or real(*args, **kwargs)
            ),
        )
        records = run_cases(cases, cache=cache)
        assert executed == ["att2"]
        assert [r.workload for r in records] == [
            "baseline", "repeat-a", "repeat-b"
        ]
        assert [r.case_index for r in records] == [0, 1, 2]
        # Served-in-flight cases are dedup, not disk hits: a cold run
        # keeps its "0 hits" invariant (the CI lane greps for it).
        assert (cache.hits, cache.misses, cache.deduped) == (0, 1, 2)
        assert "2 deduped" in cache.describe()

    def test_wrappers_cache_registry_named_cases(self, cache):
        from repro.analysis.sweep import sweep, worst_case_round

        schedule = Schedule.failure_free(3, 1, 8)
        worst, witness = worst_case_round(
            "att2", [("ff", schedule)], (0, 1, 2), cache=cache
        )
        assert (worst, witness) == (3, "ff")
        assert (cache.hits, cache.misses) == (0, 1)
        worst_case_round("att2", [("ff", schedule)], (0, 1, 2), cache=cache)
        assert (cache.hits, cache.misses) == (1, 1)

        records = sweep(
            [("att2", None, "ff", schedule, (0, 1, 2))], cache=cache
        )
        assert records[0].global_round == 3
        assert cache.hits == 2  # registry-resolved, so the entry hit again


class TestInvalidation:
    def test_source_change_invalidates_only_that_algorithm(
        self, cache, monkeypatch
    ):
        cases = _small_batch()
        run_cases(cases, cache=cache)
        # Simulate an edit to att2's implementation: its memoized source
        # fingerprint changes, floodset's does not.
        monkeypatch.setitem(
            registry._SOURCE_HASH_CACHE, "att2", "0" * 64
        )
        run_cases(cases, cache=cache)
        assert cache.hits == 1  # floodset only
        assert cache.misses == 3 + 2  # cold run + both att2 cases

    def test_editing_module_file_invalidates_entries(
        self, cache, tmp_path, monkeypatch
    ):
        """End-to-end: rewrite a registered algorithm's module on disk."""
        import importlib.util
        import sys

        source = (
            "from repro.core.att2 import ATt2\n"
            "_build = ATt2.factory()\n"
            "def factory(pid, n, t, proposal):\n"
            "    return _build(pid, n, t, proposal)\n"
            "def make():\n"
            "    return factory\n"
            "# revision: {rev}\n"
        )
        path = tmp_path / "fake_alg_mod.py"
        path.write_text(source.format(rev="A"))
        spec = importlib.util.spec_from_file_location("fake_alg_mod", path)
        module = importlib.util.module_from_spec(spec)
        monkeypatch.setitem(sys.modules, "fake_alg_mod", module)
        spec.loader.exec_module(module)

        entries = dict(registry._entries())
        entries["fake_alg"] = AlgorithmInfo(
            "fake_alg", "ES", module.make, "test-only wrapper around att2"
        )
        monkeypatch.setattr(registry, "_entries", lambda: entries)
        clear_source_hash_cache()

        cases = [_case(0, algorithm="fake_alg"), _case(1, algorithm="att2")]
        run_cases(cases, cache=cache)
        run_cases(cases, cache=cache)
        assert (cache.hits, cache.misses) == (2, 2)

        path.write_text(source.format(rev="B"))
        linecache.clearcache()
        clear_source_hash_cache()
        run_cases(cases, cache=cache)
        # fake_alg missed (source changed), att2 still hit.
        assert (cache.hits, cache.misses) == (3, 3)
        clear_source_hash_cache()


class TestCorruptionRecovery:
    def test_corrupted_entry_is_a_miss_and_heals(self, cache):
        cases = _small_batch()
        cold = run_cases(cases, cache=cache)
        cache.path_for(cases[0]).write_text("{not json")
        assert run_cases(cases, cache=cache) == cold
        assert cache.misses == 3 + 1
        run_cases(cases, cache=cache)
        assert cache.hits == 2 + 3  # healed: third run is all hits

    def test_store_failure_never_aborts_a_sweep(self, cache, monkeypatch):
        # The cache costs only time: an unwritable store (read-only dir,
        # full disk) is counted, not raised.
        import repro.engine.cache as cache_module

        def refuse(src, dst):
            raise OSError("read-only file system")

        monkeypatch.setattr(cache_module.os, "replace", refuse)
        cases = _small_batch()
        records = run_cases(cases, cache=cache)
        assert len(records) == 3
        assert cache.store_failures == 3
        assert cache.entry_count() == 0
        assert "3 store failures" in cache.describe()

    def test_version_or_key_skew_is_a_miss(self, cache):
        case = _case(0)
        run_cases([case], cache=cache)
        path = cache.path_for(case)
        data = json.loads(path.read_text())
        data["version"] = 999
        path.write_text(json.dumps(data))
        run_cases([case], cache=cache)
        assert cache.misses == 2


class TestStats:
    def test_flush_accumulates_lifetime_counters(self, cache, tmp_path):
        from repro.engine import cache_stats

        cases = _small_batch()
        run_cases(cases, cache=cache)
        cache.flush_stats()
        warm = ResultCache(tmp_path / "cache")  # fresh session, same dir
        run_cases(cases, cache=warm)
        warm.flush_stats()

        stats = cache_stats(tmp_path / "cache")
        assert stats["entries"] == 3
        assert stats["total_bytes"] > 0
        assert (stats["hits"], stats["misses"]) == (3, 3)
        assert stats["sweeps"] == 2
        assert stats["hit_rate"] == 0.5

    def test_repeated_flush_never_double_counts(self, cache):
        # One long-lived cache object flushed after every sweep: each
        # flush folds only the activity since the previous one.
        from repro.engine import cache_stats

        cases = _small_batch()
        run_cases(cases, cache=cache)
        cache.flush_stats()
        run_cases(cases, cache=cache)
        cache.flush_stats()
        stats = cache_stats(cache.directory)
        assert (stats["hits"], stats["misses"]) == (3, 3)
        assert stats["sweeps"] == 2

    def test_stats_file_never_counts_as_an_entry(self, cache):
        run_cases(_small_batch(), cache=cache)
        cache.flush_stats()
        assert cache.entry_count() == 3

    def test_concurrent_flushes_merge_instead_of_racing(
        self, cache, monkeypatch
    ):
        # Regression: flush_stats used to do an unlocked read-modify-
        # write of stats.json, so two shards flushing concurrently lost
        # one delta.  The interleaving is forced deterministically: the
        # first flusher pauses inside its read (under the lock), the
        # second flushes meanwhile — it must block until the first is
        # done and then merge on top of the first's totals.
        import threading

        from repro.engine import cache_stats
        from repro.engine import cache as cache_module

        other = ResultCache(cache.directory)
        cache.hits, cache.misses = 3, 1
        other.hits, other.misses = 0, 5

        real_read = cache_module._read_stats_file
        first_inside = threading.Event()
        release_first = threading.Event()

        def pausing_read(path):
            totals = real_read(path)
            if threading.current_thread().name == "first-flusher":
                first_inside.set()
                release_first.wait(10)
            return totals

        monkeypatch.setattr(
            cache_module, "_read_stats_file", pausing_read
        )
        first = threading.Thread(
            target=cache.flush_stats, name="first-flusher"
        )
        first.start()
        assert first_inside.wait(10)
        second = threading.Thread(target=other.flush_stats)
        second.start()
        second.join(0.3)
        assert second.is_alive(), "second flusher should block on the lock"
        release_first.set()
        first.join(10)
        second.join(10)
        assert not first.is_alive() and not second.is_alive()

        stats = cache_stats(cache.directory)
        assert (stats["hits"], stats["misses"]) == (3, 6)
        assert stats["sweeps"] == 2
        # both flushers zeroed their session counters on success
        assert (cache.hits, other.misses) == (0, 0)

    def test_unswept_directory_reports_no_rate(self, cache):
        from repro.engine import cache_stats

        stats = cache_stats(cache.directory)
        assert stats["entries"] == 0
        assert stats["hit_rate"] is None

    def test_corrupt_stats_file_reads_as_zeros(self, cache):
        from repro.engine import cache_stats
        from repro.engine.cache import STATS_FILE

        run_cases(_small_batch(), cache=cache)
        (cache.directory / STATS_FILE).write_text("{not json")
        stats = cache_stats(cache.directory)
        assert stats["entries"] == 3
        assert stats["sweeps"] == 0
        cache.flush_stats()  # heals: next flush rewrites from zeros
        assert cache_stats(cache.directory)["sweeps"] == 1

    def test_missing_directory_raises_oserror(self, tmp_path):
        from repro.engine import cache_stats

        with pytest.raises(OSError, match="not a cache directory"):
            cache_stats(tmp_path / "absent")


class TestColdWarmIdenticalJson:
    def test_parallel_cold_and_warm_byte_identical(self, cache):
        cases = [
            _case(i, algorithm=name, workload=f"{name}/ff{h}", horizon=h)
            for i, (name, h) in enumerate(
                (name, h)
                for name in ("att2", "floodset", "hurfin_raynal")
                for h in (8, 9, 10, 11)
            )
        ]
        uncached = run_batch(cases, executor=ProcessExecutor(4))
        cold = run_batch(cases, executor=ProcessExecutor(4), cache=cache)
        warm = run_batch(cases, executor=ProcessExecutor(4), cache=cache)
        assert cache.misses == len(cases)
        assert cache.hits == len(cases)
        assert cold.to_json() == uncached.to_json()
        assert warm.to_json() == cold.to_json()


class TestCacheGc:
    """Age- and size-bounded eviction (``repro cache gc``)."""

    def _filled(self, cache, mtimes):
        """Store one entry per mtime (oldest first) and stamp its mtime."""
        import os

        paths = []
        for i, mtime in enumerate(mtimes):
            case = _case(i, workload=f"gc-{i}", proposals=(i, i, i))
            run_cases([case], cache=cache)
            path = cache.path_for(case)
            assert path is not None and path.exists()
            os.utime(path, (mtime, mtime))
            paths.append(path)
        return paths

    def test_requires_at_least_one_bound(self, cache):
        from repro.engine import cache_gc

        with pytest.raises(ValueError, match="at least one bound"):
            cache_gc(cache.directory)

    def test_negative_bounds_rejected(self, cache):
        from repro.engine import cache_gc

        with pytest.raises(ValueError, match="max_age_days"):
            cache_gc(cache.directory, max_age_days=-1)
        with pytest.raises(ValueError, match="max_bytes"):
            cache_gc(cache.directory, max_bytes=-5)

    def test_missing_directory_raises_oserror(self, tmp_path):
        from repro.engine import cache_gc

        with pytest.raises(OSError, match="not a cache directory"):
            cache_gc(tmp_path / "nope", max_bytes=0)

    def test_age_eviction(self, cache):
        from repro.engine import cache_gc

        now = 1_000_000.0
        day = 86400.0
        old, older, fresh = self._filled(
            cache, [now - 40 * day, now - 31 * day, now - 5 * day]
        )
        summary = cache_gc(cache.directory, max_age_days=30, now=now)
        assert summary["removed"] == 2
        assert not old.exists() and not older.exists()
        assert fresh.exists()
        assert summary["remaining"] == 1

    def test_lru_size_eviction_removes_oldest_first(self, cache):
        from repro.engine import cache_gc

        paths = self._filled(cache, [100.0, 200.0, 300.0])
        sizes = [path.stat().st_size for path in paths]
        # Bound that forces exactly the two oldest out.
        summary = cache_gc(
            cache.directory, max_bytes=sizes[2], now=1000.0
        )
        assert summary["removed"] == 2
        assert not paths[0].exists() and not paths[1].exists()
        assert paths[2].exists()
        assert summary["remaining_bytes"] == sizes[2]

    def test_max_bytes_zero_empties_the_cache(self, cache):
        from repro.engine import cache_gc, cache_stats

        self._filled(cache, [100.0, 200.0])
        summary = cache_gc(cache.directory, max_bytes=0, now=1000.0)
        assert summary["removed"] == 2
        assert cache_stats(cache.directory)["entries"] == 0

    def test_gc_preserves_lifetime_counters_and_is_reported(self, cache):
        from repro.engine import cache_gc, cache_stats

        self._filled(cache, [100.0, 200.0])
        cache.flush_stats()
        before = cache_stats(cache.directory)
        summary = cache_gc(cache.directory, max_bytes=0, now=1234.5)
        stats = cache_stats(cache.directory)
        # counters survive the gc, and the gc survives a counter flush
        assert stats["misses"] == before["misses"]
        assert stats["last_gc"]["removed"] == summary["removed"]
        assert stats["last_gc"]["at"] == 1234.5
        fresh = ResultCache(cache.directory)
        fresh.lookup(_case(9, proposals=(9, 9, 9)))  # a miss
        fresh.flush_stats()
        assert cache_stats(cache.directory)["last_gc"]["at"] == 1234.5

    def test_warm_hit_entry_survives_size_bounded_gc(self, cache):
        # Regression: lookup never touched an entry on hit, so the
        # "LRU" size bound ordered by store time and evicted the cache's
        # hottest entries first.  The *older-stored* entry is served
        # once; the size-bounded gc must then evict the colder (but
        # newer-stored) one instead.
        import time

        from repro.engine import cache_gc

        warm_path, cold_path = self._filled(cache, [100.0, 200.0])
        warm_case = _case(0, workload="gc-0", proposals=(0, 0, 0))
        fresh = ResultCache(cache.directory)
        assert fresh.lookup(warm_case) is not None  # hit touches mtime
        assert warm_path.stat().st_mtime > cold_path.stat().st_mtime
        summary = cache_gc(
            cache.directory,
            max_bytes=warm_path.stat().st_size,
            now=time.time(),
        )
        assert summary["removed"] == 1
        assert warm_path.exists()
        assert not cold_path.exists()

    def test_touch_failure_on_hit_is_swallowed(self, cache, monkeypatch):
        import os as os_module

        case = _case(0, workload="touchy", proposals=(2, 2, 2))
        (record,) = run_cases([case], cache=cache)

        def refuse(path, *args, **kwargs):
            raise OSError("read-only share")

        monkeypatch.setattr(os_module, "utime", refuse)
        fresh = ResultCache(cache.directory)
        assert fresh.lookup(case) == record
        assert fresh.hits == 1

    def test_gc_survivors_still_hit(self, cache):
        from repro.engine import cache_gc

        case = _case(0, workload="keeper", proposals=(7, 7, 7))
        (record,) = run_cases([case], cache=cache)
        cache_gc(cache.directory, max_age_days=365,
                 now=__import__("time").time())
        fresh = ResultCache(cache.directory)
        assert fresh.lookup(case) == record
        assert fresh.hits == 1

    def test_gc_never_touches_non_entry_files(self, cache):
        # `cache gc` is destructive; a mistyped directory containing
        # two-character subdirs with ordinary JSON (ui/theme.json, ...)
        # must come through a max_bytes=0 sweep untouched.
        from repro.engine import cache_gc, cache_stats

        root = cache.directory
        (root / "ui").mkdir()
        bystander = root / "ui" / "theme.json"
        bystander.write_text('{"color": "blue"}', encoding="utf-8")
        truncated = root / "ab" / ("c" * 64 + ".json")  # wrong prefix
        truncated.parent.mkdir()
        truncated.write_text("{}", encoding="utf-8")
        self._filled(cache, [100.0])
        summary = cache_gc(cache.directory, max_bytes=0, now=1000.0)
        assert summary["removed"] == 1  # only the genuine entry
        assert bystander.exists()
        assert truncated.exists()
        assert cache_stats(cache.directory)["entries"] == 0
