"""Tests for the pluggable execution backends (repro.engine.executors)."""

import multiprocessing
import time

import pytest

from repro import ATt2, Schedule
from repro.engine import (
    Case,
    ExecutorError,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
    run_cases,
)

BACKEND_PARAMS = [
    pytest.param(SerialExecutor(), id="serial"),
    pytest.param(ProcessExecutor(workers=3), id="processes"),
    pytest.param(ThreadExecutor(workers=3), id="threads"),
]


def _case(index, algorithm="att2", workload="ff", n=3, t=1, horizon=8,
          factory=None):
    return Case(
        index=index,
        algorithm=algorithm,
        workload=workload,
        schedule=Schedule.failure_free(n, t, horizon),
        proposals=tuple(range(n)),
        factory=factory,
    )


class TestMapCasesProtocol:
    @pytest.mark.parametrize("executor", BACKEND_PARAMS)
    def test_yields_index_record_pairs_for_every_case(self, executor):
        cases = [_case(i, horizon=8 + i) for i in range(6)]
        pairs = list(executor.map_cases(cases))
        assert sorted(index for index, _record in pairs) == list(range(6))
        for index, record in pairs:
            assert record.case_index == index
            assert record.global_round == 3  # att2 decides at t + 2

    @pytest.mark.parametrize("executor", BACKEND_PARAMS)
    def test_empty_case_list(self, executor):
        assert list(executor.map_cases([])) == []

    @pytest.mark.parametrize("executor", BACKEND_PARAMS)
    def test_backends_agree_with_serial_reference(self, executor):
        cases = [
            _case(i, algorithm=name, workload=f"{name}/{h}", horizon=h)
            for i, (name, h) in enumerate(
                (name, h)
                for name in ("att2", "floodset", "hurfin_raynal")
                for h in (8, 9, 10)
            )
        ]
        reference = run_cases(cases, executor=SerialExecutor())
        assert run_cases(cases, executor=executor) == reference

    def test_executor_names(self):
        assert SerialExecutor().name == "serial"
        assert ProcessExecutor().name == "processes"
        assert ThreadExecutor().name == "threads"


def _assert_no_live_pool_children(timeout=10.0):
    """Wait (briefly) for every pool worker process to be reaped."""
    deadline = time.monotonic() + timeout
    while multiprocessing.active_children():
        if time.monotonic() > deadline:
            raise AssertionError(
                f"pool processes still alive: "
                f"{multiprocessing.active_children()}"
            )
        time.sleep(0.05)


class TestPoolTeardown:
    def test_abandoned_iterator_leaves_no_live_pool(self):
        # Regression: map_cases used to yield lazily from inside the
        # pool context, so a consumer that stopped iterating early
        # (exception mid-merge) left the pool alive until GC.  Results
        # are now drained inside the context, so by the time the first
        # pair is yielded the pool is already torn down.
        cases = [_case(i, horizon=8 + i) for i in range(6)]
        iterator = ProcessExecutor(workers=2).map_cases(cases)
        next(iterator)
        iterator.close()  # abandon mid-stream, as an exception would
        _assert_no_live_pool_children()

    def test_abandoned_iterator_without_close_leaks_nothing(self):
        cases = [_case(i, horizon=8 + i) for i in range(4)]
        iterator = ProcessExecutor(workers=2).map_cases(cases)
        next(iterator)
        del iterator
        _assert_no_live_pool_children()


class TestFactoryCases:
    def _factory_cases(self, count=3, start=0):
        # A lambda factory cannot cross a process boundary.
        return [
            _case(start + i, algorithm="custom",
                  factory=lambda pid, n, t, proposal:
                      ATt2.factory()(pid, n, t, proposal))
            for i in range(count)
        ]

    def test_process_backend_falls_back_to_serial(self):
        pairs = list(ProcessExecutor(workers=4).map_cases(
            self._factory_cases()
        ))
        assert [record.global_round for _i, record in pairs] == [3, 3, 3]

    def test_mixed_batch_pools_picklable_cases(self, monkeypatch):
        # Regression: one factory case used to force the *entire* batch
        # onto the serial fallback.  The batch is now partitioned — the
        # picklable cases still go through the pool, the factory cases
        # run inline — and the re-sorted output is unchanged.
        from repro.engine import executors as executors_module

        pool_requested = []
        real_context = executors_module._pool_context

        def recording_context():
            pool_requested.append(True)
            return real_context()

        inline_indices = []
        real_serial = executors_module.SerialExecutor.map_cases

        def recording_serial(self, cases):
            inline_indices.extend(case.index for case in cases)
            return real_serial(self, cases)

        monkeypatch.setattr(
            executors_module, "_pool_context", recording_context
        )
        monkeypatch.setattr(
            executors_module.SerialExecutor, "map_cases", recording_serial
        )
        mixed = (
            [_case(i, horizon=8 + i) for i in range(4)]
            + self._factory_cases(count=2, start=4)
        )
        records = run_cases(mixed, executor=ProcessExecutor(workers=2))
        assert pool_requested, "picklable cases should still use the pool"
        assert sorted(inline_indices) == [4, 5]
        monkeypatch.undo()
        assert records == run_cases(mixed, executor=SerialExecutor())

    def test_thread_backend_runs_factories_in_process(self):
        # Threads share the interpreter, so no fallback is needed.
        pairs = list(ThreadExecutor(workers=2).map_cases(
            self._factory_cases()
        ))
        assert [record.global_round for _i, record in pairs] == [3, 3, 3]


class TestResolveExecutor:
    def test_maps_backend_names(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert resolve_executor("processes", workers=4) == ProcessExecutor(4)
        assert resolve_executor("threads", workers=2) == ThreadExecutor(2)

    def test_serial_accepts_one_worker(self):
        assert isinstance(
            resolve_executor("serial", workers=1), SerialExecutor
        )

    def test_serial_rejects_parallel_workers(self):
        with pytest.raises(ExecutorError, match="serial backend"):
            resolve_executor("serial", workers=4)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExecutorError, match="unknown backend"):
            resolve_executor("carrier-pigeons")


class TestWorkersShim:
    def test_workers_still_works_but_warns(self):
        cases = [_case(i) for i in range(3)]
        with pytest.deprecated_call():
            records = run_cases(cases, workers=2)
        assert records == run_cases(cases)

    def test_workers_one_means_serial(self):
        with pytest.deprecated_call():
            records = run_cases([_case(0)], workers=1)
        assert records[0].global_round == 3

    def test_executor_and_workers_are_mutually_exclusive(self):
        with pytest.raises(TypeError, match="not both"):
            run_cases([_case(0)], executor=SerialExecutor(), workers=2)

    def test_default_is_serial_and_silent(self, recwarn):
        run_cases([_case(0)])
        assert not [
            w for w in recwarn.list
            if issubclass(w.category, DeprecationWarning)
        ]
