"""Seeded property-based safety harness: agreement and validity must hold.

For every algorithm in the registry, run ~200 randomly generated,
model-appropriate schedules (ES-legal for ES algorithms, SCS-legal for
SCS-only ones) through the batch engine and assert that agreement and
validity never break.  Termination is deliberately *not* asserted — these
are safety properties, and some generated horizons are too short to
terminate in.

Seeds are derived by the grid layer's :func:`repro.engine.grids.case_seed`
and embedded in each case's workload label, so a violation message names
the exact seeds needed to regenerate the failing schedules with the
matching ``repro.sim.random_schedules`` generator.

``REPRO_PROPERTY_SAMPLES`` cranks the per-algorithm sample count (the
nightly CI lane runs thousands of seeds per algorithm this way); the
default stays small enough for the tier-1 suite.

On violation the harness also *exports* every failing case — schedule
(via :func:`repro.sim.replay.schedule_to_data`), proposals and algorithm
— as one JSON file each under ``REPRO_PROPERTY_ARTIFACTS`` (default
``property-failures/``), so a red nightly run ships downloadable repro
artifacts and a local repro is one ``schedule_from_data`` away.
"""

import json
import os

import pytest

from repro.algorithms.registry import available_algorithms
from repro.engine import GridSpec, expand_grid, family, run_batch


def _samples_from_env(default: int = 200) -> int:
    """The per-algorithm sample count, overridable via environment.

    A malformed or non-positive override is a configuration error worth
    failing loudly on: a nightly lane silently falling back to 200
    samples would report far more confidence than it earned.
    """
    raw = os.environ.get("REPRO_PROPERTY_SAMPLES", "")
    if not raw:
        return default
    try:
        samples = int(raw)
    except ValueError:
        raise RuntimeError(
            f"REPRO_PROPERTY_SAMPLES must be an integer, got {raw!r}"
        )
    if samples < 1:
        raise RuntimeError(
            f"REPRO_PROPERTY_SAMPLES must be >= 1, got {samples}"
        )
    return samples


SAMPLES = _samples_from_env()
MASTER_SEED = 20260730

#: Cranked lanes (nightly: thousands of samples) also probe the bitset
#: data plane at sweep scale: a slice of the sample budget re-runs as
#: n = 250 schedules, catching width-dependent bugs (mask handling,
#: interning) that no n <= 7 schedule can reach.  Safety, not
#: termination, is asserted, so the short stock horizons stay valid.
XXL_THRESHOLD = 500
XXL_SAMPLES = max(2, SAMPLES // 250)


def _grid_for(name: str) -> GridSpec:
    info = available_algorithms()[name]
    # afp2 and amr_leader require t < n/3; everything else runs the
    # paper's standard (n, t) = (5, 2) majority configuration.
    n, t = (7, 2) if name in ("afp2", "amr_leader") else (5, 2)
    if info.model == "SCS":
        fam = family("random_scs", "random_scs", count=SAMPLES, horizon=8)
    else:
        fam = family("random_es", "random_es", count=SAMPLES, horizon=12)
    return GridSpec(
        n=n,
        t=t,
        algorithms=(name,),
        families=(fam,),
        seed=MASTER_SEED,
        proposal_mode="random",
    )


def _export_violations(grid: GridSpec, violations) -> str | None:
    """Write each failing case as a replayable JSON artifact.

    The export embeds the schedule via ``schedule_to_data`` plus the
    algorithm and proposals — everything a ``repro run`` needs — into
    ``$REPRO_PROPERTY_ARTIFACTS`` (default ``property-failures/``).
    Returns the directory, or ``None`` when exporting failed (the
    assertion message must never be masked by an export problem).
    """
    from repro.sim.replay import schedule_to_data

    directory = os.environ.get(
        "REPRO_PROPERTY_ARTIFACTS", "property-failures"
    )
    try:
        os.makedirs(directory, exist_ok=True)
        by_index = {case.index: case for case in expand_grid(grid)}
        for record in violations:
            case = by_index[record.case_index]
            path = os.path.join(
                directory,
                f"{record.algorithm}-case{record.case_index}.json",
            )
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(
                    {
                        "algorithm": case.algorithm,
                        "workload": case.workload,
                        "proposals": list(case.proposals),
                        "schedule": schedule_to_data(case.schedule),
                    },
                    handle, indent=2, sort_keys=True,
                )
                handle.write("\n")
    except OSError:
        return None
    return directory


@pytest.mark.parametrize("name", sorted(available_algorithms()))
def test_safety_never_breaks_on_random_schedules(name):
    # Cranked nightly runs fan out across a process pool; the stock
    # tier-1 count stays serial (pool startup would dominate).  Either
    # backend produces identical records, so the assertion is unchanged.
    from repro.engine import ProcessExecutor, SerialExecutor

    executor = ProcessExecutor() if SAMPLES > 500 else SerialExecutor()
    grid = _grid_for(name)
    result = run_batch(grid, executor=executor)
    assert result.case_count == SAMPLES
    violations = result.violations()
    exported = _export_violations(grid, violations) if violations else None
    assert not violations, (
        f"{name} broke agreement/validity on {len(violations)} of "
        f"{SAMPLES} schedules (master seed {MASTER_SEED}); failing cases "
        f"(label embeds the generator seed): "
        + ", ".join(record.workload for record in violations[:10])
        + (
            f"; schedules exported to {exported}/"
            if exported
            else "; schedule export FAILED — regenerate from the seeds"
        )
    )


def _xxl_grid_for(name: str) -> GridSpec:
    """An n = 250 sibling of :func:`_grid_for` (distinct master seed, so
    the two tiers never share schedules)."""
    info = available_algorithms()[name]
    if info.model == "SCS":
        fam = family("random_scs", "random_scs",
                     count=XXL_SAMPLES, horizon=8)
    else:
        fam = family("random_es", "random_es",
                     count=XXL_SAMPLES, horizon=12)
    return GridSpec(
        n=250,
        t=32,
        algorithms=(name,),
        families=(fam,),
        seed=MASTER_SEED + 1,
        proposal_mode="random",
    )


@pytest.mark.parametrize("name", sorted(available_algorithms()))
def test_safety_never_breaks_at_xxl_scale(name):
    if SAMPLES <= XXL_THRESHOLD:
        pytest.skip(
            "n=250 property cases run only in cranked lanes "
            f"(REPRO_PROPERTY_SAMPLES > {XXL_THRESHOLD})"
        )
    from repro.engine import ProcessExecutor

    grid = _xxl_grid_for(name)
    result = run_batch(grid, executor=ProcessExecutor())
    assert result.case_count == XXL_SAMPLES
    violations = result.violations()
    exported = _export_violations(grid, violations) if violations else None
    assert not violations, (
        f"{name} broke agreement/validity on {len(violations)} of "
        f"{XXL_SAMPLES} n=250 schedules (master seed {MASTER_SEED + 1}); "
        f"failing cases (label embeds the generator seed): "
        + ", ".join(record.workload for record in violations[:10])
        + (
            f"; schedules exported to {exported}/"
            if exported
            else "; schedule export FAILED — regenerate from the seeds"
        )
    )


def test_violation_export_is_replayable(tmp_path, monkeypatch):
    """The artifact a (hypothetical) violation ships must reproduce the
    exact failing schedule."""
    from repro.sim.replay import schedule_from_data

    monkeypatch.setenv("REPRO_PROPERTY_ARTIFACTS", str(tmp_path / "out"))
    grid = _grid_for("att2")
    records = run_batch(grid).records
    # Pretend the third case failed; export machinery must not care.
    fake_violations = [records[3]]
    exported = _export_violations(grid, fake_violations)
    assert exported == str(tmp_path / "out")
    path = tmp_path / "out" / f"att2-case{records[3].case_index}.json"
    data = json.loads(path.read_text(encoding="utf-8"))
    case = expand_grid(grid)[3]
    assert data["algorithm"] == "att2"
    assert data["workload"] == case.workload
    assert tuple(data["proposals"]) == case.proposals
    assert schedule_from_data(data["schedule"]) == case.schedule


def test_violation_message_would_name_the_seed():
    """The harness's failure report must let a schedule be regenerated."""
    from repro.engine.grids import case_seed, expand_grid
    from repro.sim.random_schedules import random_es_schedule

    grid = _grid_for("att2")
    case = expand_grid(grid)[3]
    seed = case_seed(MASTER_SEED, "random_es", 3)
    assert str(seed) in case.workload
    regenerated = random_es_schedule(grid.n, grid.t, seed, horizon=12)
    assert regenerated == case.schedule
