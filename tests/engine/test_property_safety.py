"""Seeded property-based safety harness: agreement and validity must hold.

For every algorithm in the registry, run ~200 randomly generated,
model-appropriate schedules (ES-legal for ES algorithms, SCS-legal for
SCS-only ones) through the batch engine and assert that agreement and
validity never break.  Termination is deliberately *not* asserted — these
are safety properties, and some generated horizons are too short to
terminate in.

Seeds are derived by the grid layer's :func:`repro.engine.grids.case_seed`
and embedded in each case's workload label, so a violation message names
the exact seeds needed to regenerate the failing schedules with the
matching ``repro.sim.random_schedules`` generator.

``REPRO_PROPERTY_SAMPLES`` cranks the per-algorithm sample count (the
nightly CI lane runs thousands of seeds per algorithm this way); the
default stays small enough for the tier-1 suite.
"""

import os

import pytest

from repro.algorithms.registry import available_algorithms
from repro.engine import GridSpec, family, run_batch


def _samples_from_env(default: int = 200) -> int:
    """The per-algorithm sample count, overridable via environment.

    A malformed or non-positive override is a configuration error worth
    failing loudly on: a nightly lane silently falling back to 200
    samples would report far more confidence than it earned.
    """
    raw = os.environ.get("REPRO_PROPERTY_SAMPLES", "")
    if not raw:
        return default
    try:
        samples = int(raw)
    except ValueError:
        raise RuntimeError(
            f"REPRO_PROPERTY_SAMPLES must be an integer, got {raw!r}"
        )
    if samples < 1:
        raise RuntimeError(
            f"REPRO_PROPERTY_SAMPLES must be >= 1, got {samples}"
        )
    return samples


SAMPLES = _samples_from_env()
MASTER_SEED = 20260730


def _grid_for(name: str) -> GridSpec:
    info = available_algorithms()[name]
    # afp2 and amr_leader require t < n/3; everything else runs the
    # paper's standard (n, t) = (5, 2) majority configuration.
    n, t = (7, 2) if name in ("afp2", "amr_leader") else (5, 2)
    if info.model == "SCS":
        fam = family("random_scs", "random_scs", count=SAMPLES, horizon=8)
    else:
        fam = family("random_es", "random_es", count=SAMPLES, horizon=12)
    return GridSpec(
        n=n,
        t=t,
        algorithms=(name,),
        families=(fam,),
        seed=MASTER_SEED,
        proposal_mode="random",
    )


@pytest.mark.parametrize("name", sorted(available_algorithms()))
def test_safety_never_breaks_on_random_schedules(name):
    # Cranked nightly runs fan out across a process pool; the stock
    # tier-1 count stays serial (pool startup would dominate).  Either
    # backend produces identical records, so the assertion is unchanged.
    from repro.engine import ProcessExecutor, SerialExecutor

    executor = ProcessExecutor() if SAMPLES > 500 else SerialExecutor()
    result = run_batch(_grid_for(name), executor=executor)
    assert result.case_count == SAMPLES
    violations = result.violations()
    assert not violations, (
        f"{name} broke agreement/validity on {len(violations)} of "
        f"{SAMPLES} schedules (master seed {MASTER_SEED}); failing cases "
        f"(label embeds the generator seed): "
        + ", ".join(record.workload for record in violations[:10])
    )


def test_violation_message_would_name_the_seed():
    """The harness's failure report must let a schedule be regenerated."""
    from repro.engine.grids import case_seed, expand_grid
    from repro.sim.random_schedules import random_es_schedule

    grid = _grid_for("att2")
    case = expand_grid(grid)[3]
    seed = case_seed(MASTER_SEED, "random_es", 3)
    assert str(seed) in case.workload
    regenerated = random_es_schedule(grid.n, grid.t, seed, horizon=12)
    assert regenerated == case.schedule
