"""Shard determinism: N shards, any backend, any merge order == whole grid.

The sharding contract: a :class:`ShardSpec` slices an expanded grid into
disjoint index classes, each shard runs wherever (and on whatever
backend) it likes, and :meth:`BatchResult.merge` recombines the exports
into a result byte-identical to executing the grid whole.
"""

import json

import pytest

from repro.engine import (
    BatchResult,
    GridError,
    GridSpec,
    ProcessExecutor,
    SerialExecutor,
    ShardSpec,
    ThreadExecutor,
    expand_grid,
    family,
    run_batch,
)

BACKEND_PARAMS = [
    pytest.param(SerialExecutor(), id="serial"),
    pytest.param(ProcessExecutor(workers=2), id="processes"),
    pytest.param(ThreadExecutor(workers=2), id="threads"),
]


def _grid(seed=13):
    return GridSpec(
        n=5,
        t=2,
        algorithms=("att2", "floodset"),
        families=(
            family("es", "random_es", count=4, horizon=10),
            family("cascade", "cascade", horizon=10),
        ),
        seed=seed,
        proposal_mode="random",
    )


class TestShardSpec:
    def test_parse_roundtrip(self):
        assert ShardSpec.parse("1/3") == ShardSpec(index=1, count=3)
        assert ShardSpec.parse("0/1") == ShardSpec(index=0, count=1)

    @pytest.mark.parametrize("text", ["", "3", "a/b", "1/", "/2", "1/2/3"])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(GridError, match="malformed shard"):
            ShardSpec.parse(text)

    @pytest.mark.parametrize("text", ["2/2", "5/3", "-1/2"])
    def test_parse_rejects_out_of_range_index(self, text):
        with pytest.raises(GridError, match="shard index"):
            ShardSpec.parse(text)

    def test_zero_count_rejected(self):
        with pytest.raises(GridError, match="shard count"):
            ShardSpec(index=0, count=0)

    def test_shards_partition_the_expansion(self):
        cases = expand_grid(_grid())
        selected = [
            case.index
            for i in range(3)
            for case in ShardSpec(i, 3).select(cases)
        ]
        assert sorted(selected) == [case.index for case in cases]
        assert len(selected) == len(set(selected))

    def test_selection_is_round_robin(self):
        cases = expand_grid(_grid())
        shard = ShardSpec(1, 3)
        assert [case.index for case in shard.select(cases)] == [
            case.index for case in cases if case.index % 3 == 1
        ]

    def test_single_shard_is_the_whole_grid(self):
        cases = expand_grid(_grid())
        assert ShardSpec(0, 1).select(cases) == cases

    def test_more_shards_than_cases_yields_empty_shards(self):
        cases = expand_grid(_grid())[:2]
        assert ShardSpec(9, 10).select(cases) == []


class TestShardDeterminism:
    @pytest.mark.parametrize("executor", BACKEND_PARAMS)
    def test_merged_shards_byte_identical_to_whole(self, executor):
        """The acceptance criterion, per backend: N shards merged in
        shuffled order reproduce the whole-grid JSON exactly."""
        grid = _grid()
        whole = run_batch(grid, executor=SerialExecutor())
        shards = [
            run_batch(grid, executor=executor, shard=ShardSpec(i, 3))
            for i in range(3)
        ]
        for order in ((2, 0, 1), (1, 2, 0), (2, 1, 0)):
            merged = BatchResult.merge(shards[i] for i in order)
            assert merged == whole
            assert merged.to_json() == whole.to_json()

    def test_merged_shards_roundtrip_through_json_files(self, tmp_path):
        """End-to-end shape of a distributed run: every shard exports to
        a file, the files are loaded elsewhere and merged."""
        grid = _grid(seed=21)
        whole = run_batch(grid, executor=SerialExecutor())
        paths = []
        for i in range(2):
            result = run_batch(
                grid, executor=SerialExecutor(), shard=ShardSpec(i, 2)
            )
            path = tmp_path / f"shard{i}.json"
            result.save(str(path))
            paths.append(path)
        merged = BatchResult.merge(
            BatchResult.load(str(path)) for path in reversed(paths)
        )
        assert merged.to_json() == whole.to_json()

    def test_shard_records_keep_canonical_indices(self):
        grid = _grid()
        shard = run_batch(
            grid, executor=SerialExecutor(), shard=ShardSpec(1, 3)
        )
        assert [r.case_index for r in shard.records] == [
            case.index for case in ShardSpec(1, 3).select(expand_grid(grid))
        ]

    def test_shards_compose_with_cache(self, tmp_path):
        """A shard warmed through the cache still merges byte-identically."""
        from repro.engine import ResultCache

        grid = _grid()
        whole = run_batch(grid, executor=SerialExecutor())
        cache = ResultCache(tmp_path / "cache")
        cold = [
            run_batch(grid, shard=ShardSpec(i, 2), cache=cache)
            for i in range(2)
        ]
        warm = [
            run_batch(grid, shard=ShardSpec(i, 2), cache=cache)
            for i in range(2)
        ]
        assert cache.hits == grid.case_count
        for shards in (cold, warm):
            merged = BatchResult.merge(reversed(shards))
            assert merged.to_json() == whole.to_json()


class TestGridFileRoundtrip:
    def test_to_data_from_data_lossless(self):
        grid = _grid()
        assert GridSpec.from_data(grid.to_data()) == grid

    def test_json_roundtrip_lossless(self):
        grid = _grid()
        assert GridSpec.from_json(grid.to_json()) == grid
        assert json.loads(grid.to_json()) == grid.to_data()

    def test_save_load_roundtrip(self, tmp_path):
        grid = _grid(seed=33)
        path = tmp_path / "grid.json"
        grid.save(str(path))
        assert GridSpec.load(str(path)) == grid

    def test_loaded_grid_expands_identically(self, tmp_path):
        grid = _grid()
        path = tmp_path / "grid.json"
        grid.save(str(path))
        assert expand_grid(GridSpec.load(str(path))) == expand_grid(grid)

    def test_family_params_survive_roundtrip(self):
        grid = GridSpec(
            n=5, t=2, algorithms=("att2",),
            families=(
                family("k2", "killer", horizon=14, rounds_per_cycle=2),
                family("ap", "async_prefix", horizon=14, k=3),
            ),
        )
        rebuilt = GridSpec.from_data(grid.to_data())
        assert rebuilt == grid
        assert rebuilt.families[0].params == (("rounds_per_cycle", 2),)

    def test_unknown_grid_key_rejected(self):
        data = _grid().to_data()
        data["algorithm"] = ["att2"]  # typo'd key must fail loudly
        with pytest.raises(GridError, match="unknown grid keys"):
            GridSpec.from_data(data)

    def test_unknown_family_key_rejected(self):
        data = _grid().to_data()
        data["families"][0]["horzion"] = 10
        with pytest.raises(GridError, match="unknown family keys"):
            GridSpec.from_data(data)

    def test_missing_required_keys_rejected(self):
        # Every experiment-defining key is required — a file silently
        # defaulting seed or proposal_mode would run a different
        # experiment than its author believes.
        for key in ("families", "seed", "proposal_mode"):
            data = _grid().to_data()
            del data[key]
            with pytest.raises(GridError, match=f"missing '{key}'"):
                GridSpec.from_data(data)

    def test_foreign_version_rejected(self):
        data = _grid().to_data()
        data["version"] = 99
        with pytest.raises(GridError, match="version"):
            GridSpec.from_data(data)

    def test_non_json_file_rejected(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text("{not json")
        with pytest.raises(GridError, match="not valid JSON"):
            GridSpec.load(str(path))

    def test_semantic_validation_still_applies(self):
        data = _grid().to_data()
        data["algorithms"] = ["nope"]
        with pytest.raises(GridError, match="unknown algorithm"):
            GridSpec.from_data(data)

    def test_wrongly_typed_values_rejected_as_grid_errors(self):
        # Type errors must surface as GridError (which the CLI turns
        # into a clean message), never as a raw TypeError traceback.
        for key, value in (("n", "5"), ("t", 2.0), ("seed", True)):
            data = _grid().to_data()
            data[key] = value
            with pytest.raises(GridError, match=f"'{key}' must be"):
                GridSpec.from_data(data)
        data = _grid().to_data()
        data["families"][0]["count"] = "4"
        with pytest.raises(GridError, match="'count' must be"):
            GridSpec.from_data(data)

    def test_string_algorithms_not_iterated_charwise(self):
        data = _grid().to_data()
        data["algorithms"] = "att2"
        with pytest.raises(GridError, match="'algorithms' must be"):
            GridSpec.from_data(data)
