"""Tests for the record-streaming path: sinks, spools and recovery.

The contract under test (:mod:`repro.engine.sink`,
:func:`repro.engine.runner.stream_batch`,
:meth:`repro.engine.results.BatchResult.load_spool`): a sweep streamed
to an append-only JSONL spool rebuilds into a :class:`BatchResult` —
and a ``--json`` export — byte-identical to the in-memory path; a spool
left by a killed driver loads as a clean partial result (torn tail
dropped, everything durable kept); and spools feed the same merge
machinery as exports, overlap rejection included.
"""

import json

import pytest

from repro.engine import (
    BatchResult,
    Case,
    GridSpec,
    JsonlRecordSink,
    RecordSink,
    family,
    read_spool,
    run_batch,
    stream_batch,
)
from repro.model.schedule import Schedule


def _grid(seed=7, count=4):
    return GridSpec(
        n=5,
        t=2,
        algorithms=("att2", "floodset"),
        families=(family("random_es", "random_es", count=count, horizon=10),),
        seed=seed,
        proposal_mode="random",
    )


def _spooled(tmp_path, grid, name="spool.jsonl"):
    path = str(tmp_path / name)
    sink = JsonlRecordSink(path)
    try:
        count = stream_batch(grid, sink=sink)
    finally:
        sink.close()
    return path, count


class TestSpoolRoundTrip:
    def test_rebuilt_result_is_byte_identical(self, tmp_path):
        grid = _grid()
        in_memory = run_batch(grid)
        path, count = _spooled(tmp_path, grid)
        rebuilt = BatchResult.load_spool(path)
        assert count == in_memory.case_count
        assert rebuilt.to_json(indent=2) == in_memory.to_json(indent=2)

    def test_saved_export_is_byte_identical(self, tmp_path):
        grid = _grid()
        mem_path = str(tmp_path / "mem.json")
        spool_export = str(tmp_path / "spooled.json")
        run_batch(grid).save(mem_path)
        path, _count = _spooled(tmp_path, grid)
        BatchResult.load_spool(path).save(spool_export)
        with open(mem_path, "rb") as a, open(spool_export, "rb") as b:
            assert a.read() == b.read()

    def test_load_sniffs_spools_transparently(self, tmp_path):
        # BatchResult.load accepts both formats at one entry point, so
        # `repro merge` can mix shard exports and spools freely.
        grid = _grid()
        path, _count = _spooled(tmp_path, grid)
        assert BatchResult.load(path).records == run_batch(grid).records

    def test_spool_lines_are_canonical_json(self, tmp_path):
        path, count = _spooled(tmp_path, grid := _grid())
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == count == grid.case_count
        for line in lines:
            assert line == json.dumps(json.loads(line), sort_keys=True)

    def test_sink_satisfies_protocol(self, tmp_path):
        sink = JsonlRecordSink(str(tmp_path / "s.jsonl"))
        try:
            assert isinstance(sink, RecordSink)
        finally:
            sink.close()


class TestMergeAfterStream:
    def test_sharded_spools_merge_to_whole_grid(self, tmp_path):
        from repro.engine import ShardSpec

        grid = _grid()
        paths = []
        for index in range(2):
            path = str(tmp_path / f"shard{index}.jsonl")
            sink = JsonlRecordSink(path)
            try:
                stream_batch(grid, sink=sink,
                             shard=ShardSpec(index=index, count=2))
            finally:
                sink.close()
            paths.append(path)
        merged = BatchResult.merge(
            [BatchResult.load(path) for path in reversed(paths)]
        )
        assert merged.to_json() == run_batch(grid).to_json()

    def test_overlapping_spools_are_rejected(self, tmp_path):
        grid = _grid()
        first, _ = _spooled(tmp_path, grid, "a.jsonl")
        second, _ = _spooled(tmp_path, grid, "b.jsonl")
        with pytest.raises(ValueError, match="shards overlap"):
            BatchResult.merge(
                [BatchResult.load(first), BatchResult.load(second)]
            )

    def test_double_streamed_spool_is_rejected_at_load(self, tmp_path):
        # Appending one grid to a spool twice duplicates every case
        # index; the spool must refuse to load rather than double-count.
        path, _ = _spooled(tmp_path, _grid())
        sink = JsonlRecordSink(path)
        try:
            stream_batch(_grid(), sink=sink)
        finally:
            sink.close()
        with pytest.raises(ValueError, match="shards overlap"):
            BatchResult.load_spool(path)


class TestKilledDriverRecovery:
    def test_torn_tail_loads_as_clean_partial(self, tmp_path):
        # A driver killed mid-write leaves a truncated final line; the
        # spool must recover every complete record and drop the tail.
        grid = _grid()
        path, count = _spooled(tmp_path, grid)
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        torn = str(tmp_path / "torn.jsonl")
        with open(torn, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[:-1]) + "\n")
            handle.write(lines[-1][: len(lines[-1]) // 2])
        partial = BatchResult.load_spool(torn)
        assert partial.case_count == count - 1
        whole = run_batch(grid)
        assert partial.records == whole.records[:-1]

    def test_corruption_before_the_tail_is_an_error(self, tmp_path):
        # Only the *final* line may be torn — a malformed line with
        # records after it means real corruption, not a kill.
        path, _ = _spooled(tmp_path, _grid())
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        corrupt = str(tmp_path / "corrupt.jsonl")
        with open(corrupt, "w", encoding="utf-8") as handle:
            handle.write(lines[0][:20] + "\n")
            handle.write("\n".join(lines[1:]) + "\n")
        with pytest.raises(ValueError, match=r":1: malformed"):
            list(read_spool(corrupt))

    def test_empty_spool_is_an_empty_result(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert BatchResult.load_spool(str(path)).case_count == 0


class TestStreamBatchBoundsMemory:
    def test_run_cases_collect_false_returns_nothing(self, tmp_path):
        from repro.engine import run_cases

        case = Case(
            index=0,
            algorithm="att2",
            workload="ff",
            schedule=Schedule.failure_free(3, 1, 8),
            proposals=(0, 1, 2),
        )
        sink = JsonlRecordSink(str(tmp_path / "one.jsonl"))
        try:
            assert run_cases([case], sink=sink, collect=False) == []
        finally:
            sink.close()
        (record,) = read_spool(str(tmp_path / "one.jsonl"))
        assert record.algorithm == "att2"

    def test_stream_batch_counts_and_appends_everything(self, tmp_path):
        grid = _grid(count=3)
        seen = []
        path = str(tmp_path / "counted.jsonl")
        sink = JsonlRecordSink(path)
        try:
            count = stream_batch(
                grid, sink=sink,
                on_record=lambda index, record: seen.append(index),
            )
        finally:
            sink.close()
        assert count == grid.case_count == sink.count
        assert sorted(seen) == list(range(grid.case_count))
        assert BatchResult.load_spool(path).case_count == grid.case_count

    def test_orchestrate_streams_accepted_shards(self, tmp_path):
        # The orchestrator appends each shard's records as the shard
        # merges; by completion the spool equals the merged result.
        from repro.engine.orchestrator import local_workers, orchestrate

        grid = _grid()

        class GridBackend:
            async def run_shard(self, worker, shard, attempt):
                return run_batch(grid, shard=shard)

            async def warm(self, worker):
                pass

            async def probe(self, worker):
                return True

        path = str(tmp_path / "orch.jsonl")
        sink = JsonlRecordSink(path)
        try:
            report = orchestrate(
                local_workers(2), GridBackend(), 3,
                backoff=0.01, heartbeat=None, sink=sink,
            )
        finally:
            sink.close()
        assert report.complete
        assert (
            BatchResult.load_spool(path).to_json()
            == report.result.to_json()
        )
