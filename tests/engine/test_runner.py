"""Tests for the batch runner and result aggregation."""

import json

import pytest

from repro import ATt2, Schedule
from repro.analysis.sweep import SweepRecord
from repro.engine import (
    BatchResult,
    Case,
    GridError,
    GridSpec,
    ProcessExecutor,
    family,
    resolve_workers,
    run_batch,
    run_cases,
)


def _case(index, algorithm="att2", workload="ff", n=3, t=1, horizon=8,
          factory=None):
    return Case(
        index=index,
        algorithm=algorithm,
        workload=workload,
        schedule=Schedule.failure_free(n, t, horizon),
        proposals=tuple(range(n)),
        factory=factory,
    )


class TestRunCases:
    def test_empty(self):
        assert run_cases([]) == []

    def test_serial_records_in_index_order(self):
        records = run_cases([_case(1), _case(0, algorithm="floodset")])
        assert [r.algorithm for r in records] == ["floodset", "att2"]
        assert records[1].global_round == 3  # t + 2
        assert records[0].global_round == 2  # t + 1

    def test_explicit_factory_overrides_registry(self):
        # A deliberately wrong registry name proves the factory is used.
        case = _case(0, algorithm="not_in_registry",
                     factory=ATt2.factory())
        (record,) = run_cases([case])
        assert record.algorithm == "not_in_registry"
        assert record.global_round == 3

    def test_unpicklable_factory_forces_serial_path(self):
        # Lambdas cannot cross a process boundary; succeeding under a
        # 4-worker process pool proves the backend fell back to serial.
        cases = [
            _case(i, algorithm="custom",
                  factory=lambda pid, n, t, proposal:
                      ATt2.factory()(pid, n, t, proposal))
            for i in range(3)
        ]
        records = run_cases(cases, executor=ProcessExecutor(4))
        assert [r.global_round for r in records] == [3, 3, 3]

    def test_on_record_streams_every_case(self):
        seen = []
        run_cases([_case(i) for i in range(5)],
                  on_record=lambda index, record: seen.append(index))
        assert sorted(seen) == list(range(5))

    def test_record_carries_horizon(self):
        (record,) = run_cases([_case(0, horizon=9)])
        assert record.horizon == 9

    def test_record_carries_case_index(self):
        records = run_cases([_case(3), _case(7)])
        assert [r.case_index for r in records] == [3, 7]

    def test_duplicate_indices_rejected(self):
        with pytest.raises(GridError, match="duplicate case indices"):
            run_cases([_case(0), _case(1), _case(0)])

    def test_accepts_one_shot_iterators(self):
        # run_cases iterates twice (validation, then partition/execute);
        # a generator argument must not silently yield an empty result.
        records = run_cases(_case(i) for i in range(3))
        assert len(records) == 3


class TestResolveWorkers:
    def test_auto_sizes_and_clamps(self):
        assert resolve_workers(None, 100) >= 1
        assert resolve_workers(0, 100) >= 1
        assert resolve_workers(16, 3) == 3
        assert resolve_workers(4, 0) == 1
        assert resolve_workers(1, 100) == 1


class TestRunBatch:
    def test_accepts_grid_or_cases(self):
        grid = GridSpec(
            n=3, t=1, algorithms=("att2", "floodset"),
            families=(family("ff", "failure_free", horizon=8),
                      family("es", "random_es", count=2, horizon=10)),
        )
        from repro.engine import expand_grid

        by_grid = run_batch(grid)
        by_cases = run_batch(expand_grid(grid))
        assert by_grid == by_cases
        assert by_grid.case_count == 6

    def test_parallel_pool_used_for_plain_cases(self):
        result = run_batch([_case(i) for i in range(8)],
                           executor=ProcessExecutor(2))
        assert result.case_count == 8
        assert all(r.global_round == 3 for r in result.records)


class TestBatchResult:
    def _result(self):
        return run_batch([
            _case(0, workload="ff8"),
            _case(1, workload="ff6", horizon=6),
            _case(2, algorithm="floodset", workload="ff8"),
        ])

    def test_algorithms_in_first_appearance_order(self):
        assert self._result().algorithms == ("att2", "floodset")

    def test_find(self):
        result = self._result()
        assert result.find("floodset", "ff8").global_round == 2
        with pytest.raises(KeyError):
            result.find("att2", "nope")

    def test_summary_counts(self):
        summary = self._result().summary("att2")
        assert summary.cases == 2
        assert summary.decided == 2
        assert summary.violations == 0
        assert summary.worst_round == 3
        assert summary.messages > 0

    def test_worst_case_counts_undecided_as_horizon_plus_one(self):
        decided = SweepRecord(
            algorithm="a", workload="w1", n=3, t=1, crashes=0, sync_from=1,
            global_round=3, first_round=3, deciders=3,
            agreement_ok=True, validity_ok=True, messages=9, horizon=8,
        )
        undecided = SweepRecord(
            algorithm="a", workload="w2", n=3, t=1, crashes=0, sync_from=1,
            global_round=None, first_round=None, deciders=0,
            agreement_ok=True, validity_ok=True, messages=9, horizon=8,
        )
        result = BatchResult(records=(decided, undecided))
        assert result.worst_case("a") == (9, "w2")

    def test_worst_case_tie_keeps_first_witness(self):
        result = self._result()
        worst, witness = result.worst_case("att2")
        assert (worst, witness) == (3, "ff8")

    def test_violations_empty_on_safe_batch(self):
        assert self._result().violations() == ()

    def test_json_roundtrip(self):
        result = self._result()
        data = json.loads(result.to_json())
        rebuilt = BatchResult.from_data(data)
        assert rebuilt == result
        assert rebuilt.to_json() == result.to_json()

    def test_save(self, tmp_path):
        path = tmp_path / "batch.json"
        result = self._result()
        result.save(str(path))
        assert BatchResult.from_data(json.loads(path.read_text())) == result

    def test_from_data_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="version"):
            BatchResult.from_data({"version": 99, "records": []})

    def test_from_data_rejects_pre_case_index_archives(self):
        # Version 1 records lack case_index; the guard must fail cleanly
        # rather than half-loading an old archive.
        with pytest.raises(ValueError, match="version"):
            BatchResult.from_data({"version": 1, "records": []})

    def test_merge(self):
        a = run_batch([_case(0, workload="w0"), _case(1, workload="w1")])
        b = run_batch([_case(2, workload="w2")])
        merged = BatchResult.merge([b, a])
        assert merged.case_count == a.case_count + b.case_count
        assert merged.records[:2] == a.records

    def test_merge_rejects_overlapping_indexed_shards(self):
        # Loading the same shard twice (or overlapping slices) must fail
        # loudly: silent concatenation corrupts every aggregate.
        a = self._result()
        with pytest.raises(ValueError, match="shards overlap"):
            BatchResult.merge([a, a])

    def test_merge_shuffled_shards_is_canonical(self):
        # The determinism contract: per-shard results recombine into the
        # same stream regardless of shard arrival order, because records
        # carry their originating case index.
        cases = [_case(i, workload=f"w{i}") for i in range(6)]
        full = run_batch(cases)
        shards = [run_batch([case]) for case in cases]
        for order in ((4, 0, 5, 2, 1, 3), (5, 4, 3, 2, 1, 0)):
            merged = BatchResult.merge(shards[i] for i in order)
            assert merged == full
            assert merged.to_json() == full.to_json()

    def test_merge_without_indices_keeps_concatenation_order(self):
        def record(workload):
            return SweepRecord(
                algorithm="a", workload=workload, n=3, t=1, crashes=0,
                sync_from=1, global_round=3, first_round=3, deciders=3,
                agreement_ok=True, validity_ok=True, messages=9, horizon=8,
            )

        a = BatchResult(records=(record("w1"),))
        b = BatchResult(records=(record("w0"),))
        merged = BatchResult.merge([a, b])
        assert [r.workload for r in merged.records] == ["w1", "w0"]


class TestCasesFrom:
    def test_builds_indexed_cases(self):
        from repro.engine import cases_from

        schedule = Schedule.failure_free(3, 1, 8)
        cases = cases_from(
            (name, "ff", schedule, range(3))
            for name in ("att2", "floodset")
        )
        assert [c.index for c in cases] == [0, 1]
        assert [c.algorithm for c in cases] == ["att2", "floodset"]
        assert all(c.proposals == (0, 1, 2) for c in cases)
        assert all(c.factory is None for c in cases)


class TestCorrectUndecided:
    def test_zero_when_every_correct_process_decides(self):
        (record,) = run_cases([_case(0)])
        assert record.correct_undecided == 0

    def test_counts_correct_processes_only(self):
        # Horizon 1 is far too short for att2 (needs t + 2 = 3 rounds),
        # so all three correct processes stay undecided.
        (record,) = run_cases([_case(0, horizon=1)])
        assert record.global_round is None
        assert record.correct_undecided == 3


class TestTraceModes:
    """``trace=`` threads through the runners without touching the bytes."""

    def _grid(self):
        return GridSpec(
            n=5, t=2, algorithms=("att2", "hurfin_raynal"),
            families=(
                family("es", "random_es", count=4, horizon=12),
                family("killer2", "killer", horizon=12,
                       rounds_per_cycle=2),
            ),
            seed=3, proposal_mode="random",
        )

    def test_records_identical_across_trace_modes(self):
        grid = self._grid()
        full = run_batch(grid, trace="full")
        lean = run_batch(grid, trace="lean")
        assert full == lean
        assert full.to_json() == lean.to_json()

    def test_cases_default_to_lean(self):
        assert _case(0).trace == "lean"

    def test_trace_mode_excluded_from_case_identity(self):
        from dataclasses import replace

        case = _case(0)
        assert replace(case, trace="full") == case

    def test_runner_override_stamps_every_case(self):
        from repro.engine import SerialExecutor, execute_case

        seen = []

        class Spy(SerialExecutor):
            def map_cases(self, cases):
                for case in cases:
                    seen.append(case.trace)
                    yield execute_case(case)

        run_cases([_case(0), _case(1, algorithm="floodset")],
                  executor=Spy(), trace="full")
        assert seen == ["full", "full"]

    def test_invalid_trace_mode_surfaces_from_kernel(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError, match="unknown trace mode"):
            run_cases([_case(0)], trace="chatty")

    def test_process_pool_runs_lean_cases(self):
        # Lean mode must survive pickling to workers (the compiled-plan
        # and digest memos are stripped from schedule pickles).
        grid = self._grid()
        serial = run_batch(grid, trace="lean")
        pooled = run_batch(
            grid, executor=ProcessExecutor(workers=2), trace="lean"
        )
        assert serial == pooled

    def test_stock_grid_records_match_the_prerefactor_pipeline(self):
        """Acceptance: engine output (compiled kernel, lean traces) equals
        the pre-refactor pipeline (reference kernel, full traces, uncached
        synchrony scan) on a stock grid, record for record."""
        from dataclasses import replace

        from repro.algorithms.base import make_automata
        from repro.algorithms.registry import get_factory
        from repro.analysis.metrics import check_agreement, check_validity
        from repro.engine import default_sweep_grid, expand_grid
        from repro.sim.kernel import execute_reference

        grid = default_sweep_grid(5, 2, cases_per_family=2, seed=11)
        engine_records = run_batch(grid, trace="lean").records

        def reference_record(case):
            schedule = case.schedule
            trace = execute_reference(
                make_automata(
                    get_factory(case.algorithm), schedule.n, schedule.t,
                    list(case.proposals),
                ),
                schedule,
            )
            first_bad = 0
            for k in range(1, schedule.horizon + 1):
                if not schedule.is_synchronous_round(k):
                    first_bad = k
            return replace(
                SweepRecord(
                    algorithm=case.algorithm,
                    workload=case.workload,
                    n=schedule.n,
                    t=schedule.t,
                    crashes=len(schedule.crashes),
                    sync_from=first_bad + 1,
                    global_round=trace.global_decision_round(),
                    first_round=trace.first_decision_round(),
                    deciders=len(trace.decisions),
                    agreement_ok=not check_agreement(trace),
                    validity_ok=not check_validity(trace),
                    messages=trace.message_count(),
                    horizon=schedule.horizon,
                    correct_undecided=sum(
                        1 for pid in schedule.correct
                        if pid not in trace.decisions
                    ),
                ),
                case_index=case.index,
            )

        expected = tuple(
            reference_record(case) for case in expand_grid(grid)
        )
        assert engine_records == expected
