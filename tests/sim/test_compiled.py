"""Compiled-kernel equivalence: plan structure, trace parity, lean metrics.

The compiled kernel (:mod:`repro.sim.compiled` + the rewritten
:func:`repro.sim.kernel.execute`) is only allowed to be *faster* than the
original query-at-a-time kernel — never observably different.  These
tests pin that down three ways:

* seeded random schedules (every generator in
  :mod:`repro.sim.random_schedules`) across every registered algorithm
  must produce **identical full traces** on both kernels;
* the lean trace mode must yield identical decisions and identical
  metrics (``summarize``, consensus checks, message counts);
* the compiled plan itself must be canonical (sorted inboxes, memoized
  per schedule) and must never leak into pickles.
"""

import pickle

import pytest

from repro.algorithms.base import make_automata
from repro.algorithms.registry import available_algorithms, get_factory
from repro.analysis.metrics import check_consensus, summarize
from repro.errors import SimulationError
from repro.model.schedule import Schedule, ScheduleBuilder
from repro.sim.compiled import compile_schedule
from repro.sim.kernel import execute, execute_reference, run_algorithm
from repro.sim.random_schedules import (
    random_es_schedule,
    random_proposals,
    random_scs_schedule,
    random_serial_schedule,
)

SEEDS = range(25)


def _system_for(name: str) -> tuple[int, int]:
    # afp2 and amr_leader require t < n/3; everything else runs the
    # paper's standard (n, t) = (5, 2) majority configuration.
    return (7, 2) if name in ("afp2", "amr_leader") else (5, 2)


def _generators_for(name: str):
    info = available_algorithms()[name]
    if info.model == "SCS":
        return (random_scs_schedule, random_serial_schedule)
    return (random_es_schedule, random_scs_schedule, random_serial_schedule)


class TestCompiledMatchesReference:
    @pytest.mark.parametrize("name", sorted(available_algorithms()))
    def test_full_traces_identical_on_random_schedules(self, name):
        n, t = _system_for(name)
        for generator in _generators_for(name):
            for seed in SEEDS:
                schedule = generator(n, t, seed)
                proposals = random_proposals(n, seed)
                factory = get_factory(name)
                reference = execute_reference(
                    make_automata(factory, n, t, proposals), schedule
                )
                compiled = execute(
                    make_automata(factory, n, t, proposals), schedule,
                    trace="full",
                )
                assert compiled == reference, (
                    f"{name} diverged on {generator.__name__}(seed={seed})"
                )

    def test_max_rounds_and_quiescence_parity(self):
        schedule = Schedule.failure_free(5, 2, 40)
        factory = get_factory("att2")
        for kwargs in (
            {"max_rounds": 3},
            {"max_rounds": 7},
            {"stop_when_quiescent": False},
        ):
            reference = execute_reference(
                make_automata(factory, 5, 2, [1, 0, 1, 0, 1]), schedule,
                **kwargs,
            )
            compiled = execute(
                make_automata(factory, 5, 2, [1, 0, 1, 0, 1]), schedule,
                **kwargs,
            )
            assert compiled == reference

    def test_out_of_horizon_delivery_never_delivered(self):
        # Schedules built directly (bypassing the builder's validation)
        # may carry deliveries beyond the horizon; both kernels must
        # simply never deliver them.
        schedule = Schedule(
            n=3, t=1, horizon=4, delays={(0, 1, 2): 9}
        )
        factory = get_factory("att2")
        reference = execute_reference(
            make_automata(factory, 3, 1, [0, 1, 1]), schedule
        )
        compiled = execute(
            make_automata(factory, 3, 1, [0, 1, 1]), schedule, trace="full"
        )
        assert compiled == reference


class TestPhase1PlaneDispatch:
    """The batched Phase-1 plane: when it engages, and that engaging it
    never changes a trace (per-algorithm byte-identity for the batched
    kernel path)."""

    PLANE_ALGORITHMS = ("att2", "att2_optimized", "floodset_ws",
                        "adiamond_s")

    @pytest.mark.parametrize("name", PLANE_ALGORITHMS)
    def test_plane_engages_and_matches_reference(self, name):
        factory = get_factory(name)
        for seed in SEEDS[:10]:
            schedule = random_es_schedule(5, 2, seed)
            proposals = random_proposals(5, seed)
            automata = make_automata(factory, 5, 2, proposals)
            compiled = execute(automata, schedule, trace="full")
            assert all(a._plane is not None for a in automata), name
            reference = execute_reference(
                make_automata(factory, 5, 2, proposals), schedule
            )
            assert compiled == reference, f"{name} diverged on seed {seed}"

    @pytest.mark.parametrize("name", ["chandra_toueg", "hurfin_raynal"])
    def test_non_declaring_algorithms_get_no_plane(self, name):
        automata = make_automata(
            get_factory(name), 5, 2, [3, 1, 4, 1, 5]
        )
        execute(automata, Schedule.failure_free(5, 2, 12))
        assert all(
            type(a).phase1_plane_protocol is None for a in automata
        )

    def test_opted_out_run_is_byte_identical(self):
        from repro.core.att2 import ATt2

        class OptOut(ATt2):
            phase1_plane_protocol = None

        for seed in SEEDS[:10]:
            schedule = random_es_schedule(5, 2, seed)
            proposals = random_proposals(5, seed)
            batched_automata = make_automata(ATt2.factory(), 5, 2, proposals)
            batched = execute(batched_automata, schedule, trace="full")
            oracle_automata = make_automata(OptOut.factory(), 5, 2, proposals)
            oracle = execute(oracle_automata, schedule, trace="full")
            assert all(a._plane is None for a in oracle_automata)
            assert batched == oracle, f"plane changed the trace (seed {seed})"

    def test_mixed_run_disables_plane_and_stays_identical(self):
        from repro.core.att2 import ATt2

        class OptOut(ATt2):
            phase1_plane_protocol = None

        schedule = random_es_schedule(5, 2, 7)
        proposals = random_proposals(5, 7)
        mixed = [
            (OptOut if pid == 2 else ATt2)(pid, 5, 2, proposals[pid])
            for pid in range(5)
        ]
        compiled = execute(mixed, schedule, trace="full")
        assert all(a._plane is None for a in mixed)
        reference = execute_reference(
            make_automata(ATt2.factory(), 5, 2, proposals), schedule
        )
        assert compiled == reference


class TestLeanTraceMetrics:
    @pytest.mark.parametrize(
        "name", ["att2", "att2_optimized", "adiamond_s", "hurfin_raynal",
                 "chandra_toueg"]
    )
    def test_lean_and_full_metrics_identical(self, name):
        factory = get_factory(name)
        for seed in SEEDS:
            schedule = random_es_schedule(5, 2, seed, horizon=14)
            proposals = random_proposals(5, seed)
            full = run_algorithm(factory, schedule, proposals, trace="full")
            lean = run_algorithm(factory, schedule, proposals, trace="lean")
            assert dict(lean.decisions) == dict(full.decisions)
            assert lean.rounds_executed == full.rounds_executed
            assert lean.message_count() == full.message_count()
            assert summarize(lean) == summarize(full)
            assert check_consensus(
                lean, expect_termination=False
            ) == check_consensus(full, expect_termination=False)

    def test_lean_halt_rounds_match_full_trace(self):
        factory = get_factory("att2")
        schedule = Schedule.synchronous(5, 2, 12, crashes={0: (1, [1])})
        full = run_algorithm(factory, schedule, [3, 1, 4, 1, 5])
        lean = run_algorithm(
            factory, schedule, [3, 1, 4, 1, 5], trace="lean"
        )
        halted_full = {
            pid: record.round
            for record in full.rounds
            for pid in record.halted
        }
        assert dict(lean.halted_rounds) == halted_full

    def test_lean_trace_surface(self):
        factory = get_factory("att2")
        schedule = Schedule.failure_free(3, 1, 10)
        lean = run_algorithm(factory, schedule, [2, 0, 2], trace="lean")
        assert lean.n == 3 and lean.t == 1
        assert lean.deciders() == frozenset({0, 1, 2})
        assert lean.decided_values() == {lean.decision_value(0)}
        assert lean.decision_round(0) == lean.first_decision_round()
        assert lean.alive_at_end() == frozenset({0, 1, 2})
        assert lean.crash_rounds() == {}
        assert "decisions" in lean.describe()

    def test_unknown_trace_mode_rejected(self):
        factory = get_factory("att2")
        schedule = Schedule.failure_free(3, 1, 4)
        with pytest.raises(SimulationError, match="unknown trace mode"):
            run_algorithm(factory, schedule, [0, 1, 2], trace="verbose")


class TestCompiledPlan:
    def test_plan_is_memoized_per_schedule(self):
        schedule = random_es_schedule(5, 2, 7)
        assert compile_schedule(schedule) is compile_schedule(schedule)

    def test_inboxes_are_canonically_sorted(self):
        schedule = random_es_schedule(6, 2, 11, horizon=10)
        plan = compile_schedule(schedule)
        for k in range(1, plan.horizon + 1):
            for receiver in range(plan.n):
                entries = plan.inboxes[k][receiver]
                assert list(entries) == sorted(entries)

    def test_plan_matches_schedule_queries(self):
        schedule = random_es_schedule(5, 2, 13, horizon=10)
        plan = compile_schedule(schedule)
        for k in range(1, schedule.horizon + 1):
            assert plan.senders[k] == tuple(
                pid for pid in range(5) if schedule.sends_in_round(pid, k)
            )
            assert plan.completers[k] == tuple(
                pid for pid in range(5) if schedule.completes_round(pid, k)
            )
            assert plan.crashed[k] == schedule.crashed_in(k)
            for receiver in range(5):
                if not schedule.completes_round(receiver, k):
                    continue
                assert set(plan.inboxes[k][receiver]) == {
                    (sent, sender)
                    for sender, sent in schedule.deliveries_to(receiver, k)
                }

    def test_compile_seeds_the_sync_from_memo(self):
        schedule = random_es_schedule(5, 2, 17, horizon=10)
        expected = Schedule(
            n=schedule.n, t=schedule.t, horizon=schedule.horizon,
            crashes=dict(schedule.crashes), delays=dict(schedule.delays),
            losses=schedule.losses,
        ).sync_from()  # computed the slow way on an uncompiled twin
        compile_schedule(schedule)
        assert schedule.__dict__.get("_sync_from_cache") == expected
        assert schedule.sync_from() == expected

    def test_caches_never_pickled(self):
        schedule = random_es_schedule(5, 2, 19)
        compile_schedule(schedule)
        schedule.digest()
        schedule.sync_from()
        clone = pickle.loads(pickle.dumps(schedule))
        assert clone == schedule
        assert "_compiled_cache" not in clone.__dict__
        assert "_digest_cache" not in clone.__dict__
        assert "_sync_from_cache" not in clone.__dict__
        # and the clone still works end to end
        factory = get_factory("att2")
        assert run_algorithm(
            factory, clone, [0, 1, 0, 1, 1], trace="lean"
        ).decisions == run_algorithm(
            factory, schedule, [0, 1, 0, 1, 1], trace="lean"
        ).decisions

    def test_delayed_delivery_map_matches_linear_scan(self):
        builder = ScheduleBuilder(5, 2, 10)
        builder.crash(0, 2, delivered_to=[1], delayed={2: 4, 3: 6})
        schedule = builder.build()
        spec = schedule.crashes[0]
        for receiver in range(5):
            expected = next(
                (d for r, d in spec.delayed if r == receiver), None
            )
            assert spec.delayed_delivery(receiver) == expected
        # survives pickling (the lazy map is rebuilt on demand)
        clone = pickle.loads(pickle.dumps(schedule))
        assert clone.crashes[0].delayed_delivery(2) == 4


class TestRecordEquivalencePerAlgorithm:
    """Acceptance: every registered algorithm's sweep records are
    byte-identical across the view kernel (both trace modes) and the
    preserved reference pipeline, over seeded random schedules."""

    @staticmethod
    def _reference_record(name, workload, schedule, proposals):
        from repro.analysis.metrics import check_agreement, check_validity
        from repro.analysis.sweep import SweepRecord

        factory = get_factory(name)
        trace = execute_reference(
            make_automata(factory, schedule.n, schedule.t, proposals),
            schedule,
        )
        first_bad = 0
        for k in range(1, schedule.horizon + 1):
            if not schedule.is_synchronous_round(k):
                first_bad = k
        return SweepRecord(
            algorithm=name,
            workload=workload,
            n=schedule.n,
            t=schedule.t,
            crashes=len(schedule.crashes),
            sync_from=first_bad + 1,
            global_round=trace.global_decision_round(),
            first_round=trace.first_decision_round(),
            deciders=len(trace.decisions),
            agreement_ok=not check_agreement(trace),
            validity_ok=not check_validity(trace),
            messages=trace.message_count(),
            horizon=schedule.horizon,
            correct_undecided=sum(
                1 for pid in schedule.correct if pid not in trace.decisions
            ),
        )

    @pytest.mark.parametrize("name", sorted(available_algorithms()))
    def test_lean_and_full_records_match_reference_pipeline(self, name):
        from repro.analysis.sweep import run_case

        n, t = _system_for(name)
        factory = get_factory(name)
        for generator in _generators_for(name):
            for seed in range(8):
                schedule = generator(n, t, seed)
                proposals = random_proposals(n, seed)
                expected = self._reference_record(
                    name, generator.__name__, schedule, proposals
                )
                for mode in ("full", "lean"):
                    record, _trace = run_case(
                        name, factory, generator.__name__, schedule,
                        proposals, trace_mode=mode,
                    )
                    assert record == expected, (
                        f"{name} {mode} record diverged on "
                        f"{generator.__name__}(seed={seed})"
                    )
