"""Tests for schedule serialization and trace replay."""

import json

import pytest

from repro import ATt2, Schedule
from repro.errors import SimulationError
from repro.model.schedule import ScheduleBuilder
from repro.sim.kernel import run_algorithm
from repro.sim.random_schedules import random_es_schedule
from repro.sim.replay import (
    replay,
    roundtrip,
    schedule_from_data,
    schedule_to_data,
)


def rich_schedule():
    builder = ScheduleBuilder(5, 2, 14)
    builder.crash(0, 2, delivered_to=(1,), delayed={2: 4})
    builder.crash(4, 5, delivered_to=(1, 2, 3))
    builder.delay(1, 2, 1, 3)
    builder.lose(0, 3, 1)
    return builder.build()


class TestSerialization:
    def test_roundtrip_identity(self):
        schedule = rich_schedule()
        assert roundtrip(schedule) == schedule

    def test_json_safe(self):
        data = schedule_to_data(rich_schedule())
        rebuilt = schedule_from_data(json.loads(json.dumps(data)))
        assert rebuilt == rich_schedule()

    @pytest.mark.parametrize("seed", range(15))
    def test_random_schedules_roundtrip(self, seed):
        schedule = random_es_schedule(6, 2, seed, horizon=12)
        assert roundtrip(schedule) == schedule

    def test_version_checked(self):
        data = schedule_to_data(rich_schedule())
        data["version"] = 99
        with pytest.raises(SimulationError, match="version"):
            schedule_from_data(data)

    def test_failure_free_minimal(self):
        schedule = Schedule.failure_free(3, 1, 5)
        data = schedule_to_data(schedule)
        assert data["crashes"] == []
        assert data["delays"] == []
        assert schedule_from_data(data) == schedule


class TestReplay:
    def test_replay_matches(self):
        schedule = rich_schedule()
        trace = run_algorithm(ATt2.factory(), schedule, [3, 1, 4, 1, 5])
        fresh = replay(trace, ATt2.factory())
        assert dict(fresh.decisions) == dict(trace.decisions)

    def test_replay_detects_wrong_algorithm(self):
        from repro import HurfinRaynalES

        schedule = rich_schedule()
        trace = run_algorithm(ATt2.factory(), schedule, [3, 1, 4, 1, 5])
        with pytest.raises(SimulationError, match="diverged"):
            replay(trace, HurfinRaynalES)


class TestLeanTraceRejected:
    def test_replay_refuses_lean_traces(self):
        trace = run_algorithm(
            ATt2, Schedule.failure_free(5, 2, 8), [3, 1, 4, 1, 5],
            trace="lean",
        )
        with pytest.raises(SimulationError, match="requires a full trace"):
            replay(trace, ATt2)
