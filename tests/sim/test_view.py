"""Round-view delivery: bucket structure, sharing, and the legacy shim.

The RoundView contract the ported algorithms rely on: current-round
items pre-partitioned by tag in canonical order, delayed triples
separate, DECIDE payloads collected across both in message order, and
lazily materialized flat messages identical to what the old kernel
delivered.  Plus the two compatibility guarantees: an automaton that
only implements the legacy ``deliver`` runs unchanged through the
base-class shim, and the compiled plan's sharing groups never mix
receivers with different delivery plans.
"""

import pytest

from repro.algorithms.base import Automaton, make_automata
from repro.algorithms.common import ConsensusAutomaton, decide_payload
from repro.algorithms.registry import get_factory
from repro.errors import AlgorithmError
from repro.model.messages import Message
from repro.model.schedule import Schedule, ScheduleBuilder
from repro.sim.compiled import compile_schedule
from repro.sim.kernel import execute, execute_reference
from repro.sim.random_schedules import random_es_schedule
from repro.sim.view import RoundView, all_pids


def entry(sent_round, sender, payload):
    return (sent_round, sender, payload)


def view_of(*entries, round=2, receiver=0, n=4):
    return RoundView.from_entries(round, receiver, n, entries)


class TestBucketStructure:
    def test_current_and_delayed_split(self):
        view = view_of(
            entry(1, 2, ("A", 1)),
            entry(2, 0, ("A", 2)),
            entry(2, 1, ("B", 3)),
        )
        assert view.delayed == ((1, 2, ("A", 1)),)
        assert view.current == ((0, ("A", 2)), (1, ("B", 3)))
        assert view.size == 3

    def test_tag_partition(self):
        view = view_of(
            entry(2, 0, ("A", 2)),
            entry(2, 1, ("B", 3)),
            entry(2, 2, ("A", 9)),
        )
        assert view.tagged("A") == ((0, ("A", 2)), (2, ("A", 9)))
        assert view.tagged("B") == ((1, ("B", 3)),)
        assert view.tagged("MISSING") == ()

    def test_non_tuple_payload_tags_as_itself(self):
        view = view_of(entry(2, 1, 42))
        assert view.tagged(42) == ((1, 42),)

    def test_sender_sets(self):
        view = view_of(
            entry(1, 3, ("OLD",)),  # delayed: not a current sender
            entry(2, 0, ("A",)),
            entry(2, 2, ("A",)),
        )
        assert view.current_senders == frozenset({0, 2})
        assert view.absent == frozenset({1, 3})
        assert view.all_pids == frozenset(range(4))

    def test_decides_collected_in_canonical_order(self):
        view = view_of(
            entry(1, 1, decide_payload(7)),
            entry(2, 0, ("A",)),
            entry(2, 2, decide_payload(9)),
        )
        assert view.decides == (decide_payload(7), decide_payload(9))

    def test_bare_decide_string_is_not_a_decide(self):
        # is_decide requires a tuple payload; a scalar "DECIDE" payload
        # tags as itself but must not enter the decide protocol.
        view = view_of(entry(2, 1, "DECIDE"))
        assert view.decides == ()
        assert view.tagged("DECIDE") == ((1, "DECIDE"),)

    def test_messages_materialize_canonically(self):
        view = view_of(
            entry(1, 2, ("OLD",)),
            entry(2, 0, ("A",)),
            entry(2, 1, ("B",)),
            receiver=3,
        )
        messages = view.messages
        assert messages == (
            Message(sent_round=1, sender=2, receiver=3, payload=("OLD",)),
            Message(sent_round=2, sender=0, receiver=3, payload=("A",)),
            Message(sent_round=2, sender=1, receiver=3, payload=("B",)),
        )
        assert view.messages is messages  # cached

    def test_from_messages_round_trips(self):
        messages = (
            Message(sent_round=1, sender=2, receiver=0, payload=("OLD",)),
            Message(sent_round=2, sender=1, receiver=0, payload=("A", 5)),
        )
        view = RoundView.from_messages(2, 0, 3, messages)
        assert view.messages == messages
        assert view.delayed == ((1, 2, ("OLD",)),)
        assert view.tagged("A") == ((1, ("A", 5)),)

    def test_all_pids_interned(self):
        assert all_pids(7) is all_pids(7)
        assert all_pids(7) == frozenset(range(7))


class TestShifted:
    def test_shift_drops_and_rebases(self):
        view = view_of(
            entry(3, 0, ("OLD", 1)),   # sent during C's negative rounds
            entry(5, 1, ("MID", 2)),
            entry(6, 2, ("CUR", 3)),
            round=6,
        )
        shifted = view.shifted(4)
        assert shifted.round == 2
        assert shifted.delayed == ((1, 1, ("MID", 2)),)
        assert shifted.current == view.current
        assert shifted.current_senders == view.current_senders

    def test_shift_refuses_decides(self):
        view = view_of(entry(6, 1, decide_payload(0)), round=6)
        with pytest.raises(ValueError, match="DECIDE"):
            view.shifted(4)


class Recorder(Automaton):
    """A deliver-only automaton: exercises the base-class shim."""

    def __init__(self, pid, n, t, proposal):
        super().__init__(pid, n, t, proposal)
        self.seen = []

    def payload(self, k):
        return ("REC", k, self.pid)

    def deliver(self, k, messages):
        self.seen.append((k, messages))
        if k >= 3:
            self._decide(self.proposal, k)
            self._halt()


class TestLegacyShim:
    def test_unported_automaton_gets_canonical_flat_inboxes(self):
        builder = ScheduleBuilder(3, 1, horizon=5)
        builder.delay(sender=2, receiver=0, k=1, until=2)
        schedule = builder.build()
        automata = make_automata(Recorder, 3, 1, [0, 1, 2])
        reference = execute_reference(
            make_automata(Recorder, 3, 1, [0, 1, 2]), schedule
        )
        trace = execute(automata, schedule, trace="full")
        assert trace == reference
        k, inbox = automata[0].seen[1]  # round 2 at the delayed receiver
        assert k == 2
        assert [m.sent_round for m in inbox] == [1, 2, 2, 2]
        assert all(m.receiver == 0 for m in inbox)

    def test_consensus_bridge_rejects_hookless_subclass(self):
        class Hookless(ConsensusAutomaton):
            def round_payload(self, k):
                return None

        automaton = Hookless(0, 3, 1, 0)
        with pytest.raises(AlgorithmError, match="neither"):
            automaton.deliver(1, ())

    def test_automaton_rejects_hookless_subclass_at_delivery(self):
        class NoHooks(Automaton):
            def payload(self, k):
                return None

        automaton = NoHooks(0, 3, 1, 0)
        with pytest.raises(AlgorithmError, match="neither"):
            automaton.deliver(1, ())
        with pytest.raises(AlgorithmError, match="neither"):
            automaton.deliver_view(1, view_of(n=3))

    def test_view_only_automaton_runs_and_bridges(self):
        # The documented contract: implementing only the fast hook is
        # enough — the kernel drives it directly, and direct legacy
        # deliver() calls bridge through from_messages.
        class ViewOnly(Automaton):
            def __init__(self, pid, n, t, proposal):
                super().__init__(pid, n, t, proposal)
                self.tagged_counts = []

            def payload(self, k):
                return ("VO", k)

            def deliver_view(self, k, view):
                self.tagged_counts.append(len(view.tagged("VO")))
                if k >= 2:
                    self._decide(self.proposal, k)
                    self._halt()

        schedule = Schedule.failure_free(3, 1, 4)
        trace = execute(
            make_automata(ViewOnly, 3, 1, [0, 1, 2]), schedule,
            trace="full",
        )
        assert trace.decided_values() == {0, 1, 2}
        direct = ViewOnly(0, 3, 1, 5)
        direct.deliver(
            1, (Message(sent_round=1, sender=1, receiver=0,
                        payload=("VO", 1)),)
        )
        assert direct.tagged_counts == [1]

    def test_legacy_round_hook_on_ported_algorithm_subclass_wins(self):
        # Pre-view contract for the primary extension surface: an
        # out-of-tree subclass of a *ported* stock algorithm overriding
        # only the legacy round_deliver must run its override — the
        # ancestor's round_deliver_view must not shadow it.
        from repro.algorithms.floodset import FloodSet

        calls = []

        class MyFloodSet(FloodSet):
            def round_deliver(self, k, messages):
                calls.append(k)
                # tweak: decide the *max* known value instead
                union = set(self.known)
                for m in self.current_round(messages, k):
                    if m.tag == "FLOOD":
                        union.update(m.payload[2])
                self.known = frozenset(union)
                if k == self.t + 1:
                    self._decide(max(self.known), k)

        schedule = Schedule.failure_free(4, 1, 6)
        trace = execute(
            make_automata(MyFloodSet, 4, 1, [3, 1, 4, 1]), schedule,
            trace="full",
        )
        assert calls, "the subclass's legacy round hook never ran"
        assert trace.decided_values() == {4}
        reference = execute_reference(
            make_automata(MyFloodSet, 4, 1, [3, 1, 4, 1]), schedule
        )
        assert trace == reference

    def test_consensus_deliver_view_override_bridges_from_deliver(self):
        # The symmetric takeover: a subclass overriding only
        # deliver_view defines the behavior of direct legacy deliver()
        # calls too — they must land in the override, not the protocol.
        class ViewTakeover(ConsensusAutomaton):
            announce_decision = False

            def __init__(self, pid, n, t, proposal):
                super().__init__(pid, n, t, proposal)
                self.rounds_seen = []

            def round_payload(self, k):
                return ("VT", k)

            def deliver_view(self, k, view):
                self.rounds_seen.append((k, len(view.current)))

        automaton = ViewTakeover(0, 3, 1, 9)
        automaton.deliver(
            2, (Message(sent_round=2, sender=1, receiver=0,
                        payload=("VT", 2)),)
        )
        assert automaton.rounds_seen == [(2, 1)]

    def test_consensus_deliver_override_still_drives_the_run(self):
        # Pre-view contract: a ConsensusAutomaton subclass could take
        # over the whole receive phase by overriding deliver(); the
        # kernel must still honor that override through deliver_view.
        class TakesOver(ConsensusAutomaton):
            announce_decision = False

            def round_payload(self, k):
                return ("TO", k, self.proposal)

            def deliver(self, k, messages):
                # bespoke protocol: decide own proposal in round 2,
                # ignoring DECIDE handling entirely
                assert all(isinstance(m, Message) for m in messages)
                if k == 2:
                    self._decide(self.proposal, k)
                    self._halt()

            def round_deliver(self, k, messages):  # pragma: no cover
                raise AssertionError("deliver override bypasses hooks")

        schedule = Schedule.failure_free(3, 1, 5)
        trace = execute(
            make_automata(TakesOver, 3, 1, [4, 5, 6]), schedule,
            trace="full",
        )
        reference = execute_reference(
            make_automata(TakesOver, 3, 1, [4, 5, 6]), schedule
        )
        assert trace == reference
        assert trace.decisions == {0: (4, 2), 1: (5, 2), 2: (6, 2)}

    def test_old_style_round_deliver_subclass_still_runs(self):
        class OldStyle(ConsensusAutomaton):
            announce_decision = False

            def __init__(self, pid, n, t, proposal):
                super().__init__(pid, n, t, proposal)
                self.best = proposal

            def round_payload(self, k):
                return ("OS", k, self.best)

            def round_deliver(self, k, messages):
                for m in self.current_round(messages, k):
                    if m.tag == "OS":
                        self.best = min(self.best, m.payload[2])
                if k == self.t + 1:
                    self._decide(self.best, k)

        schedule = Schedule.failure_free(4, 1, 6)
        trace = execute(
            make_automata(OldStyle, 4, 1, [3, 1, 4, 1]), schedule,
            trace="full",
        )
        reference = execute_reference(
            make_automata(OldStyle, 4, 1, [3, 1, 4, 1]), schedule
        )
        assert trace == reference
        assert trace.decided_values() == {1}


class TestPlanSharingGroups:
    def test_groups_partition_by_plan_equality(self):
        schedule = random_es_schedule(6, 2, seed=11, horizon=10)
        plan = compile_schedule(schedule)
        for k in range(1, plan.horizon + 1):
            for receiver in range(plan.n):
                crep = plan.current_groups[k][receiver]
                drep = plan.delayed_groups[k][receiver]
                assert crep <= receiver and drep <= receiver
                assert (
                    plan.current_senders[k][crep]
                    == plan.current_senders[k][receiver]
                )
                assert (
                    plan.delayed_inboxes[k][drep]
                    == plan.delayed_inboxes[k][receiver]
                )

    def test_failure_free_rounds_share_one_current_group(self):
        plan = compile_schedule(Schedule.failure_free(5, 2, 6))
        for k in range(1, plan.horizon + 1):
            assert set(plan.current_groups[k]) == {0}
            assert set(plan.delayed_groups[k]) == {0}

    def test_split_inboxes_match_schedule_queries(self):
        # The split halves against the declarative schedule directly
        # (not via the derived `inboxes` property, which merges them).
        schedule = random_es_schedule(6, 2, seed=23, horizon=10)
        plan = compile_schedule(schedule)
        for k in range(1, plan.horizon + 1):
            for receiver in range(plan.n):
                if not schedule.completes_round(receiver, k):
                    continue
                expected = {
                    (sent, sender)
                    for sender, sent in schedule.deliveries_to(receiver, k)
                }
                delayed = plan.delayed_inboxes[k][receiver]
                current = plan.current_senders[k][receiver]
                assert all(sent < k for sent, _sender in delayed)
                assert list(current) == sorted(current)
                merged = set(delayed) | {(k, s) for s in current}
                assert merged == expected


class TestViewKernelEquivalence:
    @pytest.mark.parametrize("name", ["att2", "chandra_toueg", "floodset_ws"])
    def test_view_and_flat_delivery_agree(self, name):
        # Forcing every automaton through flat delivery (the base-class
        # shim: materialized message tuples, structure re-derived per
        # receiver — what any unported automaton pays) must not change
        # a single record: the view is a faster representation, never a
        # different one.  The same patch is the kernel microbench's
        # "flat" arm, so this test pins the arm's semantics too.
        from types import MethodType

        factory = get_factory(name)
        n, t = 5, 2
        for seed in range(6):
            schedule = random_es_schedule(n, t, seed, horizon=12)
            ported = execute(
                make_automata(factory, n, t, list(range(n))), schedule,
                trace="full",
            )
            flat_automata = make_automata(factory, n, t, list(range(n)))
            for automaton in flat_automata:
                automaton.deliver_view = MethodType(
                    Automaton.deliver_view, automaton
                )
            flat = execute(flat_automata, schedule, trace="full")
            assert ported == flat
