"""Tests for traces: views, decisions, summaries."""

from repro import ATt2, FloodSet, Schedule
from repro.model.schedule import ScheduleBuilder
from repro.sim.kernel import run_algorithm
from repro.sim.trace import views_equal


def floodset_trace(schedule, proposals):
    return run_algorithm(FloodSet, schedule, proposals)


class TestDecisionAccessors:
    def test_decision_value_and_round(self):
        trace = floodset_trace(Schedule.failure_free(3, 1, 5), [5, 2, 9])
        assert trace.decision_value(0) == 2
        assert trace.decision_round(0) == 2  # t + 1

    def test_missing_decision_is_none(self):
        schedule = Schedule.synchronous(3, 1, 5, crashes={1: (1, [])})
        trace = floodset_trace(schedule, [5, 2, 9])
        assert trace.decision_value(1) is None
        assert trace.decision_round(1) is None

    def test_global_and_first_decision_rounds(self):
        trace = floodset_trace(Schedule.failure_free(3, 1, 5), [1, 2, 3])
        assert trace.global_decision_round() == 2
        assert trace.first_decision_round() == 2

    def test_no_decisions(self):
        # Horizon 1 is too short for FloodSet with t=1.
        trace = floodset_trace(Schedule.failure_free(3, 1, 1), [1, 2, 3])
        assert trace.global_decision_round() is None
        assert trace.decided_values() == set()

    def test_deciders(self):
        schedule = Schedule.synchronous(3, 1, 5, crashes={2: (2, [])})
        trace = floodset_trace(schedule, [1, 2, 3])
        assert trace.deciders() == frozenset({0, 1})


class TestViews:
    def test_view_includes_proposal(self):
        trace = floodset_trace(Schedule.failure_free(3, 1, 4), [4, 5, 6])
        proposal, _entries = trace.view(1, 2)
        assert proposal == 5

    def test_views_differ_on_different_proposals(self):
        a = floodset_trace(Schedule.failure_free(3, 1, 4), [1, 2, 3])
        b = floodset_trace(Schedule.failure_free(3, 1, 4), [1, 2, 4])
        # p2's own proposal differs; p0 sees the difference in round 1.
        assert a.view(2, 0) != b.view(2, 0)
        assert a.view(0, 1) != b.view(0, 1)

    def test_view_prefix_equality_before_divergence(self):
        sync = Schedule.failure_free(3, 1, 4)
        crashy = Schedule.synchronous(3, 1, 4, crashes={2: (2, [])})
        a = floodset_trace(sync, [1, 2, 3])
        b = floodset_trace(crashy, [1, 2, 3])
        # Identical through round 1; p0 notices p2's silence in round 2.
        assert views_equal(a, b, 0, 1)
        assert not views_equal(a, b, 0, 2)

    def test_view_of_crashed_process_freezes(self):
        # A_{t+2} runs past the crash round (FloodSet would already have
        # quiesced), exposing the frozen view.
        crashy = Schedule.synchronous(3, 1, 8, crashes={2: (2, [])})
        trace = run_algorithm(ATt2.factory(), crashy, [1, 2, 3])
        assert trace.rounds_executed >= 3
        _prop, entries = trace.view(2, trace.rounds_executed)
        by_round = {entry[0]: entry for entry in entries}
        assert by_round[2][1] is not None  # sent in its crash round
        assert by_round[2][2] is None  # but never completed it
        assert by_round[3][1] is None  # silent afterwards

    def test_completed(self):
        crashy = Schedule.synchronous(3, 1, 4, crashes={2: (2, [])})
        trace = floodset_trace(crashy, [1, 2, 3])
        assert trace.completed(2, 1)
        assert not trace.completed(2, 2)
        assert trace.completed(0, 2)


class TestCounting:
    def test_message_count_failure_free(self):
        trace = floodset_trace(Schedule.failure_free(3, 1, 5), [1, 2, 3])
        # Rounds executed: t+1 = 2 (halt at decision); 9 messages per round.
        assert trace.rounds_executed == 2
        assert trace.message_count() == 18

    def test_iter_messages_round_ordered(self):
        trace = floodset_trace(Schedule.failure_free(3, 1, 5), [1, 2, 3])
        rounds = [m.sent_round for m in trace.iter_messages()]
        assert rounds == sorted(rounds)

    def test_describe_contains_decisions(self):
        trace = floodset_trace(Schedule.failure_free(3, 1, 5), [1, 2, 3])
        text = trace.describe()
        assert "p0->1@r2" in text


class TestDelayedMessagesInViews:
    def test_delayed_arrival_visible_in_view(self):
        builder = ScheduleBuilder(3, 1, 8)
        builder.delay(0, 1, 1, 3)
        schedule = builder.build()
        trace = run_algorithm(ATt2.factory(), schedule, [1, 2, 3])
        _prop, entries = trace.view(1, 3)
        round3 = entries[2]
        assert any(
            sender == 0 and sent_round == 1
            for sent_round, sender, _payload in round3[2]
        )
