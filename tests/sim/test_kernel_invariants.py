"""Property-based kernel invariants over random schedules and algorithms.

These pin down the simulation semantics every result depends on:

* every delivered message was actually sent in its tagged round by a
  then-alive, non-halted process;
* no message is delivered twice;
* messages are never delivered before their sending round, and lost
  messages never appear;
* views are prefix-stable: ``view(p, k)`` is a prefix of ``view(p, k+1)``;
* executing the same automata class twice yields identical traces.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.registry import get_factory
from repro.sim.kernel import run_algorithm
from repro.sim.random_schedules import (
    random_es_schedule,
    random_proposals,
)

ALGORITHMS = st.sampled_from(
    ["att2", "att2_optimized", "adiamond_s", "hurfin_raynal",
     "chandra_toueg"]
)


def run_random(name, seed):
    schedule = random_es_schedule(5, 2, seed, horizon=18, sync_by=7)
    factory = get_factory(name)
    trace = run_algorithm(factory, schedule, random_proposals(5, seed))
    return schedule, trace


class TestDeliveryInvariants:
    @given(name=ALGORITHMS, seed=st.integers(0, 20_000))
    @settings(max_examples=60, deadline=None)
    def test_delivered_messages_were_sent(self, name, seed):
        _schedule, trace = run_random(name, seed)
        for rec in trace.rounds:
            for pid, inbox in rec.delivered.items():
                del pid
                for message in inbox:
                    sent = trace.record(message.sent_round).sent
                    assert sent.get(message.sender) == message.payload

    @given(name=ALGORITHMS, seed=st.integers(0, 20_000))
    @settings(max_examples=60, deadline=None)
    def test_no_duplicate_delivery(self, name, seed):
        _schedule, trace = run_random(name, seed)
        for pid in range(trace.n):
            seen = set()
            for rec in trace.rounds:
                for message in rec.delivered.get(pid, ()):
                    key = (message.sender, message.sent_round)
                    assert key not in seen, key
                    seen.add(key)

    @given(name=ALGORITHMS, seed=st.integers(0, 20_000))
    @settings(max_examples=60, deadline=None)
    def test_no_time_travel(self, name, seed):
        _schedule, trace = run_random(name, seed)
        for rec in trace.rounds:
            for inbox in rec.delivered.values():
                for message in inbox:
                    assert message.sent_round <= rec.round

    @given(name=ALGORITHMS, seed=st.integers(0, 20_000))
    @settings(max_examples=40, deadline=None)
    def test_delivery_matches_schedule(self, name, seed):
        schedule, trace = run_random(name, seed)
        for rec in trace.rounds:
            for pid, inbox in rec.delivered.items():
                for message in inbox:
                    assert (
                        schedule.delivery_round(
                            message.sender, pid, message.sent_round
                        )
                        == rec.round
                    )


class TestViewInvariants:
    @given(name=ALGORITHMS, seed=st.integers(0, 20_000))
    @settings(max_examples=40, deadline=None)
    def test_views_are_prefix_stable(self, name, seed):
        _schedule, trace = run_random(name, seed)
        for pid in range(trace.n):
            previous = trace.view(pid, 0)
            for k in range(1, trace.rounds_executed + 1):
                current = trace.view(pid, k)
                assert current[0] == previous[0]
                assert current[1][: len(previous[1])] == previous[1]
                previous = current

    @given(name=ALGORITHMS, seed=st.integers(0, 20_000))
    @settings(max_examples=30, deadline=None)
    def test_reexecution_is_identical(self, name, seed):
        _schedule, first = run_random(name, seed)
        _schedule, second = run_random(name, seed)
        assert dict(first.decisions) == dict(second.decisions)
        assert first.rounds_executed == second.rounds_executed
        for pid in range(first.n):
            assert first.view(pid, first.rounds_executed) == second.view(
                pid, second.rounds_executed
            )
