"""Tests for random schedule generators: legality and determinism."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.es import check_es
from repro.model.scs import check_scs
from repro.sim.random_schedules import (
    random_es_schedule,
    random_proposals,
    random_scs_schedule,
    random_serial_schedule,
)

SYSTEM_SIZES = st.sampled_from([(3, 1), (4, 1), (5, 2), (7, 3), (9, 4)])


class TestRandomES:
    @given(seed=st.integers(0, 10_000), size=SYSTEM_SIZES)
    @settings(max_examples=60, deadline=None)
    def test_always_es_legal(self, seed, size):
        n, t = size
        schedule = random_es_schedule(n, t, seed)
        assert check_es(schedule) == []

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_deterministic_in_seed(self, seed):
        a = random_es_schedule(5, 2, seed)
        b = random_es_schedule(5, 2, seed)
        assert a == b

    def test_different_seeds_differ_somewhere(self):
        schedules = {random_es_schedule(5, 2, seed) for seed in range(30)}
        assert len(schedules) > 1

    @given(seed=st.integers(0, 2_000))
    @settings(max_examples=30, deadline=None)
    def test_sync_by_respected(self, seed):
        schedule = random_es_schedule(6, 2, seed, horizon=12, sync_by=5)
        assert schedule.sync_from() <= 5

    def test_max_crashes_zero(self):
        schedule = random_es_schedule(5, 2, 7, max_crashes=0)
        assert not schedule.crashes


class TestRandomSCS:
    @given(seed=st.integers(0, 10_000), size=SYSTEM_SIZES)
    @settings(max_examples=60, deadline=None)
    def test_always_scs_legal(self, seed, size):
        n, t = size
        schedule = random_scs_schedule(n, t, seed)
        assert check_scs(schedule) == []

    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=20, deadline=None)
    def test_scs_is_synchronous(self, seed):
        schedule = random_scs_schedule(5, 2, seed)
        assert schedule.is_synchronous_run()


class TestRandomSerial:
    @given(seed=st.integers(0, 10_000), size=SYSTEM_SIZES)
    @settings(max_examples=60, deadline=None)
    def test_always_serial(self, seed, size):
        n, t = size
        schedule = random_serial_schedule(n, t, seed)
        assert schedule.is_serial_run()


class TestRandomProposals:
    def test_deterministic(self):
        assert random_proposals(6, 3) == random_proposals(6, 3)

    def test_length_and_range(self):
        values = random_proposals(8, 11, pool=3)
        assert len(values) == 8
        assert all(0 <= v < 3 for v in values)
