"""Tests for remaining trace accessors."""

from repro import ATt2, Schedule
from repro.sim.kernel import run_algorithm


def crashy_trace():
    schedule = Schedule.synchronous(
        5, 2, 12, crashes={4: (1, [0]), 3: (3, [])}
    )
    return run_algorithm(ATt2.factory(), schedule, [3, 1, 4, 1, 5])


class TestAccessors:
    def test_crash_rounds(self):
        trace = crashy_trace()
        assert trace.crash_rounds() == {4: 1, 3: 3}

    def test_alive_at_end(self):
        trace = crashy_trace()
        assert trace.alive_at_end() == frozenset({0, 1, 2})

    def test_record_is_one_based(self):
        trace = crashy_trace()
        assert trace.record(1).round == 1
        assert trace.record(trace.rounds_executed).round == (
            trace.rounds_executed
        )

    def test_n_and_t_mirror_schedule(self):
        trace = crashy_trace()
        assert trace.n == 5
        assert trace.t == 2

    def test_message_count_equals_iter_length(self):
        trace = crashy_trace()
        assert trace.message_count() == sum(
            1 for _ in trace.iter_messages()
        )

    def test_undelivered_schedule_entries_absent_from_views(self):
        # p4 crashed in round 1 delivering only to p0: only p0's and p4's
        # views contain p4's round-1 message.
        trace = crashy_trace()
        received_from_4 = {
            pid
            for pid in range(5)
            for k in range(1, trace.rounds_executed + 1)
            for m in (trace.record(k).delivered.get(pid) or ())
            if m.sender == 4
        }
        assert received_from_4 == {0}
