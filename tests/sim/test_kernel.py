"""Tests for the execution kernel: delivery, crashes, halting, determinism."""

import pytest

from repro.algorithms.base import Automaton
from repro.errors import SimulationError
from repro.model.messages import DUMMY
from repro.model.schedule import Schedule, ScheduleBuilder
from repro.sim.kernel import execute
from repro.types import Payload, Round


class Recorder(Automaton):
    """Broadcasts its pid each round; records everything it receives."""

    def __init__(self, pid, n, t, proposal):
        super().__init__(pid, n, t, proposal)
        self.inbox_log: dict[Round, tuple] = {}

    def payload(self, k: Round) -> Payload:
        return ("PING", self.pid, k)

    def deliver(self, k, messages):
        self.inbox_log[k] = messages


class SilentThenHalt(Automaton):
    """Sends nothing (kernel substitutes DUMMY) and halts after round 2."""

    def payload(self, k):
        return None

    def deliver(self, k, messages):
        if k == 2:
            self._decide(self.proposal, k)
            self._halt()


def make(cls, schedule, proposals=None):
    n = schedule.n
    proposals = proposals or list(range(n))
    return [cls(pid, n, schedule.t, proposals[pid]) for pid in range(n)]


class TestDelivery:
    def test_all_to_all_failure_free(self):
        schedule = Schedule.failure_free(3, 1, 2)
        automata = make(Recorder, schedule)
        execute(automata, schedule)
        for automaton in automata:
            senders = [m.sender for m in automaton.inbox_log[1]]
            assert senders == [0, 1, 2]

    def test_dummy_substituted_for_none(self):
        schedule = Schedule.failure_free(2, 1, 1)
        automata = [
            SilentThenHalt(0, 2, 1, "a"),
            Recorder(1, 2, 1, "b"),
        ]
        execute(automata, schedule)
        payloads = {m.sender: m.payload for m in automata[1].inbox_log[1]}
        assert payloads[0] == DUMMY

    def test_crashed_process_does_not_deliver(self):
        schedule = Schedule.synchronous(3, 1, 3, crashes={0: (2, [1])})
        automata = make(Recorder, schedule)
        trace = execute(automata, schedule)
        # p0 sends in round 2 (to p1 only), completes round 1 only.
        assert 1 in automata[0].inbox_log
        assert 2 not in automata[0].inbox_log
        senders_p1 = [m.sender for m in automata[1].inbox_log[2]]
        senders_p2 = [m.sender for m in automata[2].inbox_log[2]]
        assert 0 in senders_p1
        assert 0 not in senders_p2
        assert trace.record(2).crashed == frozenset({0})

    def test_delayed_message_arrives_later_with_original_round(self):
        builder = ScheduleBuilder(3, 1, 4)
        builder.delay(0, 1, 1, 3)
        schedule = builder.build()
        automata = make(Recorder, schedule)
        execute(automata, schedule)
        round_one = [m.sender for m in automata[1].inbox_log[1]]
        assert 0 not in round_one
        arrivals = [
            (m.sender, m.sent_round) for m in automata[1].inbox_log[3]
        ]
        assert (0, 1) in arrivals

    def test_halted_process_neither_sends_nor_receives(self):
        schedule = Schedule.failure_free(2, 1, 4)
        automata = [
            SilentThenHalt(0, 2, 1, "a"),
            Recorder(1, 2, 1, "b"),
        ]
        trace = execute(automata, schedule)
        assert trace.record(2).halted == frozenset({0})
        senders_r3 = [m.sender for m in automata[1].inbox_log.get(3, ())]
        assert 0 not in senders_r3

    def test_lost_message_never_arrives(self):
        builder = ScheduleBuilder(3, 1, 4)
        builder.crash(0, 4)
        builder.lose(0, 1, 1)
        schedule = builder.build()
        automata = make(Recorder, schedule)
        execute(automata, schedule)
        for k, inbox in automata[1].inbox_log.items():
            assert not any(
                m.sender == 0 and m.sent_round == 1 for m in inbox
            )


class TestTraceRecording:
    def test_decisions_recorded_with_round(self):
        schedule = Schedule.failure_free(2, 1, 4)
        automata = [SilentThenHalt(p, 2, 1, f"v{p}") for p in range(2)]
        trace = execute(automata, schedule)
        assert trace.decisions == {0: ("v0", 2), 1: ("v1", 2)}
        assert trace.global_decision_round() == 2

    def test_quiescence_stops_early(self):
        schedule = Schedule.failure_free(2, 1, 50)
        automata = [SilentThenHalt(p, 2, 1, p) for p in range(2)]
        trace = execute(automata, schedule)
        assert trace.rounds_executed == 2

    def test_quiescence_on_all_crashed(self):
        schedule = Schedule.synchronous(
            2, 1, 50, crashes={0: (1, []), 1: (2, [])}
        )
        # Two crashes exceed t, but the kernel is model-agnostic.
        automata = make(Recorder, schedule)
        trace = execute(automata, schedule)
        assert trace.rounds_executed == 2

    def test_max_rounds_caps_run(self):
        schedule = Schedule.failure_free(2, 1, 50)
        automata = make(Recorder, schedule)
        trace = execute(automata, schedule, max_rounds=5)
        assert trace.rounds_executed == 5

    def test_proposals_captured(self):
        schedule = Schedule.failure_free(3, 1, 1)
        automata = make(Recorder, schedule, proposals=[7, 8, 9])
        trace = execute(automata, schedule)
        assert trace.proposals == (7, 8, 9)


class TestKernelValidation:
    def test_wrong_automata_count(self):
        schedule = Schedule.failure_free(3, 1, 2)
        automata = make(Recorder, schedule)[:2]
        with pytest.raises(SimulationError, match="3 processes"):
            execute(automata, schedule)

    def test_mismatched_pid(self):
        schedule = Schedule.failure_free(2, 1, 2)
        automata = [Recorder(1, 2, 1, 0), Recorder(0, 2, 1, 1)]
        with pytest.raises(SimulationError, match="reports pid"):
            execute(automata, schedule)


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        from repro import ATt2
        from repro.sim.kernel import run_algorithm

        schedule = Schedule.synchronous(
            5, 2, 12, crashes={0: (1, [1]), 4: (3, [2, 3])}
        )
        a = run_algorithm(ATt2.factory(), schedule, [3, 1, 4, 1, 5])
        b = run_algorithm(ATt2.factory(), schedule, [3, 1, 4, 1, 5])
        assert a.decisions == b.decisions
        for pid in range(5):
            assert a.view(pid, 12) == b.view(pid, 12)


class TestDepartedReceiverBuffering:
    """Messages to processes that left the computation are never buffered.

    Regression test for the ``pending`` message-buffer leak: the send
    phase used to enqueue messages for receivers that had already crashed
    or halted (or whose delayed delivery landed after the receiver's
    crash round); they sat in the buffer until their delivery round —
    for the whole run, if it ended first — without ever being delivered.
    """

    def _counting_kernel(self, monkeypatch):
        import repro.sim.kernel as kernel

        created = []
        real_message = kernel.Message

        def counting_message(**kwargs):
            created.append(kwargs)
            return real_message(**kwargs)

        monkeypatch.setattr(kernel, "Message", counting_message)
        return created

    def test_no_messages_created_for_crashed_receiver(self, monkeypatch):
        from repro import HurfinRaynalES
        from repro.sim.kernel import run_algorithm

        created = self._counting_kernel(monkeypatch)
        schedule = Schedule.synchronous(4, 2, 8, crashes={3: (1, [])})
        trace = run_algorithm(HurfinRaynalES, schedule, [0, 1, 2, 3])
        # p3 crashes in round 1 and never completes a receive phase, so
        # not a single message addressed to it should be materialized.
        assert not [m for m in created if m["receiver"] == 3]
        # The purge is unobservable to the algorithms: the run still
        # reaches a correct global decision.
        assert len(trace.decided_values()) == 1

    def test_no_messages_created_for_halted_receiver(self, monkeypatch):
        created = self._counting_kernel(monkeypatch)
        schedule = Schedule.failure_free(3, 1, 6)
        automata = [
            SilentThenHalt(0, 3, 1, 0),
            Recorder(1, 3, 1, 1),
            Recorder(2, 3, 1, 2),
        ]
        execute(automata, schedule, stop_when_quiescent=False)
        # p0 halts at the end of round 2; rounds 3+ must not buffer
        # messages addressed to it.
        late_to_halted = [
            m for m in created
            if m["receiver"] == 0 and m["sent_round"] > 2
        ]
        assert not late_to_halted

    def test_delayed_delivery_past_crash_round_is_not_buffered(
        self, monkeypatch
    ):
        from repro import ATt2
        from repro.sim.kernel import run_algorithm

        created = self._counting_kernel(monkeypatch)
        builder = ScheduleBuilder(4, 1, 8)
        builder.crash(3, 4, delivered_to=[0, 1, 2])
        builder.delay(0, 3, 2, 6)  # lands two rounds after p3 crashed
        trace = run_algorithm(
            ATt2.factory(), builder.build(), [0, 1, 2, 3]
        )
        # The direct round-2 deliveries to p3 are legitimate (it is alive
        # until round 4); only the delayed 0 -> 3 message, which would
        # land after the crash, must never be materialized.
        assert not [
            m for m in created
            if m["receiver"] == 3 and m["sent_round"] == 2
            and m["sender"] == 0
        ]
        assert len(trace.decided_values()) == 1
