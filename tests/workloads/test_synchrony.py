"""Tests for eventually-synchronous workload generators."""

import pytest

from repro.errors import ScheduleError
from repro.model.es import check_es, is_es
from repro.workloads.synchrony import (
    async_prefix,
    partitioned_prefix,
    rotating_delays,
)


class TestRotatingDelays:
    def test_victims_rotate(self):
        schedule = rotating_delays(4, 1, 10, async_rounds=3)
        assert (0, 1, 1) in schedule.delays
        assert (1, 0, 2) in schedule.delays
        assert (2, 0, 3) in schedule.delays

    def test_es_legal(self):
        schedule = rotating_delays(5, 2, 12, async_rounds=6)
        assert check_es(schedule) == []

    def test_sync_from_after_prefix(self):
        schedule = rotating_delays(5, 2, 12, async_rounds=4)
        assert schedule.sync_from() == 5

    def test_not_synchronous_run(self):
        assert not rotating_delays(4, 1, 8, async_rounds=2).is_synchronous_run()


class TestAsyncPrefix:
    def test_crashes_placed_after_prefix(self):
        schedule = async_prefix(6, 2, 14, k=3, crashes_after=2)
        assert schedule.crashes[5].round == 4
        assert schedule.crashes[4].round == 5

    def test_es_legal(self):
        schedule = async_prefix(6, 2, 14, k=3, crashes_after=2)
        assert check_es(schedule) == []

    def test_sync_after_k(self):
        schedule = async_prefix(6, 2, 14, k=3)
        assert schedule.sync_from() == 4

    def test_zero_prefix_is_synchronous(self):
        schedule = async_prefix(6, 2, 14, k=0, crashes_after=1)
        assert schedule.is_synchronous_run()

    def test_crash_budget_enforced(self):
        with pytest.raises(ScheduleError, match="exceeds"):
            async_prefix(6, 2, 14, k=1, crashes_after=3)


class TestPartitionedPrefix:
    def test_requires_majority_faults(self):
        with pytest.raises(ScheduleError, match="t >= n/2"):
            partitioned_prefix(4, 1, 10, rounds=4)

    def test_partition_is_es_legal_with_large_t(self):
        schedule = partitioned_prefix(4, 2, 10, rounds=6, heal_at=8)
        assert is_es(schedule)

    def test_cross_group_messages_delayed(self):
        schedule = partitioned_prefix(4, 2, 10, rounds=2, heal_at=5)
        assert schedule.delays[(0, 2, 1)] == 5
        assert schedule.delays[(2, 0, 1)] == 5
        assert (0, 1, 1) not in schedule.delays

    def test_custom_groups_must_partition(self):
        with pytest.raises(ScheduleError, match="partition"):
            partitioned_prefix(
                4, 2, 10, rounds=2, groups=((0, 1), (1, 2, 3))
            )

    def test_heal_capped_at_horizon(self):
        schedule = partitioned_prefix(4, 2, 6, rounds=5)
        assert max(schedule.delays.values()) <= 6
