"""Tests for crash-pattern workload generators."""

import pytest

from repro.model.es import is_es
from repro.model.scs import is_scs
from repro.workloads.crash_patterns import (
    block_crashes,
    coordinator_killer,
    serial_cascade,
    value_hiding_chain,
)


class TestSerialCascade:
    def test_default_crashes_last_t_processes(self):
        schedule = serial_cascade(5, 2, 8)
        assert set(schedule.crashes) == {4, 3}
        assert schedule.crashes[4].round == 1
        assert schedule.crashes[3].round == 2

    def test_is_serial_and_scs(self):
        schedule = serial_cascade(5, 2, 8)
        assert schedule.is_serial_run()
        assert is_scs(schedule)
        assert is_es(schedule)

    def test_deliver_to_next(self):
        schedule = serial_cascade(
            5, 2, 8, crashers=(0, 1), deliver_to_next=True
        )
        assert schedule.crashes[0].delivered_same_round == frozenset({1})
        assert schedule.crashes[1].delivered_same_round == frozenset()

    def test_too_many_crashers_rejected(self):
        with pytest.raises(ValueError, match="exceed"):
            serial_cascade(5, 1, 8, crashers=(0, 1))


class TestValueHidingChain:
    def test_chain_structure(self):
        schedule = value_hiding_chain(5, 3, 8)
        for index in range(3):
            spec = schedule.crashes[index]
            assert spec.round == index + 1
            assert spec.delivered_same_round == frozenset({index + 1})

    def test_is_serial(self):
        assert value_hiding_chain(5, 3, 8).is_serial_run()


class TestBlockCrashes:
    def test_all_in_one_round(self):
        schedule = block_crashes(6, 2, 8)
        assert {spec.round for spec in schedule.crashes.values()} == {1}
        assert len(schedule.crashes) == 2

    def test_synchronous_but_not_serial(self):
        schedule = block_crashes(6, 2, 8)
        assert schedule.is_synchronous_run()
        assert not schedule.is_serial_run()

    def test_count_capped(self):
        with pytest.raises(ValueError, match="exceeds"):
            block_crashes(6, 2, 8, count=3)


class TestCoordinatorKiller:
    def test_kills_first_round_of_each_cycle(self):
        schedule = coordinator_killer(5, 2, 10, rounds_per_cycle=2)
        assert schedule.crashes[0].round == 1
        assert schedule.crashes[1].round == 3

    def test_three_round_cycles(self):
        schedule = coordinator_killer(7, 3, 12, rounds_per_cycle=3)
        assert schedule.crashes[2].round == 7

    def test_is_serial(self):
        assert coordinator_killer(5, 2, 10, rounds_per_cycle=2).is_serial_run()
