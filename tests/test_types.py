"""Tests for repro.types: the BOTTOM sentinel and parameter validators."""

import pickle

import pytest

from repro.types import (
    BOTTOM,
    _Bottom,
    is_bottom,
    validate_indulgent_resilience,
    validate_system_size,
)


class TestBottom:
    def test_singleton(self):
        assert _Bottom() is BOTTOM

    def test_repr(self):
        assert repr(BOTTOM) == "⊥"

    def test_is_bottom(self):
        assert is_bottom(BOTTOM)

    def test_values_are_not_bottom(self):
        assert not is_bottom(None)
        assert not is_bottom(0)
        assert not is_bottom("⊥")

    def test_hashable(self):
        assert {BOTTOM: 1}[BOTTOM] == 1

    def test_pickle_roundtrip_preserves_identity(self):
        assert pickle.loads(pickle.dumps(BOTTOM)) is BOTTOM

    def test_equality_is_identity(self):
        assert BOTTOM == BOTTOM
        assert BOTTOM != 0


class TestValidateSystemSize:
    def test_accepts_minimal_system(self):
        validate_system_size(1, 0)

    def test_accepts_typical_system(self):
        validate_system_size(5, 2)

    def test_rejects_negative_t(self):
        with pytest.raises(ValueError, match="non-negative"):
            validate_system_size(3, -1)

    def test_rejects_t_equal_n(self):
        with pytest.raises(ValueError, match="smaller than n"):
            validate_system_size(3, 3)

    def test_rejects_zero_processes(self):
        with pytest.raises(ValueError, match="at least one"):
            validate_system_size(0, 0)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            validate_system_size(3.0, 1)


class TestValidateIndulgentResilience:
    def test_accepts_minority_faults(self):
        validate_indulgent_resilience(3, 1)
        validate_indulgent_resilience(5, 2)
        validate_indulgent_resilience(9, 4)

    def test_rejects_t_zero(self):
        with pytest.raises(ValueError, match="t = 0"):
            validate_indulgent_resilience(3, 0)

    def test_rejects_exact_half(self):
        with pytest.raises(ValueError, match="t < n/2"):
            validate_indulgent_resilience(4, 2)

    def test_rejects_majority_faults(self):
        with pytest.raises(ValueError, match="t < n/2"):
            validate_indulgent_resilience(5, 3)
