"""Tests for consensus property checking and summaries."""

import pytest

from repro import ATt2, FloodSetWS, Schedule
from repro.analysis.metrics import (
    assert_consensus,
    check_agreement,
    check_consensus,
    check_termination,
    check_validity,
    summarize,
)
from repro.errors import ConsensusViolation
from repro.model.schedule import ScheduleBuilder
from repro.sim.kernel import run_algorithm


def good_trace():
    schedule = Schedule.failure_free(3, 1, 8)
    return run_algorithm(ATt2.factory(), schedule, [4, 2, 9])


def disagreeing_trace():
    """FloodSetWS under false suspicion (the paper's failure mode)."""
    builder = ScheduleBuilder(3, 1, 6)
    for k in (1, 2):
        builder.delay(0, 1, k, 3)
        builder.delay(0, 2, k, 3)
    return run_algorithm(FloodSetWS, builder.build(), [0, 1, 1])


class TestChecks:
    def test_clean_run_has_no_violations(self):
        assert check_consensus(good_trace()) == []

    def test_agreement_violation_reported(self):
        problems = check_agreement(disagreeing_trace())
        assert len(problems) == 1
        assert "2 distinct decisions" in problems[0]

    def test_validity_violation_reported(self):
        trace = good_trace()
        # Forge a decision on a non-proposed value.
        forged = type(trace)(
            schedule=trace.schedule,
            proposals=trace.proposals,
            rounds=trace.rounds,
            decisions={0: (999, 3)},
        )
        problems = check_validity(forged)
        assert "which no process proposed" in problems[0]

    def test_termination_violation_reported(self):
        # Horizon 1: nobody decides.
        schedule = Schedule.failure_free(3, 1, 1)
        trace = run_algorithm(ATt2.factory(), schedule, [1, 2, 3])
        problems = check_termination(trace)
        assert len(problems) == 3

    def test_termination_ignores_faulty(self):
        schedule = Schedule.synchronous(3, 1, 8, crashes={2: (1, [])})
        trace = run_algorithm(ATt2.factory(), schedule, [1, 2, 3])
        assert check_termination(trace) == []

    def test_assert_consensus_raises(self):
        with pytest.raises(ConsensusViolation, match="agreement"):
            assert_consensus(disagreeing_trace())

    def test_assert_consensus_passes_through(self):
        trace = good_trace()
        assert assert_consensus(trace) is trace


class TestSummary:
    def test_summary_fields(self):
        summary = summarize(good_trace())
        assert summary.n == 3
        assert summary.t == 1
        assert summary.crashes == 0
        assert summary.sync_from == 1
        assert summary.global_round == 3
        assert summary.first_round == 3
        assert summary.deciders == 3
        assert summary.values == (2,)
        assert summary.decided_everywhere

    def test_summary_of_undecided_run(self):
        schedule = Schedule.failure_free(3, 1, 1)
        trace = run_algorithm(ATt2.factory(), schedule, [1, 2, 3])
        summary = summarize(trace)
        assert summary.global_round is None
        assert not summary.decided_everywhere
