"""Tests for the compact experiment row-generators used by the CLI."""

from repro.analysis.experiments import (
    all_experiments,
    detector_simulation,
    diamond_s_gap,
    eventual_fast_decision,
    failure_free_optimization,
    price_of_indulgence,
    split_brain,
)


class TestPriceOfIndulgence:
    def test_rows_match_paper(self):
        _title, _headers, rows = price_of_indulgence(5, 2)
        by_name = {row[0]: row for row in rows}
        assert by_name["FloodSet (SCS)"][1] == 3
        assert by_name["A_t+2 (ES)"][1] == 4
        assert by_name["Hurfin-Raynal (ES)"][1] == 6
        assert by_name["Chandra-Toueg (ES)"][1] == 9

    def test_measured_equals_paper_column(self):
        _title, _headers, rows = price_of_indulgence(5, 2)
        for _name, worst, paper, _witness in rows:
            assert worst == paper


class TestDiamondSGap:
    def test_gap_grows_linearly(self):
        _title, _headers, rows = diamond_s_gap((1, 2, 3))
        for _n, t, asd, asd_paper, hr, hr_paper in rows:
            assert asd == asd_paper == t + 2
            assert hr == hr_paper == 2 * t + 2


class TestFailureFree:
    def test_optimized_always_two(self):
        _title, _headers, rows = failure_free_optimization(((3, 1), (5, 2)))
        for _n, t, plain, optimized, crashy in rows:
            assert plain == t + 2
            assert optimized == 2
            assert crashy == t + 2


class TestEventualFast:
    def test_bounds_hold(self):
        _title, _headers, rows = eventual_fast_decision(7, 2)
        for k, f, afp2, afp2_bound, amr, amr_bound in rows:
            assert afp2 <= afp2_bound, (k, f)
            assert amr <= amr_bound, (k, f)
            assert afp2 <= amr


class TestSplitBrain:
    def test_always_violated(self):
        _title, _headers, rows = split_brain(((4, 2),))
        assert rows[0][2] == "[0, 1]"
        assert rows[0][3] == "VIOLATED"


class TestDetectorSimulation:
    def test_all_satisfied(self):
        _title, _headers, rows = detector_simulation(samples=15)
        for _prop, satisfied, checked in rows:
            assert satisfied == checked


class TestAllExperiments:
    def test_returns_every_table(self):
        tables = all_experiments()
        ids = [title.split(":", 1)[0] for title, _h, _r in tables]
        assert ids == ["E5", "E6", "E7", "E8", "E10", "E11"]
        for _title, headers, rows in tables:
            assert rows
            for row in rows:
                assert len(row) == len(headers)
