"""Tests for sweep records and worst-case search."""

from repro import ATt2, FloodSet, HurfinRaynalES, Schedule
from repro.analysis.sweep import SweepRecord, run_case, sweep, worst_case_round
from repro.workloads import coordinator_killer, serial_cascade


class TestRunCase:
    def test_record_fields(self):
        schedule = Schedule.failure_free(3, 1, 8)
        record, trace = run_case(
            "att2", ATt2.factory(), "ff", schedule, [1, 2, 3]
        )
        assert record.algorithm == "att2"
        assert record.workload == "ff"
        assert record.global_round == 3
        assert record.deciders == 3
        assert record.agreement_ok and record.validity_ok
        assert record.messages == trace.message_count()

    def test_row_rendering(self):
        schedule = Schedule.failure_free(3, 1, 8)
        record, _ = run_case("a", ATt2.factory(), "w", schedule, [1, 2, 3])
        row = record.row()
        assert len(row) == len(SweepRecord.ROW_HEADERS)
        assert row[-1] == "yes"


class TestSweep:
    def test_grid(self):
        cases = [
            ("att2", ATt2.factory(), "ff",
             Schedule.failure_free(3, 1, 8), [1, 2, 3]),
            ("floodset", FloodSet, "ff",
             Schedule.failure_free(3, 1, 8), [1, 2, 3]),
        ]
        records = sweep(cases)
        assert [r.algorithm for r in records] == ["att2", "floodset"]
        assert records[0].global_round == 3  # t + 2
        assert records[1].global_round == 2  # t + 1


class TestWorstCase:
    def test_worst_case_finds_coordinator_killer(self):
        n, t = 5, 2
        schedules = [
            ("ff", Schedule.failure_free(n, t, 12)),
            ("cascade", serial_cascade(n, t, 12)),
            ("killer", coordinator_killer(n, t, 12, rounds_per_cycle=2)),
        ]
        worst, witness = worst_case_round(
            HurfinRaynalES, schedules, list(range(n))
        )
        assert worst == 2 * t + 2
        assert witness == "killer"

    def test_undecided_counts_as_horizon_plus_one(self):
        schedules = [("tiny", Schedule.failure_free(3, 1, 1))]
        worst, witness = worst_case_round(
            ATt2.factory(), schedules, [1, 2, 3]
        )
        assert worst == 2
        assert witness == "tiny"
