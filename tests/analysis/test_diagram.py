"""Tests for space-time diagram rendering."""

from repro import ATt2, FloodSet, Schedule
from repro.analysis.diagram import render_run, render_side_by_side
from repro.model.schedule import ScheduleBuilder
from repro.sim.kernel import run_algorithm


class TestRenderRun:
    def test_grid_shape(self):
        schedule = Schedule.failure_free(3, 1, 6)
        trace = run_algorithm(FloodSet, schedule, [1, 2, 3])
        text = render_run(trace)
        lines = text.splitlines()
        assert lines[0].startswith("proc")
        process_rows = [
            line for line in lines
            if line[:2] in {"p0", "p1", "p2"}
        ]
        assert len(process_rows) == 3

    def test_crash_glyph(self):
        schedule = Schedule.synchronous(3, 1, 6, crashes={2: (1, [])})
        trace = run_algorithm(ATt2.factory(), schedule, [1, 2, 3])
        text = render_run(trace)
        p2_line = next(l for l in text.splitlines() if l.startswith("p2"))
        assert "X" in p2_line
        assert "." in p2_line  # silent afterwards

    def test_decision_glyph(self):
        schedule = Schedule.failure_free(3, 1, 6)
        trace = run_algorithm(ATt2.factory(), schedule, [1, 2, 3])
        text = render_run(trace)
        assert "D=1" in text
        assert "H" in text

    def test_delay_annotations(self):
        builder = ScheduleBuilder(3, 1, 8)
        builder.delay(0, 1, 1, 3)
        trace = run_algorithm(ATt2.factory(), builder.build(), [1, 2, 3])
        text = render_run(trace)
        assert "r1 0->1 arrives r3" in text

    def test_crash_round_delay_annotation(self):
        builder = ScheduleBuilder(3, 1, 8)
        builder.crash(0, 1, delayed={1: 3})
        trace = run_algorithm(ATt2.factory(), builder.build(), [1, 2, 3])
        text = render_run(trace)
        assert "(crash-round)" in text

    def test_upto_truncates(self):
        schedule = Schedule.failure_free(3, 1, 6)
        trace = run_algorithm(ATt2.factory(), schedule, [1, 2, 3])
        text = render_run(trace, upto=2)
        assert "r2" in text
        assert "r3" not in text

    def test_title(self):
        schedule = Schedule.failure_free(3, 1, 6)
        trace = run_algorithm(FloodSet, schedule, [1, 2, 3])
        assert render_run(trace, title="hello").startswith("hello")


class TestSideBySide:
    def test_multiple_runs(self):
        schedule = Schedule.failure_free(3, 1, 6)
        a = run_algorithm(FloodSet, schedule, [1, 2, 3])
        b = run_algorithm(ATt2.factory(), schedule, [1, 2, 3])
        text = render_side_by_side({"floodset": a, "att2": b})
        assert "--- floodset ---" in text
        assert "--- att2 ---" in text


class TestLeanTraceRejected:
    def test_render_run_refuses_lean_traces(self):
        import pytest

        from repro.errors import SimulationError

        trace = run_algorithm(
            FloodSet, Schedule.failure_free(3, 1, 4), [0, 1, 2],
            trace="lean",
        )
        with pytest.raises(SimulationError, match="requires a full trace"):
            render_run(trace)
