"""Tests for ASCII table rendering."""

import pytest

from repro.analysis.tables import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(
            ["name", "rounds"],
            [["att2", 4], ["floodset", 3]],
        )
        lines = text.splitlines()
        assert lines[0].startswith("+-")
        assert "| name     | rounds |" in text
        # Numeric column right-aligned.
        assert "|      4 |" in text

    def test_title(self):
        text = format_table(["a"], [[1]], title="E1: lower bound")
        assert text.splitlines()[0] == "E1: lower bound"

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "| a | b |" in text

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_mixed_column_left_aligned(self):
        text = format_table(["v"], [["12"], ["x"]])
        assert "| 12 |" in text
