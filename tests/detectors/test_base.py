"""Tests for detector histories and the property predicates."""

from repro.detectors.base import DetectorHistory


def history(n, horizon, outputs, correct, crash_rounds=None):
    return DetectorHistory(
        n=n,
        horizon=horizon,
        outputs={k: frozenset(v) for k, v in outputs.items()},
        correct=frozenset(correct),
        crash_rounds=crash_rounds or {},
    )


class TestStrongCompleteness:
    def test_complete_from_round_two(self):
        h = history(
            2,
            3,
            {
                (0, 1): set(),
                (0, 2): {1},
                (0, 3): {1},
            },
            correct={0},
            crash_rounds={1: 1},
        )
        assert h.strong_completeness_round() == 2

    def test_incomplete_when_suspicion_lapses(self):
        h = history(
            2,
            3,
            {
                (0, 1): {1},
                (0, 2): set(),
                (0, 3): set(),
            },
            correct={0},
            crash_rounds={1: 1},
        )
        # The faulty process is never suspected again: no completeness.
        assert h.strong_completeness_round() is None

    def test_vacuously_complete_without_faults(self):
        h = history(2, 2, {(0, 1): set(), (1, 1): set(),
                           (0, 2): set(), (1, 2): set()},
                    correct={0, 1})
        assert h.strong_completeness_round() == 1


class TestAccuracy:
    def test_strong_accuracy_holds_without_false_suspicions(self):
        h = history(
            2, 2,
            {(0, 1): set(), (0, 2): {1}},
            correct={0},
            crash_rounds={1: 1},
        )
        assert h.strong_accuracy_holds()

    def test_strong_accuracy_fails_on_premature_suspicion(self):
        h = history(
            2, 2,
            {(0, 1): {1}, (0, 2): {1}},
            correct={0},
            crash_rounds={1: 2},  # suspected in round 1, crashes in 2
        )
        assert not h.strong_accuracy_holds()
        assert h.false_suspicions() == [(0, 1, 1)]

    def test_eventual_strong_accuracy_round(self):
        h = history(
            2, 4,
            {
                (0, 1): {1}, (1, 1): set(),
                (0, 2): {1}, (1, 2): set(),
                (0, 3): set(), (1, 3): set(),
                (0, 4): set(), (1, 4): set(),
            },
            correct={0, 1},
        )
        assert h.eventual_strong_accuracy_round() == 3

    def test_eventual_weak_accuracy_some_process_suffices(self):
        # p1 is suspected forever, p0 never: weak accuracy holds from 1.
        h = history(
            3, 2,
            {
                (0, 1): {1}, (1, 1): set(), (2, 1): {1},
                (0, 2): {1}, (1, 2): set(), (2, 2): {1},
            },
            correct={0, 1, 2},
        )
        assert h.eventual_strong_accuracy_round() is None
        assert h.eventual_weak_accuracy_round() == 1

    def test_weak_accuracy_fails_when_everyone_suspected_at_horizon(self):
        h = history(
            2, 1,
            {(0, 1): {1}, (1, 1): {0}},
            correct={0, 1},
        )
        assert h.eventual_weak_accuracy_round() is None
