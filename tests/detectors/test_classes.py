"""Tests for the P / ◇P / ◇S property bundles and their containments."""

from repro.detectors import (
    EventuallyPerfect,
    EventuallyStrong,
    Perfect,
    simulate_from_schedule,
)
from repro.model.schedule import Schedule, ScheduleBuilder


def perfect_history():
    schedule = Schedule.synchronous(4, 1, 8, crashes={3: (2, [0])})
    return simulate_from_schedule(schedule)


def diamond_p_history():
    builder = ScheduleBuilder(4, 1, 10)
    builder.delay(0, 1, 2, 4)  # one false suspicion, then clean
    builder.crash(3, 5, delivered_to=(0, 1))
    return simulate_from_schedule(builder.build())


def broken_history():
    """p1 falsely suspects p0 in every round of the window.

    Built with permanent losses on the 0→1 channel — not ES-legal (the
    detector predicates don't require legality), exactly the kind of
    history ◇P excludes but ◇S tolerates.
    """
    builder = ScheduleBuilder(4, 1, 6)
    for k in range(1, 7):
        builder.lose(0, 1, k)
    return simulate_from_schedule(builder.build())


class TestContainments:
    def test_perfect_implies_diamond_p_and_s(self):
        history = perfect_history()
        assert Perfect.satisfied_by(history)
        assert EventuallyPerfect.satisfied_by(history)
        assert EventuallyStrong.satisfied_by(history)

    def test_diamond_p_implies_diamond_s(self):
        history = diamond_p_history()
        assert not Perfect.satisfied_by(history)
        assert EventuallyPerfect.satisfied_by(history)
        assert EventuallyStrong.satisfied_by(history)

    def test_permanent_false_suspicion_breaks_diamond_p(self):
        history = broken_history()
        assert not EventuallyPerfect.satisfied_by(history)
        # ◇S still holds: p0 is the only falsely suspected process, so
        # accuracy holds for (say) p2.
        assert EventuallyStrong.satisfied_by(history)


class TestViolationMessages:
    def test_perfect_reports_false_suspicion(self):
        problems = Perfect.violations(diamond_p_history())
        assert any("strong accuracy" in p for p in problems)

    def test_diamond_p_reports_accuracy(self):
        problems = EventuallyPerfect.violations(broken_history())
        assert any("eventual strong accuracy" in p for p in problems)

    def test_names(self):
        assert Perfect().name == "P"
        assert EventuallyPerfect().name == "◇P"
        assert EventuallyStrong().name == "◇S"
