"""Tests for the Section-4 failure-detector simulation from ES."""

import pytest

from repro import ATt2, Schedule
from repro.detectors import (
    EventuallyPerfect,
    EventuallyStrong,
    Perfect,
    simulate_from_schedule,
)
from repro.detectors.simulation import simulate_from_trace
from repro.model.schedule import ScheduleBuilder
from repro.sim.kernel import run_algorithm
from repro.sim.random_schedules import random_es_schedule, random_scs_schedule
from repro.workloads import rotating_delays


class TestScheduleSimulation:
    def test_synchronous_run_gives_perfect_detector(self):
        schedule = Schedule.synchronous(4, 2, 8,
                                        crashes={3: (2, [0]), 2: (5, [])})
        history = simulate_from_schedule(schedule)
        assert Perfect.satisfied_by(history)

    @pytest.mark.parametrize("seed", range(20))
    def test_random_synchronous_runs_are_perfect(self, seed):
        schedule = random_scs_schedule(5, 2, seed, horizon=8)
        history = simulate_from_schedule(schedule)
        # Accuracy (no premature suspicion) holds unconditionally on
        # synchronous runs.
        assert history.strong_accuracy_holds(), seed
        # Completeness is observable within the window only if every crash
        # happens before the final round ("eventually" needs a future).
        last_crash = max(
            (spec.round for spec in schedule.crashes.values()), default=0
        )
        if last_crash < schedule.horizon:
            assert Perfect.satisfied_by(history), seed

    def test_false_suspicion_breaks_p_but_not_diamond_p(self):
        builder = ScheduleBuilder(4, 1, 8)
        builder.delay(0, 1, 2, 4)
        history = simulate_from_schedule(builder.build())
        assert not Perfect.satisfied_by(history)
        assert EventuallyPerfect.satisfied_by(history)
        assert EventuallyStrong.satisfied_by(history)

    def test_accuracy_from_synchrony_round(self):
        """The paper's Section-4 argument, quantified.

        After the round where every faulty process has crashed and no
        message is delayed, the simulated output is accurate.
        """
        schedule = rotating_delays(5, 2, 12, async_rounds=4)
        history = simulate_from_schedule(schedule)
        accuracy_round = history.eventual_strong_accuracy_round()
        assert accuracy_round is not None
        assert accuracy_round <= max(schedule.sync_from(), 1)

    @pytest.mark.parametrize("seed", range(20))
    def test_random_es_schedules_satisfy_diamond_p(self, seed):
        schedule = random_es_schedule(5, 2, seed, horizon=14, sync_by=6)
        history = simulate_from_schedule(schedule)
        # Completeness can only be observed if crashed processes have
        # stopped before the horizon; our generator guarantees crashes
        # land within the horizon but possibly in the last round — require
        # the suffix to exist.
        last_crash = max(
            (spec.round for spec in schedule.crashes.values()), default=0
        )
        if last_crash < schedule.horizon:
            assert EventuallyPerfect.satisfied_by(history), seed


class TestTraceSimulation:
    def test_trace_outputs_match_schedule_while_running(self):
        schedule = Schedule.synchronous(4, 1, 8, crashes={3: (2, [])})
        trace = run_algorithm(ATt2.factory(), schedule, [1, 2, 3, 4])
        from_schedule = simulate_from_schedule(schedule)
        from_trace = simulate_from_trace(trace)
        for pid in range(3):
            for k in (1, 2, 3):
                assert from_trace.output(pid, k) == from_schedule.output(
                    pid, k
                )

    def test_halted_processes_produce_no_output(self):
        schedule = Schedule.failure_free(3, 1, 10)
        trace = run_algorithm(ATt2.factory(), schedule, [1, 2, 3])
        history = simulate_from_trace(trace)
        # Everyone halts at t+3 = 4; no outputs afterwards.
        assert history.output(0, trace.rounds_executed + 1) is None
