"""Integration: the paper's headline — the price of indulgence is one round.

Exhaustively over serial runs (small systems):

* FloodSet (SCS) globally decides at exactly t + 1 — the synchronous
  optimum;
* A_{t+2} (ES) globally decides at exactly t + 2 in *every* synchronous
  run — one round more, never less (Proposition 1 forbids less), never
  more (Lemma 13);
* the previously best indulgent baseline (Hurfin–Raynal) pays up to
  2t + 2.
"""

import pytest

from repro import ATt2, ADiamondS, FloodSet, HurfinRaynalES
from repro.lowerbound.serial_runs import worst_case_serial
from repro.workloads import coordinator_killer
from tests.conftest import run_and_check


class TestHeadlineBound:
    @pytest.mark.parametrize("n,t", [(3, 1), (4, 1)])
    def test_floodset_exactly_t_plus_1(self, n, t):
        worst, _, best, _ = worst_case_serial(
            FloodSet, list(range(n)), t=t,
            crash_rounds_limit=t + 1, horizon=t + 4,
        )
        assert worst == best == t + 1

    @pytest.mark.parametrize("n,t", [(3, 1), (4, 1)])
    def test_att2_exactly_t_plus_2(self, n, t):
        worst, _, best, _ = worst_case_serial(
            ATt2.factory(), list(range(n)), t=t,
            crash_rounds_limit=t + 2, horizon=t + 9,
        )
        assert worst == best == t + 2

    @pytest.mark.parametrize("n,t", [(3, 1), (4, 1)])
    def test_no_es_algorithm_beats_t_plus_2(self, n, t):
        """Proposition 1, checked on every implemented ES algorithm.

        Every indulgent algorithm we ship has *some* serial run deciding
        at round >= t + 2.
        """
        from tests.conftest import es_algorithm_params

        for name, factory in es_algorithm_params():
            worst, _, _, _ = worst_case_serial(
                factory, list(range(n)), t=t,
                crash_rounds_limit=t + 2, horizon=4 * t + 12,
            )
            assert worst >= t + 2, (name, worst)

    def test_hurfin_raynal_pays_2t_plus_2(self):
        n, t = 5, 2
        schedule = coordinator_killer(n, t, 2 * t + 6, rounds_per_cycle=2)
        hr = run_and_check(HurfinRaynalES, schedule, list(range(n)))
        att2 = run_and_check(ATt2.factory(), schedule, list(range(n)))
        asd = run_and_check(ADiamondS.factory(), schedule, list(range(n)))
        assert hr.global_decision_round() == 2 * t + 2
        assert att2.global_decision_round() == t + 2
        assert asd.global_decision_round() == t + 2


class TestPriceIsExactlyOneRound:
    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_gap_between_models(self, t):
        from repro import Schedule

        n = 2 * t + 1
        schedule = Schedule.failure_free(n, t, t + 6)
        floodset = run_and_check(FloodSet, schedule, list(range(n)))
        att2 = run_and_check(ATt2.factory(), schedule, list(range(n)))
        assert (
            att2.global_decision_round()
            - floodset.global_decision_round()
            == 1
        )
        assert floodset.decided_values() == att2.decided_values()
