"""Failure injection: adversarial scenarios aimed at A_{t+2}'s seams.

Each test targets a specific interaction the correctness proofs rely on:
the elimination property feeding C's validity, DECIDE flooding under
crashes and losses, and coordinator failures inside the fallback
consensus.
"""

import pytest

from repro import ATt2, ChandraTouegES, HurfinRaynalES
from repro.analysis.metrics import check_consensus
from repro.model.schedule import ScheduleBuilder
from repro.sim.kernel import run_algorithm
from tests.conftest import run_and_check


def mixed_fast_path_builder(horizon=20):
    """n=3, t=1: p1 decides at t+2; p0 and p2 fall back to C with vc=1.

    Rounds 1-2 hide p0 from everyone (|Halt_0| > t, so p0's new estimate
    is ⊥); p0's round-3 ⊥ is delayed away from p1, which therefore sees
    only non-⊥ values and decides at round 3.
    """
    builder = ScheduleBuilder(3, 1, horizon)
    for k in (1, 2):
        builder.delay(0, 1, k, 3)
        builder.delay(0, 2, k, 3)
    builder.delay(0, 1, 3, 5)
    return builder


class TestDeciderCrashes:
    def test_decider_crashes_before_announcing(self):
        # p1 decides at round 3 and crashes in round 4 with its DECIDE
        # lost to everyone: the others must reach p1's value via C alone.
        builder = mixed_fast_path_builder()
        builder.crash(1, 4, delivered_to=())
        trace = run_algorithm(ATt2.factory(), builder.build(), [0, 1, 1])
        assert trace.decision_round(1) == 3
        assert trace.decided_values() == {1}
        assert not check_consensus(trace)

    def test_decider_crashes_mid_announcement(self):
        # The DECIDE reaches only p0, which relays it to p2.
        builder = mixed_fast_path_builder()
        builder.crash(1, 4, delivered_to=(0,))
        trace = run_algorithm(ATt2.factory(), builder.build(), [0, 1, 1])
        assert trace.decision_round(0) == 4  # adopted
        assert trace.decision_round(2) == 5  # via p0's relay
        assert trace.decided_values() == {1}

    def test_decide_lost_to_one_correct_process(self):
        # p1 stays alive but its DECIDE to p2 is delayed to the horizon;
        # p0's relay still delivers the decision promptly.
        builder = mixed_fast_path_builder()
        builder.delay(1, 2, 4, 19)
        trace = run_and_check(ATt2.factory(), builder.build(), [0, 1, 1])
        assert trace.decision_round(2) == 5
        assert trace.decided_values() == {1}


class TestFallbackUnderCoordinatorCrashes:
    @pytest.mark.parametrize("underlying", [ChandraTouegES, HurfinRaynalES])
    def test_first_fallback_coordinator_crashes(self, underlying):
        # Everybody falls back to C (symmetric ⊥); C's first coordinator
        # p0 crashes right as the fallback starts.
        builder = ScheduleBuilder(3, 1, 30)
        builder.delay(1, 0, 1, 3)
        builder.delay(2, 1, 1, 3)
        builder.delay(0, 2, 1, 3)
        builder.delay(2, 0, 2, 3)
        builder.delay(0, 1, 2, 3)
        builder.delay(1, 2, 2, 3)
        builder.crash(0, 4, delivered_to=())  # round t+3: C's round 1
        trace = run_and_check(ATt2.factory(underlying), builder.build(),
                              [4, 5, 6])
        assert len(trace.decided_values()) == 1
        assert trace.decided_values() <= {5, 6}

    def test_fallback_value_pinned_by_fast_decider(self):
        """Lemma 12's quorum argument: C can only decide the fast value."""
        for crash_round in (4, 5, 6, 7):
            builder = mixed_fast_path_builder()
            builder.crash(1, crash_round, delivered_to=())
            trace = run_algorithm(
                ATt2.factory(), builder.build(), [0, 1, 1]
            )
            assert trace.decided_values() == {1}, crash_round


class TestExtremeSystems:
    def test_minimum_system(self):
        # n=3, t=1 is the smallest indulgent configuration.
        from repro.sim.random_schedules import random_es_schedule

        for seed in range(25):
            schedule = random_es_schedule(3, 1, seed, horizon=24, sync_by=6)
            trace = run_algorithm(ATt2.factory(), schedule, [2, 0, 1])
            problems = check_consensus(trace, expect_termination=False)
            assert not problems, (seed, problems)

    def test_string_proposals(self):
        # The paper only requires a totally ordered proposal set.
        from repro import Schedule

        schedule = Schedule.failure_free(3, 1, 8)
        trace = run_and_check(
            ATt2.factory(), schedule, ["charlie", "alice", "bob"]
        )
        assert trace.decided_values() == {"alice"}

    def test_tuple_proposals_with_process_tags(self):
        # Footnote in Section 3: values can be tagged with process ids to
        # induce the total order.
        from repro import Schedule

        schedule = Schedule.failure_free(3, 1, 8)
        proposals = [(10, 0), (10, 1), (5, 2)]
        trace = run_and_check(ATt2.factory(), schedule, proposals)
        assert trace.decided_values() == {(5, 2)}

    def test_wide_system(self):
        from repro import Schedule
        from repro.workloads import serial_cascade

        n, t = 13, 6
        schedule = serial_cascade(n, t, t + 6)
        trace = run_and_check(ATt2.factory(), schedule, list(range(n)))
        assert trace.global_decision_round() == t + 2
