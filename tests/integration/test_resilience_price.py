"""Integration: the resilience price — t < n/2 is necessary (E10).

Chandra & Toueg showed a majority of correct processes is necessary for
consensus with unreliable failure detection.  We reproduce the split-brain
scenario: with t >= n/2 an ES-legal partition keeps two halves mutually
suspected; each half sees |Halt| <= t (no false-suspicion evidence!) and
decides its own minimum.
"""

from repro import ATt2, FloodSet, Schedule
from repro.analysis.metrics import check_agreement, check_consensus
from repro.model.es import is_es
from repro.sim.kernel import run_algorithm
from repro.workloads import partitioned_prefix
from tests.conftest import run_and_check


class TestSplitBrain:
    def test_partition_is_es_legal_when_t_is_half(self):
        schedule = partitioned_prefix(4, 2, 10, rounds=8, heal_at=10)
        assert is_es(schedule, require_sync_by=None)

    def test_att2_disagrees_with_majority_faults(self):
        schedule = partitioned_prefix(4, 2, 10, rounds=8, heal_at=10)
        factory = ATt2.factory(allow_unsafe_resilience=True)
        trace = run_algorithm(factory, schedule, [0, 0, 1, 1])
        assert trace.decided_values() == {0, 1}
        assert check_agreement(trace)

    def test_both_halves_decide_fast(self):
        # Each half sees a full exchange among n - t processes; |Halt|
        # never exceeds t, so both decide at t + 2 — confidently wrong.
        schedule = partitioned_prefix(4, 2, 10, rounds=8, heal_at=10)
        factory = ATt2.factory(allow_unsafe_resilience=True)
        trace = run_algorithm(factory, schedule, [0, 0, 1, 1])
        assert trace.decision_round(0) == 4
        assert trace.decision_round(2) == 4

    def test_six_processes_three_faults(self):
        schedule = partitioned_prefix(6, 3, 12, rounds=10, heal_at=12)
        factory = ATt2.factory(allow_unsafe_resilience=True)
        trace = run_algorithm(factory, schedule, [0, 0, 0, 1, 1, 1])
        assert trace.decided_values() == {0, 1}


class TestContrastWithSynchronousModel:
    def test_floodset_tolerates_majority_faults_in_scs(self):
        """Non-indulgent consensus has no majority requirement."""
        n, t = 4, 3
        schedule = Schedule.synchronous(
            n, t, t + 3,
            crashes={0: (1, []), 1: (2, []), 2: (3, [])},
        )
        trace = run_and_check(FloodSet, schedule, [3, 2, 1, 4])
        assert trace.global_decision_round() == t + 1

    def test_same_partition_cannot_happen_in_scs(self):
        # The split-brain schedule is not SCS-legal: SCS has no delays.
        from repro.model.scs import check_scs

        schedule = partitioned_prefix(4, 2, 10, rounds=8, heal_at=10)
        assert check_scs(schedule)
