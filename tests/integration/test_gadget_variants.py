"""Integration: the Figure-1 gadget across algorithm variants and configs."""

import pytest

from repro import ATt2, ATt2Optimized
from repro.algorithms.chandra_toueg import ChandraTouegES
from repro.algorithms.hurfin_raynal import HurfinRaynalES
from repro.lowerbound.figure1 import FigureOneConfig, build_figure_one


class TestOptimizedVariantInGadget:
    def test_claims_hold_for_optimized_att2(self):
        report = build_figure_one(ATt2Optimized.factory(), n=4, t=1)
        assert report.all_claims_hold

    def test_claims_hold_with_hr_underlying(self):
        report = build_figure_one(
            ATt2.factory(HurfinRaynalES), n=4, t=1
        )
        assert report.all_claims_hold

    def test_k_prime_depends_on_underlying(self):
        ct = build_figure_one(ATt2.factory(ChandraTouegES), n=3, t=1)
        hr = build_figure_one(ATt2.factory(HurfinRaynalES), n=3, t=1)
        # The asynchronous runs fall back to C; HR cycles are shorter.
        assert hr.k_prime <= ct.k_prime


class TestAlternativeSuspectSets:
    @pytest.mark.parametrize("extra", [(), (3,)])
    def test_partial_suspect_sets(self, extra):
        # The proof allows any {p'_2..p'_{i+1}} containing the pivot.
        config = FigureOneConfig(
            n=5,
            t=1,
            proposals=(0, 1, 1, 1, 1),
            p_one=0,
            p_i_plus_1=2,
            suspects=frozenset({2, *extra}),
            prefix={},
        )
        report = build_figure_one(ATt2.factory(), config)
        assert report.claim_a1_s1
        assert report.claim_a0_s0
        assert report.claim_common

    def test_pivot_must_be_suspected(self):
        # With the pivot receiving p'_1's round-t message in *both*
        # synchronous runs, s1 = s0 and the gadget degenerates — the
        # claims still hold trivially; verify the builder doesn't break.
        config = FigureOneConfig(
            n=4,
            t=1,
            proposals=(0, 1, 1, 1),
            p_one=0,
            p_i_plus_1=1,
            suspects=frozenset({1, 2, 3}),
            prefix={},
        )
        report = build_figure_one(ATt2.factory(), config)
        assert report.all_claims_hold
