"""Integration: every algorithm on shared workloads, side by side."""

import pytest

from repro import Schedule
from repro.analysis.metrics import check_consensus
from repro.analysis.sweep import run_case
from repro.sim.kernel import run_algorithm
from repro.sim.random_schedules import random_es_schedule, random_proposals
from repro.workloads import rotating_delays, serial_cascade
from tests.conftest import es_algorithm_params, run_and_check


class TestSharedSynchronousWorkloads:
    @pytest.mark.parametrize("name,factory", es_algorithm_params())
    def test_failure_free(self, name, factory):
        schedule = Schedule.failure_free(5, 2, 16)
        trace = run_and_check(factory, schedule, [3, 1, 4, 1, 5])
        assert trace.global_decision_round() is not None

    @pytest.mark.parametrize("name,factory", es_algorithm_params())
    def test_serial_cascade(self, name, factory):
        schedule = serial_cascade(5, 2, 20)
        trace = run_and_check(factory, schedule, [3, 1, 4, 1, 5])
        assert len(trace.decided_values()) == 1

    @pytest.mark.parametrize("name,factory", es_algorithm_params())
    def test_async_prefix_recovery(self, name, factory):
        schedule = rotating_delays(5, 2, 30, async_rounds=5)
        trace = run_and_check(factory, schedule, [3, 1, 4, 1, 5])
        assert len(trace.decided_values()) == 1


class TestSharedRandomWorkloads:
    @pytest.mark.parametrize("name,factory", es_algorithm_params())
    @pytest.mark.parametrize("seed", [0, 7, 21, 33])
    def test_random_es_safety(self, name, factory, seed):
        schedule = random_es_schedule(5, 2, seed, horizon=30, sync_by=6)
        trace = run_algorithm(factory, schedule, random_proposals(5, seed))
        problems = check_consensus(trace, expect_termination=False)
        assert not problems, (name, seed, problems)


class TestRelativeSpeed:
    def test_att2_never_slower_than_baselines_on_synchronous_runs(self):
        """Fast decision makes A_{t+2} worst-case optimal among ES peers."""
        from repro import ChandraTouegES, HurfinRaynalES, ATt2
        from repro.workloads import coordinator_killer

        n, t = 5, 2
        workloads = {
            "ff": Schedule.failure_free(n, t, 24),
            "cascade": serial_cascade(n, t, 24),
            "killer2": coordinator_killer(n, t, 24, rounds_per_cycle=2),
            "killer3": coordinator_killer(n, t, 24, rounds_per_cycle=3),
        }
        rounds: dict[str, list[int]] = {"att2": [], "hr": [], "ct": []}
        for name, schedule in workloads.items():
            for algo, factory in (
                ("att2", ATt2.factory()),
                ("hr", HurfinRaynalES),
                ("ct", ChandraTouegES),
            ):
                record, _ = run_case(
                    algo, factory, name, schedule, list(range(n))
                )
                rounds[algo].append(record.global_round)
        # A_{t+2} is flat at t+2; the baselines can be luckier on single
        # runs (HR decides in 2 rounds failure-free) but pay much more in
        # the worst case — that asymmetry is the paper's point.
        assert set(rounds["att2"]) == {t + 2}
        assert max(rounds["hr"]) == 2 * t + 2
        assert max(rounds["ct"]) == 3 * t + 3
        assert max(rounds["att2"]) < max(rounds["hr"]) < max(rounds["ct"])
