"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_algorithms(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "att2" in out
        assert "hurfin_raynal" in out


class TestRun:
    def test_basic_run(self, capsys):
        code = main([
            "run", "--algorithm", "att2", "--n", "5", "--t", "2",
            "--workload", "cascade",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "global decision round: 4" in out
        assert "consensus properties: ok" in out

    def test_diagram_flag(self, capsys):
        code = main([
            "run", "--algorithm", "floodset", "--n", "3", "--t", "1",
            "--workload", "failure_free", "--diagram",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "proc" in out

    def test_custom_proposals(self, capsys):
        code = main([
            "run", "--algorithm", "att2", "--n", "3", "--t", "1",
            "--workload", "failure_free", "--proposals", "7,8,9",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "7" in out

    def test_proposal_count_mismatch(self):
        with pytest.raises(SystemExit):
            main([
                "run", "--n", "3", "--t", "1", "--proposals", "1,2",
            ])

    def test_non_integer_proposals_exit_cleanly(self):
        # A typo'd proposal list must produce the clean SystemExit message,
        # not a raw ValueError traceback.
        with pytest.raises(SystemExit, match="comma-separated integers"):
            main([
                "run", "--n", "3", "--t", "1", "--proposals", "1,x,3",
            ])

    def test_unknown_workload(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["run", "--workload", "nope"])

    def test_async_prefix_workload(self, capsys):
        code = main([
            "run", "--algorithm", "afp2", "--n", "4", "--t", "1",
            "--workload", "async_prefix", "--sync-after", "2",
        ])
        assert code == 0

    def test_violation_returns_nonzero(self, capsys):
        # FloodSetWS on an async-prefix workload can disagree; exercise the
        # violation path via the killer of test_floodset_ws: not available
        # through the CLI workloads, so use floodset (SCS-only) on
        # async_prefix, which merely stays safe — instead check rc-0 here.
        code = main([
            "run", "--algorithm", "floodset_ws", "--n", "3", "--t", "1",
            "--workload", "failure_free",
        ])
        assert code == 0


class TestExperiments:
    def test_prints_tables(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "E5: the price of indulgence" in out
        assert "E10: split-brain" in out


class TestSweep:
    ARGS = [
        "sweep", "--cases-per-family", "2", "--seed", "3",
        "--algorithms", "att2,floodset,hurfin_raynal",
    ]

    def test_runs_and_reports_safety(self, capsys):
        assert main(self.ARGS + ["--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "Batch sweep" in out
        assert "att2" in out and "floodset" in out
        assert "safety (agreement + validity): ok" in out

    def test_parallel_json_matches_serial(self, capsys, tmp_path):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        assert main(self.ARGS + ["--workers", "1", "--json",
                                 str(serial)]) == 0
        assert main(self.ARGS + ["--workers", "2", "--json",
                                 str(parallel)]) == 0
        capsys.readouterr()
        assert serial.read_bytes() == parallel.read_bytes()

    def test_unknown_algorithm_rejected(self):
        from repro.engine import GridError

        with pytest.raises(GridError, match="unknown algorithm"):
            main(["sweep", "--algorithms", "nope"])

    def test_default_grid_meets_acceptance_floor(self, capsys):
        assert main(["sweep", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        first_line = out.splitlines()[0]
        cases = int(first_line.split()[1])
        assert cases >= 100
        assert "5 algorithms" in first_line

    def test_unwritable_json_path_fails_before_running(self, monkeypatch):
        # The output path is validated before any case executes, so a typo
        # cannot cost a full grid of compute.
        import repro.engine

        def boom(*args, **kwargs):
            raise AssertionError("grid executed despite bad --json path")

        monkeypatch.setattr(repro.engine, "run_batch", boom)
        with pytest.raises(SystemExit, match="cannot write --json"):
            main(self.ARGS + ["--json", "/nonexistent-dir/sweep.json"])


class TestSweepCache:
    ARGS = [
        "sweep", "--cases-per-family", "2", "--seed", "3",
        "--algorithms", "att2,floodset", "--workers", "4",
    ]

    def _run(self, capsys, extra):
        assert main(self.ARGS + extra) == 0
        return capsys.readouterr().out

    def test_cold_then_warm_is_all_hits_and_byte_identical(
        self, capsys, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        cold_json = tmp_path / "cold.json"
        warm_json = tmp_path / "warm.json"
        cold = self._run(
            capsys, ["--cache", cache_dir, "--json", str(cold_json)]
        )
        warm = self._run(
            capsys, ["--cache", cache_dir, "--json", str(warm_json)]
        )
        cases = int(cold.splitlines()[0].split()[1])
        assert f"cache: 0 hits, {cases} misses" in cold
        assert f"cache: {cases} hits, 0 misses" in warm
        assert cold_json.read_bytes() == warm_json.read_bytes()

    def test_cache_output_matches_uncached(self, capsys, tmp_path):
        cached_json = tmp_path / "cached.json"
        plain_json = tmp_path / "plain.json"
        self._run(capsys, ["--cache", str(tmp_path / "cache"),
                           "--json", str(cached_json)])
        self._run(capsys, ["--json", str(plain_json)])
        assert cached_json.read_bytes() == plain_json.read_bytes()

    def test_no_cache_bypasses(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        self._run(capsys, ["--cache", cache_dir])
        out = self._run(capsys, ["--cache", cache_dir, "--no-cache"])
        assert "cache:" not in out

    def test_unusable_cache_dir_fails_cleanly(self, tmp_path):
        # A file where the cache directory should go: clean SystemExit,
        # not a Path.mkdir traceback.
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        with pytest.raises(SystemExit, match="cannot use --cache"):
            main(self.ARGS + ["--cache", str(blocker)])
