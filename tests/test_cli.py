"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_algorithms(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "att2" in out
        assert "hurfin_raynal" in out


class TestRun:
    def test_basic_run(self, capsys):
        code = main([
            "run", "--algorithm", "att2", "--n", "5", "--t", "2",
            "--workload", "cascade",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "global decision round: 4" in out
        assert "consensus properties: ok" in out

    def test_diagram_flag(self, capsys):
        code = main([
            "run", "--algorithm", "floodset", "--n", "3", "--t", "1",
            "--workload", "failure_free", "--diagram",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "proc" in out

    def test_custom_proposals(self, capsys):
        code = main([
            "run", "--algorithm", "att2", "--n", "3", "--t", "1",
            "--workload", "failure_free", "--proposals", "7,8,9",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "7" in out

    def test_proposal_count_mismatch(self):
        with pytest.raises(SystemExit):
            main([
                "run", "--n", "3", "--t", "1", "--proposals", "1,2",
            ])

    def test_non_integer_proposals_exit_cleanly(self):
        # A typo'd proposal list must produce the clean SystemExit message,
        # not a raw ValueError traceback.
        with pytest.raises(SystemExit, match="comma-separated integers"):
            main([
                "run", "--n", "3", "--t", "1", "--proposals", "1,x,3",
            ])

    def test_unknown_workload(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["run", "--workload", "nope"])

    def test_async_prefix_workload(self, capsys):
        code = main([
            "run", "--algorithm", "afp2", "--n", "4", "--t", "1",
            "--workload", "async_prefix", "--sync-after", "2",
        ])
        assert code == 0

    def test_violation_returns_nonzero(self, capsys):
        # FloodSetWS on an async-prefix workload can disagree; exercise the
        # violation path via the killer of test_floodset_ws: not available
        # through the CLI workloads, so use floodset (SCS-only) on
        # async_prefix, which merely stays safe — instead check rc-0 here.
        code = main([
            "run", "--algorithm", "floodset_ws", "--n", "3", "--t", "1",
            "--workload", "failure_free",
        ])
        assert code == 0


class TestExperiments:
    def test_prints_tables(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "E5: the price of indulgence" in out
        assert "E10: split-brain" in out


class TestSweep:
    ARGS = [
        "sweep", "--cases-per-family", "2", "--seed", "3",
        "--algorithms", "att2,floodset,hurfin_raynal",
    ]

    def test_runs_and_reports_safety(self, capsys):
        assert main(self.ARGS + ["--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "Batch sweep" in out
        assert "att2" in out and "floodset" in out
        assert "safety (agreement + validity): ok" in out

    def test_parallel_json_matches_serial(self, capsys, tmp_path):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        assert main(self.ARGS + ["--workers", "1", "--json",
                                 str(serial)]) == 0
        assert main(self.ARGS + ["--workers", "2", "--json",
                                 str(parallel)]) == 0
        capsys.readouterr()
        assert serial.read_bytes() == parallel.read_bytes()

    def test_unknown_algorithm_rejected(self):
        from repro.engine import GridError

        with pytest.raises(GridError, match="unknown algorithm"):
            main(["sweep", "--algorithms", "nope"])

    def test_default_grid_meets_acceptance_floor(self, capsys):
        assert main(["sweep", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        first_line = out.splitlines()[0]
        cases = int(first_line.split()[1])
        assert cases >= 100
        assert "5 algorithms" in first_line

    def test_unwritable_json_path_fails_before_running(self, monkeypatch):
        # The output path is validated before any case executes, so a typo
        # cannot cost a full grid of compute.
        import repro.engine

        def boom(*args, **kwargs):
            raise AssertionError("grid executed despite bad --json path")

        monkeypatch.setattr(repro.engine, "run_batch", boom)
        with pytest.raises(SystemExit, match="cannot write --json"):
            main(self.ARGS + ["--json", "/nonexistent-dir/sweep.json"])


class TestSweepCache:
    ARGS = [
        "sweep", "--cases-per-family", "2", "--seed", "3",
        "--algorithms", "att2,floodset", "--workers", "4",
    ]

    def _run(self, capsys, extra):
        assert main(self.ARGS + extra) == 0
        return capsys.readouterr().out

    def test_cold_then_warm_is_all_hits_and_byte_identical(
        self, capsys, tmp_path
    ):
        cache_dir = str(tmp_path / "cache")
        cold_json = tmp_path / "cold.json"
        warm_json = tmp_path / "warm.json"
        cold = self._run(
            capsys, ["--cache", cache_dir, "--json", str(cold_json)]
        )
        warm = self._run(
            capsys, ["--cache", cache_dir, "--json", str(warm_json)]
        )
        cases = int(cold.splitlines()[0].split()[1])
        assert f"cache: 0 hits, {cases} misses" in cold
        assert f"cache: {cases} hits, 0 misses" in warm
        assert cold_json.read_bytes() == warm_json.read_bytes()

    def test_cache_output_matches_uncached(self, capsys, tmp_path):
        cached_json = tmp_path / "cached.json"
        plain_json = tmp_path / "plain.json"
        self._run(capsys, ["--cache", str(tmp_path / "cache"),
                           "--json", str(cached_json)])
        self._run(capsys, ["--json", str(plain_json)])
        assert cached_json.read_bytes() == plain_json.read_bytes()

    def test_no_cache_bypasses(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        self._run(capsys, ["--cache", cache_dir])
        out = self._run(capsys, ["--cache", cache_dir, "--no-cache"])
        assert "cache:" not in out

    def test_unusable_cache_dir_fails_cleanly(self, tmp_path):
        # A file where the cache directory should go: clean SystemExit,
        # not a Path.mkdir traceback.
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        with pytest.raises(SystemExit, match="cannot use --cache"):
            main(self.ARGS + ["--cache", str(blocker)])


class TestSweepValidation:
    ARGS = ["sweep", "--cases-per-family", "2", "--algorithms", "att2"]

    def test_workers_zero_rejected(self):
        with pytest.raises(SystemExit, match="--workers must be >= 1"):
            main(self.ARGS + ["--workers", "0"])

    def test_negative_workers_rejected(self):
        with pytest.raises(SystemExit, match="--workers must be >= 1"):
            main(self.ARGS + ["--workers", "-3"])

    def test_malformed_shard_rejected(self):
        with pytest.raises(SystemExit, match="malformed shard"):
            main(self.ARGS + ["--shard", "banana"])

    def test_shard_index_at_or_past_count_rejected(self):
        with pytest.raises(SystemExit, match="shard index"):
            main(self.ARGS + ["--shard", "2/2"])

    def test_serial_backend_with_parallel_workers_rejected(self):
        with pytest.raises(SystemExit, match="serial backend"):
            main(self.ARGS + ["--backend", "serial", "--workers", "4"])

    def test_grid_and_algorithms_mutually_exclusive(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text("{}")
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["sweep", "--grid", str(path), "--algorithms", "att2"])

    def test_grid_rejects_every_explicit_shaping_flag(self, tmp_path):
        # A grid file defines the whole experiment; silently ignoring an
        # explicit --seed would let someone publish numbers for a sweep
        # they never ran.
        path = tmp_path / "grid.json"
        path.write_text("{}")
        for flags in (["--seed", "9"], ["--n", "5"], ["--t", "2"],
                      ["--cases-per-family", "4"],
                      ["--proposals-mode", "range"]):
            with pytest.raises(SystemExit, match="mutually exclusive"):
                main(["sweep", "--grid", str(path)] + flags)

    def test_wrongly_typed_grid_file_fails_cleanly(self, tmp_path):
        # count as a JSON string: clean SystemExit naming the key, not a
        # TypeError traceback out of GridSpec validation.
        path = tmp_path / "grid.json"
        path.write_text(
            '{"version": 1, "n": 5, "t": 2, "algorithms": ["att2"],'
            ' "seed": 0, "proposal_mode": "range",'
            ' "families": [{"name": "es", "kind": "random_es",'
            ' "count": "4"}]}'
        )
        with pytest.raises(SystemExit, match="'count' must be"):
            main(["sweep", "--grid", str(path)])

    def test_missing_grid_file_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read --grid"):
            main(["sweep", "--grid", str(tmp_path / "absent.json")])

    def test_invalid_grid_file_rejected(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text('{"version": 99}')
        with pytest.raises(SystemExit, match="invalid --grid"):
            main(["sweep", "--grid", str(path)])


class TestSweepGridFiles:
    ARGS = [
        "sweep", "--cases-per-family", "2", "--seed", "3",
        "--algorithms", "att2,floodset", "--backend", "serial",
    ]

    def test_save_grid_roundtrips_through_sweep(self, capsys, tmp_path):
        from repro.engine import GridSpec

        grid_path = tmp_path / "grid.json"
        flags_json = tmp_path / "flags.json"
        file_json = tmp_path / "file.json"
        assert main(self.ARGS + ["--save-grid", str(grid_path),
                                 "--json", str(flags_json)]) == 0
        loaded = GridSpec.load(str(grid_path))
        assert loaded.algorithms == ("att2", "floodset")
        assert loaded.seed == 3
        assert main(["sweep", "--grid", str(grid_path), "--backend",
                     "serial", "--json", str(file_json)]) == 0
        capsys.readouterr()
        assert flags_json.read_bytes() == file_json.read_bytes()


class TestSweepShardsAndMerge:
    ARGS = [
        "sweep", "--cases-per-family", "2", "--seed", "3",
        "--algorithms", "att2,floodset",
    ]

    def test_sharded_sweeps_merge_byte_identical(self, capsys, tmp_path):
        whole = tmp_path / "whole.json"
        merged = tmp_path / "merged.json"
        shards = [tmp_path / f"shard{i}.json" for i in range(2)]
        backends = ["threads", "serial"]
        assert main(self.ARGS + ["--json", str(whole)]) == 0
        for i, (path, backend) in enumerate(zip(shards, backends)):
            assert main(self.ARGS + ["--shard", f"{i}/2", "--backend",
                                     backend, "--json", str(path)]) == 0
        # Merge in reversed arrival order: the output must not care.
        assert main(["merge", str(shards[1]), str(shards[0]),
                     "--json", str(merged)]) == 0
        out = capsys.readouterr().out
        assert "merged" in out
        assert merged.read_bytes() == whole.read_bytes()

    def test_shard_line_reports_slice(self, capsys):
        assert main(self.ARGS + ["--shard", "0/2"]) == 0
        first_line = capsys.readouterr().out.splitlines()[0]
        assert "shard 0/2 of 18" in first_line
        assert first_line.startswith("sweep: 9 cases")

    def test_merge_rejects_overlapping_shards(self, capsys, tmp_path):
        shard = tmp_path / "shard.json"
        merged = tmp_path / "merged.json"
        assert main(self.ARGS + ["--shard", "0/2", "--json",
                                 str(shard)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="shards overlap"):
            main(["merge", str(shard), str(shard), "--json", str(merged)])

    def test_merge_rejects_malformed_input(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="invalid shard export"):
            main(["merge", str(bad), "--json", str(tmp_path / "out.json")])


class TestCacheStats:
    ARGS = [
        "sweep", "--cases-per-family", "2", "--seed", "3",
        "--algorithms", "att2,floodset", "--backend", "serial",
    ]

    def test_stats_accumulate_across_sweeps(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(self.ARGS + ["--cache", cache_dir]) == 0
        assert main(self.ARGS + ["--cache", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "18 entries" in out
        assert "18 hits, 18 misses" in out
        assert "over 2 sweeps" in out
        assert "hit rate 50.0%" in out

    def test_stats_on_fresh_cache_dir(self, capsys, tmp_path):
        from repro.engine import ResultCache

        ResultCache(tmp_path / "cache")  # created, never swept
        assert main(["cache", "stats", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "0 entries" in out
        assert "no recorded sweeps" in out

    def test_stats_on_missing_dir_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read cache"):
            main(["cache", "stats", str(tmp_path / "absent")])


class TestSweepTraceModes:
    ARGS = [
        "sweep", "--cases-per-family", "2", "--seed", "5",
        "--algorithms", "att2,hurfin_raynal", "--backend", "serial",
    ]

    def test_full_and_lean_exports_byte_identical(self, capsys, tmp_path):
        lean, full = str(tmp_path / "lean.json"), str(tmp_path / "full.json")
        assert main(self.ARGS + ["--trace", "lean", "--json", lean]) == 0
        assert main(self.ARGS + ["--trace", "full", "--json", full]) == 0
        with open(lean, "rb") as a, open(full, "rb") as b:
            assert a.read() == b.read()

    def test_trace_mode_announced(self, capsys):
        assert main(self.ARGS) == 0
        assert "trace=lean" in capsys.readouterr().out

    def test_unknown_trace_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--trace", "chatty"])


class TestSweepGridDirectory:
    def _write_grid(self, path, n, t):
        from repro.engine import default_sweep_grid

        default_sweep_grid(
            n, t, cases_per_family=2, algorithms=("att2",)
        ).save(str(path))

    def test_directory_runs_every_grid_combined(self, capsys, tmp_path):
        import json

        grids = tmp_path / "grids"
        grids.mkdir()
        self._write_grid(grids / "alpha.json", 4, 1)
        self._write_grid(grids / "beta.json", 5, 2)
        out_path = str(tmp_path / "combined.json")
        assert main([
            "sweep", "--grid", str(grids), "--backend", "serial",
            "--json", out_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "alpha: n=4/t=1" in out and "beta: n=5/t=2" in out
        with open(out_path, encoding="utf-8") as handle:
            data = json.load(handle)
        prefixes = {r["workload"].split(":")[0] for r in data["records"]}
        assert prefixes == {"alpha", "beta"}
        indices = [r["case_index"] for r in data["records"]]
        assert sorted(indices) == list(range(len(indices)))

    def test_single_grid_directory_behaves_like_the_file(
        self, capsys, tmp_path
    ):
        grids = tmp_path / "grids"
        grids.mkdir()
        self._write_grid(grids / "only.json", 4, 1)
        a, b = str(tmp_path / "dir.json"), str(tmp_path / "file.json")
        assert main(["sweep", "--grid", str(grids), "--backend", "serial",
                     "--json", a]) == 0
        assert main(["sweep", "--grid", str(grids / "only.json"),
                     "--backend", "serial", "--json", b]) == 0
        with open(a, "rb") as fa, open(b, "rb") as fb:
            assert fa.read() == fb.read()

    def test_empty_directory_rejected(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SystemExit, match="no \\*.json grid files"):
            main(["sweep", "--grid", str(empty)])

    def test_save_grid_rejected_for_multi_grid_sweeps(self, tmp_path):
        grids = tmp_path / "grids"
        grids.mkdir()
        self._write_grid(grids / "a.json", 4, 1)
        self._write_grid(grids / "b.json", 5, 2)
        with pytest.raises(SystemExit, match="--save-grid"):
            main(["sweep", "--grid", str(grids),
                  "--save-grid", str(tmp_path / "out.json")])


class TestSweepProfiles:
    def test_profile_excludes_grid_and_shape_flags(self, tmp_path):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["sweep", "--profile", "large",
                  "--grid", str(tmp_path / "g.json")])
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["sweep", "--profile", "large", "--n", "9"])

    def test_unknown_profile_fails_cleanly(self):
        with pytest.raises(SystemExit, match="unknown sweep profile"):
            main(["sweep", "--profile", "nope"])

    def test_profile_sharding_slices_the_combined_grid(self, capsys):
        # Shard 0/50 keeps the profile test affordable: a deterministic
        # 1/50th slice of the n=25 + n=50 case list still exercises
        # expansion, prefixing and execution end to end.
        assert main([
            "sweep", "--profile", "large", "--shard", "0/50",
            "--backend", "serial",
        ]) == 0
        out = capsys.readouterr().out
        assert "n25: n=25/t=8" in out and "n50: n=50/t=16" in out
        assert "shard 0/50 of 110" in out


class TestGridValidate:
    def test_valid_file_reports_shape(self, capsys, tmp_path):
        from repro.engine import default_sweep_grid

        path = tmp_path / "grid.json"
        default_sweep_grid(5, 2, cases_per_family=2).save(str(path))
        assert main(["grid", "validate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "n=5, t=2" in out

    def test_invalid_file_fails_with_reason(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}', encoding="utf-8")
        assert main(["grid", "validate", str(path)]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out and "version" in out

    def test_directory_mixes_and_counts(self, capsys, tmp_path):
        from repro.engine import default_sweep_grid

        grids = tmp_path / "grids"
        grids.mkdir()
        default_sweep_grid(4, 1, cases_per_family=2).save(
            str(grids / "good.json")
        )
        (grids / "bad.json").write_text("not json", encoding="utf-8")
        assert main(["grid", "validate", str(grids)]) == 1
        out = capsys.readouterr().out
        assert "1 of 2 grid files invalid" in out

    def test_empty_directory_rejected(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SystemExit, match="no \\*.json grid files"):
            main(["grid", "validate", str(empty)])


class TestCacheGcCommand:
    ARGS = [
        "sweep", "--cases-per-family", "2", "--seed", "3",
        "--algorithms", "att2", "--backend", "serial",
    ]

    def test_gc_then_stats_reports_last_gc(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(self.ARGS + ["--cache", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "gc", cache_dir, "--max-bytes", "0"]) == 0
        out = capsys.readouterr().out
        assert "removed 9 entries" in out
        assert main(["cache", "stats", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "0 entries" in out
        assert "last gc: removed 9 entries" in out

    def test_gc_requires_a_bound(self, tmp_path):
        (tmp_path / "cache").mkdir()
        with pytest.raises(SystemExit, match="at least one bound"):
            main(["cache", "gc", str(tmp_path / "cache")])

    def test_gc_on_missing_dir_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot gc cache"):
            main(["cache", "gc", str(tmp_path / "absent"),
                  "--max-bytes", "0"])

    def test_stats_reports_never_gced(self, capsys, tmp_path):
        from repro.engine import ResultCache

        ResultCache(tmp_path / "cache")
        assert main(["cache", "stats", str(tmp_path / "cache")]) == 0
        assert "last gc: never" in capsys.readouterr().out


class TestRunTraceMode:
    def test_lean_run_works_without_diagram(self, capsys):
        code = main([
            "run", "--algorithm", "att2", "--n", "5", "--t", "2",
            "--workload", "cascade", "--trace", "lean",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "global decision round: 4" in out
        assert "consensus properties: ok" in out

    def test_diagram_with_lean_trace_exits_cleanly(self):
        # Full-trace-only consumers must say what to do, not crash deep
        # inside the renderer (the lean-trace consumers follow-up).
        with pytest.raises(SystemExit, match="requires --trace full"):
            main([
                "run", "--algorithm", "att2", "--n", "5", "--t", "2",
                "--workload", "cascade", "--trace", "lean", "--diagram",
            ])

    def test_lean_and_full_report_identical_decisions(self, capsys):
        main([
            "run", "--algorithm", "att2", "--n", "5", "--t", "2",
            "--workload", "cascade", "--trace", "full",
        ])
        full_out = capsys.readouterr().out
        main([
            "run", "--algorithm", "att2", "--n", "5", "--t", "2",
            "--workload", "cascade", "--trace", "lean",
        ])
        lean_out = capsys.readouterr().out
        pick = lambda out: [
            line for line in out.splitlines()
            if "global decision round" in line or "decisions:" in line
        ]
        assert pick(full_out) == pick(lean_out)


class TestOrchestrate:
    """The distributed-sweep driver behind ``repro orchestrate``."""

    def _grid_file(self, tmp_path, capsys):
        import json

        from repro.engine import GridSpec, family

        grid = GridSpec(
            n=3,
            t=1,
            algorithms=("att2", "floodset"),
            families=(
                family("es", "random_es", count=3, horizon=10),
                family("ff", "failure_free", horizon=10),
            ),
            seed=3,
            proposal_mode="random",
        )
        grid_path = tmp_path / "grid.json"
        grid_path.write_text(json.dumps(grid.to_data()))
        return grid_path

    def test_local_workers_match_serial_sweep_byte_identically(
        self, capsys, tmp_path
    ):
        grid_path = self._grid_file(tmp_path, capsys)
        serial = tmp_path / "serial.json"
        orchestrated = tmp_path / "orch.json"
        assert main(["sweep", "--grid", str(grid_path),
                     "--json", str(serial)]) == 0
        assert main(["orchestrate", "--grid", str(grid_path),
                     "--local", "2", "--json", str(orchestrated)]) == 0
        out = capsys.readouterr().out
        assert "4/4 shards completed" in out
        assert orchestrated.read_bytes() == serial.read_bytes()

    def test_chaos_killed_worker_retries_to_identical_output(
        self, capsys, tmp_path
    ):
        # The acceptance contract end to end: SIGKILL one shard's first
        # attempt and the merged export must still match serial bytes.
        grid_path = self._grid_file(tmp_path, capsys)
        serial = tmp_path / "serial.json"
        orchestrated = tmp_path / "orch.json"
        assert main(["sweep", "--grid", str(grid_path),
                     "--json", str(serial)]) == 0
        assert main(["orchestrate", "--grid", str(grid_path),
                     "--local", "2", "--chaos-kill", "0",
                     "--backoff", "0.05",
                     "--json", str(orchestrated)]) == 0
        out = capsys.readouterr().out
        assert "[retry] shard 0" in out
        assert orchestrated.read_bytes() == serial.read_bytes()

    def test_workers_file_inventory_drives_the_sweep(
        self, capsys, tmp_path
    ):
        grid_path = self._grid_file(tmp_path, capsys)
        hosts = tmp_path / "hosts.toml"
        hosts.write_text('[[workers]]\nname = "a"\n[[workers]]\nname = "b"\n')
        orchestrated = tmp_path / "orch.json"
        assert main(["orchestrate", "--grid", str(grid_path),
                     "--workers-file", str(hosts),
                     "--json", str(orchestrated)]) == 0
        out = capsys.readouterr().out
        assert "a (local), b (local)" in out
        assert orchestrated.exists()

    def test_needs_exactly_one_grid_source(self, tmp_path):
        with pytest.raises(SystemExit, match="exactly one of --grid"):
            main(["orchestrate", "--local", "2"])
        with pytest.raises(SystemExit, match="exactly one of --grid"):
            main(["orchestrate", "--grid", "g.json", "--profile", "large",
                  "--local", "2"])

    def test_needs_exactly_one_worker_source(self, tmp_path):
        with pytest.raises(SystemExit, match="exactly one of --workers"):
            main(["orchestrate", "--grid", "g.json"])
        with pytest.raises(SystemExit, match="exactly one of --workers"):
            main(["orchestrate", "--grid", "g.json", "--local", "2",
                  "--workers-file", "hosts.toml"])

    def test_grid_excludes_seed(self):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["orchestrate", "--grid", "g.json", "--seed", "3",
                  "--local", "2"])

    def test_missing_grid_file_rejected_before_launch(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["orchestrate", "--grid", str(tmp_path / "nope.json"),
                  "--local", "2"])

    def test_warm_cache_requires_cache_dir(self, capsys, tmp_path):
        grid_path = self._grid_file(tmp_path, capsys)
        with pytest.raises(SystemExit, match="needs --cache"):
            main(["orchestrate", "--grid", str(grid_path), "--local", "2",
                  "--warm-cache"])

    def test_chaos_kill_must_name_a_real_shard(self, capsys, tmp_path):
        grid_path = self._grid_file(tmp_path, capsys)
        with pytest.raises(SystemExit, match="chaos-kill shard"):
            main(["orchestrate", "--grid", str(grid_path), "--local", "2",
                  "--chaos-kill", "99"])

    def test_invalid_workers_file_fails_cleanly(self, capsys, tmp_path):
        grid_path = self._grid_file(tmp_path, capsys)
        hosts = tmp_path / "hosts.toml"
        hosts.write_text('[[workers]]\nhost = "node1"\n')  # remote, no repo
        with pytest.raises(SystemExit, match="needs repo="):
            main(["orchestrate", "--grid", str(grid_path),
                  "--workers-file", str(hosts)])
