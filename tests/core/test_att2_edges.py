"""Edge-case tests for A_{t+2}: factory plumbing, stale messages, wide t."""

import pytest

from repro import ATt2, ChandraTouegES, HurfinRaynalES, Schedule
from repro.algorithms.suspicion import estimate_payload
from repro.core.att2_optimized import ATt2Optimized
from repro.model.messages import Message
from repro.model.schedule import ScheduleBuilder
from repro.sim.kernel import run_algorithm
from repro.sim.view import RoundView
from tests.conftest import run_and_check


class TestFactoryPlumbing:
    def test_factory_name_mentions_class(self):
        assert "ATt2" in ATt2.factory().__name__

    def test_factory_binds_underlying(self):
        factory = ATt2.factory(HurfinRaynalES)
        automaton = factory(0, 5, 2, 1)
        assert automaton._underlying_factory is HurfinRaynalES

    def test_default_underlying_is_chandra_toueg(self):
        automaton = ATt2(0, 5, 2, 1)
        assert automaton._underlying_factory is ChandraTouegES

    def test_underlying_not_built_on_fast_path(self):
        from repro.algorithms.base import make_automata
        from repro.sim.kernel import execute

        automata = make_automata(ATt2.factory(), 3, 1, [1, 2, 3])
        execute(automata, Schedule.failure_free(3, 1, 10))
        for automaton in automata:
            assert automaton._underlying is None


class TestStaleMessages:
    def test_delayed_estimates_do_not_unsettle_phase_two(self):
        # Round-1 estimates crawling into round t+2 must be ignored by the
        # NEWESTIMATE logic (they carry a different tag and round).
        builder = ScheduleBuilder(3, 1, 12)
        builder.delay(0, 1, 1, 3)  # arrives exactly in round t+2
        trace = run_and_check(ATt2.factory(), builder.build(), [0, 1, 1])
        assert len(trace.decided_values()) == 1

    def test_delayed_new_estimates_do_not_reach_c(self):
        # NEWESTIMATE delayed past t+2 lands in C's rounds; A must filter
        # it out (sent_round <= offset) rather than feed it to C.
        builder = ScheduleBuilder(3, 1, 20)
        for k in (1, 2):
            builder.delay(0, 1, k, 3)
            builder.delay(0, 2, k, 3)
        builder.delay(1, 2, 3, 6)  # p1's NEWESTIMATE crawls into C rounds
        trace = run_and_check(ATt2.factory(), builder.build(), [0, 1, 1])
        assert len(trace.decided_values()) == 1


class TestWideResilience:
    @pytest.mark.parametrize("n,t", [(7, 1), (7, 3), (11, 5)])
    def test_t_extremes_still_t_plus_2(self, n, t):
        schedule = Schedule.failure_free(n, t, t + 5)
        trace = run_and_check(ATt2.factory(), schedule, list(range(n)))
        assert trace.global_decision_round() == t + 2

    def test_all_but_one_proposals_equal(self):
        schedule = Schedule.failure_free(5, 2, 10)
        trace = run_and_check(ATt2.factory(), schedule, [9, 9, 9, 9, 0])
        assert trace.decided_values() == {0}

    def test_unanimous_proposals(self):
        schedule = Schedule.failure_free(5, 2, 10)
        trace = run_and_check(ATt2.factory(), schedule, [7, 7, 7, 7, 7])
        assert trace.decided_values() == {7}
        assert trace.global_decision_round() == 4  # still no early exit


class TestHaltBookkeeping:
    def test_halt_sets_grow_monotonically(self):
        schedule = Schedule.synchronous(
            5, 2, 12, crashes={4: (1, []), 3: (2, [])}
        )
        trace = run_algorithm(ATt2.factory(), schedule, [3, 1, 4, 1, 5])
        for pid in range(3):
            previous = frozenset()
            for k in (1, 2, 3):
                payload = trace.record(k).sent[pid]
                assert payload[0] == "ESTIMATE"
                halt = payload[3]
                assert previous <= halt
                previous = halt

    def test_msg_set_senders_excludes_halt_stale_and_foreign(self):
        automaton = ATt2(0, 5, 2, 7)
        automaton.state.halt = frozenset({3})
        messages = (
            Message(2, 0, 0, estimate_payload(2, 7, frozenset())),
            Message(2, 1, 0, estimate_payload(2, 1, frozenset({0}))),
            Message(2, 3, 0, estimate_payload(2, 0, frozenset())),  # in Halt
            Message(1, 4, 0, estimate_payload(1, 2, frozenset())),  # stale
            Message(2, 2, 0, ("NEWESTIMATE", 2, 5)),                # foreign
        )
        senders = automaton.state.msg_set_senders(2, messages)
        # Halt exclusion reads the *current* Halt; a sender suspecting
        # p0 still counts until compute() actually adds it.
        assert senders == frozenset({0, 1})

    def test_msg_set_senders_empty_inbox(self):
        automaton = ATt2(0, 5, 2, 7)
        assert automaton.state.msg_set_senders(1, ()) == frozenset()

    def test_crashed_processes_accumulate_in_halt(self):
        schedule = Schedule.synchronous(
            5, 2, 12, crashes={4: (1, []), 3: (2, [])}
        )
        trace = run_algorithm(ATt2.factory(), schedule, [3, 1, 4, 1, 5])
        final_halt = trace.record(3).sent[0][3]
        assert final_halt == frozenset({3, 4})


def _round2_view(pid, n, items):
    """A round-2 view over ``(sender, est, halt)`` ESTIMATE items."""
    return RoundView.from_messages(
        2, pid, n,
        tuple(
            Message(2, sender, pid, estimate_payload(2, est, frozenset(halt)))
            for sender, est, halt in items
        ),
    )


class TestFailureFreeFastPathEdges:
    """Direct edges of Figure 4's round-2 check (no kernel in the loop)."""

    def _automaton(self, pid=0, n=5, t=2, proposal=9):
        return ATt2Optimized(pid, n, t, proposal)

    def test_empty_round_2_delivery_does_not_decide(self):
        automaton = self._automaton()
        view = _round2_view(0, 5, ())
        assert automaton._failure_free_fast_path(2, view) is False
        assert not automaton.decided
        assert automaton.vc == 9  # untouched: no circulating estimate

    def test_partial_hearing_with_clean_halts_prepositions_vc(self):
        # 3 of 5 heard, all Halt payloads empty: no decision, but vc
        # adopts the (unique) circulating minimum for the fallback.
        automaton = self._automaton()
        view = _round2_view(
            0, 5, ((0, 9, ()), (1, 4, ()), (3, 6, ()))
        )
        assert automaton._failure_free_fast_path(2, view) is False
        assert not automaton.decided
        assert automaton.vc == 4

    def test_partial_hearing_with_nonempty_halt_bails_untouched(self):
        # A suspicion visible in *any* received payload disables the
        # optimization outright — vc must not move even though smaller
        # estimates circulate.
        automaton = self._automaton()
        view = _round2_view(
            0, 5, ((0, 9, ()), (1, 4, (2,)), (3, 6, ()))
        )
        assert automaton._failure_free_fast_path(2, view) is False
        assert not automaton.decided
        assert automaton.vc == 9

    def test_complete_hearing_with_nonempty_halt_bails(self):
        # Even n clean-looking estimates do not decide if one of them
        # carries a suspicion.
        automaton = self._automaton()
        view = _round2_view(
            0, 5,
            ((0, 9, ()), (1, 4, ()), (2, 5, (0,)), (3, 6, ()), (4, 7, ())),
        )
        assert automaton._failure_free_fast_path(2, view) is False
        assert not automaton.decided
        assert automaton.vc == 9

    def test_complete_clean_hearing_decides_minimum(self):
        automaton = self._automaton()
        view = _round2_view(
            0, 5,
            ((0, 9, ()), (1, 4, ()), (2, 5, ()), (3, 6, ()), (4, 7, ())),
        )
        assert automaton._failure_free_fast_path(2, view) is True
        assert automaton.decided
        assert automaton.decision == 4

    def test_plane_backed_fast_path_matches_local_scan(self):
        # The same edges through the batched plane's round2_stats.  The
        # plane's protocol contract says payloads ARE state.payload(k),
        # so each case's sender states carry the est/Halt the payloads
        # show.
        from repro.sim.phase1_plane import Phase1Plane
        from repro.sim.view import SendTable

        cases = (
            ((), False, 9),                                    # empty
            (((0, 9, ()), (1, 4, ()), (3, 6, ())), False, 4),  # partial
            (((0, 9, ()), (1, 4, (2,)), (3, 6, ())), False, 9),  # tainted
        )
        for items, want_decided, want_vc in cases:
            local = self._automaton()
            batched = self._automaton()
            others = [ATt2Optimized(pid, 5, 2, 9) for pid in range(1, 5)]
            by_pid = [batched] + others
            for sender, est, halt in items:
                by_pid[sender].state.est = est
                by_pid[sender].state.halt = frozenset(halt)
                by_pid[sender].state._halt_mask = sum(
                    1 << p for p in halt
                )
            plane = Phase1Plane([a.state for a in by_pid])
            batched.bind_phase1_plane(plane)
            table = SendTable(5)
            for sender, _est, _halt in items:
                table.record(sender, by_pid[sender].state.payload(2))
            table.seal()
            plane.begin_round(2, table)
            view = _round2_view(0, 5, items)
            assert (
                batched._failure_free_fast_path(2, view)
                == local._failure_free_fast_path(2, view)
                == want_decided
            )
            plane.end_round()
            assert batched.decided == local.decided == want_decided
            assert batched.vc == local.vc == want_vc
