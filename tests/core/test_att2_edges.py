"""Edge-case tests for A_{t+2}: factory plumbing, stale messages, wide t."""

import pytest

from repro import ATt2, ChandraTouegES, HurfinRaynalES, Schedule
from repro.model.schedule import ScheduleBuilder
from repro.sim.kernel import run_algorithm
from tests.conftest import run_and_check


class TestFactoryPlumbing:
    def test_factory_name_mentions_class(self):
        assert "ATt2" in ATt2.factory().__name__

    def test_factory_binds_underlying(self):
        factory = ATt2.factory(HurfinRaynalES)
        automaton = factory(0, 5, 2, 1)
        assert automaton._underlying_factory is HurfinRaynalES

    def test_default_underlying_is_chandra_toueg(self):
        automaton = ATt2(0, 5, 2, 1)
        assert automaton._underlying_factory is ChandraTouegES

    def test_underlying_not_built_on_fast_path(self):
        from repro.algorithms.base import make_automata
        from repro.sim.kernel import execute

        automata = make_automata(ATt2.factory(), 3, 1, [1, 2, 3])
        execute(automata, Schedule.failure_free(3, 1, 10))
        for automaton in automata:
            assert automaton._underlying is None


class TestStaleMessages:
    def test_delayed_estimates_do_not_unsettle_phase_two(self):
        # Round-1 estimates crawling into round t+2 must be ignored by the
        # NEWESTIMATE logic (they carry a different tag and round).
        builder = ScheduleBuilder(3, 1, 12)
        builder.delay(0, 1, 1, 3)  # arrives exactly in round t+2
        trace = run_and_check(ATt2.factory(), builder.build(), [0, 1, 1])
        assert len(trace.decided_values()) == 1

    def test_delayed_new_estimates_do_not_reach_c(self):
        # NEWESTIMATE delayed past t+2 lands in C's rounds; A must filter
        # it out (sent_round <= offset) rather than feed it to C.
        builder = ScheduleBuilder(3, 1, 20)
        for k in (1, 2):
            builder.delay(0, 1, k, 3)
            builder.delay(0, 2, k, 3)
        builder.delay(1, 2, 3, 6)  # p1's NEWESTIMATE crawls into C rounds
        trace = run_and_check(ATt2.factory(), builder.build(), [0, 1, 1])
        assert len(trace.decided_values()) == 1


class TestWideResilience:
    @pytest.mark.parametrize("n,t", [(7, 1), (7, 3), (11, 5)])
    def test_t_extremes_still_t_plus_2(self, n, t):
        schedule = Schedule.failure_free(n, t, t + 5)
        trace = run_and_check(ATt2.factory(), schedule, list(range(n)))
        assert trace.global_decision_round() == t + 2

    def test_all_but_one_proposals_equal(self):
        schedule = Schedule.failure_free(5, 2, 10)
        trace = run_and_check(ATt2.factory(), schedule, [9, 9, 9, 9, 0])
        assert trace.decided_values() == {0}

    def test_unanimous_proposals(self):
        schedule = Schedule.failure_free(5, 2, 10)
        trace = run_and_check(ATt2.factory(), schedule, [7, 7, 7, 7, 7])
        assert trace.decided_values() == {7}
        assert trace.global_decision_round() == 4  # still no early exit


class TestHaltBookkeeping:
    def test_halt_sets_grow_monotonically(self):
        schedule = Schedule.synchronous(
            5, 2, 12, crashes={4: (1, []), 3: (2, [])}
        )
        trace = run_algorithm(ATt2.factory(), schedule, [3, 1, 4, 1, 5])
        for pid in range(3):
            previous = frozenset()
            for k in (1, 2, 3):
                payload = trace.record(k).sent[pid]
                assert payload[0] == "ESTIMATE"
                halt = payload[3]
                assert previous <= halt
                previous = halt

    def test_crashed_processes_accumulate_in_halt(self):
        schedule = Schedule.synchronous(
            5, 2, 12, crashes={4: (1, []), 3: (2, [])}
        )
        trace = run_algorithm(ATt2.factory(), schedule, [3, 1, 4, 1, 5])
        final_halt = trace.record(3).sent[0][3]
        assert final_halt == frozenset({3, 4})
