"""Tests for A_{t+2} (Figure 2): fast decision, phases, fallback."""

import pytest

from repro import ATt2, ChandraTouegES, HurfinRaynalES, Schedule
from repro.algorithms.base import make_automata
from repro.analysis.metrics import check_consensus
from repro.core.att2 import NEWESTIMATE
from repro.lowerbound.serial_runs import (
    enumerate_serial_partial_runs,
    run_with_events,
)
from repro.model.schedule import ScheduleBuilder
from repro.sim.kernel import execute, run_algorithm
from repro.types import is_bottom
from repro.workloads import block_crashes, rotating_delays, serial_cascade
from tests.conftest import run_and_check


class TestConstruction:
    def test_requires_indulgent_resilience(self):
        with pytest.raises(ValueError, match="t < n/2"):
            ATt2(0, 4, 2, 1)
        with pytest.raises(ValueError, match="t = 0"):
            ATt2(0, 4, 0, 1)

    def test_unsafe_escape_hatch(self):
        automaton = ATt2(0, 4, 2, 1, allow_unsafe_resilience=True)
        assert automaton.t == 2


class TestFastDecision:
    """Lemma 13: every synchronous run decides by round t + 2."""

    @pytest.mark.parametrize("n,t", [(3, 1), (5, 2), (7, 3), (9, 4)])
    def test_failure_free_decides_at_exactly_t_plus_2(self, n, t):
        schedule = Schedule.failure_free(n, t, t + 5)
        trace = run_and_check(ATt2.factory(), schedule, list(range(n)))
        assert trace.global_decision_round() == t + 2
        assert trace.first_decision_round() == t + 2
        assert trace.decided_values() == {0}

    @pytest.mark.parametrize("n,t", [(3, 1), (4, 1)])
    def test_every_serial_run_decides_at_t_plus_2(self, n, t):
        proposals = list(range(n))
        for events in enumerate_serial_partial_runs(n, t, t + 2):
            trace = run_with_events(
                ATt2.factory(), proposals, events, t=t, horizon=t + 8
            )
            problems = check_consensus(trace)
            assert not problems, (events, problems)
            assert trace.global_decision_round() == t + 2, (
                events,
                trace.describe(),
            )

    def test_sampled_serial_runs_decide_at_t_plus_2(self):
        # (n, t) = (5, 2) is too big for exhaustive enumeration in a unit
        # test; sample serial schedules instead.
        from repro.sim.random_schedules import random_serial_schedule

        for seed in range(40):
            schedule = random_serial_schedule(5, 2, seed, horizon=10)
            trace = run_and_check(
                ATt2.factory(), schedule, [3, 1, 4, 1, 5]
            )
            assert trace.global_decision_round() == 4, (
                seed,
                trace.describe(),
            )

    def test_non_serial_synchronous_run_decides_at_t_plus_2(self):
        # Two crashes in the same round: synchronous but not serial.
        schedule = block_crashes(5, 2, 10, round_=1)
        trace = run_and_check(ATt2.factory(), schedule, [3, 1, 4, 1, 5])
        assert trace.global_decision_round() == 4

    def test_cascade_decides_at_t_plus_2(self):
        schedule = serial_cascade(7, 3, 12)
        trace = run_and_check(ATt2.factory(), schedule, list(range(7)))
        assert trace.global_decision_round() == 5


class TestPhaseTwo:
    def test_new_estimate_bottom_when_halt_exceeds_t(self):
        # p0 is falsely suspected by everyone for two rounds.
        builder = ScheduleBuilder(3, 1, 16)
        for k in (1, 2):
            builder.delay(0, 1, k, 3)
            builder.delay(0, 2, k, 3)
        automata = make_automata(ATt2.factory(), 3, 1, [0, 1, 1])
        execute(automata, builder.build())
        assert is_bottom(automata[0].new_estimate)
        assert not is_bottom(automata[1].new_estimate)

    def test_all_bottom_falls_back_to_own_proposal(self):
        # If every new estimate is ⊥, vc keeps the proposal (Figure 2).
        builder = ScheduleBuilder(3, 1, 20)
        # Round 1: everyone suspects someone, symmetric triangle:
        # 0 misses 1, 1 misses 2, 2 misses 0; round 2 the other way.
        builder.delay(1, 0, 1, 3)
        builder.delay(2, 1, 1, 3)
        builder.delay(0, 2, 1, 3)
        builder.delay(2, 0, 2, 3)
        builder.delay(0, 1, 2, 3)
        builder.delay(1, 2, 2, 3)
        automata = make_automata(ATt2.factory(), 3, 1, [4, 5, 6])
        trace = execute(automata, builder.build())
        assert all(is_bottom(a.new_estimate) for a in automata)
        assert not check_consensus(trace)

    def test_mixed_bottom_adopts_received_estimate(self):
        builder = ScheduleBuilder(3, 1, 16)
        for k in (1, 2):
            builder.delay(0, 1, k, 3)
            builder.delay(0, 2, k, 3)
        automata = make_automata(ATt2.factory(), 3, 1, [0, 1, 2])
        trace = execute(automata, builder.build())
        # p0 proposed ⊥; p1/p2 proposed 1. Nobody decides at t+2 (p0's ⊥
        # reaches them), and the underlying consensus runs on vc values
        # drawn from the non-⊥ new estimates.
        assert automata[1].vc == 1
        assert automata[2].vc == 1
        assert trace.decided_values() == {1}


class TestUnderlyingConsensus:
    def test_decides_via_chandra_toueg_fallback(self):
        schedule = rotating_delays(5, 2, 24, async_rounds=4)
        trace = run_and_check(
            ATt2.factory(ChandraTouegES), schedule, [3, 1, 4, 1, 5]
        )
        assert len(trace.decided_values()) == 1

    def test_decides_via_hurfin_raynal_fallback(self):
        schedule = rotating_delays(5, 2, 24, async_rounds=4)
        trace = run_and_check(
            ATt2.factory(HurfinRaynalES), schedule, [3, 1, 4, 1, 5]
        )
        assert len(trace.decided_values()) == 1

    def test_fast_path_is_independent_of_underlying(self):
        # Fast decision holds regardless of C (the paper stresses this).
        for underlying in (ChandraTouegES, HurfinRaynalES):
            schedule = Schedule.failure_free(5, 2, 10)
            trace = run_and_check(
                ATt2.factory(underlying), schedule, [3, 1, 4, 1, 5]
            )
            assert trace.global_decision_round() == 4

    def test_decide_messages_reach_late_deciders(self):
        # p0 is falsely suspected in Phase 1, so its new estimate is ⊥.
        # Delaying p0's round-3 message to p1 lets p1 take the fast path
        # (it sees only non-⊥ values) while p2, which received the ⊥,
        # must wait for p1's DECIDE.
        builder = ScheduleBuilder(3, 1, 16)
        for k in (1, 2):
            builder.delay(0, 1, k, 3)
            builder.delay(0, 2, k, 3)
        builder.delay(0, 1, 3, 5)
        trace = run_and_check(ATt2.factory(), builder.build(), [0, 1, 1])
        assert trace.decision_round(1) == 3  # fast path at t + 2
        assert trace.decision_round(2) == 4  # via p1's DECIDE
        assert trace.decision_round(0) == 4  # via p1's DECIDE
        assert trace.decided_values() == {1}


class TestMessageFormats:
    def test_phase_one_payloads_are_estimates(self):
        schedule = Schedule.failure_free(3, 1, 8)
        trace = run_algorithm(ATt2.factory(), schedule, [1, 2, 3])
        for k in (1, 2):
            for pid in range(3):
                assert trace.record(k).sent[pid][0] == "ESTIMATE"

    def test_phase_two_payloads_are_new_estimates(self):
        schedule = Schedule.failure_free(3, 1, 8)
        trace = run_algorithm(ATt2.factory(), schedule, [1, 2, 3])
        for pid in range(3):
            assert trace.record(3).sent[pid][0] == NEWESTIMATE

    def test_round_t_plus_3_is_decide(self):
        schedule = Schedule.failure_free(3, 1, 8)
        trace = run_algorithm(ATt2.factory(), schedule, [1, 2, 3])
        for pid in range(3):
            assert trace.record(4).sent[pid] == ("DECIDE", 1)
