"""Tests for the failure-free optimization (Figure 4)."""

import pytest

from repro import ATt2Optimized, Schedule
from repro.analysis.metrics import check_consensus
from repro.lowerbound.serial_runs import (
    enumerate_serial_partial_runs,
    run_with_events,
)
from repro.model.schedule import ScheduleBuilder
from repro.workloads import serial_cascade
from tests.conftest import run_and_check


class TestFailureFreeFastPath:
    @pytest.mark.parametrize("n,t", [(3, 1), (5, 2), (7, 3), (9, 4)])
    def test_failure_free_synchronous_decides_at_round_2(self, n, t):
        schedule = Schedule.failure_free(n, t, t + 6)
        trace = run_and_check(
            ATt2Optimized.factory(), schedule, list(range(n))
        )
        assert trace.global_decision_round() == 2
        assert trace.decided_values() == {0}

    def test_decision_is_global_minimum(self):
        schedule = Schedule.failure_free(5, 2, 10)
        trace = run_and_check(
            ATt2Optimized.factory(), schedule, [9, 4, 7, 2, 8]
        )
        assert trace.decided_values() == {2}
        assert trace.global_decision_round() == 2

    def test_two_rounds_matches_well_behaved_lower_bound(self):
        # Keidar-Rajsbaum: two rounds is optimal for well-behaved runs;
        # round 1 alone can never suffice because round-2 messages carry
        # the evidence that round 1 was suspicion-free.
        schedule = Schedule.failure_free(5, 2, 10)
        trace = run_and_check(
            ATt2Optimized.factory(), schedule, [3, 1, 4, 1, 5]
        )
        assert trace.first_decision_round() == 2


class TestWithFailures:
    def test_crash_disables_fast_path(self):
        # A visible round-1 crash means no process sees n clean messages.
        schedule = serial_cascade(5, 2, 10, crashers=(4,), start_round=1)
        trace = run_and_check(
            ATt2Optimized.factory(), schedule, [3, 1, 4, 1, 5]
        )
        assert trace.global_decision_round() == 4  # back to t + 2

    def test_partial_visibility_keeps_agreement(self):
        # p4 crashes in round 2 delivering only to p0: p0 sees n clean
        # round-2 messages and decides at round 2; the others catch up via
        # DECIDE and the normal phases, all on the same value.
        builder = ScheduleBuilder(5, 2, 12)
        builder.crash(4, 2, delivered_to=(0,))
        trace = run_and_check(
            ATt2Optimized.factory(), builder.build(), [3, 1, 4, 1, 5]
        )
        assert trace.decision_round(0) == 2
        assert trace.decided_values() == {1}

    @pytest.mark.parametrize("n,t", [(3, 1), (4, 1)])
    def test_all_serial_runs_still_safe_and_fast(self, n, t):
        # The optimization must preserve the t + 2 fast decision bound.
        proposals = list(range(n))
        for events in enumerate_serial_partial_runs(n, t, t + 2):
            trace = run_with_events(
                ATt2Optimized.factory(), proposals, events,
                t=t, horizon=t + 8,
            )
            problems = check_consensus(trace)
            assert not problems, (events, problems)
            assert trace.global_decision_round() <= t + 2, (
                events, trace.describe(),
            )

    def test_suspicion_without_failure_routes_to_vc(self):
        # Round-1 false suspicion visible to nobody's fast path: every
        # round-2 message that *is* received carries Halt = ∅ at p2 only.
        builder = ScheduleBuilder(3, 1, 16)
        builder.delay(0, 1, 1, 3)  # p1 falsely suspects p0 in round 1
        trace = run_and_check(
            ATt2Optimized.factory(), builder.build(), [0, 1, 1]
        )
        assert len(trace.decided_values()) == 1
        assert not check_consensus(trace)
