"""Tests for A_◇S (Figure 3): the ◇S transposition."""

import pytest

from repro import ADiamondS, Schedule
from repro.algorithms.base import make_automata
from repro.detectors import EventuallyStrong, simulate_from_schedule
from repro.sim.kernel import execute
from repro.sim.random_schedules import random_es_schedule, random_proposals
from repro.workloads import coordinator_killer, rotating_delays
from tests.conftest import run_and_check


class TestFastDecision:
    @pytest.mark.parametrize("n,t", [(3, 1), (5, 2), (7, 3)])
    def test_synchronous_runs_decide_at_t_plus_2(self, n, t):
        schedule = Schedule.failure_free(n, t, t + 6)
        trace = run_and_check(ADiamondS.factory(), schedule, list(range(n)))
        assert trace.global_decision_round() == t + 2

    def test_beats_hurfin_raynal_baseline(self):
        """Section 5.1: A_◇S decides at t+2 where HR needs 2t+2."""
        from repro import HurfinRaynalES

        n, t = 7, 3
        # The HR-killer schedule: coordinators die one per 2-round cycle.
        schedule = coordinator_killer(n, t, 2 * t + 6, rounds_per_cycle=2)
        hr = run_and_check(HurfinRaynalES, schedule, list(range(n)))
        asd = run_and_check(ADiamondS.factory(), schedule, list(range(n)))
        assert hr.global_decision_round() == 2 * t + 2
        assert asd.global_decision_round() == t + 2


class TestSimulatedDetector:
    def test_fd_history_matches_schedule_suspicions(self):
        from repro.model.constraints import suspected_by

        schedule = Schedule.synchronous(5, 2, 10, crashes={4: (2, [0])})
        automata = make_automata(ADiamondS.factory(), 5, 2, [1, 2, 3, 4, 5])
        execute(automata, schedule)
        # While everyone is running (Phase 1), the recorded output equals
        # the schedule-level suspicion sets of Section 4.
        for pid in range(4):
            for k in (1, 2, 3):
                assert automata[pid].fd_history[k] == suspected_by(
                    schedule, pid, k
                )

    def test_underlying_defaults_to_diamond_s_algorithm(self):
        from repro.algorithms.hurfin_raynal import HurfinRaynalES

        automaton = ADiamondS(0, 5, 2, 1)
        assert automaton._underlying_factory is HurfinRaynalES

    def test_schedule_detector_satisfies_diamond_s(self):
        # The simulated detector over an eventually-synchronous schedule
        # satisfies ◇S (via ◇P) — the premise of the transposition.
        schedule = rotating_delays(5, 2, 14, async_rounds=4)
        history = simulate_from_schedule(schedule)
        assert EventuallyStrong.satisfied_by(history)


class TestRandomizedSafety:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_es_runs_safe(self, seed):
        from repro.analysis.metrics import check_consensus
        from repro.sim.kernel import run_algorithm

        schedule = random_es_schedule(5, 2, seed, horizon=30, sync_by=6)
        trace = run_algorithm(
            ADiamondS.factory(), schedule, random_proposals(5, seed)
        )
        problems = check_consensus(trace, expect_termination=False)
        assert not problems, (seed, problems)
