"""Tests for A_{f+2} (Figure 5): eventual fast decision with t < n/3."""

import pytest

from repro import AFPlus2, AMRLeaderES, Schedule
from repro.analysis.metrics import check_consensus
from repro.errors import AlgorithmError
from repro.sim.kernel import run_algorithm
from repro.sim.random_schedules import random_es_schedule, random_proposals
from repro.workloads import async_prefix, serial_cascade
from tests.conftest import run_and_check


class TestResilienceGate:
    def test_rejects_t_at_third(self):
        with pytest.raises(AlgorithmError, match="n/3"):
            AFPlus2(0, 6, 2, 1)

    def test_accepts_below_third(self):
        AFPlus2(0, 4, 1, 1)


class TestFastEventualDecision:
    """Lemma 15: synchronous after k with f crashes after k -> k + f + 2."""

    @pytest.mark.parametrize("k", [0, 1, 3])
    @pytest.mark.parametrize("f", [0, 1, 2])
    def test_decides_by_k_plus_f_plus_2(self, k, f):
        n, t = 7, 2
        schedule = async_prefix(n, t, k + f + 8, k=k, crashes_after=f)
        trace = run_and_check(AFPlus2, schedule, [3, 1, 4, 1, 5, 2, 6])
        assert trace.global_decision_round() <= k + f + 2, (
            k, f, trace.describe(),
        )

    def test_value_hiding_cascade_slows_decision(self):
        # Crashes carrying the minimum value delay convergence; the bound
        # still holds.
        n, t = 4, 1
        schedule = serial_cascade(
            n, t, 8, crashers=(0,), start_round=1, deliver_to_next=True
        )
        trace = run_and_check(AFPlus2, schedule, [0, 1, 2, 3])
        assert trace.global_decision_round() <= 3  # f + 2 with f = 1

    def test_faster_than_amr_on_crash_prefix(self):
        """A_{f+2} is the 1-round/step optimization of AMR."""
        n, t, f = 7, 2, 2
        schedule = serial_cascade(n, t, 14, start_round=1)
        afp2 = run_and_check(AFPlus2, schedule, list(range(n)))
        amr = run_and_check(AMRLeaderES, schedule, list(range(n)))
        assert afp2.global_decision_round() <= f + 2
        assert afp2.global_decision_round() <= amr.global_decision_round()


class TestCountingRules:
    def test_unanimous_msgset_decides(self):
        schedule = Schedule.failure_free(4, 1, 8)
        trace = run_and_check(AFPlus2, schedule, [5, 5, 5, 5])
        assert trace.global_decision_round() == 1  # immediate unanimity

    def test_dominant_value_adopted_over_minimum(self):
        # msgSet of p3 in round 1 = lowest n-t=3 senders {0,1,2} with
        # ests [0, 1, 1]: the value 1 appears n-2t = 2 times, so it is
        # adopted *instead of* the smaller 0 — the counting rule at work.
        from repro.algorithms.base import make_automata
        from repro.sim.kernel import execute

        schedule = Schedule.synchronous(4, 1, 8, crashes={0: (1, [3])})
        automata = make_automata(AFPlus2, 4, 1, [0, 1, 1, 2])
        execute(automata, schedule)
        # p3 received est 0 from the crashing p0, but adopted 1.
        assert automata[3].decision == 1

    def test_lowest_sender_selection_matters(self):
        # With more than n-t messages received, only the lowest n-t sender
        # ids count (Figure 5); the highest sender's estimate is invisible
        # when everyone is alive.
        schedule = Schedule.failure_free(4, 1, 8)
        trace = run_and_check(AFPlus2, schedule, [1, 1, 1, 0])
        # p3's 0 is outside everyone's msgSet = {0,1,2}: all see unanimous
        # 1 and decide it; p3's own msgSet is also {0,1,2}.
        assert trace.decided_values() == {1}


class TestRandomizedSafety:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_es_runs_safe(self, seed):
        schedule = random_es_schedule(7, 2, seed, horizon=24, sync_by=8)
        trace = run_algorithm(AFPlus2, schedule, random_proposals(7, seed))
        problems = check_consensus(trace, expect_termination=False)
        assert not problems, (seed, problems)

    @pytest.mark.parametrize("seed", range(10))
    def test_termination_with_synchronous_suffix(self, seed):
        schedule = random_es_schedule(4, 1, seed, horizon=20, sync_by=6)
        trace = run_algorithm(AFPlus2, schedule, random_proposals(4, seed))
        problems = check_consensus(trace, expect_termination=True)
        assert not problems, (seed, problems, trace.describe())
