"""Property-based tests for A_{t+2}: the paper's lemmas on random runs.

* consensus (validity/agreement/termination) over random ES schedules;
* the **elimination property** (Lemma 6): at most one distinct non-⊥ new
  estimate is ever sent in round t + 2;
* **Claim 13.1**: in synchronous runs, every process that lands in some
  Halt set has actually crashed — no false positives;
* **fast decision** (Lemma 13) over random synchronous schedules.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ATt2, ATt2Optimized
from repro.analysis.metrics import check_consensus
from repro.core.att2 import NEWESTIMATE
from repro.sim.kernel import run_algorithm
from repro.sim.random_schedules import (
    random_es_schedule,
    random_proposals,
    random_scs_schedule,
)
from repro.types import is_bottom

SYSTEMS = st.sampled_from([(3, 1), (5, 2), (7, 3)])


def new_estimates_sent(trace):
    """All new-estimate values broadcast in round t + 2."""
    t = trace.t
    if trace.rounds_executed < t + 2:
        return []
    record = trace.record(t + 2)
    return [
        payload[2]
        for payload in record.sent.values()
        if payload is not None and payload[0] == NEWESTIMATE
    ]


def halt_sets_sent(trace, upto):
    """(sender, round, halt) triples from Phase-1 ESTIMATE payloads."""
    out = []
    for k in range(1, min(upto, trace.rounds_executed) + 1):
        for pid, payload in trace.record(k).sent.items():
            if payload is not None and payload[0] == "ESTIMATE":
                out.append((pid, k, payload[3]))
    return out


class TestConsensusOnRandomES:
    @given(seed=st.integers(0, 50_000), system=SYSTEMS)
    @settings(max_examples=80, deadline=None)
    def test_consensus_holds(self, seed, system):
        n, t = system
        schedule = random_es_schedule(n, t, seed, horizon=8 + 6 * n,
                                      sync_by=6)
        trace = run_algorithm(
            ATt2.factory(), schedule, random_proposals(n, seed)
        )
        problems = check_consensus(trace, expect_termination=False)
        assert not problems, (seed, problems)

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=40, deadline=None)
    def test_termination_with_synchronous_suffix(self, seed):
        n, t = 5, 2
        schedule = random_es_schedule(n, t, seed, horizon=40, sync_by=5)
        trace = run_algorithm(
            ATt2.factory(), schedule, random_proposals(n, seed)
        )
        problems = check_consensus(trace, expect_termination=True)
        assert not problems, (seed, problems, trace.describe())


class TestEliminationProperty:
    @given(seed=st.integers(0, 50_000), system=SYSTEMS)
    @settings(max_examples=80, deadline=None)
    def test_at_most_one_non_bottom_new_estimate(self, seed, system):
        n, t = system
        schedule = random_es_schedule(n, t, seed, horizon=8 + 6 * n,
                                      sync_by=6)
        trace = run_algorithm(
            ATt2.factory(), schedule, random_proposals(n, seed)
        )
        non_bottom = {
            v for v in new_estimates_sent(trace) if not is_bottom(v)
        }
        assert len(non_bottom) <= 1, (seed, non_bottom)


class TestHaltClaimInSynchronousRuns:
    @given(seed=st.integers(0, 50_000), system=SYSTEMS)
    @settings(max_examples=80, deadline=None)
    def test_halt_members_have_crashed(self, seed, system):
        """Claim 13.1: synchronous suspicion is always backed by a crash."""
        n, t = system
        schedule = random_scs_schedule(n, t, seed, horizon=t + 6)
        trace = run_algorithm(
            ATt2.factory(), schedule, random_proposals(n, seed)
        )
        crash_rounds = trace.crash_rounds()
        for sender, k, halt in halt_sets_sent(trace, t + 2):
            del sender
            for suspect in halt:
                crash = crash_rounds.get(suspect)
                assert crash is not None and crash < k, (
                    seed, suspect, k, halt,
                )

    @given(seed=st.integers(0, 50_000), system=SYSTEMS)
    @settings(max_examples=60, deadline=None)
    def test_fast_decision_on_random_synchronous_runs(self, seed, system):
        n, t = system
        schedule = random_scs_schedule(n, t, seed, horizon=t + 6)
        trace = run_algorithm(
            ATt2.factory(), schedule, random_proposals(n, seed)
        )
        assert trace.global_decision_round() == t + 2, (
            seed, trace.describe(),
        )
        assert not check_consensus(trace)


class TestOptimizedVariantProperties:
    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=60, deadline=None)
    def test_optimized_consensus_on_random_es(self, seed):
        n, t = 5, 2
        schedule = random_es_schedule(n, t, seed, horizon=40, sync_by=5)
        trace = run_algorithm(
            ATt2Optimized.factory(), schedule, random_proposals(n, seed)
        )
        problems = check_consensus(trace, expect_termination=False)
        assert not problems, (seed, problems)

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=60, deadline=None)
    def test_optimized_fast_decision_on_synchronous_runs(self, seed):
        n, t = 5, 2
        schedule = random_scs_schedule(n, t, seed, horizon=t + 6)
        trace = run_algorithm(
            ATt2Optimized.factory(), schedule, random_proposals(n, seed)
        )
        assert trace.global_decision_round() <= t + 2
        assert not check_consensus(trace)
