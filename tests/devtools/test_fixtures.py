"""Corpus-driven rule tests: one good/bad fixture pair per rule code.

Each fixture file declares its *virtual* path on line 1
(``# fixture-path: src/repro/...``) — the analyzer scopes rules by that
path, so a snippet in the corpus can claim to live in a hot-path file.
The corpus directory is named ``lint_fixtures`` precisely so the
analyzer's file walker never picks the deliberate violations up when CI
lints ``tests/`` (see ``EXCLUDED_DIRS``).
"""

from __future__ import annotations

import os

import pytest

from repro.devtools import all_rules, lint_source

FIXTURES = os.path.join(os.path.dirname(__file__), "lint_fixtures")

ALL_CODES = sorted(rule.code for rule in all_rules())


def load_fixture(code: str, kind: str) -> tuple[str, str]:
    """(source, virtual_path) for a fixture file."""
    path = os.path.join(FIXTURES, code, f"{kind}.py")
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    first = source.splitlines()[0]
    marker = "# fixture-path:"
    assert first.startswith(marker), f"{path} lacks a fixture-path header"
    return source, first[len(marker):].strip()


def test_corpus_is_complete():
    """Every registered rule code has exactly a good/bad fixture pair."""
    assert sorted(os.listdir(FIXTURES)) == ALL_CODES
    for code in ALL_CODES:
        assert sorted(os.listdir(os.path.join(FIXTURES, code))) == [
            "bad.py",
            "good.py",
        ]


@pytest.mark.parametrize("code", ALL_CODES)
def test_bad_fixture_fires_its_code(code):
    source, virtual_path = load_fixture(code, "bad")
    findings = lint_source(source, virtual_path)
    assert code in {f.code for f in findings}, (
        f"{code}/bad.py produced {[f.describe() for f in findings]}"
    )


@pytest.mark.parametrize("code", ALL_CODES)
def test_good_fixture_is_clean_for_its_code(code):
    source, virtual_path = load_fixture(code, "good")
    findings = lint_source(
        source, virtual_path, select=lambda rule: rule.code == code
    )
    assert findings == [], (
        f"{code}/good.py produced {[f.describe() for f in findings]}"
    )


@pytest.mark.parametrize("code", ALL_CODES)
def test_good_fixture_is_clean_under_every_rule(code):
    """Good fixtures model recommended style: no rule may object."""
    source, virtual_path = load_fixture(code, "good")
    findings = lint_source(source, virtual_path)
    assert findings == [], (
        f"{code}/good.py produced {[f.describe() for f in findings]}"
    )


@pytest.mark.parametrize("code", ALL_CODES)
def test_bad_fixture_outside_scope_is_ignored_for_scoped_rules(code):
    """Scoped rules must not fire when the same source lives elsewhere."""
    rule = next(r for r in all_rules() if r.code == code)
    if rule.domains is None:
        pytest.skip("rule applies everywhere by design")
    source, _ = load_fixture(code, "bad")
    findings = lint_source(
        source,
        "benchmarks/helpers.py",
        select=lambda r: r.code == code,
    )
    assert findings == []


def test_finding_positions_and_messages_are_populated():
    source, virtual_path = load_fixture("DET001", "bad")
    findings = lint_source(source, virtual_path)
    for finding in findings:
        assert finding.path == virtual_path
        assert finding.line >= 1
        assert finding.col >= 0
        assert finding.message
        assert finding.source_line
        assert finding.describe().startswith(f"{virtual_path}:")
