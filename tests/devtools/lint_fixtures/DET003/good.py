# fixture-path: src/repro/sim/timing.py
"""DET003 good: round bookkeeping is a pure function of the case; any
timestamps arrive as explicit inputs from the operational layer."""


def stamp_record(record, started_at):
    return record, started_at
