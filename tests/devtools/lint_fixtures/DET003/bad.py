# fixture-path: src/repro/sim/timing.py
"""DET003 bad: clock reads inside a record-producing package."""
import time
from datetime import datetime


def stamp_record(record):
    started = time.time()
    tick = time.monotonic()
    when = datetime.now()
    return record, started, tick, when
