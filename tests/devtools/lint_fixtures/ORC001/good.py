# fixture-path: src/repro/engine/orchestrator/worker.py
"""ORC001 good: exception types are named, so SIGINT still kills."""


def run_attempt(task, failures):
    try:
        return task()
    except OSError as exc:
        failures.append(exc)
        return None
