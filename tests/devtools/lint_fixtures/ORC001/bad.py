# fixture-path: src/repro/engine/orchestrator/worker.py
"""ORC001 bad: a bare except makes the worker loop unkillable."""


def run_attempt(task):
    try:
        return task()
    except:  # noqa: E722 (flake8 code, not ours -- must still fire)
        return None
