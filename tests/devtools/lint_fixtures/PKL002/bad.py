# fixture-path: src/repro/engine/state.py
"""PKL002 bad: hand-slotted class with half a pickle state protocol."""


class HalfProtocol:
    __slots__ = ("items", "cursor")

    def __init__(self):
        self.items = []
        self.cursor = 0

    def __getstate__(self):
        return {"items": self.items}
