# fixture-path: src/repro/engine/state.py
"""PKL002 good: slotted classes define both halves or neither, and
dict-backed memo-stripping __getstate__ stays allowed."""


class FullProtocol:
    __slots__ = ("items", "cursor")

    def __init__(self):
        self.items = []
        self.cursor = 0

    def __getstate__(self):
        return {"items": self.items, "cursor": self.cursor}

    def __setstate__(self, state):
        self.items = state["items"]
        self.cursor = state["cursor"]


class NoProtocol:
    __slots__ = ("items",)

    def __init__(self):
        self.items = []


class DictBackedMemoStripper:
    def __init__(self):
        self.items = []
        self._memo = None

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_memo"] = None
        return state
