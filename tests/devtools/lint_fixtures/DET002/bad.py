# fixture-path: src/repro/workloads/noise.py
"""DET002 bad: global RNG and OS entropy in a record-feeding module."""
import os
import random
import uuid


def unseeded_noise(n):
    jitter = [random.random() for _ in range(n)]
    random.shuffle(jitter)
    token = os.urandom(8)
    run_id = uuid.uuid4()
    return jitter, token, run_id
