# fixture-path: src/repro/workloads/noise.py
"""DET002 good: all randomness flows from an explicit seeded instance
(the sim/random_schedules.py idiom)."""
import random


def seeded_noise(n, seed):
    rng = random.Random(seed)
    jitter = [rng.random() for _ in range(n)]
    rng.shuffle(jitter)
    return jitter
