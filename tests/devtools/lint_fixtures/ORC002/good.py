# fixture-path: src/repro/engine/orchestrator/worker.py
"""ORC002 good: broad catches record the failure; narrow catches may
drop (an OSError on a best-effort touch is legitimately ignorable)."""


def run_attempt(task, failures):
    try:
        return task()
    except Exception as exc:
        failures.append(exc)
        return None


def best_effort_touch(path):
    try:
        path.touch()
    except OSError:
        pass
