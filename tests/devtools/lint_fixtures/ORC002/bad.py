# fixture-path: src/repro/engine/orchestrator/worker.py
"""ORC002 bad: the broadest classes swallowed silently."""


def run_attempt(task):
    try:
        return task()
    except Exception:
        pass
    try:
        return task()
    except BaseException:
        pass
