# fixture-path: src/repro/core/keys.py
"""DET004 good: the three allowed hash() shapes, plus hashlib for any
value that actually needs to be stable across processes."""
import hashlib


class Keyed:
    def __init__(self, name):
        self.name = name

    def __hash__(self):
        return hash(self.name)


def stable_key(name, payload, a, b):
    hash(payload)  # fail-fast hashability probe: value discarded
    contract_holds = hash(a) == hash(b)
    digest = hashlib.sha256(name.encode()).hexdigest()
    return contract_holds, digest
