# fixture-path: src/repro/core/keys.py
"""DET004 bad: memory addresses and salted hashes feeding values."""


def unstable_keys(name, obj):
    cache_key = hash(name)
    identity = id(obj)
    return cache_key, identity
