# fixture-path: src/repro/model/payloads.py
"""PKL001 good: slots dataclass with the explicit, 3.10-safe state
protocol (the model/messages.py idiom); plain dataclasses need nothing."""
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Envelope:
    sender: int
    payload: tuple

    def __getstate__(self):
        return (self.sender, self.payload)

    def __setstate__(self, state):
        object.__setattr__(self, "sender", state[0])
        object.__setattr__(self, "payload", state[1])


@dataclass(frozen=True)
class DictBacked:
    sender: int
