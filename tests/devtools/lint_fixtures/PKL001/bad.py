# fixture-path: src/repro/model/payloads.py
"""PKL001 bad: slots dataclass crossing the pool boundary with no
explicit pickle state protocol."""
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Envelope:
    sender: int
    payload: tuple
