# fixture-path: src/repro/sim/kernel.py
"""BIT001 good: hot-path sets routed through the interning tables;
module-level one-shot constants stay allowed."""
from repro.sim.bitset import interned_set, mask_of

_EMPTY_PIDS = frozenset()


def finish_round(halted_this_round):
    return interned_set(mask_of(halted_this_round))
