# fixture-path: src/repro/sim/kernel.py
"""BIT001 bad: per-call frozenset materialization in a hot-path file."""


def finish_round(halted_this_round):
    return frozenset(halted_this_round)
