# fixture-path: src/repro/engine/executors.py
"""ORC003 bad: a bare pool constructor and a lazy in-context drain."""
from concurrent.futures import ThreadPoolExecutor
from multiprocessing.pool import Pool


def leak_on_error(execute, cases):
    pool = Pool(4)
    results = pool.map(execute, cases)
    pool.close()
    return results


def lazy_stream(execute, cases):
    with ThreadPoolExecutor(max_workers=2) as pool:
        yield from pool.map(execute, cases)
