# fixture-path: src/repro/engine/executors.py
"""ORC003 good: context-managed pools, drained inside the with block,
yielded only after the workers are torn down."""
from concurrent.futures import ThreadPoolExecutor
from multiprocessing.pool import Pool


def drain_then_stream(execute, cases):
    with ThreadPoolExecutor(max_workers=2) as pool:
        drained = list(pool.map(execute, cases))
    yield from drained


def mapper(execute, cases):
    with Pool(4) as pool:
        return list(pool.imap_unordered(execute, cases))


def nested_generator_is_not_a_lazy_drain(execute, cases):
    with ThreadPoolExecutor(max_workers=2) as pool:
        drained = list(pool.map(execute, cases))

        def consume():
            yield from drained

        collected = list(consume())
    return collected
