# fixture-path: src/repro/sim/view.py
"""BIT002 bad: per-receiver Message construction in a hot-path file."""
from repro.model.messages import Message


def deliver(k, sender, receiver, payload):
    return Message(
        sent_round=k, sender=sender, receiver=receiver, payload=payload
    )
