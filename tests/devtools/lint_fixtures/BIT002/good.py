# fixture-path: src/repro/sim/view.py
"""BIT002 good: hot-path messages built through fast_message."""
from repro.model.messages import fast_message


def deliver(k, sender, receiver, payload):
    return fast_message(k, sender, receiver, payload)
