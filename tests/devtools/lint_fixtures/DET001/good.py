# fixture-path: src/repro/analysis/report.py
"""DET001 good: every order-sensitive use of a set is sorted first, and
order-insensitive reductions stay allowed."""


def order_safe(values):
    out = []
    for value in sorted({v for v in values}):
        out.append(value)
    rows = [v * 2 for v in sorted(set(values))]
    captured = list(sorted({1, 2, 3}))
    total = sum({v for v in values})
    count = len(set(values))
    biggest = max(frozenset(values))
    text = ",".join(sorted({str(v) for v in values}))
    return out, rows, captured, total, count, biggest, text
