# fixture-path: src/repro/analysis/report.py
"""DET001 bad: set iteration order leaking into ordered consumers."""


def order_sensitive(values):
    out = []
    for value in {v for v in values}:
        out.append(value)
    rows = [v * 2 for v in set(values)]
    captured = list({1, 2, 3})
    pairs = tuple(frozenset(values))
    text = ",".join({str(v) for v in values})
    return out, rows, captured, pairs, text
