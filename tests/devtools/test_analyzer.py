"""Analyzer front-end behavior: suppressions, scoping, walking, reports."""

from __future__ import annotations

import os

import pytest

from repro.devtools import lint_paths, lint_source, iter_python_files
from repro.devtools.analyzer import PARSE_ERROR_CODE
from repro.devtools.rules import module_parts

HOT_PATH = "src/repro/sim/kernel.py"

BAD_LINE = "def f(pids):\n    return frozenset(pids)\n"


class TestNoqa:
    def test_exact_code_suppresses(self):
        source = (
            "def f(pids):\n"
            "    return frozenset(pids)  # repro: noqa[BIT001]\n"
        )
        assert lint_source(source, HOT_PATH) == []

    def test_multiple_codes_suppress(self):
        source = (
            "def f(pids):\n"
            "    return frozenset(pids)  # repro: noqa[DET004, BIT001]\n"
        )
        assert lint_source(source, HOT_PATH) == []

    def test_blanket_noqa_suppresses(self):
        source = (
            "def f(pids):\n"
            "    return frozenset(pids)  # repro: noqa\n"
        )
        assert lint_source(source, HOT_PATH) == []

    def test_wrong_code_does_not_suppress(self):
        source = (
            "def f(pids):\n"
            "    return frozenset(pids)  # repro: noqa[DET001]\n"
        )
        assert [f.code for f in lint_source(source, HOT_PATH)] == ["BIT001"]

    def test_other_lines_unaffected(self):
        source = (
            "def f(pids):\n"
            "    a = frozenset(pids)  # repro: noqa[BIT001]\n"
            "    return frozenset(a)\n"
        )
        findings = lint_source(source, HOT_PATH)
        assert [(f.code, f.line) for f in findings] == [("BIT001", 3)]

    def test_plain_flake8_noqa_is_not_ours(self):
        source = (
            "def f(pids):\n"
            "    return frozenset(pids)  # noqa\n"
        )
        assert [f.code for f in lint_source(source, HOT_PATH)] == ["BIT001"]

    def test_case_insensitive_codes(self):
        source = (
            "def f(pids):\n"
            "    return frozenset(pids)  # repro: noqa[bit001]\n"
        )
        assert lint_source(source, HOT_PATH) == []


class TestScoping:
    def test_module_parts_strips_through_repro(self):
        assert module_parts("src/repro/sim/kernel.py") == (
            "sim",
            "kernel.py",
        )
        assert module_parts("repro/engine/runner.py") == (
            "engine",
            "runner.py",
        )

    def test_module_parts_outside_repro(self):
        assert module_parts("tests/model/test_messages.py") == (
            "tests",
            "model",
            "test_messages.py",
        )

    def test_hot_path_rule_silent_outside_hot_files(self):
        assert lint_source(BAD_LINE, "src/repro/sim/bitset.py") == []
        assert lint_source(BAD_LINE, "src/repro/analysis/metrics.py") == []

    def test_everywhere_rule_fires_anywhere(self):
        source = "import random\nx = random.random()\n"
        assert [f.code for f in lint_source(source, "scripts/tool.py")] == [
            "DET002"
        ]


class TestParseErrors:
    def test_syntax_error_is_a_finding(self):
        findings = lint_source("def broken(:\n", HOT_PATH)
        assert len(findings) == 1
        assert findings[0].code == PARSE_ERROR_CODE
        assert findings[0].line == 1

    def test_parse_finding_cannot_be_suppressed(self):
        findings = lint_source(
            "def broken(:  # repro: noqa\n", HOT_PATH
        )
        assert [f.code for f in findings] == [PARSE_ERROR_CODE]


class TestFileWalker:
    def test_skips_fixture_corpus_and_hidden_dirs(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "lint_fixtures").mkdir()
        (tmp_path / "pkg" / "lint_fixtures" / "bad.py").write_text("x = 1\n")
        (tmp_path / "pkg" / ".hidden").mkdir()
        (tmp_path / "pkg" / ".hidden" / "mod.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "mod.py").write_text("x = 1\n")
        files = list(iter_python_files([str(tmp_path)]))
        assert [os.path.basename(f) for f in files] == ["mod.py"]

    def test_explicit_file_argument_is_taken_as_is(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("x = 1\n")
        assert list(iter_python_files([str(target)])) == [
            str(target).replace(os.sep, "/")
        ]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            list(iter_python_files(["definitely/not/here"]))

    def test_deterministic_order(self, tmp_path):
        for name in ("b.py", "a.py", "c.py"):
            (tmp_path / name).write_text("x = 1\n")
        files = [
            os.path.basename(f)
            for f in iter_python_files([str(tmp_path)])
        ]
        assert files == ["a.py", "b.py", "c.py"]


class TestLintPaths:
    def test_report_aggregates_and_sorts(self, tmp_path):
        (tmp_path / "z.py").write_text("import random\nr = random.random()\n")
        (tmp_path / "a.py").write_text(
            "import random\nq = random.choice([1])\n"
        )
        report = lint_paths([str(tmp_path)])
        assert report.files_checked == 2
        assert not report.clean
        assert report.counts_by_code() == {"DET002": 2}
        assert [os.path.basename(f.path) for f in report.findings] == [
            "a.py",
            "z.py",
        ]

    def test_json_payload_shape(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        data = lint_paths([str(tmp_path)]).to_data()
        assert data["version"] == 1
        assert data["files_checked"] == 1
        assert data["findings"] == []
        assert data["counts"] == {}
