"""The tree lints itself: ``repro lint`` over the shipped code is clean.

This is the acceptance gate from the static-analysis PR wired into
tier-1: any change that reintroduces an uninterned hot-path frozenset, a
lazily-drained pool, unseeded randomness, a clock read in a
record-producing package, or a pickle-unsafe slots class fails the suite
immediately — not in some later nightly.
"""

from __future__ import annotations

import os

from repro.devtools import Baseline, lint_paths

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def _root(*parts: str) -> str:
    return os.path.join(REPO_ROOT, *parts)


def test_shipped_tree_is_lint_clean():
    baseline = Baseline.load(_root("lint-baseline.json"))
    report = lint_paths(
        [_root("src"), _root("tests"), _root("benchmarks")],
        baseline=baseline,
    )
    assert report.clean, "\n".join(f.describe() for f in report.findings)
    assert report.files_checked > 100


def test_committed_baseline_is_empty():
    """The shipped tree carries no lint debt; keep it that way.

    If you are reading this because a rule you added surfaced legacy
    findings you cannot fix in the same PR, regenerate the baseline with
    ``repro lint src/ tests/ benchmarks/ --update-baseline`` and delete
    this test's emptiness assertion in the same commit — the self-check
    above still gates on *new* findings.
    """
    baseline = Baseline.load(_root("lint-baseline.json"))
    assert len(baseline) == 0
