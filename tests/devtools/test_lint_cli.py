"""CLI behavior: exit codes, --json export, baseline flags, rule listing."""

from __future__ import annotations

import argparse
import io
import json

from repro.cli import main as repro_main
from repro.devtools import all_rules
from repro.devtools.cli import add_lint_arguments, run_lint

CLEAN = "x = 1\n"
DIRTY = "import random\nx = random.random()\n"


def parse(argv):
    parser = argparse.ArgumentParser()
    add_lint_arguments(parser)
    return parser.parse_args(argv)


def lint(argv):
    stream = io.StringIO()
    code = run_lint(parse(argv), stream=stream)
    return code, stream.getvalue()


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path):
        (tmp_path / "ok.py").write_text(CLEAN)
        code, out = lint([str(tmp_path)])
        assert code == 0
        assert "clean" in out

    def test_findings_exit_one(self, tmp_path):
        (tmp_path / "bad.py").write_text(DIRTY)
        code, out = lint([str(tmp_path)])
        assert code == 1
        assert "DET002" in out

    def test_unknown_path_exits_two(self):
        code, _ = lint(["definitely/not/here"])
        assert code == 2

    def test_unknown_select_code_exits_two(self, tmp_path):
        (tmp_path / "ok.py").write_text(CLEAN)
        code, _ = lint([str(tmp_path), "--select", "NOPE99"])
        assert code == 2

    def test_malformed_baseline_exits_two(self, tmp_path):
        (tmp_path / "ok.py").write_text(CLEAN)
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{broken")
        code, _ = lint([str(tmp_path), "--baseline", str(baseline)])
        assert code == 2


class TestJsonExport:
    def test_report_written(self, tmp_path):
        (tmp_path / "bad.py").write_text(DIRTY)
        out_file = tmp_path / "report.json"
        code, _ = lint([str(tmp_path), "--json", str(out_file)])
        assert code == 1
        data = json.loads(out_file.read_text())
        assert data["version"] == 1
        assert data["counts"] == {"DET002": 1}
        assert len(data["findings"]) == 1
        finding = data["findings"][0]
        assert finding["code"] == "DET002"
        assert finding["line"] == 2

    def test_written_even_when_clean(self, tmp_path):
        (tmp_path / "ok.py").write_text(CLEAN)
        out_file = tmp_path / "report.json"
        code, _ = lint([str(tmp_path), "--json", str(out_file)])
        assert code == 0
        assert json.loads(out_file.read_text())["findings"] == []


class TestBaselineFlags:
    def test_update_then_gate(self, tmp_path):
        (tmp_path / "bad.py").write_text(DIRTY)
        baseline = tmp_path / "baseline.json"
        code, out = lint(
            [str(tmp_path), "--baseline", str(baseline), "--update-baseline"]
        )
        assert code == 0
        assert "1 finding(s)" in out
        # Gated run: the legacy finding is absorbed.
        code, out = lint([str(tmp_path), "--baseline", str(baseline)])
        assert code == 0
        assert "1 baselined" in out
        # A new violation still fails.
        (tmp_path / "bad.py").write_text(DIRTY + "y = random.choice([1])\n")
        code, out = lint([str(tmp_path), "--baseline", str(baseline)])
        assert code == 1
        assert "choice" in out

    def test_no_baseline_ignores_allowances(self, tmp_path):
        (tmp_path / "bad.py").write_text(DIRTY)
        baseline = tmp_path / "baseline.json"
        lint([str(tmp_path), "--baseline", str(baseline), "--update-baseline"])
        code, _ = lint(
            [str(tmp_path), "--baseline", str(baseline), "--no-baseline"]
        )
        assert code == 1


class TestSelect:
    def test_select_restricts_rules(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import random\n"
            "x = random.random()\n"
            "def f():\n"
            "    try:\n"
            "        pass\n"
            "    except:\n"
            "        pass\n"
        )
        code, out = lint([str(tmp_path), "--select", "ORC001"])
        assert code == 1
        assert "ORC001" in out and "DET002" not in out


class TestListRules:
    def test_catalogue_lists_every_code(self):
        code, out = lint(["--list-rules"])
        assert code == 0
        for rule in all_rules():
            assert rule.code in out


class TestReproEntryPoint:
    def test_lint_subcommand_wired(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(DIRTY)
        assert repro_main(["lint", str(tmp_path), "--no-baseline"]) == 1
        assert "DET002" in capsys.readouterr().out
        (tmp_path / "bad.py").write_text(CLEAN)
        assert repro_main(["lint", str(tmp_path), "--no-baseline"]) == 0
