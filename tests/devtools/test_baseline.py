"""Baseline semantics: round-trip, counted allowances, failure modes."""

from __future__ import annotations

import json

import pytest

from repro.devtools import Baseline, lint_source

HOT_PATH = "src/repro/sim/kernel.py"


def _findings(n_extra_lines: int = 0):
    body = "".join(
        f"    x{i} = frozenset(pids)\n" for i in range(1 + n_extra_lines)
    )
    return lint_source(f"def f(pids):\n{body}", HOT_PATH)


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path):
        baseline = Baseline.from_findings(_findings(2))
        path = str(tmp_path / "baseline.json")
        baseline.save(path)
        assert Baseline.load(path) == baseline

    def test_saved_file_is_canonical(self, tmp_path):
        baseline = Baseline.from_findings(_findings(1))
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        baseline.save(str(first))
        Baseline.load(str(first)).save(str(second))
        assert first.read_text() == second.read_text()

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(str(tmp_path / "absent.json"))
        assert len(baseline) == 0


class TestFiltering:
    def test_baselined_findings_are_absorbed(self):
        findings = _findings()
        baseline = Baseline.from_findings(findings)
        kept, absorbed = baseline.filter(findings)
        assert kept == []
        assert absorbed == len(findings)

    def test_new_findings_pass_through(self):
        baseline = Baseline.from_findings(_findings())
        # Same file, new second violation on a *different* line text.
        source = (
            "def f(pids):\n"
            "    x0 = frozenset(pids)\n"
            "    other = frozenset(sorted(pids))\n"
        )
        kept, absorbed = baseline.filter(lint_source(source, HOT_PATH))
        assert absorbed == 1
        assert [f.line for f in kept] == [3]

    def test_count_bounds_identical_line_texts(self):
        # Two findings with the same key (identical stripped line text):
        # an allowance of one absorbs only one of them.
        source = (
            "def f(pids):\n"
            "    x = frozenset(pids)\n"
            "    x = frozenset(pids)\n"
        )
        findings = lint_source(source, HOT_PATH)
        assert len(findings) == 2
        assert findings[0].key() == findings[1].key()
        baseline = Baseline.from_findings(findings[:1])
        kept, absorbed = baseline.filter(findings)
        assert absorbed == 1
        assert len(kept) == 1

    def test_keys_are_line_number_independent(self):
        moved = lint_source(
            "# a comment pushing everything down\n\n\n"
            "def f(pids):\n"
            "    x0 = frozenset(pids)\n",
            HOT_PATH,
        )
        baseline = Baseline.from_findings(_findings())
        kept, absorbed = baseline.filter(moved)
        assert kept == []
        assert absorbed == 1


class TestFailureModes:
    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(json.JSONDecodeError):
            Baseline.load(str(path))

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text(json.dumps({"version": 99, "entries": {}}))
        with pytest.raises(ValueError):
            Baseline.load(str(path))

    def test_malformed_entry_raises(self, tmp_path):
        path = tmp_path / "bad-entry.json"
        path.write_text(
            json.dumps({"version": 1, "entries": {"k": "three"}})
        )
        with pytest.raises(ValueError):
            Baseline.load(str(path))
