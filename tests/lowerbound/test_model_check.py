"""Tests for the bounded exhaustive model checker."""

import pytest

from repro import ATt2, AFPlus2, FloodSetWS, HurfinRaynalES
from repro.lowerbound.model_check import (
    AdversaryBudget,
    check_consensus_safety,
)

SMALL = AdversaryBudget(
    max_crashes=1, crash_rounds=2, async_rounds=2, max_delays_per_round=1
)
DELAYS_ONLY = AdversaryBudget(
    max_crashes=0, crash_rounds=0, async_rounds=3, max_delays_per_round=1
)


class TestFindsKnownBugs:
    def test_floodset_ws_violation_found(self):
        """The checker discovers the indulgence failure automatically."""
        result = check_consensus_safety(
            FloodSetWS, [0, 1, 1], t=1, budget=SMALL
        )
        assert not result.safe
        assert any("agreement" in d for d in result.violation_detail)
        # The witness is a pure false-suspicion adversary or a tiny
        # crash+delay combination; either way it is ES-flavoured.
        assert result.violation is not None

    def test_floodset_ws_violation_without_crashes(self):
        """False suspicions alone are enough to break FloodSetWS."""
        result = check_consensus_safety(
            FloodSetWS, [0, 1, 1], t=1, budget=DELAYS_ONLY
        )
        assert not result.safe
        assert not result.violation.crashes

    def test_floodset_ws_safe_under_synchronous_budget(self):
        """With a zero asynchrony budget the same algorithm is safe."""
        synchronous = AdversaryBudget(
            max_crashes=1, crash_rounds=2, async_rounds=0,
            max_delays_per_round=0,
        )
        result = check_consensus_safety(
            FloodSetWS, [0, 1, 1], t=1, budget=synchronous
        )
        assert result.safe


class TestIndulgentAlgorithmsSurvive:
    @pytest.mark.parametrize(
        "name,factory",
        [
            ("att2", ATt2.factory()),
            ("hurfin_raynal", HurfinRaynalES),
        ],
    )
    def test_safe_within_small_budget(self, name, factory):
        result = check_consensus_safety(
            factory, [0, 1, 1], t=1, budget=SMALL, horizon=24
        )
        assert result.safe, (name, result.violation_detail)
        assert result.runs > 300
        assert result.decided_runs == result.runs

    def test_afp2_safe_within_budget(self):
        result = check_consensus_safety(
            AFPlus2, [0, 1, 2, 3], t=1, budget=DELAYS_ONLY, horizon=16
        )
        assert result.safe
        assert result.decided_runs == result.runs

    def test_att2_fast_path_bounds(self):
        # Within the delays-only budget, decisions range from t+2 (clean
        # enough prefixes) up to the fallback rounds.
        result = check_consensus_safety(
            ATt2.factory(), [0, 1, 1], t=1, budget=DELAYS_ONLY, horizon=24
        )
        assert result.safe
        assert result.best_global_round == 3  # t + 2
        assert result.worst_global_round > 3  # some runs hit C


class TestBudgetMechanics:
    def test_zero_budget_is_single_run(self):
        empty = AdversaryBudget(
            max_crashes=0, crash_rounds=0, async_rounds=0,
            max_delays_per_round=0,
        )
        result = check_consensus_safety(
            ATt2.factory(), [0, 1, 1], t=1, budget=empty
        )
        assert result.runs == 1
        assert result.worst_global_round == 3

    def test_crash_budget_respected(self):
        budget = AdversaryBudget(
            max_crashes=1, crash_rounds=1, async_rounds=0,
            max_delays_per_round=0,
        )
        result = check_consensus_safety(
            ATt2.factory(), [0, 1, 1], t=1, budget=budget
        )
        # no-crash + 3 crashers x 4 subsets = 13 schedules.
        assert result.runs == 13
