"""Tests for the Figure-1 five-run gadget (Claim 5.1)."""

import pytest

from repro import ADiamondS, ATt2, ChandraTouegES, HurfinRaynalES
from repro.lowerbound.figure1 import (
    FigureOneConfig,
    build_figure_one,
    canonical_config,
)
from repro.model.es import check_es


class TestCanonicalConfig:
    def test_t1_shape(self):
        config = canonical_config(4, 1)
        assert config.p_one == 0
        assert config.p_i_plus_1 == 1
        assert config.suspects == frozenset({1, 2, 3})
        assert config.prefix == {}

    def test_t2_value_hiding_prefix(self):
        config = canonical_config(5, 2)
        assert config.p_one == 1
        assert config.prefix == {0: (1, (1,))}
        assert config.suspects == frozenset({2, 3, 4})

    def test_rejects_bad_resilience(self):
        with pytest.raises(ValueError):
            canonical_config(4, 2)


class TestGadgetClaims:
    @pytest.mark.parametrize(
        "factory_name,factory",
        [
            ("att2", ATt2.factory()),
            ("adiamond_s", ADiamondS.factory()),
            ("hurfin_raynal", HurfinRaynalES),
            ("chandra_toueg", ChandraTouegES),
        ],
    )
    @pytest.mark.parametrize("n,t", [(3, 1), (4, 1), (5, 2)])
    def test_all_claims_hold(self, factory_name, factory, n, t):
        report = build_figure_one(factory, n=n, t=t)
        assert report.claim_a1_s1, (factory_name, n, t)
        assert report.claim_a0_s0, (factory_name, n, t)
        assert report.claim_common, (factory_name, n, t)
        assert not report.determinism_issues, (factory_name, n, t)

    def test_synchronous_runs_diverge_in_canonical_config(self):
        """s1 and s0 decide differently: the gadget sits on real bivalence."""
        report = build_figure_one(ATt2.factory(), n=5, t=2)
        s1 = report.traces["s1"].decided_values()
        s0 = report.traces["s0"].decided_values()
        assert s1 == {1}
        assert s0 == {0}

    def test_asynchronous_runs_agree_among_observers(self):
        report = build_figure_one(ATt2.factory(), n=4, t=1)
        values = {
            name: report.traces[name].decided_values()
            for name in ("a2", "a1", "a0")
        }
        assert values["a2"] == values["a1"] == values["a0"]

    def test_gadget_schedules_are_es_legal(self):
        report = build_figure_one(ATt2.factory(), n=4, t=1)
        for name, trace in report.traces.items():
            violations = check_es(trace.schedule, require_sync_by=None)
            assert not violations, (name, violations)

    def test_pivot_never_decides_in_a1_a0(self):
        # The pivot crashes at t+2 without deciding (A_{t+2} decides no
        # earlier than t+2) — exactly how a t+2 algorithm escapes the trap.
        report = build_figure_one(ATt2.factory(), n=4, t=1)
        pivot = report.config.p_i_plus_1
        assert report.traces["a1"].decision_round(pivot) is None
        assert report.traces["a0"].decision_round(pivot) is None

    def test_decision_table_lists_all_runs(self):
        report = build_figure_one(ATt2.factory(), n=3, t=1)
        assert [row[0] for row in report.decision_table()] == [
            "s1", "s0", "a2", "a1", "a0",
        ]


class TestCustomConfig:
    def test_explicit_config(self):
        config = FigureOneConfig(
            n=4,
            t=1,
            proposals=(0, 1, 1, 1),
            p_one=0,
            p_i_plus_1=2,
            suspects=frozenset({1, 2}),
            prefix={},
        )
        report = build_figure_one(ATt2.factory(), config)
        assert report.all_claims_hold

    def test_requires_config_or_sizes(self):
        with pytest.raises(ValueError, match="config"):
            build_figure_one(ATt2.factory())
