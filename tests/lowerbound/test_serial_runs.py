"""Tests for serial-run enumeration."""

from repro import FloodSet
from repro.lowerbound.serial_runs import (
    CrashEvent,
    enumerate_serial_partial_runs,
    one_round_options,
    schedule_from_events,
    worst_case_serial,
)


class TestOneRoundOptions:
    def test_includes_no_crash(self):
        options = list(one_round_options(3, 1, (), 1))
        assert () in options

    def test_counts_for_n3_t1(self):
        # no-crash + 3 crashers x 2^2 delivery subsets = 13.
        assert len(list(one_round_options(3, 1, (), 1))) == 13

    def test_budget_exhausted_gives_only_no_crash(self):
        events = (CrashEvent(round=1, pid=0, delivered_to=frozenset()),)
        assert list(one_round_options(3, 1, events, 2)) == [events]

    def test_crashed_process_not_a_receiver(self):
        events = (CrashEvent(round=1, pid=0, delivered_to=frozenset()),)
        for option in one_round_options(3, 2, events, 2):
            for event in option:
                assert 0 not in event.delivered_to or event.pid != 0
                if event.round == 2:
                    assert 0 not in event.delivered_to


class TestEnumeration:
    def test_run_count_n3_t1_two_rounds(self):
        # Round 1: 13 options; options with a crash allow only the
        # no-crash continuation (budget 1); the no-crash branch re-opens
        # 13 options in round 2: 12 + 13 = 25.
        runs = list(enumerate_serial_partial_runs(3, 1, 2))
        assert len(runs) == 25

    def test_all_enumerated_runs_are_serial(self):
        for events in enumerate_serial_partial_runs(3, 1, 3):
            schedule = schedule_from_events(3, 1, events, 5)
            assert schedule.is_serial_run()

    def test_unique(self):
        runs = list(enumerate_serial_partial_runs(4, 1, 2))
        assert len(runs) == len(set(runs))


class TestWorstCase:
    def test_floodset_is_flat_at_t_plus_1(self):
        worst, worst_events, best, _ = worst_case_serial(
            FloodSet, [0, 1, 2], t=1, crash_rounds_limit=2, horizon=5
        )
        assert worst == best == 2
        # The witness is still reported.
        assert isinstance(worst_events, tuple)
