"""Tests for valency computation (Lemma 2 / Lemma 5 dichotomy)."""

from repro import ATt2, FloodSet
from repro.lowerbound.serial_runs import CrashEvent
from repro.lowerbound.valency import classify_partial_runs, is_bivalent, valency


class TestValencyBasics:
    def test_unanimous_config_is_univalent(self):
        values = valency(FloodSet, [1, 1, 1], (), t=1, prefix_rounds=0,
                         crash_rounds_limit=2)
        assert values == frozenset({1})

    def test_mixed_config_bivalent_for_floodset(self):
        # [1, 1, 0]: crashing p2 in round 1 silently kills value 0.
        assert is_bivalent(FloodSet, [1, 1, 0], (), t=1, prefix_rounds=0,
                           crash_rounds_limit=2)

    def test_prefix_narrowing(self):
        # After p2 crashes in round 1 delivering to nobody, 0 is gone.
        events = (CrashEvent(round=1, pid=2, delivered_to=frozenset()),)
        values = valency(FloodSet, [1, 1, 0], events, t=1, prefix_rounds=1,
                         crash_rounds_limit=2)
        assert values == frozenset({1})

    def test_partial_delivery_preserves_value(self):
        events = (CrashEvent(round=1, pid=2, delivered_to=frozenset({0})),)
        values = valency(FloodSet, [1, 1, 0], events, t=1, prefix_rounds=1,
                         crash_rounds_limit=2)
        assert values == frozenset({0})


class TestLemmaTwoDichotomy:
    def test_floodset_t_round_runs_all_univalent(self):
        """FloodSet decides at t+1, so t-round runs must be univalent."""
        results = classify_partial_runs(
            FloodSet, [1, 1, 0], t=1, prefix_rounds=1, crash_rounds_limit=2
        )
        assert results
        for events, values in results:
            assert len(values) == 1, events

    def test_att2_t_plus_1_round_runs_all_univalent(self):
        """A_{t+2} decides at t+2, so (t+1)-round runs must be univalent."""
        results = classify_partial_runs(
            ATt2.factory(), [1, 1, 0], t=1, prefix_rounds=2
        )
        assert results
        for events, values in results:
            assert len(values) == 1, events

    def test_att2_initial_config_bivalent(self):
        """... while its 0-round 'partial run' is bivalent (Lemma 3)."""
        assert is_bivalent(ATt2.factory(), [1, 1, 0], (), t=1,
                           prefix_rounds=0)
