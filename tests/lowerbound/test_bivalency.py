"""Tests for bivalent configuration search (Lemmas 3 and 4)."""

import pytest

from repro import ATt2, FloodSet, HurfinRaynalES
from repro.lowerbound.bivalency import (
    chain_configurations,
    find_bivalent_initial,
    find_bivalent_serial_prefix,
    initial_valencies,
)


class TestChainConfigurations:
    def test_shape(self):
        chains = chain_configurations(3)
        assert chains == [
            [0, 0, 0],
            [1, 0, 0],
            [1, 1, 0],
            [1, 1, 1],
        ]


class TestLemmaThree:
    """Some initial configuration is bivalent — for every algorithm."""

    def test_att2_has_bivalent_initial(self):
        assert find_bivalent_initial(ATt2.factory(), 3, 1) is not None

    def test_floodset_has_bivalent_initial(self):
        assert (
            find_bivalent_initial(FloodSet, 3, 1, crash_rounds_limit=2)
            is not None
        )

    def test_hurfin_raynal_has_bivalent_initial(self):
        assert (
            find_bivalent_initial(
                HurfinRaynalES, 3, 1, crash_rounds_limit=4
            )
            is not None
        )

    def test_endpoints_are_univalent(self):
        valencies = initial_valencies(ATt2.factory(), 3, 1)
        all_zero, all_one = valencies[0], valencies[-1]
        assert all_zero[1] == frozenset({0})  # validity pins C_0 ...
        assert all_one[1] == frozenset({1})  # ... and C_n

    def test_adjacent_univalent_configs_share_valency(self):
        """The Lemma-3 argument itself: valency flips only via bivalence."""
        valencies = initial_valencies(ATt2.factory(), 3, 1)
        for (_, left), (_, right) in zip(valencies, valencies[1:]):
            if len(left) == 1 and len(right) == 1 and left != right:
                pytest.fail(
                    "adjacent univalent configurations with opposite "
                    f"valencies: {valencies}"
                )


class TestLemmaFour:
    """A bivalent (t-1)-round serial partial run exists (trivial for t=1)."""

    def test_t_minus_1_prefix_for_t1_is_initial_config(self):
        proposals = find_bivalent_initial(ATt2.factory(), 3, 1)
        prefix = find_bivalent_serial_prefix(
            ATt2.factory(), proposals, t=1, target_round=0
        )
        assert prefix == ()

    def test_bivalent_one_round_prefix_with_larger_t(self):
        # n=5, t=2: Lemma 4 promises a bivalent 1-round serial partial
        # run.  The full search is bench territory
        # (benchmarks/bench_valency.py); here we verify the canonical
        # witness: p0 (holding the hidden minimum) crashes in round 1
        # delivering only to p1 — the carrier's fate stays undecided.
        from repro.lowerbound.serial_runs import CrashEvent
        from repro.lowerbound.valency import is_bivalent

        witness = (
            CrashEvent(round=1, pid=0, delivered_to=frozenset({1})),
        )
        assert is_bivalent(
            ATt2.factory(), [0, 1, 1, 1, 1], witness, t=2, prefix_rounds=1
        )

    def test_no_bivalent_t_round_prefix_for_floodset(self):
        """Lemma 2's contrapositive for the t+1-decider in SCS."""
        proposals = find_bivalent_initial(
            FloodSet, 3, 1, crash_rounds_limit=2
        )
        prefix = find_bivalent_serial_prefix(
            FloodSet, proposals, t=1, target_round=1, crash_rounds_limit=2
        )
        assert prefix is None
