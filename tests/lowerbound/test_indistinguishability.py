"""Tests for view-equality utilities."""

import pytest

from repro import ATt2, FloodSet, Schedule
from repro.lowerbound.indistinguishability import (
    decision_consistency,
    distinguishers,
    first_divergence_round,
    views_equal_for,
)
from repro.sim.kernel import run_algorithm


def traces_differing_at_p2():
    """Two runs identical except whether p3's final message reaches p2.

    p3 holds the minimum proposal and crashes in round 1; in one run the
    value 0 survives at p2, in the other it dies with p3.
    """
    base = Schedule.synchronous(4, 1, 6, crashes={3: (1, [2])})
    other = Schedule.synchronous(4, 1, 6, crashes={3: (1, [])})
    proposals = [5, 6, 7, 0]
    return (
        run_algorithm(FloodSet, base, proposals),
        run_algorithm(FloodSet, other, proposals),
    )


class TestDistinguishers:
    def test_identical_runs_have_no_distinguishers(self):
        schedule = Schedule.failure_free(3, 1, 5)
        a = run_algorithm(FloodSet, schedule, [1, 2, 3])
        b = run_algorithm(FloodSet, schedule, [1, 2, 3])
        assert distinguishers(a, b, upto=5) == frozenset()

    def test_only_affected_receiver_distinguishes_at_first(self):
        a, b = traces_differing_at_p2()
        assert distinguishers(a, b, upto=1) == frozenset({2})

    def test_difference_propagates(self):
        a, b = traces_differing_at_p2()
        # p2's round-2 flood reveals the hidden 0 to everyone alive, and
        # indeed the two runs decide differently.
        later = distinguishers(a, b, upto=2)
        assert later >= frozenset({0, 1, 2})
        assert a.decided_values() == {0}
        assert b.decided_values() == {5}

    def test_views_equal_for(self):
        a, b = traces_differing_at_p2()
        assert views_equal_for(a, b, {0, 1}, upto=1)
        assert not views_equal_for(a, b, {0, 1, 2}, upto=1)

    def test_size_mismatch_rejected(self):
        a, _ = traces_differing_at_p2()
        c = run_algorithm(FloodSet, Schedule.failure_free(3, 1, 5),
                          [1, 2, 3])
        with pytest.raises(ValueError, match="different system sizes"):
            distinguishers(a, c, upto=2)


class TestFirstDivergence:
    def test_divergence_round(self):
        a, b = traces_differing_at_p2()
        assert first_divergence_round(a, b, 2, upto=5) == 1
        assert first_divergence_round(a, b, 0, upto=5) == 2
        assert first_divergence_round(a, b, 0, upto=1) is None


class TestDecisionConsistency:
    def test_no_issues_for_deterministic_automata(self):
        a, b = traces_differing_at_p2()
        assert decision_consistency(a, b, upto=1) == []

    def test_consistency_across_att2_runs(self):
        schedule = Schedule.failure_free(3, 1, 8)
        a = run_algorithm(ATt2.factory(), schedule, [1, 2, 3])
        b = run_algorithm(ATt2.factory(), schedule, [1, 2, 3])
        assert decision_consistency(a, b, upto=8) == []
