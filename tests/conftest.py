"""Shared helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import (
    AFPlus2,
    AMRLeaderES,
    ATt2,
    ATt2Optimized,
    ADiamondS,
    ChandraTouegES,
    EarlyDecidingSCS,
    FloodSet,
    FloodSetWS,
    HurfinRaynalES,
)
from repro.analysis.metrics import check_consensus
from repro.sim.kernel import run_algorithm


def es_algorithm_params():
    """(name, factory) pairs for algorithms that solve consensus in ES.

    Factories are rebuilt per call — A_{t+2} variants hold no shared state,
    but fresh factories keep parametrized tests independent.
    """
    return [
        ("att2", ATt2.factory()),
        ("att2_optimized", ATt2Optimized.factory()),
        ("adiamond_s", ADiamondS.factory()),
        ("chandra_toueg", ChandraTouegES),
        ("hurfin_raynal", HurfinRaynalES),
    ]


def scs_algorithm_params():
    """(name, factory) pairs for algorithms sound in SCS only."""
    return [
        ("floodset", FloodSet),
        ("floodset_ws", FloodSetWS),
        ("early_deciding", EarlyDecidingSCS),
    ]


def third_resilient_params():
    """(name, factory) pairs for the t < n/3 algorithms."""
    return [
        ("afp2", AFPlus2),
        ("amr_leader", AMRLeaderES),
    ]


def run_and_check(factory, schedule, proposals, *, expect_termination=True):
    """Run a consensus algorithm and assert the consensus properties."""
    trace = run_algorithm(factory, schedule, proposals)
    problems = check_consensus(trace, expect_termination=expect_termination)
    assert not problems, f"{problems}\n{trace.describe()}"
    return trace


@pytest.fixture
def att2_factory():
    return ATt2.factory()
