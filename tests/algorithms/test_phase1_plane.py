"""Property suite: the batched Phase-1 plane vs the per-receiver oracle.

The plane (:mod:`repro.sim.phase1_plane`) must be byte-equivalent to the
preserved :meth:`~repro.algorithms.suspicion.EstimateState.compute_view`
— the same oracle pattern as ``test_suspicion.py``, lifted to whole
rounds: for random suspicion patterns, crash sets, and per-receiver
delivery subsets, drive both implementations through the *real* kernel
wiring (a sealed :class:`~repro.sim.view.SendTable`, lazy
:class:`~repro.sim.view.RoundView` views over shared
:class:`~repro.sim.view.CurrentCell` buckets, ``begin_round`` /
``end_round``) and assert every receiver's ``(est, halt)`` matches.

The cranked tier (``REPRO_PROPERTY_SAMPLES`` > 500, the nightly lane)
additionally replays full n = 250 kernel executions with the plane
engaged against opted-out runs and exports any diverging schedule as a
replayable JSON artifact under ``REPRO_PROPERTY_ARTIFACTS`` — the same
convention as ``tests/engine/test_property_safety.py``.
"""

import copy
import json
import os

import pytest

from repro.algorithms.suspicion import EstimateState, estimate_payload
from repro.sim.phase1_plane import (
    PHASE1_ESTIMATE,
    Phase1Plane,
    build_run_plane,
)
from repro.sim.view import CurrentCell, RoundView, SendTable


def _samples_from_env(default: int = 200) -> int:
    raw = os.environ.get("REPRO_PROPERTY_SAMPLES", "")
    if not raw:
        return default
    return int(raw)


SAMPLES = _samples_from_env()

#: Cranked lanes also run the n = 250 kernel-replay tier (mirrors the
#: XXL threshold of the engine property harness).
XXL_THRESHOLD = 500


def _lazy_view(k, pid, n, delivered, table):
    """A receiver's round view exactly as the kernel builds it."""
    plan = tuple(sorted(delivered))
    mask = 0
    for sender in plan:
        mask |= 1 << sender
    mask &= table.sender_mask
    return RoundView.lazy(
        k, pid, n, (), (), CurrentCell(plan, table, mask), mask
    )


def _drive_round(plane, states, oracles, k, broadcasts, deliveries):
    """One kernel-shaped round: send phase, plane round, receive phase.

    *broadcasts* maps sender -> payload (senders absent from it crashed
    or halted before sending); *deliveries* maps receiver -> iterable of
    senders whose broadcast arrives.  Both the plane-backed states and
    the oracle copies receive identical views.
    """
    n = len(states)
    table = SendTable(n)
    for sender, payload in sorted(broadcasts.items()):
        table.record(sender, payload)
    table.seal()
    plane.begin_round(k, table)
    for pid, delivered in sorted(deliveries.items()):
        delivered = [s for s in delivered if s in broadcasts]
        view = _lazy_view(k, pid, n, delivered, table)
        plane.compute_view(states[pid], k, view)
        oracles[pid].compute_view(
            k, _lazy_view(k, pid, n, delivered, table)
        )
    plane.end_round()


def _assert_states_match(states, oracles):
    for state, oracle in zip(states, oracles):
        assert state.est == oracle.est, state.pid
        assert type(state.est) is type(oracle.est), state.pid
        assert state.halt == oracle.halt, state.pid
        assert state._halt_mask == oracle._halt_mask, state.pid


def _fresh_pair(n, ests, halts):
    states = [
        EstimateState(pid=i, n=n, est=ests[i], halt=halts[i])
        for i in range(n)
    ]
    return states, copy.deepcopy(states)


class TestPlaneMatchesOracle:
    """The core property: whole plane rounds == per-receiver compute()."""

    @staticmethod
    def _strategy():
        from hypothesis import strategies as st

        def rounds_for(n):
            pid = st.integers(min_value=0, max_value=n - 1)
            est = st.one_of(
                st.integers(min_value=-5, max_value=5),
                st.floats(allow_nan=False, allow_infinity=False,
                          min_value=-5, max_value=5),
                st.booleans(),
            )
            one_round = st.tuples(
                st.frozensets(pid, max_size=n),        # crashed senders
                st.frozensets(pid, max_size=n),        # decide-broadcasters
                st.lists(                               # delivered[receiver]
                    st.frozensets(pid, max_size=n),
                    min_size=n, max_size=n,
                ),
            )
            return st.tuples(
                st.just(n),
                st.lists(est, min_size=n, max_size=n),          # initial ests
                st.lists(st.frozensets(pid, max_size=n - 1),    # initial halts
                         min_size=n, max_size=n),
                st.lists(one_round, min_size=1, max_size=3),
            )

        return st.integers(min_value=2, max_value=8).flatmap(rounds_for)

    def test_plane_rounds_equal_oracle_rounds(self):
        from hypothesis import given, settings

        @settings(max_examples=250, deadline=None)
        @given(self._strategy())
        def check(case):
            n, ests, halts, rounds = case
            halts = [halt - {i} for i, halt in enumerate(halts)]
            states, oracles = _fresh_pair(n, ests, halts)
            plane = Phase1Plane(states)
            for k, (crashed, deciders, delivered) in enumerate(rounds, 1):
                broadcasts = {}
                for i in range(n):
                    if i in crashed:
                        continue
                    if i in deciders:
                        # A non-ESTIMATE broadcast sharing the round:
                        # must not enter anyone's Phase-1 fold.
                        broadcasts[i] = ("DECIDE", states[i].est)
                    else:
                        broadcasts[i] = states[i].payload(k)
                deliveries = {
                    pid: delivered[pid]
                    for pid in range(n)
                    if pid not in crashed
                }
                _drive_round(
                    plane, states, oracles, k, broadcasts, deliveries
                )
                _assert_states_match(states, oracles)

        check()

    def test_unorderable_ests_fall_back_per_receiver(self):
        # A round whose circulating ests resist one global sort (int vs
        # str) must still match the oracle, which only compares values
        # that meet inside a single inbox.
        n = 4
        ests = [3, "b", 5, "a"]
        states, oracles = _fresh_pair(n, ests, [frozenset()] * n)
        plane = Phase1Plane(states)
        broadcasts = {i: states[i].payload(1) for i in range(n)}
        # Receivers only ever see mutually orderable subsets.
        deliveries = {0: {0, 2}, 1: {1, 3}, 2: {0, 2}, 3: {1, 3}}
        _drive_round(plane, states, oracles, 1, broadcasts, deliveries)
        assert not plane._sortable
        _assert_states_match(states, oracles)

    def test_equal_but_distinct_est_objects_keep_first_minimal(self):
        # 1 vs 1.0 vs True all compare equal; the fold must keep the
        # lowest sender's *object*, exactly as the oracle's strict-<
        # first-minimal scan does.
        n = 3
        ests = [1.0, True, 1]
        states, oracles = _fresh_pair(n, ests, [frozenset()] * n)
        plane = Phase1Plane(states)
        broadcasts = {i: states[i].payload(1) for i in range(n)}
        deliveries = {i: {0, 1, 2} for i in range(n)}
        _drive_round(plane, states, oracles, 1, broadcasts, deliveries)
        _assert_states_match(states, oracles)
        # Sender 0's 1.0 is the first minimal object for every receiver.
        assert all(type(state.est) is float for state in states)

    def test_out_of_band_halt_growth_is_absorbed_at_begin_round(self):
        # The protocol allows state mutation *between* rounds; the row
        # refresh must fold it into the transpose before the round runs.
        n = 3
        states, oracles = _fresh_pair(n, [5, 3, 7], [frozenset()] * n)
        plane = Phase1Plane(states)
        broadcasts = {i: states[i].payload(1) for i in range(n)}
        deliveries = {i: {0, 1, 2} for i in range(n)}
        _drive_round(plane, states, oracles, 1, broadcasts, deliveries)
        for pair in (states, oracles):
            pair[1].halt = frozenset({0})
            pair[1]._halt_mask = 1
        broadcasts = {i: states[i].payload(2) for i in range(n)}
        _drive_round(plane, states, oracles, 2, broadcasts, deliveries)
        _assert_states_match(states, oracles)
        assert 1 in states[0].halt  # p1's out-of-band suspicion was seen


class TestRound2Stats:
    """The Figure-4 fast-path fold, plane vs local single-pass oracle."""

    @staticmethod
    def _oracle(view):
        count = 0
        tainted = False
        best = None
        for _sender, payload in view.tagged("ESTIMATE"):
            count += 1
            if payload[3]:
                tainted = True
            value = payload[2]
            if count == 1 or value < best:
                best = value
        return (count, tainted, best)

    def test_stats_match_local_fold(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        def case_for(n):
            pid = st.integers(min_value=0, max_value=n - 1)
            return st.tuples(
                st.just(n),
                st.lists(st.integers(min_value=-5, max_value=5),
                         min_size=n, max_size=n),
                st.lists(st.frozensets(pid, max_size=n - 1),
                         min_size=n, max_size=n),
                st.frozensets(pid, max_size=n),   # crashed
                st.frozensets(pid, max_size=n),   # delivered
            )

        @settings(max_examples=250, deadline=None)
        @given(st.integers(min_value=2, max_value=8).flatmap(case_for))
        def check(case):
            n, ests, halts, crashed, delivered = case
            halts = [halt - {i} for i, halt in enumerate(halts)]
            states, _ = _fresh_pair(n, ests, halts)
            plane = Phase1Plane(states)
            table = SendTable(n)
            for i in range(n):
                if i not in crashed:
                    table.record(i, states[i].payload(2))
            table.seal()
            plane.begin_round(2, table)
            view = _lazy_view(2, 0, n, delivered - crashed, table)
            stats = plane.round2_stats(2, view)
            plane.end_round()
            assert stats == self._oracle(view)

        check()

    def test_empty_round_2_delivery(self):
        # The fast path's degenerate input: nothing delivered at all.
        states, _ = _fresh_pair(3, [1, 2, 3], [frozenset()] * 3)
        plane = Phase1Plane(states)
        table = SendTable(3)
        for i in range(3):
            table.record(i, states[i].payload(2))
        table.seal()
        plane.begin_round(2, table)
        view = _lazy_view(2, 0, 3, (), table)
        assert plane.round2_stats(2, view) == (0, False, None)
        plane.end_round()


class TestDispatchGuards:
    """The plane must refuse to answer outside its open round."""

    def _armed(self):
        states, oracles = _fresh_pair(3, [5, 3, 7], [frozenset()] * 3)
        plane = Phase1Plane(states)
        table = SendTable(3)
        for i in range(3):
            table.record(i, states[i].payload(1))
        table.seal()
        return plane, states, oracles, table

    def test_inactive_plane_falls_back_to_oracle(self):
        plane, states, oracles, table = self._armed()
        view = _lazy_view(1, 0, 3, {0, 1, 2}, table)
        plane.compute_view(states[0], 1, view)        # never opened
        oracles[0].compute_view(1, view)
        assert states[0].est == oracles[0].est
        assert states[0].halt == oracles[0].halt
        assert plane.round2_stats(1, view) is None

    def test_closed_round_falls_back(self):
        plane, states, oracles, table = self._armed()
        plane.begin_round(1, table)
        plane.end_round()
        view = _lazy_view(1, 0, 3, {0, 1}, table)
        plane.compute_view(states[0], 1, view)
        oracles[0].compute_view(1, view)
        assert states[0].est == oracles[0].est
        assert states[0].halt == oracles[0].halt

    def test_stale_round_number_falls_back(self):
        plane, states, oracles, table = self._armed()
        plane.begin_round(2, table)
        view = _lazy_view(1, 0, 3, {0, 1}, table)
        plane.compute_view(states[0], 1, view)        # k=1, plane at k=2
        oracles[0].compute_view(1, view)
        plane.end_round()
        assert states[0].est == oracles[0].est
        assert states[0].halt == oracles[0].halt


class TestBuildRunPlane:
    """Protocol opt-in rules for binding a run's plane."""

    def test_all_declaring_automata_get_one_shared_plane(self):
        from repro.algorithms.base import make_automata
        from repro.core.att2 import ATt2

        automata = make_automata(ATt2.factory(), 5, 2, list(range(5)))
        plane = build_run_plane(automata)
        assert plane is not None
        assert all(a._plane is plane for a in automata)
        assert plane._states == tuple(a.state for a in automata)

    def test_mixed_run_gets_no_plane(self):
        from repro.algorithms.base import make_automata
        from repro.core.att2 import ATt2

        class OptOut(ATt2):
            phase1_plane_protocol = None

        automata = list(make_automata(ATt2.factory(), 5, 2, range(5)))
        automata[3] = OptOut(3, 5, 2, 3)
        assert build_run_plane(automata) is None
        assert all(a._plane is None for a in automata)

    def test_empty_run_gets_no_plane(self):
        assert build_run_plane(()) is None

    def test_declaring_without_binding_hook_raises(self):
        from repro.algorithms.base import Automaton
        from repro.errors import AlgorithmError

        class Declares(Automaton):
            phase1_plane_protocol = PHASE1_ESTIMATE

            def payload(self, k):
                return None

            def deliver(self, k, messages):
                pass

        automaton = Declares(0, 3, 1, 0)
        with pytest.raises(AlgorithmError):
            automaton.bind_phase1_plane(object())


def _export_divergence(schedule, proposals, label):
    from repro.sim.replay import schedule_to_data

    directory = os.environ.get(
        "REPRO_PROPERTY_ARTIFACTS", "property-failures"
    )
    try:
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"phase1-plane-{label}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "algorithm": "att2_optimized",
                    "workload": label,
                    "proposals": list(proposals),
                    "schedule": schedule_to_data(schedule),
                },
                handle, indent=2, sort_keys=True,
            )
            handle.write("\n")
    except OSError:
        return None
    return directory


@pytest.mark.parametrize("seed", range(4))
def test_plane_vs_oracle_at_sweep_scale(seed):
    """Cranked-lane tier: full n = 250 kernel runs, plane vs opt-out.

    The strongest end-to-end form of the oracle property — every round
    of a real random-ES execution, all trace fields — at a width no
    n <= 8 hypothesis case can reach.  Failing schedules export as
    replayable artifacts, like the engine safety harness's.
    """
    if SAMPLES <= XXL_THRESHOLD:
        pytest.skip(
            "n=250 plane-vs-oracle cases run only in cranked lanes "
            f"(REPRO_PROPERTY_SAMPLES > {XXL_THRESHOLD})"
        )
    from repro.algorithms.base import make_automata
    from repro.core.att2_optimized import ATt2Optimized
    from repro.sim.kernel import execute
    from repro.sim.random_schedules import (
        random_es_schedule,
        random_proposals,
    )

    class OptOut(ATt2Optimized):
        phase1_plane_protocol = None

    n, t = 250, 32
    schedule = random_es_schedule(n, t, seed, horizon=12)
    proposals = random_proposals(n, seed)
    batched = execute(
        make_automata(ATt2Optimized.factory(), n, t, proposals),
        schedule, trace="full",
    )
    oracle = execute(
        make_automata(OptOut.factory(), n, t, proposals),
        schedule, trace="full",
    )
    if batched != oracle:
        exported = _export_divergence(schedule, proposals, f"seed{seed}")
        pytest.fail(
            f"plane diverged from oracle on random_es(seed={seed}); "
            + (
                f"schedule exported to {exported}/"
                if exported
                else "schedule export FAILED — regenerate from the seed"
            )
        )
