"""Tests for FloodSetWS: sound under P, *unsound* under false suspicion.

The second half of this file is the paper's motivation in executable form:
a single ES-legal run with false suspicions makes FloodSetWS disagree,
while A_{t+2} — the same algorithm plus one detection round — survives the
identical schedule.
"""

import pytest

from repro import ATt2, FloodSetWS, Schedule
from repro.analysis.metrics import check_agreement, check_consensus
from repro.lowerbound.serial_runs import (
    enumerate_serial_partial_runs,
    run_with_events,
)
from repro.model.schedule import ScheduleBuilder
from repro.sim.kernel import run_algorithm
from tests.conftest import run_and_check


class TestUnderPerfectDetection:
    def test_failure_free_decides_at_t_plus_1(self):
        schedule = Schedule.failure_free(5, 2, 6)
        trace = run_and_check(FloodSetWS, schedule, [3, 1, 4, 1, 5])
        assert trace.global_decision_round() == 3
        assert trace.decided_values() == {1}

    @pytest.mark.parametrize("n,t", [(3, 1), (4, 1), (4, 2)])
    def test_all_serial_runs_safe(self, n, t):
        proposals = list(range(n))
        for events in enumerate_serial_partial_runs(n, t, t + 1):
            trace = run_with_events(
                FloodSetWS, proposals, events, t=t, horizon=t + 3
            )
            problems = check_consensus(trace)
            assert not problems, (events, problems)

    def test_halt_set_excludes_crashed_senders(self):
        schedule = Schedule.synchronous(4, 2, 6, crashes={3: (1, [0])})
        trace = run_and_check(FloodSetWS, schedule, [9, 8, 7, 0])
        # p3 delivered its proposal 0 only to p0 before crashing; the
        # flood spreads it, so everyone decides 0.
        assert trace.decided_values() == {0}


def false_suspicion_schedule(horizon=6):
    """n=3, t=1: p0's messages to both peers delayed in rounds 1 and 2.

    ES-legal (each receiver still hears n−t = 2 processes per round;
    nothing is lost; rounds >= 3 synchronous), but p1 and p2 falsely
    suspect p0 throughout Phase 1.
    """
    builder = ScheduleBuilder(3, 1, horizon)
    for k in (1, 2):
        builder.delay(0, 1, k, 3)
        builder.delay(0, 2, k, 3)
    return builder.build()


class TestUnderFalseSuspicion:
    def test_floodset_ws_disagrees(self):
        schedule = false_suspicion_schedule()
        trace = run_algorithm(FloodSetWS, schedule, [0, 1, 1])
        # p0 keeps its estimate 0 (everyone else is in its Halt set) while
        # p1 and p2 never see 0 — a real agreement violation.
        assert trace.decision_value(0) == 0
        assert trace.decision_value(1) == 1
        assert check_agreement(trace)

    def test_att2_survives_the_same_schedule(self):
        schedule = false_suspicion_schedule(horizon=16)
        trace = run_and_check(ATt2.factory(), schedule, [0, 1, 1])
        assert len(trace.decided_values()) == 1

    def test_att2_detects_the_false_suspicion(self):
        from repro.types import is_bottom

        schedule = false_suspicion_schedule(horizon=16)
        from repro.algorithms.base import make_automata
        from repro.sim.kernel import execute

        automata = make_automata(ATt2.factory(), 3, 1, [0, 1, 1])
        execute(automata, schedule)
        # p0 accumulated |Halt| = 2 > t = 1: it flags the false suspicion
        # by proposing ⊥ in Phase 2 instead of deciding on stale state.
        assert is_bottom(automata[0].new_estimate)
