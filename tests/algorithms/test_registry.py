"""Tests for the algorithm registry."""

import pytest

from repro.algorithms.registry import available_algorithms, get_factory
from repro.model.schedule import Schedule
from repro.sim.kernel import run_algorithm


class TestRegistry:
    def test_all_expected_names_present(self):
        names = set(available_algorithms())
        assert names == {
            "floodset",
            "floodset_ws",
            "early_deciding",
            "chandra_toueg",
            "hurfin_raynal",
            "amr_leader",
            "att2",
            "att2_optimized",
            "adiamond_s",
            "afp2",
        }

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known:"):
            get_factory("paxos")

    def test_every_entry_has_model_and_summary(self):
        for info in available_algorithms().values():
            assert info.model in {"SCS", "ES"}
            assert info.summary

    def test_factories_build_runnable_automata(self):
        schedule = Schedule.failure_free(7, 2, 30)
        for name, info in available_algorithms().items():
            factory = info.make()
            trace = run_algorithm(factory, schedule, list(range(7)))
            assert trace.decisions, f"{name} failed to decide"

    def test_get_factory_matches_entries(self):
        factory = get_factory("floodset")
        automaton = factory(0, 3, 1, 42)
        assert automaton.proposal == 42
