"""Tests for FloodSet: t + 1 decision in SCS, exhaustive safety."""

import pytest

from repro import FloodSet, Schedule
from repro.analysis.metrics import check_consensus
from repro.lowerbound.serial_runs import (
    enumerate_serial_partial_runs,
    run_with_events,
    worst_case_serial,
)
from repro.sim.kernel import run_algorithm
from repro.sim.random_schedules import random_scs_schedule
from repro.workloads import value_hiding_chain
from tests.conftest import run_and_check


class TestHappyPath:
    def test_failure_free_decides_min_at_t_plus_1(self):
        for t in (1, 2, 3):
            n = 2 * t + 1
            schedule = Schedule.failure_free(n, t, t + 3)
            trace = run_and_check(FloodSet, schedule, list(range(n, 0, -1)))
            assert trace.global_decision_round() == t + 1
            assert trace.decided_values() == {1}

    def test_every_run_decides_exactly_t_plus_1(self):
        # FloodSet never decides early, even failure-free.
        worst, _, best, _ = worst_case_serial(
            FloodSet, [0, 1, 2, 3], t=1, crash_rounds_limit=2, horizon=6
        )
        assert worst == best == 2


class TestValueHiding:
    def test_hidden_minimum_survives_the_chain(self):
        n, t = 5, 3
        schedule = value_hiding_chain(n, t, t + 3)
        trace = run_and_check(FloodSet, schedule, list(range(n)))
        # The chain hands value 0 along crashing processes; the final
        # carrier p3 survives, so everyone alive decides 0.
        assert trace.decided_values() == {0}

    def test_longer_chain_still_delivers_minimum(self):
        # A deeper chain (t = 4): the hidden 0 passes through four
        # crashing carriers before surfacing at the surviving p4.
        n, t = 6, 4
        schedule = value_hiding_chain(n, t, t + 3)
        trace = run_and_check(FloodSet, schedule, list(range(n)))
        assert trace.decided_values() == {0}

    def test_chain_cut_by_final_crash_loses_minimum(self):
        # Cut the chain: the last carrier crashes before telling anyone,
        # so the minimum 0 vanishes and survivors decide 1.
        from repro.model.schedule import ScheduleBuilder

        n, t = 5, 3
        builder = ScheduleBuilder(n, t, t + 3)
        builder.crash(0, 1, delivered_to=(1,))
        builder.crash(1, 2, delivered_to=(2,))
        builder.crash(2, 3, delivered_to=())
        trace = run_and_check(
            FloodSet, builder.build(), list(range(n))
        )
        # 0 died inside the chain; the smallest value that ever reached a
        # survivor is p1's own proposal 1 (flooded in round 1).
        assert trace.decided_values() == {1}


class TestExhaustiveSafety:
    @pytest.mark.parametrize("n,t", [(3, 1), (4, 1), (4, 2)])
    def test_all_serial_runs_safe(self, n, t):
        proposals = list(range(n))
        for events in enumerate_serial_partial_runs(n, t, t + 1):
            trace = run_with_events(
                FloodSet, proposals, events, t=t, horizon=t + 3
            )
            problems = check_consensus(trace)
            assert not problems, (events, problems)
            assert trace.global_decision_round() == t + 1

    def test_random_scs_runs_safe(self):
        for seed in range(40):
            schedule = random_scs_schedule(5, 2, seed, horizon=8)
            trace = run_algorithm(FloodSet, schedule, [4, 2, 5, 1, 3])
            problems = check_consensus(trace)
            assert not problems, (seed, problems)
