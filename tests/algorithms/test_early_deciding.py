"""Tests for early-deciding SCS consensus: min(f + 2, t + 1) rounds."""

import pytest

from repro import EarlyDecidingSCS, Schedule
from repro.analysis.metrics import check_consensus
from repro.lowerbound.serial_runs import (
    enumerate_serial_partial_runs,
    run_with_events,
)
from repro.sim.kernel import run_algorithm
from repro.sim.random_schedules import random_scs_schedule, random_proposals
from repro.workloads import serial_cascade, value_hiding_chain
from tests.conftest import run_and_check


class TestEarlyDecision:
    def test_failure_free_decides_at_round_two(self):
        # f = 0: decision at round f + 2 = 2 (the uniform-consensus floor).
        schedule = Schedule.failure_free(5, 3, 8)
        trace = run_and_check(EarlyDecidingSCS, schedule, [3, 1, 4, 1, 5])
        assert trace.global_decision_round() == 2
        assert trace.decided_values() == {1}

    @pytest.mark.parametrize("f", [0, 1, 2, 3])
    def test_f_crashes_decide_by_f_plus_2(self, f):
        n, t = 9, 4
        schedule = serial_cascade(
            n, t, t + 4, crashers=tuple(range(n - 1, n - 1 - f, -1))
        )
        trace = run_and_check(EarlyDecidingSCS, schedule, list(range(n)))
        assert trace.global_decision_round() <= min(f + 2, t + 1)

    def test_never_exceeds_t_plus_1(self):
        n, t = 5, 2
        schedule = value_hiding_chain(n, t, t + 4)
        trace = run_and_check(EarlyDecidingSCS, schedule, list(range(n)))
        assert trace.global_decision_round() <= t + 1


class TestExhaustiveUniformAgreement:
    """Uniform agreement is where naive early decision breaks; enumerate."""

    @pytest.mark.parametrize("n,t", [(3, 1), (4, 1), (4, 2)])
    def test_all_serial_runs_safe(self, n, t):
        proposals = list(range(n))
        for events in enumerate_serial_partial_runs(n, t, t + 1):
            trace = run_with_events(
                EarlyDecidingSCS, proposals, events, t=t, horizon=t + 4
            )
            problems = check_consensus(trace)
            assert not problems, (events, problems)

    def test_random_scs_runs_safe(self):
        for seed in range(60):
            schedule = random_scs_schedule(5, 2, seed, horizon=9)
            trace = run_algorithm(
                EarlyDecidingSCS, schedule, random_proposals(5, seed)
            )
            problems = check_consensus(trace)
            assert not problems, (seed, problems)
