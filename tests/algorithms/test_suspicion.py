"""Unit tests for the shared estimate/Halt bookkeeping (Figure 2's compute())."""

from repro.algorithms.suspicion import ESTIMATE, EstimateState, estimate_payload
from repro.model.messages import Message


def est_message(k, sender, receiver, est, halt=frozenset()):
    return Message(
        sent_round=k,
        sender=sender,
        receiver=receiver,
        payload=estimate_payload(k, est, frozenset(halt)),
    )


class TestCompute:
    def test_min_estimate_adopted(self):
        state = EstimateState(pid=0, n=3, est=5)
        state.compute(
            1,
            (
                est_message(1, 0, 0, 5),
                est_message(1, 1, 0, 3),
                est_message(1, 2, 0, 7),
            ),
        )
        assert state.est == 3
        assert state.halt == frozenset()

    def test_missing_sender_is_suspected(self):
        state = EstimateState(pid=0, n=3, est=5)
        state.compute(
            1,
            (est_message(1, 0, 0, 5), est_message(1, 1, 0, 3)),
        )
        assert state.halt == frozenset({2})

    def test_sender_suspecting_me_joins_halt(self):
        state = EstimateState(pid=0, n=3, est=5)
        state.compute(
            1,
            (
                est_message(1, 0, 0, 5),
                est_message(1, 1, 0, 3, halt={0}),
                est_message(1, 2, 0, 7),
            ),
        )
        assert 1 in state.halt

    def test_halt_members_excluded_from_msgset(self):
        state = EstimateState(pid=0, n=3, est=5, halt=frozenset({1}))
        state.compute(
            1,
            (
                est_message(1, 0, 0, 5),
                est_message(1, 1, 0, 0),  # est 0 but sender is in Halt
                est_message(1, 2, 0, 7),
            ),
        )
        assert state.est == 5

    def test_estimate_monotone_nonincreasing(self):
        state = EstimateState(pid=0, n=3, est=2)
        state.compute(
            1,
            (
                est_message(1, 0, 0, 2),
                est_message(1, 1, 0, 9),
                est_message(1, 2, 0, 4),
            ),
        )
        # Own message keeps the current minimum in play.
        assert state.est == 2

    def test_never_self_suspects(self):
        state = EstimateState(pid=0, n=3, est=5)
        for k in (1, 2, 3):
            state.compute(k, (est_message(k, 0, 0, state.est),))
        assert 0 not in state.halt
        assert state.halt == frozenset({1, 2})

    def test_delayed_and_foreign_messages_ignored(self):
        state = EstimateState(pid=0, n=3, est=5)
        stale = est_message(1, 1, 0, 0)  # sent in round 1...
        state.compute(2, (est_message(2, 0, 0, 5), stale))
        # ... so in round 2 it neither updates est nor clears suspicion.
        assert state.est == 5
        assert 1 in state.halt

    def test_payload_roundtrip(self):
        state = EstimateState(pid=0, n=3, est=5, halt=frozenset({2}))
        assert state.payload(4) == (ESTIMATE, 4, 5, frozenset({2}))

    def test_msg_set_senders(self):
        state = EstimateState(pid=0, n=3, est=5, halt=frozenset({1}))
        msgs = (
            est_message(2, 0, 0, 5),
            est_message(2, 1, 0, 1),
            est_message(2, 2, 0, 3),
        )
        assert state.msg_set_senders(2, msgs) == frozenset({0, 2})
