"""Unit tests for the shared estimate/Halt bookkeeping (Figure 2's compute())."""

from repro.algorithms.suspicion import ESTIMATE, EstimateState, estimate_payload
from repro.model.messages import Message


def est_message(k, sender, receiver, est, halt=frozenset()):
    return Message(
        sent_round=k,
        sender=sender,
        receiver=receiver,
        payload=estimate_payload(k, est, frozenset(halt)),
    )


class TestCompute:
    def test_min_estimate_adopted(self):
        state = EstimateState(pid=0, n=3, est=5)
        state.compute(
            1,
            (
                est_message(1, 0, 0, 5),
                est_message(1, 1, 0, 3),
                est_message(1, 2, 0, 7),
            ),
        )
        assert state.est == 3
        assert state.halt == frozenset()

    def test_missing_sender_is_suspected(self):
        state = EstimateState(pid=0, n=3, est=5)
        state.compute(
            1,
            (est_message(1, 0, 0, 5), est_message(1, 1, 0, 3)),
        )
        assert state.halt == frozenset({2})

    def test_sender_suspecting_me_joins_halt(self):
        state = EstimateState(pid=0, n=3, est=5)
        state.compute(
            1,
            (
                est_message(1, 0, 0, 5),
                est_message(1, 1, 0, 3, halt={0}),
                est_message(1, 2, 0, 7),
            ),
        )
        assert 1 in state.halt

    def test_halt_members_excluded_from_msgset(self):
        state = EstimateState(pid=0, n=3, est=5, halt=frozenset({1}))
        state.compute(
            1,
            (
                est_message(1, 0, 0, 5),
                est_message(1, 1, 0, 0),  # est 0 but sender is in Halt
                est_message(1, 2, 0, 7),
            ),
        )
        assert state.est == 5

    def test_estimate_monotone_nonincreasing(self):
        state = EstimateState(pid=0, n=3, est=2)
        state.compute(
            1,
            (
                est_message(1, 0, 0, 2),
                est_message(1, 1, 0, 9),
                est_message(1, 2, 0, 4),
            ),
        )
        # Own message keeps the current minimum in play.
        assert state.est == 2

    def test_never_self_suspects(self):
        state = EstimateState(pid=0, n=3, est=5)
        for k in (1, 2, 3):
            state.compute(k, (est_message(k, 0, 0, state.est),))
        assert 0 not in state.halt
        assert state.halt == frozenset({1, 2})

    def test_delayed_and_foreign_messages_ignored(self):
        state = EstimateState(pid=0, n=3, est=5)
        stale = est_message(1, 1, 0, 0)  # sent in round 1...
        state.compute(2, (est_message(2, 0, 0, 5), stale))
        # ... so in round 2 it neither updates est nor clears suspicion.
        assert state.est == 5
        assert 1 in state.halt

    def test_payload_roundtrip(self):
        state = EstimateState(pid=0, n=3, est=5, halt=frozenset({2}))
        assert state.payload(4) == (ESTIMATE, 4, 5, frozenset({2}))

    def test_msg_set_senders(self):
        state = EstimateState(pid=0, n=3, est=5, halt=frozenset({1}))
        msgs = (
            est_message(2, 0, 0, 5),
            est_message(2, 1, 0, 1),
            est_message(2, 2, 0, 3),
        )
        assert state.msg_set_senders(2, msgs) == frozenset({0, 2})


class TwoPassReference:
    """The original two-pass ``compute()``, kept verbatim as the oracle.

    The shipped implementation is a batched single pass over the round's
    ESTIMATE items; this is the formulation it replaced (filter, sender
    set, ``frozenset(range(n))`` rebuild, msgSet re-filter), against
    which the property below holds them equivalent.
    """

    def __init__(self, pid, n, est, halt=frozenset()):
        self.pid = pid
        self.n = n
        self.est = est
        self.halt = frozenset(halt)

    def compute(self, k, messages):
        current = [
            m
            for m in messages
            if m.sent_round == k and m.tag == ESTIMATE
        ]
        senders = {m.sender for m in current}
        suspected_now = frozenset(range(self.n)) - senders - {self.pid}
        suspecting_me = frozenset(
            m.sender for m in current if self.pid in m.payload[3]
        )
        self.halt = self.halt | suspected_now | suspecting_me
        msg_set = [m for m in current if m.sender not in self.halt]
        if msg_set:
            self.est = min(m.payload[2] for m in msg_set)


class TestBatchedComputeEqualsTwoPassReference:
    """Satellite property: the batched single-pass update is the paper's
    compute(), bit for bit, over adversarial message mixtures."""

    @staticmethod
    def _strategy():
        from hypothesis import strategies as st

        n = st.integers(min_value=2, max_value=8)

        def messages_for(n_value):
            pid_st = st.integers(min_value=0, max_value=n_value - 1)
            halt_st = st.frozensets(pid_st, max_size=n_value)
            estimate = st.builds(
                lambda k, sender, est, halt: Message(
                    sent_round=k, sender=sender, receiver=0,
                    payload=estimate_payload(k, est, halt),
                ),
                st.integers(min_value=1, max_value=4),
                pid_st,
                st.integers(min_value=-5, max_value=5),
                halt_st,
            )
            foreign = st.builds(
                lambda k, sender, tag: Message(
                    sent_round=k, sender=sender, receiver=0,
                    payload=(tag, k, sender),
                ),
                st.integers(min_value=1, max_value=4),
                pid_st,
                st.sampled_from(["DECIDE", "FLOOD", "NEWESTIMATE"]),
            )
            return st.tuples(
                st.just(n_value),
                pid_st,
                halt_st,
                st.lists(st.one_of(estimate, foreign), max_size=12),
                st.integers(min_value=1, max_value=4),
            )

        return n.flatmap(messages_for)

    def test_batched_equals_reference(self):
        from hypothesis import given, settings

        @settings(max_examples=300, deadline=None)
        @given(self._strategy())
        def check(case):
            n, pid, halt, messages, k = case
            halt = frozenset(halt) - {pid}  # a process never self-suspects
            batched = EstimateState(pid=pid, n=n, est=99, halt=halt)
            reference = TwoPassReference(pid=pid, n=n, est=99, halt=halt)
            batched.compute(k, tuple(messages))
            reference.compute(k, tuple(messages))
            assert batched.halt == reference.halt
            assert batched.est == reference.est

        check()

    def test_view_entry_point_equals_message_entry_point(self):
        from repro.sim.view import RoundView

        for seed in range(40):
            import random

            rng = random.Random(seed)
            n = rng.randint(2, 7)
            pid = rng.randrange(n)
            k = rng.randint(1, 4)
            messages = []
            for _ in range(rng.randint(0, 10)):
                sender = rng.randrange(n)
                sent = rng.randint(1, k)
                if rng.random() < 0.7:
                    payload = estimate_payload(
                        sent, rng.randint(-5, 5),
                        frozenset(rng.sample(range(n), rng.randint(0, n))),
                    )
                else:
                    payload = ("FLOOD", sent, sender)
                messages.append(Message(
                    sent_round=sent, sender=sender, receiver=pid,
                    payload=payload,
                ))
            messages.sort()
            via_messages = EstimateState(pid=pid, n=n, est=42)
            via_view = EstimateState(pid=pid, n=n, est=42)
            via_messages.compute(k, tuple(messages))
            via_view.compute_view(
                k, RoundView.from_messages(k, pid, n, tuple(messages))
            )
            assert via_messages.halt == via_view.halt
            assert via_messages.est == via_view.est
