"""Tests for the shared ConsensusAutomaton wrapper (DECIDE plumbing)."""

import pytest

from repro.algorithms.common import ConsensusAutomaton, decide_payload
from repro.errors import AlgorithmError
from repro.model.messages import Message
from repro.model.schedule import Schedule
from repro.sim.kernel import execute


class DecideAtRound(ConsensusAutomaton):
    """Decides its proposal at a fixed round; otherwise sends heartbeats."""

    decide_round = 2

    def round_payload(self, k):
        return ("BEAT", k)

    def round_deliver(self, k, messages):
        if k == self.decide_round:
            self._decide(self.proposal, k)


class NeverDecides(ConsensusAutomaton):
    def round_payload(self, k):
        return ("BEAT", k)

    def round_deliver(self, k, messages):
        pass


def decide_message(k, sender, receiver, value):
    return Message(sent_round=k, sender=sender, receiver=receiver,
                   payload=decide_payload(value))


class TestDecideFlow:
    def test_announce_then_halt(self):
        schedule = Schedule.failure_free(2, 1, 6)
        automata = [DecideAtRound(p, 2, 1, "v") for p in range(2)]
        trace = execute(automata, schedule)
        # Decide at round 2, broadcast DECIDE in round 3, halt at round 3.
        assert trace.decisions == {0: ("v", 2), 1: ("v", 2)}
        assert trace.record(3).sent[0] == decide_payload("v")
        assert trace.record(3).halted == frozenset({0, 1})
        assert trace.rounds_executed == 3

    def test_decide_message_adopted_and_relayed(self):
        schedule = Schedule.failure_free(2, 1, 6)
        decider = DecideAtRound(0, 2, 1, "w")
        follower = NeverDecides(1, 2, 1, "x")
        trace = execute([decider, follower], schedule)
        # Follower adopts the decision from p0's round-3 DECIDE...
        assert trace.decision_value(1) == "w"
        assert trace.decision_round(1) == 3
        # ... relays it in round 4, then halts.
        assert trace.record(4).sent[1] == decide_payload("w")
        assert trace.record(4).halted == frozenset({1})

    def test_delayed_decide_still_adopted(self):
        from repro.model.schedule import ScheduleBuilder

        builder = ScheduleBuilder(2, 1, 8)
        builder.delay(0, 1, 3, 6)  # p0's DECIDE (sent round 3) arrives at 6
        schedule = builder.build()
        decider = DecideAtRound(0, 2, 1, "w")
        follower = NeverDecides(1, 2, 1, "x")
        trace = execute([decider, follower], schedule)
        assert trace.decision_round(1) == 6

    def test_no_announce_mode_halts_immediately(self):
        class Quiet(DecideAtRound):
            announce_decision = False

        schedule = Schedule.failure_free(2, 1, 6)
        automata = [Quiet(p, 2, 1, "v") for p in range(2)]
        trace = execute(automata, schedule)
        assert trace.record(2).halted == frozenset({0, 1})
        assert trace.rounds_executed == 2

    def test_conflicting_decides_in_one_round_raise(self):
        follower = NeverDecides(0, 3, 1, "x")
        with pytest.raises(AlgorithmError, match="decided"):
            follower.deliver(
                5,
                (
                    decide_message(5, 1, 0, "a"),
                    decide_message(5, 2, 0, "b"),
                ),
            )

    def test_decide_messages_after_deciding_are_ignored(self):
        # Once decided, the wrapper halts on the next delivery without
        # re-examining messages (the invocation has returned).
        follower = NeverDecides(0, 3, 1, "x")
        follower.deliver(5, (decide_message(5, 1, 0, "a"),))
        follower.deliver(6, (decide_message(6, 2, 0, "b"),))
        assert follower.decision == "a"
        assert follower.halted

    def test_redundant_equal_decide_is_fine(self):
        follower = NeverDecides(0, 3, 1, "x")
        follower.deliver(
            5,
            (
                decide_message(5, 1, 0, "a"),
                decide_message(5, 2, 0, "a"),
            ),
        )
        assert follower.decision == "a"
