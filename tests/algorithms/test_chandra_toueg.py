"""Tests for the Chandra–Toueg-style ◇S consensus in ES."""

import pytest

from repro import ChandraTouegES, Schedule
from repro.algorithms.chandra_toueg import cycle_of
from repro.analysis.metrics import check_consensus
from repro.sim.kernel import run_algorithm
from repro.sim.random_schedules import random_es_schedule, random_proposals
from repro.workloads import coordinator_killer, rotating_delays
from tests.conftest import run_and_check


class TestCycleArithmetic:
    def test_cycle_of(self):
        assert cycle_of(1) == (1, 1)
        assert cycle_of(2) == (1, 2)
        assert cycle_of(3) == (1, 3)
        assert cycle_of(4) == (2, 1)
        assert cycle_of(7) == (3, 1)

    def test_coordinator_rotates(self):
        assert ChandraTouegES.coordinator(1, 4) == 0
        assert ChandraTouegES.coordinator(4, 4) == 3
        assert ChandraTouegES.coordinator(5, 4) == 0


class TestDecisions:
    def test_failure_free_decides_in_three_rounds(self):
        schedule = Schedule.failure_free(4, 1, 10)
        trace = run_and_check(ChandraTouegES, schedule, [5, 3, 8, 6])
        assert trace.global_decision_round() == 3
        # Cycle 1's coordinator p0 proposes its own estimate (all
        # timestamps are 0; ties break to the lowest sender id).
        assert trace.decided_values() == {5}

    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_coordinator_killer_takes_3t_plus_3(self, t):
        n = 2 * t + 1
        schedule = coordinator_killer(
            n, t, 3 * t + 6, rounds_per_cycle=3
        )
        trace = run_and_check(ChandraTouegES, schedule, list(range(n)))
        assert trace.global_decision_round() == 3 * t + 3

    def test_crashed_coordinator_mid_proposal(self):
        # Coordinator crashes in its proposal round delivering to one
        # process only; locking must keep agreement.
        from repro.model.schedule import ScheduleBuilder

        builder = ScheduleBuilder(5, 2, 14)
        builder.crash(0, 2, delivered_to=(1,))
        trace = run_and_check(
            ChandraTouegES, builder.build(), [2, 7, 5, 9, 4]
        )
        assert len(trace.decided_values()) == 1

    def test_survives_async_prefix(self):
        schedule = rotating_delays(5, 2, 16, async_rounds=6)
        trace = run_and_check(ChandraTouegES, schedule, [3, 1, 4, 1, 5])
        assert len(trace.decided_values()) == 1


class TestRandomizedSafety:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_es_runs_safe(self, seed):
        schedule = random_es_schedule(5, 2, seed, horizon=24, sync_by=8)
        trace = run_algorithm(
            ChandraTouegES, schedule, random_proposals(5, seed)
        )
        problems = check_consensus(trace, expect_termination=False)
        assert not problems, (seed, problems)
