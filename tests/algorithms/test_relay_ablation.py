"""Tests for the DECIDE-relay ablation flag."""

from repro import ATt2
from repro.model.schedule import ScheduleBuilder
from repro.sim.kernel import run_algorithm
from repro.types import ProcessId, Value


class ATt2NoRelay(ATt2):
    """A_{t+2} whose DECIDE adopters halt without re-broadcasting."""

    relay_decision = False


def delayed_announcement_schedule(horizon=16):
    """n=3, t=1: p1 decides fast; the original DECIDEs to p2 are delayed.

    Phase 1 false suspicions give p0 a ⊥ new estimate; p0's round-3
    NEWESTIMATE to p1 is delayed so p1 alone takes the fast path at t+2.
    p1's round-4 DECIDE to p2 is delayed far into the future, so p2's only
    quick path to a decision is p0's *relay* of the DECIDE in round 5.
    """
    builder = ScheduleBuilder(3, 1, horizon)
    for k in (1, 2):
        builder.delay(0, 1, k, 3)
        builder.delay(0, 2, k, 3)
    builder.delay(0, 1, 3, 5)   # p1 misses the ⊥, decides at round 3
    builder.delay(1, 2, 4, 14)  # p1's DECIDE to p2 crawls
    return builder.build()


class TestRelayMatters:
    def test_with_relay_p2_decides_via_p0(self):
        schedule = delayed_announcement_schedule()
        trace = run_algorithm(ATt2.factory(), schedule, [0, 1, 1])
        assert trace.decision_round(1) == 3
        assert trace.decision_round(0) == 4  # adopted p1's DECIDE
        # p0 relays in round 5; p2 decides from the relay.
        assert trace.decision_round(2) == 5

    def test_without_relay_p2_waits_for_the_original(self):
        schedule = delayed_announcement_schedule()

        def factory(pid: ProcessId, n: int, t: int, proposal: Value):
            return ATt2NoRelay(pid, n, t, proposal)

        trace = run_algorithm(factory, schedule, [0, 1, 1])
        assert trace.decision_round(1) == 3
        assert trace.decision_round(0) == 4
        # No relay: p2 must wait for p1's delayed DECIDE (or its own C).
        assert trace.decision_round(2) > 5

    def test_ablation_never_affects_safety(self):
        schedule = delayed_announcement_schedule()

        def factory(pid: ProcessId, n: int, t: int, proposal: Value):
            return ATt2NoRelay(pid, n, t, proposal)

        with_relay = run_algorithm(ATt2.factory(), schedule, [0, 1, 1])
        without = run_algorithm(factory, schedule, [0, 1, 1])
        assert with_relay.decided_values() == without.decided_values()
