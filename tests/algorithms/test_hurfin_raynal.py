"""Tests for the Hurfin–Raynal-style ◇S consensus: the 2t + 2 baseline."""

import pytest

from repro import HurfinRaynalES, Schedule
from repro.algorithms.hurfin_raynal import cycle_of
from repro.analysis.metrics import check_consensus
from repro.sim.kernel import run_algorithm
from repro.sim.random_schedules import random_es_schedule, random_proposals
from repro.workloads import coordinator_killer, rotating_delays
from tests.conftest import run_and_check


class TestCycleArithmetic:
    def test_cycle_of(self):
        assert cycle_of(1) == (1, 1)
        assert cycle_of(2) == (1, 2)
        assert cycle_of(3) == (2, 1)
        assert cycle_of(4) == (2, 2)


class TestDecisions:
    def test_failure_free_decides_in_two_rounds(self):
        schedule = Schedule.failure_free(4, 1, 10)
        trace = run_and_check(HurfinRaynalES, schedule, [5, 3, 8, 6])
        assert trace.global_decision_round() == 2
        assert trace.decided_values() == {5}  # coordinator p0's estimate

    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_coordinator_killer_takes_2t_plus_2(self, t):
        """The paper's headline baseline: HR has a 2t+2 synchronous run."""
        n = 2 * t + 1
        schedule = coordinator_killer(
            n, t, 2 * t + 6, rounds_per_cycle=2
        )
        trace = run_and_check(HurfinRaynalES, schedule, list(range(n)))
        assert trace.global_decision_round() == 2 * t + 2

    def test_partial_proposal_delivery_keeps_agreement(self):
        from repro.model.schedule import ScheduleBuilder

        builder = ScheduleBuilder(5, 2, 14)
        builder.crash(0, 1, delivered_to=(1,))  # proposal reaches p1 only
        trace = run_and_check(
            HurfinRaynalES, builder.build(), [2, 7, 5, 9, 4]
        )
        assert len(trace.decided_values()) == 1

    def test_adoption_propagates_coordinator_value(self):
        # p0's value must win even if only one ack quorum member saw it,
        # thanks to est adoption on any received ack.
        from repro.model.schedule import ScheduleBuilder

        builder = ScheduleBuilder(3, 1, 12)
        builder.crash(0, 1, delivered_to=(1,))
        trace = run_and_check(HurfinRaynalES, builder.build(), [0, 5, 9])
        assert trace.decided_values() == {0}

    def test_survives_async_prefix(self):
        schedule = rotating_delays(5, 2, 16, async_rounds=5)
        trace = run_and_check(HurfinRaynalES, schedule, [3, 1, 4, 1, 5])
        assert len(trace.decided_values()) == 1


class TestRandomizedSafety:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_es_runs_safe(self, seed):
        schedule = random_es_schedule(5, 2, seed, horizon=24, sync_by=8)
        trace = run_algorithm(
            HurfinRaynalES, schedule, random_proposals(5, seed)
        )
        problems = check_consensus(trace, expect_termination=False)
        assert not problems, (seed, problems)
