"""Tests for the Mostéfaoui–Raynal leader-based consensus (t < n/3)."""

import pytest

from repro import AMRLeaderES, Schedule
from repro.analysis.metrics import check_consensus
from repro.errors import AlgorithmError
from repro.sim.kernel import run_algorithm
from repro.sim.random_schedules import random_es_schedule, random_proposals
from repro.workloads import async_prefix, serial_cascade
from tests.conftest import run_and_check


class TestResilienceGate:
    def test_rejects_t_at_third(self):
        with pytest.raises(AlgorithmError, match="n/3"):
            AMRLeaderES(0, 6, 2, 1)

    def test_accepts_below_third(self):
        AMRLeaderES(0, 7, 2, 1)


class TestDecisions:
    def test_failure_free_decides_in_two_rounds(self):
        schedule = Schedule.failure_free(4, 1, 10)
        trace = run_and_check(AMRLeaderES, schedule, [5, 3, 8, 6])
        assert trace.global_decision_round() == 2
        # The leader (minimum id among senders) is p0.
        assert trace.decided_values() == {5}

    def test_leader_crash_costs_a_cycle(self):
        # p0 (initial leader) crashes in round 1 delivering to nobody:
        # cycle 1 fails to unify candidates, cycle 2 (leader p1) decides.
        schedule = serial_cascade(
            4, 1, 12, crashers=(0,), start_round=1
        )
        trace = run_and_check(AMRLeaderES, schedule, [5, 3, 8, 6])
        assert trace.global_decision_round() <= 4

    def test_sync_after_k_decides_by_k_plus_2f_plus_2(self):
        for k in (0, 2, 4):
            for f in (0, 1, 2):
                schedule = async_prefix(
                    7, 2, k + 2 * f + 10, k=k, crashes_after=f
                )
                trace = run_and_check(
                    AMRLeaderES, schedule, [3, 1, 4, 1, 5, 2, 6]
                )
                assert trace.global_decision_round() <= k + 2 * f + 2, (
                    k, f, trace.describe()
                )


class TestRandomizedSafety:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_es_runs_safe(self, seed):
        schedule = random_es_schedule(7, 2, seed, horizon=24, sync_by=8)
        trace = run_algorithm(
            AMRLeaderES, schedule, random_proposals(7, seed)
        )
        problems = check_consensus(trace, expect_termination=False)
        assert not problems, (seed, problems)
