"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AlgorithmError,
    ConsensusViolation,
    ModelViolation,
    ReproError,
    ScheduleError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ScheduleError,
            ModelViolation,
            SimulationError,
            AlgorithmError,
            ConsensusViolation,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_repro_error_is_an_exception(self):
        assert issubclass(ReproError, Exception)

    def test_catching_the_base_catches_library_failures(self):
        from repro.model.schedule import ScheduleBuilder

        try:
            ScheduleBuilder(3, 1, 5).delay(0, 0, 1, 2)
        except ReproError as error:
            assert "self-delivery" in str(error)
        else:
            pytest.fail("expected a ReproError")
