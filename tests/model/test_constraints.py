"""Tests for shared constraint helpers: same-round senders and suspicion."""

from repro.model.constraints import same_round_senders, suspected_by
from repro.model.schedule import Schedule, ScheduleBuilder


class TestSameRoundSenders:
    def test_failure_free_everyone_heard(self):
        schedule = Schedule.failure_free(4, 1, 5)
        assert same_round_senders(schedule, 0, 1) == frozenset({0, 1, 2, 3})

    def test_crashed_sender_missing(self):
        schedule = Schedule.synchronous(4, 1, 5, crashes={2: (1, [])})
        assert same_round_senders(schedule, 0, 1) == frozenset({0, 1, 3})

    def test_partial_crash_delivery(self):
        schedule = Schedule.synchronous(4, 1, 5, crashes={2: (1, [0])})
        assert 2 in same_round_senders(schedule, 0, 1)
        assert 2 not in same_round_senders(schedule, 1, 1)

    def test_delay_removes_sender(self):
        builder = ScheduleBuilder(4, 1, 5)
        builder.delay(3, 0, 2, 4)
        schedule = builder.build()
        assert 3 not in same_round_senders(schedule, 0, 2)
        assert 3 in same_round_senders(schedule, 0, 3)


class TestSuspectedBy:
    def test_suspicion_matches_paper_definition(self):
        builder = ScheduleBuilder(4, 1, 5)
        builder.delay(3, 0, 2, 4)
        schedule = builder.build()
        # p0 suspects p3 in round 2 (message delayed = false suspicion).
        assert suspected_by(schedule, 0, 2) == frozenset({3})
        assert suspected_by(schedule, 0, 3) == frozenset()

    def test_crash_causes_accurate_suspicion(self):
        schedule = Schedule.synchronous(4, 1, 5, crashes={1: (2, [])})
        assert suspected_by(schedule, 0, 2) == frozenset({1})
        assert suspected_by(schedule, 0, 3) == frozenset({1})

    def test_no_self_suspicion(self):
        schedule = Schedule.failure_free(4, 1, 5)
        for pid in range(4):
            assert pid not in suspected_by(schedule, pid, 1)
