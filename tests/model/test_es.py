"""Tests for the ES validator: t-resilience, reliable channels, synchrony."""

import pytest

from repro.errors import ModelViolation
from repro.model.es import check_es, enforce_es, is_es
from repro.model.schedule import Schedule, ScheduleBuilder


class TestTResilience:
    def test_failure_free_ok(self):
        assert is_es(Schedule.failure_free(4, 1, 6))

    def test_synchronous_crashes_ok(self):
        schedule = Schedule.synchronous(5, 2, 8,
                                        crashes={0: (1, []), 1: (4, [2])})
        assert is_es(schedule)

    def test_too_many_delays_break_resilience(self):
        # n=3, t=1: each process must hear from 2 processes per round.
        # Delaying both peers' messages to p0 leaves it with only itself.
        builder = ScheduleBuilder(3, 1, 6)
        builder.delay(1, 0, 1, 2)
        builder.delay(2, 0, 1, 2)
        violations = check_es(builder.build())
        assert any("t-resilience" in v for v in violations)

    def test_single_delay_keeps_resilience(self):
        builder = ScheduleBuilder(3, 1, 6)
        builder.delay(1, 0, 1, 2)
        assert is_es(builder.build())

    def test_crash_with_no_delivery_counts_against_quota(self):
        # n=3, t=1: p2 crashes in round 1 delivering to nobody; p0 and p1
        # still hear 2 processes (self + the other), so ES holds.
        schedule = Schedule.synchronous(3, 1, 6, crashes={2: (1, [])})
        assert is_es(schedule)


class TestReliableChannels:
    def test_correct_to_correct_loss_is_violation(self):
        builder = ScheduleBuilder(4, 1, 6)
        builder.lose(0, 1, 2)
        violations = check_es(builder.build())
        assert any("reliable channels" in v for v in violations)

    def test_loss_from_faulty_sender_ok(self):
        builder = ScheduleBuilder(4, 1, 6)
        builder.crash(0, 3)
        builder.lose(0, 1, 2)
        assert is_es(builder.build())


class TestEventualSynchrony:
    def test_crash_round_loss_in_final_round_is_legal(self):
        # p3 crashes in round 4; losing its crash-round message does not
        # break the synchrony of round 4.
        builder = ScheduleBuilder(4, 1, 4)
        builder.crash(3, 4, delivered_to=(0, 2))
        assert is_es(builder.build())

    def test_delay_leaves_synchronous_suffix(self):
        # A delay in round 4 of a 5-round horizon still leaves round 5
        # synchronous, so the default eventual-synchrony check passes.
        builder = ScheduleBuilder(4, 1, 5)
        builder.delay(0, 1, 4, 5)
        assert builder.build().sync_from() == 5
        assert is_es(builder.build())

    def test_loss_in_final_round_denies_synchronous_suffix(self):
        # A lost message from a non-crashing sender in the final round
        # makes that round asynchronous: no synchronous suffix exists
        # within the horizon (and reliable channels break too).
        builder = ScheduleBuilder(4, 1, 5)
        builder.lose(0, 1, 5)
        violations = check_es(builder.build())
        assert any("eventual synchrony" in v for v in violations)
        assert any("reliable channels" in v for v in violations)
        # Disabling the synchrony requirement leaves only the channel issue.
        relaxed = check_es(builder.build(), require_sync_by=None)
        assert not any("eventual synchrony" in v for v in relaxed)

    def test_sync_by_bound(self):
        builder = ScheduleBuilder(4, 1, 10)
        builder.delay(0, 1, 3, 4)
        schedule = builder.build()
        assert schedule.sync_from() == 4
        assert is_es(schedule, require_sync_by=4)
        violations = check_es(schedule, require_sync_by=3)
        assert any("eventual synchrony" in v for v in violations)


class TestEnforce:
    def test_enforce_raises_with_details(self):
        builder = ScheduleBuilder(4, 1, 6)
        builder.lose(0, 1, 2)
        with pytest.raises(ModelViolation, match="reliable channels"):
            enforce_es(builder.build())

    def test_enforce_passes_through(self):
        schedule = Schedule.failure_free(4, 1, 6)
        assert enforce_es(schedule) is schedule

    def test_crash_overload_is_violation(self):
        schedule = Schedule.synchronous(
            4, 1, 6, crashes={0: (1, []), 1: (2, [])}
        )
        violations = check_es(schedule)
        assert any("exceed the resilience" in v for v in violations)
