"""Tests for messages: ordering, hashing, tags."""

import pytest

from repro.model.messages import DUMMY, Message, sort_delivery


class TestMessage:
    def test_tag_of_tuple_payload(self):
        m = Message(sent_round=1, sender=0, receiver=1,
                    payload=("ESTIMATE", 1, 5, frozenset()))
        assert m.tag == "ESTIMATE"

    def test_tag_of_scalar_payload(self):
        m = Message(sent_round=1, sender=0, receiver=1, payload=42)
        assert m.tag == 42

    def test_rejects_unhashable_payload(self):
        with pytest.raises(TypeError):
            Message(sent_round=1, sender=0, receiver=1, payload=["list"])

    def test_ordering_by_round_then_sender(self):
        early = Message(sent_round=1, sender=2, receiver=0, payload=("A",))
        late = Message(sent_round=2, sender=0, receiver=0, payload=("B",))
        peer = Message(sent_round=1, sender=1, receiver=0, payload=("C",))
        assert sort_delivery([late, early, peer]) == (peer, early, late)

    def test_payload_not_compared(self):
        a = Message(sent_round=1, sender=0, receiver=1, payload=("X",))
        b = Message(sent_round=1, sender=0, receiver=1, payload=("Y",))
        assert not a < b and not b < a

    def test_repr_is_compact(self):
        m = Message(sent_round=3, sender=1, receiver=2, payload=("T",))
        assert "r3 1->2" in repr(m)


class TestDummy:
    def test_dummy_is_tagged_tuple(self):
        assert DUMMY == ("DUMMY",)
        hash(DUMMY)
