"""Tests for messages: ordering, hashing, tags."""

import pytest

from repro.model.messages import DUMMY, Message, sort_delivery


class TestMessage:
    def test_tag_of_tuple_payload(self):
        m = Message(sent_round=1, sender=0, receiver=1,
                    payload=("ESTIMATE", 1, 5, frozenset()))
        assert m.tag == "ESTIMATE"

    def test_tag_of_scalar_payload(self):
        m = Message(sent_round=1, sender=0, receiver=1, payload=42)
        assert m.tag == 42

    def test_rejects_unhashable_payload(self):
        with pytest.raises(TypeError):
            Message(sent_round=1, sender=0, receiver=1, payload=["list"])

    def test_ordering_by_round_then_sender(self):
        early = Message(sent_round=1, sender=2, receiver=0, payload=("A",))
        late = Message(sent_round=2, sender=0, receiver=0, payload=("B",))
        peer = Message(sent_round=1, sender=1, receiver=0, payload=("C",))
        assert sort_delivery([late, early, peer]) == (peer, early, late)

    def test_payload_not_compared(self):
        a = Message(sent_round=1, sender=0, receiver=1, payload=("X",))
        b = Message(sent_round=1, sender=0, receiver=1, payload=("Y",))
        assert not a < b and not b < a

    def test_repr_is_compact(self):
        m = Message(sent_round=3, sender=1, receiver=2, payload=("T",))
        assert "r3 1->2" in repr(m)


class TestDummy:
    def test_dummy_is_tagged_tuple(self):
        assert DUMMY == ("DUMMY",)
        hash(DUMMY)


class TestSlotsAndPickling:
    """The slots layout and the fast constructor must not cost us the
    process-pool backends: messages round-trip through pickle exactly."""

    def test_messages_are_slotted(self):
        m = Message(sent_round=1, sender=0, receiver=1, payload=("T",))
        assert not hasattr(m, "__dict__")
        with pytest.raises((AttributeError, TypeError)):
            m.extra = 1  # frozen + slots: no new attributes, ever

    def test_pickle_roundtrip_all_protocols(self):
        import pickle

        m = Message(
            sent_round=3, sender=1, receiver=2,
            payload=("ESTIMATE", 3, 5, frozenset({0, 1})),
        )
        for protocol in range(pickle.HIGHEST_PROTOCOL + 1):
            clone = pickle.loads(pickle.dumps(m, protocol))
            assert clone == m
            assert clone.payload == m.payload
            assert hash(clone) == hash(m)

    def test_fast_message_equals_constructed(self):
        from repro.model.messages import fast_message

        built = Message(sent_round=2, sender=0, receiver=1, payload=("A", 7))
        fast = fast_message(2, 0, 1, ("A", 7))
        assert fast == built
        assert fast.payload == built.payload
        assert hash(fast) == hash(built)
        assert not fast < built and not built < fast

    def test_fast_message_pickles_like_constructed(self):
        import pickle

        from repro.model.messages import fast_message

        fast = fast_message(2, 0, 1, ("A", 7))
        clone = pickle.loads(pickle.dumps(fast))
        assert clone == fast
        assert clone.payload == fast.payload

    def test_frozen_rejects_mutation(self):
        import dataclasses

        m = Message(sent_round=1, sender=0, receiver=1, payload=("T",))
        with pytest.raises(dataclasses.FrozenInstanceError):
            m.sender = 5
