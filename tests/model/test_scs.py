"""Tests for the SCS validator."""

import pytest

from repro.errors import ModelViolation
from repro.model.schedule import Schedule, ScheduleBuilder
from repro.model.scs import check_scs, enforce_scs, is_scs


class TestCheckSCS:
    def test_failure_free_is_scs(self):
        assert is_scs(Schedule.failure_free(4, 1, 6))

    def test_partial_crash_delivery_is_scs(self):
        schedule = Schedule.synchronous(4, 2, 6,
                                        crashes={0: (1, [1]), 3: (1, [])})
        assert is_scs(schedule)

    def test_delay_is_not_scs(self):
        builder = ScheduleBuilder(4, 1, 6)
        builder.delay(0, 1, 1, 2)
        violations = check_scs(builder.build())
        assert any("forbids delayed" in v for v in violations)

    def test_crash_round_delay_is_not_scs(self):
        builder = ScheduleBuilder(4, 1, 6)
        builder.crash(0, 1, delayed={1: 3})
        violations = check_scs(builder.build())
        assert any("delaying crash-round" in v for v in violations)

    def test_loss_from_live_sender_is_not_scs(self):
        builder = ScheduleBuilder(4, 1, 6)
        builder.lose(0, 1, 2)
        violations = check_scs(builder.build())
        assert any("crash round" in v for v in violations)

    def test_explicit_loss_in_crash_round_is_rejected_by_builder(self):
        # Crash-round losses are expressed by the CrashSpec (receivers not
        # listed lose the message); an explicit .lose() is redundant and
        # the builder rejects it.
        from repro.errors import ScheduleError

        builder = ScheduleBuilder(4, 1, 6)
        builder.crash(0, 2, delivered_to=(1,))
        builder.lose(0, 2, 2)
        with pytest.raises(ScheduleError, match="implied or impossible"):
            builder.build()

    def test_too_many_crashes(self):
        schedule = Schedule.synchronous(4, 1, 6,
                                        crashes={0: (1, []), 1: (2, [])})
        violations = check_scs(schedule)
        assert any("exceed" in v for v in violations)

    def test_enforce_raises(self):
        builder = ScheduleBuilder(4, 1, 6)
        builder.delay(0, 1, 1, 2)
        with pytest.raises(ModelViolation, match="SCS"):
            enforce_scs(builder.build())

    def test_enforce_returns_schedule(self):
        schedule = Schedule.failure_free(4, 1, 6)
        assert enforce_scs(schedule) is schedule
