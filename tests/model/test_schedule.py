"""Tests for schedules: construction, delivery semantics, classification."""

import pytest

from repro.errors import ScheduleError
from repro.model.schedule import CrashSpec, Schedule, ScheduleBuilder


class TestCrashSpec:
    def test_rejects_round_zero(self):
        with pytest.raises(ScheduleError, match="crash round"):
            CrashSpec(round=0)

    def test_rejects_overlapping_delivery_and_delay(self):
        with pytest.raises(ScheduleError, match="same-round and delayed"):
            CrashSpec(
                round=2,
                delivered_same_round=frozenset({1}),
                delayed=((1, 4),),
            )

    def test_rejects_delay_before_crash_round(self):
        with pytest.raises(ScheduleError, match="must exceed crash"):
            CrashSpec(round=3, delayed=((1, 3),))

    def test_rejects_duplicate_delayed_receiver(self):
        with pytest.raises(ScheduleError, match="duplicate receiver"):
            CrashSpec(round=1, delayed=((1, 2), (1, 3)))

    def test_delayed_delivery_lookup(self):
        spec = CrashSpec(round=1, delayed=((2, 4),))
        assert spec.delayed_delivery(2) == 4
        assert spec.delayed_delivery(1) is None


class TestScheduleBuilder:
    def test_rejects_bad_pid(self):
        builder = ScheduleBuilder(3, 1, 5)
        with pytest.raises(ScheduleError, match="out of range"):
            builder.crash(3, 1)

    def test_rejects_double_crash(self):
        builder = ScheduleBuilder(3, 1, 5)
        builder.crash(0, 1)
        with pytest.raises(ScheduleError, match="already crashes"):
            builder.crash(0, 2)

    def test_rejects_self_delay(self):
        builder = ScheduleBuilder(3, 1, 5)
        with pytest.raises(ScheduleError, match="self-delivery"):
            builder.delay(1, 1, 1, 2)

    def test_rejects_delay_not_after_send(self):
        builder = ScheduleBuilder(3, 1, 5)
        with pytest.raises(ScheduleError, match="must exceed"):
            builder.delay(0, 1, 2, 2)

    def test_rejects_delay_beyond_horizon(self):
        builder = ScheduleBuilder(3, 1, 5)
        with pytest.raises(ScheduleError, match="exceeds horizon"):
            builder.delay(0, 1, 1, 6)

    def test_rejects_delay_and_loss_conflict(self):
        builder = ScheduleBuilder(3, 1, 5)
        builder.delay(0, 1, 1, 2)
        with pytest.raises(ScheduleError, match="already delayed"):
            builder.lose(0, 1, 1)

    def test_rejects_loss_then_delay_conflict(self):
        builder = ScheduleBuilder(3, 1, 5)
        builder.lose(0, 1, 1)
        with pytest.raises(ScheduleError, match="already lost"):
            builder.delay(0, 1, 1, 2)

    def test_rejects_delays_from_crashed_sender(self):
        builder = ScheduleBuilder(3, 1, 5)
        builder.crash(0, 1)
        builder.delay(0, 1, 2, 3)
        with pytest.raises(ScheduleError, match="crashes in round"):
            builder.build()

    def test_rejects_crash_after_horizon(self):
        builder = ScheduleBuilder(3, 1, 5)
        builder.crash(0, 6)
        with pytest.raises(ScheduleError, match="after the horizon"):
            builder.build()

    def test_self_delivered_to_is_dropped(self):
        builder = ScheduleBuilder(3, 1, 5)
        builder.crash(0, 1, delivered_to=(0, 1))
        schedule = builder.build()
        assert schedule.crashes[0].delivered_same_round == frozenset({1})


class TestDeliverySemantics:
    def test_default_same_round(self):
        schedule = Schedule.failure_free(3, 1, 5)
        assert schedule.delivery_round(0, 1, 2) == 2

    def test_self_delivery_immediate(self):
        schedule = Schedule.failure_free(3, 1, 5)
        assert schedule.delivery_round(1, 1, 3) == 3

    def test_crashed_sender_sends_nothing_later(self):
        schedule = Schedule.synchronous(3, 1, 5, crashes={0: (2, [1])})
        assert schedule.delivery_round(0, 1, 3) is None
        assert schedule.delivery_round(0, 0, 3) is None

    def test_crash_round_partial_delivery(self):
        schedule = Schedule.synchronous(3, 1, 5, crashes={0: (2, [1])})
        assert schedule.delivery_round(0, 1, 2) == 2
        assert schedule.delivery_round(0, 2, 2) is None

    def test_crash_round_delayed_delivery(self):
        builder = ScheduleBuilder(3, 1, 5)
        builder.crash(0, 2, delivered_to=(1,), delayed={2: 4})
        schedule = builder.build()
        assert schedule.delivery_round(0, 2, 2) == 4

    def test_explicit_delay(self):
        builder = ScheduleBuilder(3, 1, 5)
        builder.delay(0, 1, 1, 3)
        schedule = builder.build()
        assert schedule.delivery_round(0, 1, 1) == 3
        assert schedule.delivery_round(0, 2, 1) == 1

    def test_explicit_loss(self):
        builder = ScheduleBuilder(3, 1, 5)
        builder.crash(0, 3)
        builder.lose(0, 1, 1)
        schedule = builder.build()
        assert schedule.delivery_round(0, 1, 1) is None

    def test_deliveries_to_collects_delayed(self):
        builder = ScheduleBuilder(3, 1, 5)
        builder.delay(0, 1, 1, 3)
        schedule = builder.build()
        arrivals = schedule.deliveries_to(1, 3)
        assert (0, 1) in arrivals
        assert (0, 3) in arrivals  # the round-3 message itself


class TestLifecyclePredicates:
    def test_sends_and_completes(self):
        schedule = Schedule.synchronous(3, 1, 6, crashes={1: (3, [])})
        assert schedule.sends_in_round(1, 3)
        assert not schedule.completes_round(1, 3)
        assert schedule.completes_round(1, 2)
        assert not schedule.sends_in_round(1, 4)

    def test_correct_and_faulty(self):
        schedule = Schedule.synchronous(4, 1, 6, crashes={2: (1, [])})
        assert schedule.faulty == frozenset({2})
        assert schedule.correct == frozenset({0, 1, 3})

    def test_crashed_in(self):
        schedule = Schedule.synchronous(4, 2, 6,
                                        crashes={2: (1, []), 3: (1, [])})
        assert schedule.crashed_in(1) == frozenset({2, 3})
        assert schedule.crashed_in(2) == frozenset()


class TestSynchronyClassification:
    def test_failure_free_is_synchronous(self):
        schedule = Schedule.failure_free(4, 1, 6)
        assert schedule.is_synchronous_run()
        assert schedule.sync_from() == 1

    def test_crashes_do_not_break_synchrony(self):
        schedule = Schedule.synchronous(4, 2, 6,
                                        crashes={0: (1, [1]), 1: (3, [])})
        assert schedule.is_synchronous_run()

    def test_delay_breaks_synchrony(self):
        builder = ScheduleBuilder(4, 1, 6)
        builder.delay(0, 1, 2, 4)
        schedule = builder.build()
        assert not schedule.is_synchronous_run()
        assert not schedule.is_synchronous_round(2)
        assert schedule.sync_from() == 3

    def test_crash_round_delay_keeps_round_synchronous(self):
        # Footnote 5: crash-round messages may be delayed even in
        # synchronous runs.
        builder = ScheduleBuilder(4, 1, 6)
        builder.crash(0, 2, delivered_to=(1,), delayed={2: 4})
        schedule = builder.build()
        assert schedule.is_synchronous_round(2)
        assert schedule.is_synchronous_run()

    def test_loss_breaks_synchrony(self):
        builder = ScheduleBuilder(4, 1, 6)
        builder.lose(0, 1, 3)
        schedule = builder.build()
        assert not schedule.is_synchronous_round(3)
        assert schedule.sync_from() == 4

    def test_serial_run(self):
        schedule = Schedule.synchronous(5, 2, 6,
                                        crashes={0: (1, []), 1: (2, [])})
        assert schedule.is_serial_run()

    def test_two_crashes_same_round_not_serial(self):
        schedule = Schedule.synchronous(5, 2, 6,
                                        crashes={0: (1, []), 1: (1, [])})
        assert schedule.is_synchronous_run()
        assert not schedule.is_serial_run()

    def test_too_many_crashes_not_serial(self):
        schedule = Schedule.synchronous(5, 1, 6,
                                        crashes={0: (1, []), 1: (2, [])})
        assert not schedule.is_serial_run()


class TestScheduleIdentity:
    def test_equality_and_hash(self):
        a = Schedule.synchronous(3, 1, 5, crashes={0: (1, [1])})
        b = Schedule.synchronous(3, 1, 5, crashes={0: (1, [1])})
        c = Schedule.synchronous(3, 1, 5, crashes={0: (1, [2])})
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_with_horizon_extends(self):
        a = Schedule.synchronous(3, 1, 5, crashes={0: (1, [1])})
        b = a.with_horizon(9)
        assert b.horizon == 9
        assert b.crashes == a.crashes

    def test_with_horizon_cannot_cut_deliveries(self):
        builder = ScheduleBuilder(3, 1, 8)
        builder.delay(0, 1, 1, 7)
        schedule = builder.build()
        with pytest.raises(ScheduleError, match="shrink"):
            schedule.with_horizon(5)

    def test_describe_mentions_crashes_and_delays(self):
        builder = ScheduleBuilder(3, 1, 8)
        builder.crash(0, 2, delivered_to=(1,))
        builder.delay(1, 2, 1, 3)
        text = builder.build().describe()
        assert "p0 crashes in round 2" in text
        assert "delay" in text


class TestScheduleDigest:
    def test_equal_schedules_share_a_digest(self):
        a = Schedule.synchronous(3, 1, 5, crashes={0: (1, [1])})
        b = Schedule.synchronous(3, 1, 5, crashes={0: (1, [1])})
        assert a.digest() == b.digest()
        assert len(a.digest()) == 64

    def test_digest_separates_unequal_schedules(self):
        base = Schedule.failure_free(3, 1, 5)
        assert base.digest() != Schedule.failure_free(3, 1, 6).digest()
        assert base.digest() != Schedule.failure_free(4, 1, 5).digest()
        crashy = Schedule.synchronous(3, 1, 5, crashes={0: (1, [1])})
        assert base.digest() != crashy.digest()

    def test_digest_independent_of_construction_order(self):
        forward = ScheduleBuilder(4, 1, 8)
        forward.delay(0, 1, 1, 3).delay(2, 3, 2, 4).lose(1, 2, 1)
        backward = ScheduleBuilder(4, 1, 8)
        backward.lose(1, 2, 1).delay(2, 3, 2, 4).delay(0, 1, 1, 3)
        assert forward.build().digest() == backward.build().digest()

    def test_digest_is_stable_across_runs(self):
        # Pinned value: the digest is persisted in on-disk cache keys, so
        # it must never drift across processes or Python versions.
        assert Schedule.failure_free(3, 1, 8).digest() == (
            "e4e2589bc8bc2deb4fb880b2dbed19bf781ae997757f0545138d47fc4031a035"
        )

    def test_digest_covers_every_crash_spec_field(self):
        # The digest is derived from _key() via a generic normalizer, so
        # every way two CrashSpecs can differ must separate the digests.
        def crashed(**kwargs):
            return Schedule(
                n=4, t=2, horizon=8, crashes={0: CrashSpec(**kwargs)}
            )

        variants = [
            crashed(round=2),
            crashed(round=3),
            crashed(round=2, delivered_same_round=frozenset({1})),
            crashed(round=2, delayed=((1, 4),)),
            crashed(round=2, delayed=((1, 5),)),
        ]
        digests = [schedule.digest() for schedule in variants]
        assert len(set(digests)) == len(digests)
