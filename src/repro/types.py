"""Shared primitive types and conventions.

Conventions used throughout the package (see DESIGN.md section 6):

* **Process ids** are 0-based integers ``0 .. n-1``.  The paper's process
  :math:`p_i` corresponds to id ``i - 1``.
* **Rounds** are 1-based integers, matching the paper: the first round of a
  run is round 1.
* **Values** (consensus proposals / decisions) may be any hashable,
  totally-ordered Python objects; the tests mostly use small integers.
* **Payloads** are hashable tuples, so that process *views* — the sequence
  of payloads a process sent and received — can be compared exactly across
  runs.  View equality is the engine of the paper's indistinguishability
  arguments.
"""

from __future__ import annotations

from typing import Any, Hashable

ProcessId = int
Round = int
Value = Any
Payload = Hashable

# Sentinel for the "bottom" new-estimate value exchanged in Phase 2 of the
# paper's algorithm A_{t+2}.  A dedicated singleton (rather than ``None``)
# keeps "no message" and "message carrying bottom" distinct.


class _Bottom:
    """The ⊥ value of the paper (singleton)."""

    _instance: "_Bottom | None" = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __reduce__(self):
        return (_Bottom, ())


BOTTOM = _Bottom()


def is_bottom(value: Any) -> bool:
    """Return True iff *value* is the ⊥ sentinel."""
    return value is BOTTOM


def validate_system_size(n: int, t: int) -> None:
    """Validate the basic system parameters shared by all models.

    The paper assumes ``n >= 3`` processes of which at most ``t`` may crash.
    Individual algorithms impose their own resilience bounds (e.g.
    ``0 < t < n/2`` for A_{t+2}); this helper only checks the universally
    required shape.
    """
    if not isinstance(n, int) or not isinstance(t, int):
        raise TypeError(f"n and t must be ints, got n={n!r}, t={t!r}")
    if n < 1:
        raise ValueError(f"need at least one process, got n={n}")
    if t < 0:
        raise ValueError(f"t must be non-negative, got t={t}")
    if t >= n:
        raise ValueError(f"t must be smaller than n, got n={n}, t={t}")


def validate_indulgent_resilience(n: int, t: int) -> None:
    """Check the indulgent resilience requirement ``0 < t < n/2``.

    [Chandra & Toueg 1996] showed a majority of correct processes is
    necessary for consensus with unreliable failure detection; the paper
    additionally excludes ``t = 0`` (decision is trivially possible in one
    round, see its footnote 4).
    """
    validate_system_size(n, t)
    if t == 0:
        raise ValueError(
            "t = 0 is excluded: processes may decide on p1's proposal "
            "after a single exchange (paper, footnote 4)"
        )
    if 2 * t >= n:
        raise ValueError(
            f"indulgent consensus requires t < n/2 (got n={n}, t={t}); "
            "see the resilience-price demonstration in "
            "benchmarks/bench_resilience.py"
        )
