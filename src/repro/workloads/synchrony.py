"""Eventually-synchronous workload shapes: asynchronous prefixes, partitions.

These generators build ES-legal schedules whose synchrony round K is
strictly greater than 1 — the runs in which indulgence earns its keep.
All of them preserve t-resilience (each process still receives ≥ n − t
current-round messages per round) and reliable channels (correct→correct
messages are delayed, never lost).
"""

from __future__ import annotations

from repro.errors import ScheduleError
from repro.model.schedule import Schedule, ScheduleBuilder
from repro.types import ProcessId, Round, validate_system_size


def rotating_delays(
    n: int,
    t: int,
    horizon: Round,
    *,
    async_rounds: Round,
    delay_by: Round = 1,
) -> Schedule:
    """An asynchronous prefix in which one sender per round is "slow".

    In every round k ≤ async_rounds, the messages of victim (k−1) mod n to
    all other processes are delayed by *delay_by* rounds (capped at the
    horizon), so every other process falsely suspects the victim that
    round.  Each receiver still hears from n − 1 ≥ n − t senders, so
    t-resilience holds with t ≥ 1.  Rounds after *async_rounds* are
    synchronous.
    """
    validate_system_size(n, t)
    if t < 1:
        raise ScheduleError("rotating_delays needs t >= 1 for t-resilience")
    builder = ScheduleBuilder(n, t, horizon)
    for k in range(1, min(async_rounds, horizon) + 1):
        victim = (k - 1) % n
        until = min(k + delay_by, horizon)
        if until <= k:
            continue
        for receiver in range(n):
            if receiver != victim:
                builder.delay(victim, receiver, k, until)
    return builder.build()


def async_prefix(
    n: int,
    t: int,
    horizon: Round,
    *,
    k: Round,
    crashes_after: int = 0,
    crash_delivered_to: tuple[ProcessId, ...] = (),
) -> Schedule:
    """A run that is synchronous after round *k*, with f crashes after k.

    Rounds 1..k are made asynchronous via rotating single-sender delays
    (delivered in the next round); rounds k+1..k+f each crash one process
    (the highest ids, delivering to ``crash_delivered_to``); everything
    else is synchronous.  This is the workload of Lemma 15 / experiment
    E8: A_{f+2} must globally decide by round k + f + 2.
    """
    validate_system_size(n, t)
    if crashes_after > t:
        raise ScheduleError(f"crashes_after={crashes_after} exceeds t={t}")
    builder = ScheduleBuilder(n, t, horizon)
    for round_ in range(1, min(k, horizon) + 1):
        victim = (round_ - 1) % n
        until = min(round_ + 1, horizon)
        if until <= round_:
            continue
        for receiver in range(n):
            if receiver != victim:
                builder.delay(victim, receiver, round_, until)
    for index in range(crashes_after):
        pid = n - 1 - index
        builder.crash(
            pid, k + 1 + index, delivered_to=crash_delivered_to
        )
    return builder.build()


def partitioned_prefix(
    n: int,
    t: int,
    horizon: Round,
    *,
    rounds: Round,
    groups: tuple[tuple[ProcessId, ...], tuple[ProcessId, ...]] | None = None,
    heal_at: Round | None = None,
) -> Schedule:
    """Two communication islands for the first *rounds* rounds.

    Cross-group messages sent in rounds 1..rounds are delayed until
    *heal_at* (default: rounds + 1).  Each group must have at least n − t
    members for t-resilience to survive — which is possible exactly when
    t ≥ n/2.  With t < n/2 this generator raises: the majority requirement
    is what makes indulgent consensus safe, and experiment E10 uses this
    generator (with an over-large t) to reproduce the split-brain
    disagreement the paper recalls from Chandra & Toueg.
    """
    validate_system_size(n, t)
    if groups is None:
        half = n // 2
        groups = (tuple(range(half)), tuple(range(half, n)))
    group_a, group_b = groups
    if set(group_a) | set(group_b) != set(range(n)) or set(group_a) & set(
        group_b
    ):
        raise ScheduleError("groups must partition the process set")
    if min(len(group_a), len(group_b)) < n - t:
        raise ScheduleError(
            f"a group of {min(len(group_a), len(group_b))} processes cannot "
            f"satisfy t-resilience (needs >= n-t = {n - t}); partitions are "
            f"only ES-legal when t >= n/2"
        )
    heal = rounds + 1 if heal_at is None else heal_at
    heal = min(heal, horizon)
    builder = ScheduleBuilder(n, t, horizon)
    for k in range(1, min(rounds, horizon) + 1):
        for sender in group_a:
            for receiver in group_b:
                if heal > k:
                    builder.delay(sender, receiver, k, heal)
        for sender in group_b:
            for receiver in group_a:
                if heal > k:
                    builder.delay(sender, receiver, k, heal)
    return builder.build()
