"""Workload generators: crash patterns and (a)synchrony shapes.

These produce the adversary schedules the experiments sweep over:

* :mod:`repro.workloads.crash_patterns` — synchronous runs with structured
  crashes (serial cascades, value-hiding chains, block crashes);
* :mod:`repro.workloads.synchrony` — eventually-synchronous shapes
  (asynchronous prefixes, partitions, coordinator targeting).
"""

from repro.workloads.crash_patterns import (
    block_crashes,
    coordinator_killer,
    serial_cascade,
    value_hiding_chain,
)
from repro.workloads.synchrony import (
    async_prefix,
    partitioned_prefix,
    rotating_delays,
)

__all__ = [
    "serial_cascade",
    "value_hiding_chain",
    "block_crashes",
    "coordinator_killer",
    "async_prefix",
    "partitioned_prefix",
    "rotating_delays",
]
