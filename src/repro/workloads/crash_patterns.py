"""Structured crash patterns for synchronous runs.

These are the adversaries of the paper's synchronous-run analyses: serial
cascades (at most one crash per round — the runs the bivalency proof is
built from), the classic value-hiding chain that forces FloodSet to use
all t + 1 rounds, and coordinator-killing cascades that force the
rotating-coordinator baselines to their 2t + 2 / 3t + 3 worst cases.
"""

from __future__ import annotations

from repro.model.schedule import Schedule, ScheduleBuilder
from repro.types import ProcessId, Round, validate_system_size


def serial_cascade(
    n: int,
    t: int,
    horizon: Round,
    *,
    crashers: tuple[ProcessId, ...] | None = None,
    start_round: Round = 1,
    deliver_to_next: bool = False,
) -> Schedule:
    """A synchronous run with one crash per round, rounds start..start+f-1.

    Args:
        crashers: processes to crash, in order (default: the last f ids,
            keeping low ids — typical coordinators — alive).  ``len``
            determines f <= t.
        start_round: round of the first crash.
        deliver_to_next: if True, each crasher's round message reaches only
            the next crasher in the chain (value hiding); if False, it
            reaches nobody.
    """
    validate_system_size(n, t)
    if crashers is None:
        crashers = tuple(range(n - 1, n - 1 - t, -1))
    if len(crashers) > t:
        raise ValueError(f"{len(crashers)} crashers exceed t={t}")
    builder = ScheduleBuilder(n, t, horizon)
    for index, pid in enumerate(crashers):
        receivers: tuple[ProcessId, ...] = ()
        if deliver_to_next and index + 1 < len(crashers):
            receivers = (crashers[index + 1],)
        builder.crash(pid, start_round + index, delivered_to=receivers)
    return builder.build()


def value_hiding_chain(n: int, t: int, horizon: Round) -> Schedule:
    """The classic FloodSet worst case: a t-link value-hiding chain.

    Process 0 (holding the minimum proposal, by convention) crashes in
    round 1 delivering only to process 1; process 1 crashes in round 2
    delivering only to process 2; and so on.  The hidden value surfaces at
    exactly one new process per round, forcing FloodSet to flood for the
    full t + 1 rounds.  Use with strictly increasing proposals.
    """
    validate_system_size(n, t)
    builder = ScheduleBuilder(n, t, horizon)
    for index in range(t):
        builder.crash(index, index + 1, delivered_to=(index + 1,))
    return builder.build()


def block_crashes(
    n: int,
    t: int,
    horizon: Round,
    *,
    round_: Round = 1,
    count: int | None = None,
) -> Schedule:
    """A synchronous (non-serial) run: *count* processes crash in one round.

    Crashers deliver to nobody.  Useful for checking that algorithms do not
    secretly rely on the serial (one-crash-per-round) structure.
    """
    validate_system_size(n, t)
    f = t if count is None else count
    if f > t:
        raise ValueError(f"count={f} exceeds t={t}")
    builder = ScheduleBuilder(n, t, horizon)
    for pid in range(n - f, n):
        builder.crash(pid, round_, delivered_to=())
    return builder.build()


def coordinator_killer(
    n: int,
    t: int,
    horizon: Round,
    *,
    rounds_per_cycle: int,
    f: int | None = None,
) -> Schedule:
    """Crash each cycle's coordinator just before it can help.

    The rotating-coordinator baselines use coordinator c(ρ) = (ρ−1) mod n
    and ``rounds_per_cycle`` ES rounds per cycle ρ.  This schedule crashes
    coordinator p_{ρ−1} in the *first* round of cycle ρ, delivering to
    nobody, for ρ = 1..f — the adversary behind the Hurfin–Raynal 2t + 2
    (2 rounds/cycle) and Chandra–Toueg 3t + 3 (3 rounds/cycle) worst cases.
    """
    validate_system_size(n, t)
    f = t if f is None else f
    if f > t:
        raise ValueError(f"f={f} exceeds t={t}")
    builder = ScheduleBuilder(n, t, horizon)
    for cycle in range(1, f + 1):
        coordinator = (cycle - 1) % n
        first_round = rounds_per_cycle * (cycle - 1) + 1
        builder.crash(coordinator, first_round, delivered_to=())
    return builder.build()
