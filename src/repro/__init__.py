"""repro — a reproduction of Dutta & Guerraoui, "The inherent price of indulgence".

The paper (PODC 2002; Distributed Computing 18(1), 2005) proves that
consensus algorithms tolerating unreliable failure detection — *indulgent*
algorithms, formalized in the round-based eventually synchronous model ES —
need **t + 2** rounds to decide even in runs that happen to be synchronous,
one round more than the classic t + 1 bound of the synchronous model; and
it exhibits the matching algorithm A_{t+2}.

This package provides:

* a deterministic round-based simulation substrate for the SCS and ES
  models (:mod:`repro.model`, :mod:`repro.sim`);
* the paper's algorithms — A_{t+2}, its failure-free optimization, the ◇S
  transposition A_◇S, and A_{f+2} (:mod:`repro.core`);
* the published baselines they are measured against — FloodSet,
  FloodSetWS, Chandra–Toueg-style and Hurfin–Raynal-style rotating
  coordinators, the Mostéfaoui–Raynal leader-based algorithm
  (:mod:`repro.algorithms`);
* failure-detector simulation and property checking (:mod:`repro.detectors`);
* the lower-bound machinery — exhaustive serial-run enumeration, valency
  and bivalency computation, the Figure-1 five-run construction
  (:mod:`repro.lowerbound`);
* workload generators and analysis utilities (:mod:`repro.workloads`,
  :mod:`repro.analysis`);
* a batch execution engine — declarative case grids, seeded schedule
  families, parallel execution with serial-identical output
  (:mod:`repro.engine`, ``python -m repro sweep``).

Quickstart::

    from repro import ATt2, Schedule, run_algorithm

    schedule = Schedule.synchronous(n=5, t=2, horizon=10,
                                    crashes={0: (1, [1])})
    trace = run_algorithm(ATt2.factory(), schedule, proposals=[3, 1, 4, 1, 5])
    print(trace.decisions)              # everyone decides 1 ...
    print(trace.global_decision_round())  # ... by round t + 2 = 4
"""

from repro.algorithms import available_algorithms, get_factory, make_automata
from repro.algorithms.base import Automaton
from repro.algorithms.chandra_toueg import ChandraTouegES
from repro.algorithms.early_deciding import EarlyDecidingSCS
from repro.algorithms.floodset import FloodSet
from repro.algorithms.floodset_ws import FloodSetWS
from repro.algorithms.hurfin_raynal import HurfinRaynalES
from repro.algorithms.amr_leader import AMRLeaderES
from repro.core import ADiamondS, AFPlus2, ATt2, ATt2Optimized
from repro.errors import (
    AlgorithmError,
    ConsensusViolation,
    ModelViolation,
    ReproError,
    ScheduleError,
    SimulationError,
)
from repro.engine import (
    BatchResult,
    Case,
    GridSpec,
    expand_grid,
    run_batch,
)
from repro.model import CrashSpec, Message, Schedule, ScheduleBuilder
from repro.model.es import check_es, enforce_es, is_es
from repro.model.scs import check_scs, enforce_scs, is_scs
from repro.sim import (
    CompiledSchedule,
    LeanTrace,
    RoundRecord,
    Trace,
    compile_schedule,
    execute,
)
from repro.sim.kernel import run_algorithm
from repro.types import BOTTOM, is_bottom

__version__ = "1.0.0"

__all__ = [
    # algorithms
    "ATt2", "ATt2Optimized", "ADiamondS", "AFPlus2",
    "FloodSet", "FloodSetWS", "EarlyDecidingSCS",
    "ChandraTouegES", "HurfinRaynalES", "AMRLeaderES",
    "Automaton", "available_algorithms", "get_factory", "make_automata",
    # model
    "Schedule", "ScheduleBuilder", "CrashSpec", "Message",
    "check_es", "enforce_es", "is_es", "check_scs", "enforce_scs", "is_scs",
    # simulation
    "execute", "run_algorithm", "Trace", "LeanTrace", "RoundRecord",
    "CompiledSchedule", "compile_schedule",
    # batch engine
    "BatchResult", "Case", "GridSpec", "expand_grid", "run_batch",
    # values
    "BOTTOM", "is_bottom",
    # errors
    "ReproError", "ScheduleError", "ModelViolation", "SimulationError",
    "AlgorithmError", "ConsensusViolation",
    "__version__",
]
