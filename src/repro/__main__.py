"""Entry point for ``python -m repro``.

The ``__main__`` guard matters here: the batch engine's worker pool may
use the ``spawn`` start method on platforms without ``fork``, and spawned
workers re-import ``__main__`` — which must not re-run the CLI.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
