"""A_◇S — the ◇S transposition of A_{t+2} (paper, Section 5.1 / Figure 3).

The paper shows A_{t+2} transfers to the asynchronous round-based model
enriched with an eventually strong failure detector ◇S via two
modifications (Figure 3, replacing Figure 2's lines 6 and 15): in each
round a process waits for at least n − t messages *and* for a message from
every process its local ◇S module does not currently suspect.

Under the Section-4 simulation that this repository executes — the failure
detector output in round k is exactly the set of processes from which no
round-k message arrived in round k — that receive condition coincides with
ES's t-resilience guarantee, so A_◇S behaves like A_{t+2} driven by the
simulated detector.  What the class adds over :class:`~repro.core.att2.ATt2`
is the explicit ◇S interface: it records the simulated failure-detector
output round by round (:attr:`fd_history`), which the detector property
checkers consume, and defaults the underlying consensus C′ to the
Hurfin–Raynal-style ◇S algorithm, as suggested in the paper ("substitute C
by any ◇S-based consensus algorithm C′").

A_◇S retains fast decision — global decision at round t + 2 in synchronous
runs — because synchronous runs give strictly stronger guarantees than ◇S
asynchronous rounds (Section 5.1).  Its predecessor, the Hurfin–Raynal
algorithm, needs 2t + 2 rounds in its worst synchronous run (experiment E6).
"""

from __future__ import annotations

from repro.algorithms.base import AlgorithmFactory
from repro.algorithms.hurfin_raynal import HurfinRaynalES
from repro.core.att2 import ATt2
from repro.sim.bitset import interned_set
from repro.sim.view import RoundView
from repro.types import ProcessId, Round, Value


class ADiamondS(ATt2):
    """A_◇S: A_{t+2} over the simulated ◇S detector (Figure 3).

    Attributes:
        fd_history: per-round output of the simulated failure detector at
            this process — ``fd_history[k]`` is the set of processes
            suspected in round k (no round-k message received in round k).
    """

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        t: int,
        proposal: Value,
        underlying: AlgorithmFactory = HurfinRaynalES,
        allow_unsafe_resilience: bool = False,
    ):
        super().__init__(
            pid,
            n,
            t,
            proposal,
            underlying=underlying,
            allow_unsafe_resilience=allow_unsafe_resilience,
        )
        self.fd_history: dict[Round, frozenset[ProcessId]] = {}

    def round_deliver_view(self, k: Round, view: RoundView) -> None:
        # One mask operation off the view's absent mask; the detector
        # never suspects the process itself.  Interning means the n
        # processes' identical detector rows share one frozenset.
        self.fd_history[k] = interned_set(
            view.absent_mask & ~(1 << self.pid)
        )
        super().round_deliver_view(k, view)
