"""A_{t+2} optimized for failure-free runs (paper, Section 5.2 / Figure 4).

In practice failure-free runs dominate, and two rounds is the lower bound
for global decision in "well-behaved" runs (Keidar & Rajsbaum).  The
optimization inserts a check before round 2's ``compute()``:

* if a process receives round-2 messages **from all n processes, each with
  Halt = ∅**, round 1 was a complete suspicion-free exchange, so every
  round-2 estimate in the entire run equals the global minimum d — the
  process decides d immediately, announces DECIDE in round 3, and returns;
* otherwise, if every round-2 message it *did* receive has Halt = ∅, it
  pre-positions its fallback proposal ``vc`` on the unique circulating
  estimate.

The modification preserves all consensus properties and the t + 2 fast
decision (the paper argues this in Section 5.2; the exhaustive serial-run
tests verify it mechanically), and achieves a global decision at round 2 in
every failure-free synchronous run — reproduced as experiment E7.
"""

from __future__ import annotations

from repro.core.att2 import ATt2


class ATt2Optimized(ATt2):
    """A_{t+2} with the Figure-4 failure-free fast path enabled."""

    optimize_failure_free = True
