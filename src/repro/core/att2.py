"""A_{t+2} — the paper's matching consensus algorithm (Figure 2).

A_{t+2} solves consensus in ES for 0 < t < n/2 and satisfies **fast
decision**: in every synchronous run, any process that ever decides does so
by round t + 2 (Lemma 13) — matching the t + 2 lower bound of
Proposition 1.

Structure:

**Phase 1 (rounds 1 .. t+1).**  Processes flood ``(ESTIMATE, k, est,
Halt)``: ``est`` is the minimum proposal seen so far and ``Halt`` the set
of processes p_j such that p_i suspected p_j, or p_j suspected p_i, at some
earlier point.  Each round runs the paper's ``compute()`` (see
:mod:`repro.algorithms.suspicion`).  Phase 1 guarantees the **elimination
property** (Lemma 6): any two processes that complete it either hold the
same estimate or at least one of them has ``|Halt| > t`` — evidence of a
false suspicion, since in a synchronous run a process lands in someone's
Halt set only by crashing (Claim 13.1), and more than t processes cannot
crash.

**Phase 2 (round t+2).**  Each process computes its *new estimate*:
``nE = est`` if ``|Halt| <= t``, else ⊥, and floods ``(NEWESTIMATE, nE)``.
By elimination, at most one distinct non-⊥ value circulates.  A process
receiving only non-⊥ values decides that value, broadcasts DECIDE in round
t + 3, and returns.  Otherwise it falls back on an *underlying* indulgent
consensus C (any ◇P/◇S round-based algorithm transposed to ES; we default
to the Chandra–Toueg-style module), proposing a received non-⊥ value if
any, else its own proposal.  A DECIDE message received at any time makes a
process decide immediately.

The fast-decision property is independent of C's time complexity: in a
synchronous run no process ever detects ``|Halt| > t``, all new estimates
are non-⊥ and equal, and everyone decides at round t + 2.
"""

from __future__ import annotations

from repro.algorithms.base import AlgorithmFactory
from repro.algorithms.chandra_toueg import ChandraTouegES
from repro.algorithms.common import ConsensusAutomaton
from repro.algorithms.suspicion import ESTIMATE, EstimateState
from repro.sim.phase1_plane import PHASE1_ESTIMATE, Phase1Plane
from repro.sim.view import RoundView
from repro.types import (
    BOTTOM,
    Payload,
    ProcessId,
    Round,
    Value,
    is_bottom,
    validate_indulgent_resilience,
)

NEWESTIMATE = "NEWESTIMATE"


class ATt2(ConsensusAutomaton):
    """The A_{t+2} automaton (paper, Figure 2).

    Args:
        pid, n, t, proposal: standard automaton parameters; requires
            0 < t < n/2.
        underlying: factory for the underlying consensus module C invoked
            from round t + 3 when the fast path fails.  Defaults to the
            Chandra–Toueg-style ◇S algorithm transposed to ES.
        allow_unsafe_resilience: skip the 0 < t < n/2 check.  **For
            demonstrations only** — with t >= n/2 the algorithm is unsound
            (no indulgent algorithm can be sound there, which is the
            resilience price the paper recalls from Chandra & Toueg);
            experiment E10 uses this to reproduce the split-brain
            disagreement under an ES-legal partition.
    """

    #: Subclasses (Figure 4) flip this to enable the failure-free fast path.
    optimize_failure_free = False

    #: Phase 1 is EstimateState-backed end to end, so a run of A_{t+2}
    #: automata can share one batched suspicion plane (see
    #: :mod:`repro.sim.phase1_plane`).
    phase1_plane_protocol = PHASE1_ESTIMATE

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        t: int,
        proposal: Value,
        underlying: AlgorithmFactory = ChandraTouegES,
        allow_unsafe_resilience: bool = False,
    ):
        if not allow_unsafe_resilience:
            validate_indulgent_resilience(n, t)
        super().__init__(pid, n, t, proposal)
        self.state = EstimateState(pid=pid, n=n, est=proposal)
        self.new_estimate: Value | None = None
        self.vc: Value = proposal
        self._plane: Phase1Plane | None = None
        self._underlying_factory = underlying
        self._underlying = None
        self._offset = t + 2  # C's round r is ES round r + offset

    def bind_phase1_plane(self, plane: Phase1Plane) -> None:
        self._plane = plane

    # -- rounds ------------------------------------------------------------

    def round_payload(self, k: Round) -> Payload | None:
        if k <= self.t + 1:
            return self.state.payload(k)
        if k == self.t + 2:
            if self.new_estimate is None:
                # Beginning of round t+2 (Figure 2, line 10): a Halt set
                # larger than t proves a false suspicion occurred.
                detected_false_suspicion = len(self.state.halt) > self.t
                self.new_estimate = (
                    BOTTOM if detected_false_suspicion else self.state.est
                )
            return (NEWESTIMATE, k, self.new_estimate)
        return self._underlying_automaton().payload(k - self._offset)

    def round_deliver_view(self, k: Round, view: RoundView) -> None:
        if k <= self.t + 1:
            if (
                self.optimize_failure_free
                and k == 2
                and self._failure_free_fast_path(k, view)
            ):
                return
            if self._plane is not None:
                self._plane.compute_view(self.state, k, view)
            else:
                self.state.compute_view(k, view)
            return
        if k == self.t + 2:
            self._phase_two(k, view)
            return
        self._run_underlying(k, view)

    # -- phase 2 -------------------------------------------------------------

    def _phase_two(self, k: Round, view: RoundView) -> None:
        total = 0
        bottoms = 0
        best: Value = None
        have_best = False
        for _sender, payload in view.tagged(NEWESTIMATE):
            total += 1
            value = payload[2]
            if is_bottom(value):
                bottoms += 1
            elif not have_best or value < best:
                have_best = True
                best = value
        if total and not bottoms:
            # Only non-⊥ new estimates received; by elimination they are
            # all equal — decide (and announce in round t+3).
            self._decide(best, k)
            return
        if have_best:
            self.vc = best
        # else: vc keeps its current value (the proposal, or the round-2
        # assignment of the failure-free optimization).

    # -- underlying consensus C ------------------------------------------------

    def _underlying_automaton(self):
        if self._underlying is None:
            self._underlying = self._underlying_factory(
                self.pid, self.n, self.t, self.vc
            )
        return self._underlying

    def _run_underlying(self, k: Round, view: RoundView) -> None:
        # C's round r is ES round r + offset, so C receives this round's
        # delivery re-timestamped offset rounds earlier.  DECIDE messages
        # never reach here (the decide-adoption protocol consumed them
        # before round_deliver_view ran), and messages sent during C's
        # "negative" rounds are dropped by the shift — exactly the
        # forwarding filter of the message-based formulation.
        inner = self._underlying_automaton()
        inner.deliver_view(k - self._offset, view.shifted(self._offset))
        if inner.decided:
            self._decide(inner.decision, k)

    # -- figure 4 fast path (used by ATt2Optimized) ------------------------------

    def _failure_free_fast_path(self, k: Round, view: RoundView) -> bool:
        """Figure 4, inserted before ``compute()`` in round 2.

        Returns True iff the process decided (and round-2 ``compute()``
        must be skipped).  When the run's Phase-1 plane is mid-round,
        the (count, tainted, min-est) inputs come from its group-shared
        scan; otherwise one local single-pass fold over the tagged items
        computes them — no intermediate list builds on either path.
        """
        if self._plane is not None:
            stats = self._plane.round2_stats(k, view)
            if stats is not None:
                count, tainted, best = stats
                if tainted or not count:
                    return False
                if count == self.n:
                    self._decide(best, k)
                    return True
                self.vc = best
                return False
        count = 0
        best: Value = None
        for _sender, payload in view.tagged(ESTIMATE):
            if payload[3]:
                # A non-empty Halt payload: suspicion already visible,
                # the optimization does not apply.
                return False
            value = payload[2]
            if not count or value < best:
                best = value
            count += 1
        if not count:
            return False
        if count == self.n:
            # Complete, suspicion-free exchange: every round-2 message in
            # the run carries the global minimum — decide it.
            self._decide(best, k)
            return True
        # No suspicion visible, but not everyone was heard: pre-position
        # the fallback proposal on the (unique) circulating estimate.
        self.vc = best
        return False

    @classmethod
    def factory(
        cls,
        underlying: AlgorithmFactory = ChandraTouegES,
        *,
        allow_unsafe_resilience: bool = False,
    ):
        """A factory binding the underlying-consensus choice."""

        def build(pid: ProcessId, n: int, t: int, proposal: Value) -> "ATt2":
            return cls(
                pid,
                n,
                t,
                proposal,
                underlying=underlying,
                allow_unsafe_resilience=allow_unsafe_resilience,
            )

        build.__name__ = f"{cls.__name__}_factory"
        return build
