"""A_{t+2} — the paper's matching consensus algorithm (Figure 2).

A_{t+2} solves consensus in ES for 0 < t < n/2 and satisfies **fast
decision**: in every synchronous run, any process that ever decides does so
by round t + 2 (Lemma 13) — matching the t + 2 lower bound of
Proposition 1.

Structure:

**Phase 1 (rounds 1 .. t+1).**  Processes flood ``(ESTIMATE, k, est,
Halt)``: ``est`` is the minimum proposal seen so far and ``Halt`` the set
of processes p_j such that p_i suspected p_j, or p_j suspected p_i, at some
earlier point.  Each round runs the paper's ``compute()`` (see
:mod:`repro.algorithms.suspicion`).  Phase 1 guarantees the **elimination
property** (Lemma 6): any two processes that complete it either hold the
same estimate or at least one of them has ``|Halt| > t`` — evidence of a
false suspicion, since in a synchronous run a process lands in someone's
Halt set only by crashing (Claim 13.1), and more than t processes cannot
crash.

**Phase 2 (round t+2).**  Each process computes its *new estimate*:
``nE = est`` if ``|Halt| <= t``, else ⊥, and floods ``(NEWESTIMATE, nE)``.
By elimination, at most one distinct non-⊥ value circulates.  A process
receiving only non-⊥ values decides that value, broadcasts DECIDE in round
t + 3, and returns.  Otherwise it falls back on an *underlying* indulgent
consensus C (any ◇P/◇S round-based algorithm transposed to ES; we default
to the Chandra–Toueg-style module), proposing a received non-⊥ value if
any, else its own proposal.  A DECIDE message received at any time makes a
process decide immediately.

The fast-decision property is independent of C's time complexity: in a
synchronous run no process ever detects ``|Halt| > t``, all new estimates
are non-⊥ and equal, and everyone decides at round t + 2.
"""

from __future__ import annotations

from repro.algorithms.base import AlgorithmFactory
from repro.algorithms.chandra_toueg import ChandraTouegES
from repro.algorithms.common import ConsensusAutomaton
from repro.algorithms.suspicion import ESTIMATE, EstimateState
from repro.sim.view import RoundView
from repro.types import (
    BOTTOM,
    Payload,
    ProcessId,
    Round,
    Value,
    is_bottom,
    validate_indulgent_resilience,
)

NEWESTIMATE = "NEWESTIMATE"


class ATt2(ConsensusAutomaton):
    """The A_{t+2} automaton (paper, Figure 2).

    Args:
        pid, n, t, proposal: standard automaton parameters; requires
            0 < t < n/2.
        underlying: factory for the underlying consensus module C invoked
            from round t + 3 when the fast path fails.  Defaults to the
            Chandra–Toueg-style ◇S algorithm transposed to ES.
        allow_unsafe_resilience: skip the 0 < t < n/2 check.  **For
            demonstrations only** — with t >= n/2 the algorithm is unsound
            (no indulgent algorithm can be sound there, which is the
            resilience price the paper recalls from Chandra & Toueg);
            experiment E10 uses this to reproduce the split-brain
            disagreement under an ES-legal partition.
    """

    #: Subclasses (Figure 4) flip this to enable the failure-free fast path.
    optimize_failure_free = False

    def __init__(
        self,
        pid: ProcessId,
        n: int,
        t: int,
        proposal: Value,
        underlying: AlgorithmFactory = ChandraTouegES,
        allow_unsafe_resilience: bool = False,
    ):
        if not allow_unsafe_resilience:
            validate_indulgent_resilience(n, t)
        super().__init__(pid, n, t, proposal)
        self.state = EstimateState(pid=pid, n=n, est=proposal)
        self.new_estimate: Value | None = None
        self.vc: Value = proposal
        self._underlying_factory = underlying
        self._underlying = None
        self._offset = t + 2  # C's round r is ES round r + offset

    # -- rounds ------------------------------------------------------------

    def round_payload(self, k: Round) -> Payload | None:
        if k <= self.t + 1:
            return self.state.payload(k)
        if k == self.t + 2:
            if self.new_estimate is None:
                # Beginning of round t+2 (Figure 2, line 10): a Halt set
                # larger than t proves a false suspicion occurred.
                detected_false_suspicion = len(self.state.halt) > self.t
                self.new_estimate = (
                    BOTTOM if detected_false_suspicion else self.state.est
                )
            return (NEWESTIMATE, k, self.new_estimate)
        return self._underlying_automaton().payload(k - self._offset)

    def round_deliver_view(self, k: Round, view: RoundView) -> None:
        if k <= self.t + 1:
            if (
                self.optimize_failure_free
                and k == 2
                and self._failure_free_fast_path(k, view)
            ):
                return
            self.state.compute_view(k, view)
            return
        if k == self.t + 2:
            self._phase_two(k, view)
            return
        self._run_underlying(k, view)

    # -- phase 2 -------------------------------------------------------------

    def _phase_two(self, k: Round, view: RoundView) -> None:
        values = [
            payload[2] for _sender, payload in view.tagged(NEWESTIMATE)
        ]
        non_bottom = [v for v in values if not is_bottom(v)]
        if values and len(non_bottom) == len(values):
            # Only non-⊥ new estimates received; by elimination they are
            # all equal — decide (and announce in round t+3).
            self._decide(min(non_bottom), k)
            return
        if non_bottom:
            self.vc = min(non_bottom)
        # else: vc keeps its current value (the proposal, or the round-2
        # assignment of the failure-free optimization).

    # -- underlying consensus C ------------------------------------------------

    def _underlying_automaton(self):
        if self._underlying is None:
            self._underlying = self._underlying_factory(
                self.pid, self.n, self.t, self.vc
            )
        return self._underlying

    def _run_underlying(self, k: Round, view: RoundView) -> None:
        # C's round r is ES round r + offset, so C receives this round's
        # delivery re-timestamped offset rounds earlier.  DECIDE messages
        # never reach here (the decide-adoption protocol consumed them
        # before round_deliver_view ran), and messages sent during C's
        # "negative" rounds are dropped by the shift — exactly the
        # forwarding filter of the message-based formulation.
        inner = self._underlying_automaton()
        inner.deliver_view(k - self._offset, view.shifted(self._offset))
        if inner.decided:
            self._decide(inner.decision, k)

    # -- figure 4 fast path (used by ATt2Optimized) ------------------------------

    def _failure_free_fast_path(self, k: Round, view: RoundView) -> bool:
        """Figure 4, inserted before ``compute()`` in round 2.

        Returns True iff the process decided (and round-2 ``compute()``
        must be skipped).
        """
        current = view.tagged(ESTIMATE)
        empty = frozenset()
        if not all(payload[3] == empty for _sender, payload in current):
            return False
        if not current:
            return False
        ests = [payload[2] for _sender, payload in current]
        if len(current) == self.n:
            # Complete, suspicion-free exchange: every round-2 message in
            # the run carries the global minimum — decide it.
            self._decide(min(ests), k)
            return True
        # No suspicion visible, but not everyone was heard: pre-position
        # the fallback proposal on the (unique) circulating estimate.
        self.vc = min(ests)
        return False

    @classmethod
    def factory(
        cls,
        underlying: AlgorithmFactory = ChandraTouegES,
        *,
        allow_unsafe_resilience: bool = False,
    ):
        """A factory binding the underlying-consensus choice."""

        def build(pid: ProcessId, n: int, t: int, proposal: Value) -> "ATt2":
            return cls(
                pid,
                n,
                t,
                proposal,
                underlying=underlying,
                allow_unsafe_resilience=allow_unsafe_resilience,
            )

        build.__name__ = f"{cls.__name__}_factory"
        return build
