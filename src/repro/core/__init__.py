"""The paper's contribution: A_{t+2} and its variants.

* :class:`~repro.core.att2.ATt2` — the matching algorithm of Figure 2:
  consensus in ES deciding at round t + 2 in every synchronous run.
* :class:`~repro.core.att2_optimized.ATt2Optimized` — Figure 4: additionally
  decides at round 2 in failure-free synchronous runs.
* :class:`~repro.core.adiamond_s.ADiamondS` — Figure 3: the ◇S
  transposition A_◇S.
* :class:`~repro.core.afp2.AFPlus2` — Figure 5: the eventual-fast-decision
  algorithm A_{f+2} for t < n/3 (decides by round k + f + 2 in runs
  synchronous after round k with f later crashes).
"""

from repro.core.adiamond_s import ADiamondS
from repro.core.afp2 import AFPlus2
from repro.core.att2 import ATt2
from repro.core.att2_optimized import ATt2Optimized

__all__ = ["ATt2", "ATt2Optimized", "ADiamondS", "AFPlus2"]
