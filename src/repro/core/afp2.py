"""A_{f+2} — eventual fast decision for t < n/3 (paper, Section 6 / Figure 5).

A_{f+2} answers the *eventual* fast decision question: if a run of ES
becomes synchronous after round k and suffers f ≤ t crashes after round k,
how quickly must it decide?  The paper's (modified) lower bound says
k + f + 2; A_{f+2} matches it whenever t < n/3 (closing the gap for
n/3 ≤ t < n/2 is left open).

The algorithm is a one-round-per-step optimization of the leader-based
algorithm AMR of Mostéfaoui & Raynal (which needs k + 2f + 2; see
:mod:`repro.algorithms.amr_leader`), built on the t < n/3 counting
observation: in any collection of n values in which some value v appears
n − t times, every sub-collection of n − t values contains v at least
n − 2t times and any other value fewer than n − 2t times.

Per round k, each process p_i:

1. if it has received any DECIDE message (round k or earlier), decides
   that value;
2. otherwise forms ``msgSet`` from the n − t current-round ESTIMATE
   messages with the **lowest sender ids** among those received;
3. decides v if all of ``msgSet`` carries the same estimate v;
4. else adopts the (unique) estimate appearing ≥ n − 2t times, if any;
5. else adopts the minimum estimate in ``msgSet``.

Upon deciding it broadcasts the decision in the next round and returns.
Lemma 15 (fast eventual decision) and Lemma 16 (termination) are
reproduced as experiment E8.
"""

from __future__ import annotations

from repro.algorithms.amr_leader import lowest_sender_items
from repro.algorithms.common import ConsensusAutomaton
from repro.errors import AlgorithmError
from repro.sim.view import RoundView
from repro.types import Payload, ProcessId, Round, Value

AF_EST = "AF_EST"


class AFPlus2(ConsensusAutomaton):
    """The A_{f+2} automaton (paper, Figure 5; requires t < n/3)."""

    def __init__(self, pid: ProcessId, n: int, t: int, proposal: Value):
        super().__init__(pid, n, t, proposal)
        if 3 * t >= n:
            raise AlgorithmError(
                f"A_f+2 requires t < n/3 (got n={n}, t={t}); the paper "
                "leaves n/3 <= t < n/2 open"
            )
        self.est: Value = proposal

    def round_payload(self, k: Round) -> Payload | None:
        return (AF_EST, k, self.est)

    def round_deliver_view(self, k: Round, view: RoundView) -> None:
        current = view.tagged(AF_EST)
        if not current:
            return
        msg_set = lowest_sender_items(current, self.n - self.t)
        values = [payload[2] for _sender, payload in msg_set]
        distinct = set(values)
        if len(distinct) == 1 and len(msg_set) >= self.n - self.t:
            self._decide(values[0], k)
            return
        threshold = self.n - 2 * self.t
        dominant = [v for v in distinct if values.count(v) >= threshold]
        if dominant:
            # Unique when t < n/3: two values with n-2t votes each would
            # need 2(n-2t) <= n-t, i.e. n <= 3t.
            self.est = dominant[0]
        else:
            self.est = min(values)

    @classmethod
    def factory(cls):
        return cls
