"""Estimate/Halt bookkeeping shared by FloodSetWS and A_{t+2}.

Both algorithms flood ``(ESTIMATE, k, est, Halt)`` messages and run the
same per-round update — the paper's procedure ``compute()`` (Figure 2,
lines 33–35):

1. ``Halt_i`` gains every process p_j that p_i suspected this round (no
   round-k message received from p_j in round k) and every p_j whose
   message shows p_j suspected p_i in an earlier round (p_i ∈ Halt_j).
2. ``msgSet_i`` is the set of round-k ESTIMATE messages whose senders are
   not in the updated ``Halt_i``.
3. ``est_i`` becomes the minimum est value in ``msgSet_i``.

A process never suspects itself (the paper's assumption 2), and since
self-delivery is immediate, p_i's own message is always in ``msgSet_i`` —
so ``est_i`` is monotonically non-increasing and ``msgSet_i`` is never
empty.

The update is implemented as a *single batched pass* over the round's
ESTIMATE ``(sender, payload)`` items, entirely on int bitmasks: one loop
accumulates the arrived-sender mask and the suspecting-me mask *and*
folds the new estimate inline (a sender's est participates iff it is
outside the old halt mask and its suspecting-me bit is clear — both
known when its item is scanned; a duplicate-sender inbox that reveals a
suspicion only after folding that sender's earlier value triggers a
rare second-scan correction).  The suspected-now set is one
word-complement, and the Halt union is one ``|`` — the public ``halt``
frozenset is materialized (interned, so structurally equal rows share
one object) only when the row actually changed.  No per-step list
materialization, no ``frozenset(range(n))`` rebuild.  The fast entry
point is :meth:`EstimateState.compute_view`
(fed by the kernel's pre-bucketed :class:`~repro.sim.view.RoundView`);
:meth:`EstimateState.compute` keeps the message-tuple signature for
direct callers and runs the identical batched update after extracting
the items — the equivalence with the original two-pass formulation is
property-tested in ``tests/algorithms/test_suspicion.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.model.messages import Message
from repro.sim.bitset import full_mask, interned_set, mask_of
from repro.types import Payload, ProcessId, Round, Value

if TYPE_CHECKING:
    from repro.sim.view import RoundView

ESTIMATE = "ESTIMATE"


def estimate_payload(
    k: Round, est: Value, halt: frozenset[ProcessId]
) -> Payload:
    return (ESTIMATE, k, est, halt)


@dataclass
class EstimateState:
    """Mutable Phase-1 state of one process: (est, Halt).

    ``halt`` stays the public frozenset the payloads carry; the batched
    update works on its bitmask shadow (``_halt_mask``), kept in lock
    step, so the per-round set algebra is word operations.
    """

    pid: ProcessId
    n: int
    est: Value
    halt: frozenset[ProcessId] = frozenset()

    def __post_init__(self) -> None:
        self._halt_mask = mask_of(self.halt)

    def payload(self, k: Round) -> Payload:
        return estimate_payload(k, self.est, self.halt)

    def compute(self, k: Round, messages: tuple[Message, ...]) -> None:
        """The paper's ``compute()`` for round k, from a flat inbox.

        *messages* is the full round-k delivery; only current-round
        ESTIMATE messages participate (delayed estimates are stale and the
        suspicion semantics are defined on current-round receipt).
        """
        self._compute_items(
            (m.sender, m.payload)
            for m in messages
            if m.sent_round == k and m.tag == ESTIMATE
        )

    def compute_view(self, k: Round, view: "RoundView") -> None:
        """The paper's ``compute()`` for round k, from a round view.

        The kernel-facing fast path: the view already bucketed the
        current-round ESTIMATE items, so the update touches nothing
        else.
        """
        self._compute_items(view.tagged(ESTIMATE))

    def _compute_items(
        self, items: Iterable[tuple[ProcessId, Payload]]
    ) -> None:
        """The batched update over ESTIMATE ``(sender, payload)`` items."""
        pid = self.pid
        items = tuple(items)
        # One pass accumulates the arrived-sender and suspecting-me
        # masks AND folds the estimate: a sender's est participates iff
        # the sender is outside the old halt mask and its suspecting-me
        # bit is clear — both known when its item is scanned.
        # ``contributed`` remembers whose values the fold consumed, so
        # the one case the inline fold cannot see — a duplicate-sender
        # inbox revealing a suspicion only *after* that sender's earlier
        # item was folded — is detected below and triggers a refold.
        arrived = 0
        suspecting_me = 0
        contributed = 0
        halt_mask = self._halt_mask
        have_est = False
        est = None
        for sender, payload in items:
            bit = 1 << sender
            arrived |= bit
            if pid in payload[3]:
                suspecting_me |= bit
            elif not (halt_mask | suspecting_me) & bit:
                contributed |= bit
                value = payload[2]
                if not have_est or value < est:
                    have_est = True
                    est = value
        suspected_now = full_mask(self.n) & ~arrived & ~(1 << pid)
        additions = (suspected_now | suspecting_me) & ~halt_mask
        if additions:
            halt_mask |= additions
            self._halt_mask = halt_mask
            self.halt = interned_set(halt_mask)
        if suspecting_me & contributed:
            # Rare duplicate-sender correction: refold against the final
            # exclusion set (suspected-now senders have no items, so the
            # updated halt mask is exactly that set over item senders).
            have_est = False
            est = None
            for sender, payload in items:
                if (halt_mask >> sender) & 1:
                    continue
                value = payload[2]
                if not have_est or value < est:
                    have_est = True
                    est = value
        if have_est:
            self.est = est

    def msg_set_senders(
        self, k: Round, messages: tuple[Message, ...]
    ) -> frozenset[ProcessId]:
        """Senders of the current-round messages outside Halt (for checks)."""
        return frozenset(
            m.sender
            for m in messages
            if m.sent_round == k
            and m.tag == ESTIMATE
            and m.sender not in self.halt
        )
