"""Estimate/Halt bookkeeping shared by FloodSetWS and A_{t+2}.

Both algorithms flood ``(ESTIMATE, k, est, Halt)`` messages and run the
same per-round update — the paper's procedure ``compute()`` (Figure 2,
lines 33–35):

1. ``Halt_i`` gains every process p_j that p_i suspected this round (no
   round-k message received from p_j in round k) and every p_j whose
   message shows p_j suspected p_i in an earlier round (p_i ∈ Halt_j).
2. ``msgSet_i`` is the set of round-k ESTIMATE messages whose senders are
   not in the updated ``Halt_i``.
3. ``est_i`` becomes the minimum est value in ``msgSet_i``.

A process never suspects itself (the paper's assumption 2), and since
self-delivery is immediate, p_i's own message is always in ``msgSet_i`` —
so ``est_i`` is monotonically non-increasing and ``msgSet_i`` is never
empty.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.messages import Message
from repro.types import Payload, ProcessId, Round, Value

ESTIMATE = "ESTIMATE"


def estimate_payload(
    k: Round, est: Value, halt: frozenset[ProcessId]
) -> Payload:
    return (ESTIMATE, k, est, halt)


@dataclass
class EstimateState:
    """Mutable Phase-1 state of one process: (est, Halt)."""

    pid: ProcessId
    n: int
    est: Value
    halt: frozenset[ProcessId] = frozenset()

    def payload(self, k: Round) -> Payload:
        return estimate_payload(k, self.est, self.halt)

    def compute(self, k: Round, messages: tuple[Message, ...]) -> None:
        """The paper's ``compute()`` for round k.

        *messages* is the full round-k delivery; only current-round
        ESTIMATE messages participate (delayed estimates are stale and the
        suspicion semantics are defined on current-round receipt).
        """
        current = [
            m
            for m in messages
            if m.sent_round == k and m.tag == ESTIMATE
        ]
        senders = {m.sender for m in current}
        suspected_now = frozenset(range(self.n)) - senders - {self.pid}
        suspecting_me = frozenset(
            m.sender for m in current if self.pid in m.payload[3]
        )
        self.halt = self.halt | suspected_now | suspecting_me
        msg_set = [m for m in current if m.sender not in self.halt]
        if msg_set:
            self.est = min(m.payload[2] for m in msg_set)

    def msg_set_senders(
        self, k: Round, messages: tuple[Message, ...]
    ) -> frozenset[ProcessId]:
        """Senders of the current-round messages outside Halt (for checks)."""
        return frozenset(
            m.sender
            for m in messages
            if m.sent_round == k
            and m.tag == ESTIMATE
            and m.sender not in self.halt
        )
