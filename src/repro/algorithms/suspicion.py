"""Estimate/Halt bookkeeping shared by FloodSetWS and A_{t+2}.

Both algorithms flood ``(ESTIMATE, k, est, Halt)`` messages and run the
same per-round update — the paper's procedure ``compute()`` (Figure 2,
lines 33–35):

1. ``Halt_i`` gains every process p_j that p_i suspected this round (no
   round-k message received from p_j in round k) and every p_j whose
   message shows p_j suspected p_i in an earlier round (p_i ∈ Halt_j).
2. ``msgSet_i`` is the set of round-k ESTIMATE messages whose senders are
   not in the updated ``Halt_i``.
3. ``est_i`` becomes the minimum est value in ``msgSet_i``.

A process never suspects itself (the paper's assumption 2), and since
self-delivery is immediate, p_i's own message is always in ``msgSet_i`` —
so ``est_i`` is monotonically non-increasing and ``msgSet_i`` is never
empty.

The update is implemented as a *single batched pass* over the round's
ESTIMATE ``(sender, payload)`` items: one loop accumulates the sender
set and the suspecting-me additions, the absent set is one interned-set
difference, and the new estimate is folded in a second short scan of the
same items — no per-step list materialization, no ``frozenset(range(n))``
rebuild.  The fast entry point is :meth:`EstimateState.compute_view`
(fed by the kernel's pre-bucketed :class:`~repro.sim.view.RoundView`);
:meth:`EstimateState.compute` keeps the message-tuple signature for
direct callers and runs the identical batched update after extracting
the items — the equivalence with the original two-pass formulation is
property-tested in ``tests/algorithms/test_suspicion.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.model.messages import Message
from repro.sim.view import all_pids
from repro.types import Payload, ProcessId, Round, Value

if TYPE_CHECKING:
    from repro.sim.view import RoundView

ESTIMATE = "ESTIMATE"


def estimate_payload(
    k: Round, est: Value, halt: frozenset[ProcessId]
) -> Payload:
    return (ESTIMATE, k, est, halt)


@dataclass
class EstimateState:
    """Mutable Phase-1 state of one process: (est, Halt)."""

    pid: ProcessId
    n: int
    est: Value
    halt: frozenset[ProcessId] = frozenset()

    def payload(self, k: Round) -> Payload:
        return estimate_payload(k, self.est, self.halt)

    def compute(self, k: Round, messages: tuple[Message, ...]) -> None:
        """The paper's ``compute()`` for round k, from a flat inbox.

        *messages* is the full round-k delivery; only current-round
        ESTIMATE messages participate (delayed estimates are stale and the
        suspicion semantics are defined on current-round receipt).
        """
        self._compute_items(
            (m.sender, m.payload)
            for m in messages
            if m.sent_round == k and m.tag == ESTIMATE
        )

    def compute_view(self, k: Round, view: "RoundView") -> None:
        """The paper's ``compute()`` for round k, from a round view.

        The kernel-facing fast path: the view already bucketed the
        current-round ESTIMATE items, so the update touches nothing
        else.
        """
        self._compute_items(view.tagged(ESTIMATE))

    def _compute_items(
        self, items: Iterable[tuple[ProcessId, Payload]]
    ) -> None:
        """The batched update over ESTIMATE ``(sender, payload)`` items."""
        pid = self.pid
        halt = self.halt
        items = tuple(items)
        # Suspected now: everyone whose round-k message did not arrive
        # (never oneself; ``all_pids`` is interned per n).  Suspecting
        # me: every arriving sender whose Halt already contains pid.
        suspected_now = all_pids(self.n).difference(
            [sender for sender, _payload in items], (pid,)
        )
        suspecting_me = {
            sender for sender, payload in items if pid in payload[3]
        }
        additions = (suspected_now | suspecting_me) - halt
        if additions:
            halt = halt | additions
            self.halt = halt
        msg_set = [
            payload[2]
            for sender, payload in items
            if sender not in halt
        ]
        if msg_set:
            self.est = min(msg_set)

    def msg_set_senders(
        self, k: Round, messages: tuple[Message, ...]
    ) -> frozenset[ProcessId]:
        """Senders of the current-round messages outside Halt (for checks)."""
        return frozenset(
            m.sender
            for m in messages
            if m.sent_round == k
            and m.tag == ESTIMATE
            and m.sender not in self.halt
        )
