"""FloodSetWS — consensus with a perfect failure detector in t + 1 rounds.

The algorithm of Charron-Bost, Guerraoui & Schiper (DSN 2000) that the
paper cites as the ancestor of A_{t+2}: FloodSet "With Suspicions".
Processes flood estimates together with their ``Halt`` sets (who suspected
whom) for t + 1 rounds and decide their estimate at the end of round t + 1.

With a *perfect* failure detector — equivalently, in synchronous runs,
where every suspicion is caused by a real crash — the Halt mechanism only
ever excludes crashed processes, the estimates converge by round t + 1
exactly as in FloodSet, and every run globally decides at round t + 1.

Under *unreliable* failure detection the algorithm is no longer safe: false
suspicions can leave two processes with different estimates at round t + 1.
A_{t+2} (:mod:`repro.core.att2`) is precisely this algorithm plus one extra
round to detect that situation — the tests and benches use FloodSetWS to
demonstrate the failure mode the extra round repairs.
"""

from __future__ import annotations

from repro.algorithms.common import ConsensusAutomaton
from repro.algorithms.suspicion import EstimateState
from repro.sim.phase1_plane import PHASE1_ESTIMATE, Phase1Plane
from repro.sim.view import RoundView
from repro.types import Payload, ProcessId, Round, Value


class FloodSetWS(ConsensusAutomaton):
    """FloodSetWS automaton (safe in SCS / under P only)."""

    announce_decision = False

    #: Every round is an EstimateState ``compute()`` — the whole run
    #: batches onto one suspicion plane (see
    #: :mod:`repro.sim.phase1_plane`).
    phase1_plane_protocol = PHASE1_ESTIMATE

    def __init__(self, pid: ProcessId, n: int, t: int, proposal: Value):
        super().__init__(pid, n, t, proposal)
        self.state = EstimateState(pid=pid, n=n, est=proposal)
        self._plane: Phase1Plane | None = None

    def bind_phase1_plane(self, plane: Phase1Plane) -> None:
        self._plane = plane

    def round_payload(self, k: Round) -> Payload | None:
        return self.state.payload(k)

    def round_deliver_view(self, k: Round, view: RoundView) -> None:
        if self._plane is not None:
            self._plane.compute_view(self.state, k, view)
        else:
            self.state.compute_view(k, view)
        if k == self.t + 1:
            self._decide(self.state.est, k)

    @classmethod
    def factory(cls):
        return cls
