"""A Chandra–Toueg-style ◇S rotating-coordinator consensus, transposed to ES.

This is the paper's "underlying consensus algorithm C" (Figure 2 assumes
"any round-based ◇P or ◇S consensus algorithm, e.g. the one based on ◇S in
[Chandra & Toueg 1996], transposed to the ES model").  The transposition
follows the paper's Section 4: a process suspects exactly the processes
from which it received no current-round message.

Structure — three ES rounds per *cycle* ρ with coordinator c(ρ) = (ρ−1) mod n:

1. **Estimate round** (round 3ρ−2): every process sends ``(CT_EST, ρ, est,
   ts)``; the coordinator records what it receives.
2. **Proposal round** (round 3ρ−1): the coordinator picks the estimate
   with the highest timestamp among the ≥ n−t estimates received (ties
   broken by lowest sender id) and broadcasts ``(CT_PROP, ρ, v)``.
3. **Ack round** (round 3ρ): a process that received the proposal adopts
   it (est ← v, ts ← ρ) and sends ``(CT_ACK, ρ, v)``; otherwise it sends
   ``(CT_NACK, ρ)``.  A process receiving acks from a majority decides v.

Safety is the classic locking argument: a decision at cycle ρ implies a
majority adopted (v, ρ); every later coordinator reads ≥ n−t > n/2
estimates, so its highest timestamp is ≥ ρ and carries v.  Termination in
ES: after the synchrony round, the first cycle with a correct coordinator
makes everyone decide.

In worst-case synchronous runs (coordinators crashing one per cycle) the
algorithm needs **3t + 3** rounds for a global decision — one of the data
points in the price-of-indulgence comparison (E5).
"""

from __future__ import annotations

from repro.algorithms.common import ConsensusAutomaton
from repro.sim.view import RoundView
from repro.types import Payload, ProcessId, Round, Value

CT_EST = "CT_EST"
CT_PROP = "CT_PROP"
CT_NACK = "CT_NACK"
CT_ACK = "CT_ACK"

ROUNDS_PER_CYCLE = 3


def cycle_of(k: Round) -> tuple[int, int]:
    """Map an ES round to (cycle, phase) with phase in {1, 2, 3}."""
    cycle, phase = divmod(k - 1, ROUNDS_PER_CYCLE)
    return cycle + 1, phase + 1


class ChandraTouegES(ConsensusAutomaton):
    """Rotating-coordinator ◇S consensus in ES (3 rounds per cycle)."""

    def __init__(self, pid: ProcessId, n: int, t: int, proposal: Value):
        super().__init__(pid, n, t, proposal)
        self.est: Value = proposal
        self.ts: int = 0
        self._collected: dict[ProcessId, tuple[Value, int]] = {}
        self._proposal_seen: Value | None = None

    @staticmethod
    def coordinator(cycle: int, n: int) -> ProcessId:
        return (cycle - 1) % n

    def round_payload(self, k: Round) -> Payload | None:
        cycle, phase = cycle_of(k)
        if phase == 1:
            return (CT_EST, cycle, self.est, self.ts)
        if phase == 2:
            if self.pid != self.coordinator(cycle, self.n):
                return None
            if len(self._collected) < self.n - self.t:
                return None
            # Highest timestamp wins; ties broken by lowest sender id for
            # determinism.
            best_sender = max(
                self._collected,
                key=lambda p: (self._collected[p][1], -p),
            )
            return (CT_PROP, cycle, self._collected[best_sender][0])
        if self._proposal_seen is not None:
            return (CT_ACK, cycle, self._proposal_seen)
        return (CT_NACK, cycle)

    def round_deliver_view(self, k: Round, view: RoundView) -> None:
        cycle, phase = cycle_of(k)
        if phase == 1:
            self._collected = {}
            self._proposal_seen = None
            if self.pid == self.coordinator(cycle, self.n):
                for sender, payload in view.tagged(CT_EST):
                    if payload[1] == cycle:
                        self._collected[sender] = (payload[2], payload[3])
        elif phase == 2:
            coordinator = self.coordinator(cycle, self.n)
            for sender, payload in view.tagged(CT_PROP):
                if sender == coordinator and payload[1] == cycle:
                    self._proposal_seen = payload[2]
                    self.est = payload[2]
                    self.ts = cycle
        else:
            acks = [
                payload
                for _sender, payload in view.tagged(CT_ACK)
                if payload[1] == cycle
            ]
            if len(acks) > self.n // 2:
                self._decide(acks[0][2], k)

    @classmethod
    def factory(cls):
        return cls
