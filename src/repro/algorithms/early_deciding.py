"""Early-deciding uniform consensus in SCS — min(f + 2, t + 1) rounds.

Context for Section 6 of the paper: in SCS, uniform consensus can decide by
round f + 2 in runs with f < t − 1 crashes (Charron-Bost & Schiper; Keidar
& Rajsbaum), and by t + 1 always.  The paper's corollary shows the
*indulgent* analogue costs f + 2 in ES — so early decision is where the
synchronous and indulgent worlds meet: both pay f + 2 for 0 < f.

Algorithm (FloodSet plus stable-round detection): every process floods the
set W of values seen, and tracks ``absent_k`` — the processes from which no
round-k message arrived.  Since suspicions in SCS are accurate,
``absent_{k-1} == absent_k`` means round k was *clean for this process*: it
heard from every process it heard from before, so its W already contains
everything any process alive at the start of round k knew.  It then decides
``min(W)`` and announces.  With f crashes at most f of the first f + 2
rounds can be dirty, so some round among 2..f+2 is stable and decision
happens by round f + 2; the unconditional FloodSet decision at t + 1 caps
the worst case.

The exhaustive serial-run checker (E9) verifies uniform agreement for this
rule over every serial schedule for small (n, t).
"""

from __future__ import annotations

from repro.algorithms.common import ConsensusAutomaton
from repro.sim.view import RoundView, all_pids
from repro.types import Payload, ProcessId, Round, Value

EFLOOD = "EFLOOD"


class EarlyDecidingSCS(ConsensusAutomaton):
    """FloodSet with early decision at the first stable round (>= 2)."""

    def __init__(self, pid: ProcessId, n: int, t: int, proposal: Value):
        super().__init__(pid, n, t, proposal)
        self.known: frozenset[Value] = frozenset({proposal})
        self._absent_previous: frozenset[ProcessId] | None = None

    def round_payload(self, k: Round) -> Payload | None:
        return (EFLOOD, k, self.known)

    def round_deliver_view(self, k: Round, view: RoundView) -> None:
        current = view.tagged(EFLOOD)
        union = set(self.known)
        senders = set()
        for sender, payload in current:
            senders.add(sender)
            union.update(payload[2])
        self.known = frozenset(union)
        absent = all_pids(self.n).difference(senders, (self.pid,))
        stable = (
            self._absent_previous is not None
            and absent == self._absent_previous
        )
        self._absent_previous = absent
        if stable or k == self.t + 1:
            self._decide(min(self.known), k)

    @classmethod
    def factory(cls):
        return cls
