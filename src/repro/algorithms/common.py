"""Common behaviour shared by all consensus automata.

:class:`ConsensusAutomaton` layers the universal decide/announce/halt
protocol over :class:`~repro.algorithms.base.Automaton`:

* any received ``("DECIDE", v)`` message — current-round or delayed —
  makes the process decide v;
* in the round after deciding, the process broadcasts ``("DECIDE", v)``
  once (if :attr:`announce_decision` is set) and then *returns* (halts).

This matches the paper's Phase-2 convention for A_{t+2} ("in round t+3,
p_i sends a DECIDE message with the decision value to other processes and
returns") and the standard decision-flooding of the rotating-coordinator
baselines.  Algorithms implement :meth:`round_payload` and
:meth:`round_deliver` and never deal with DECIDE plumbing themselves.
"""

from __future__ import annotations

from abc import abstractmethod

from repro.algorithms.base import Automaton
from repro.model.messages import Message
from repro.types import Payload, Round, Value

DECIDE = "DECIDE"


def decide_payload(value: Value) -> Payload:
    return (DECIDE, value)


def is_decide(message: Message) -> bool:
    payload = message.payload
    return isinstance(payload, tuple) and bool(payload) and payload[0] == DECIDE


class ConsensusAutomaton(Automaton):
    """Base class handling DECIDE flooding and post-decision halting.

    Attributes:
        announce_decision: if True (default), broadcast one DECIDE message
            in the round after deciding, then halt.  If False, halt
            immediately after deciding (used by FloodSet, where all correct
            processes decide simultaneously and announcements are
            redundant).
        relay_decision: if True (default), a process that *adopted* its
            decision from a received DECIDE message re-broadcasts it once
            before halting.  Relaying shortens decision latency when the
            original announcement is delayed to some receivers; setting
            this to False isolates that effect (the ablation in
            benchmarks/bench_ablation.py).
    """

    announce_decision: bool = True
    relay_decision: bool = True

    # -- kernel-facing wrappers ---------------------------------------------

    def payload(self, k: Round) -> Payload | None:
        if self.decided:
            return decide_payload(self.decision)
        return self.round_payload(k)

    def deliver(self, k: Round, messages: tuple[Message, ...]) -> None:
        if self.decided:
            # The DECIDE broadcast for this round went out in the send
            # phase; the invocation now returns.
            self._halt()
            return
        adopted = False
        for message in messages:
            if is_decide(message):
                self._decide(message.payload[1], k)
                adopted = True
        if self.decided:
            if not self.announce_decision or (
                adopted and not self.relay_decision
            ):
                self._halt()
            return
        self.round_deliver(k, messages)
        if self.decided and not self.announce_decision:
            self._halt()

    # -- algorithm-specific hooks ---------------------------------------------

    @abstractmethod
    def round_payload(self, k: Round) -> Payload | None:
        """Payload for round *k*; called only while undecided."""

    @abstractmethod
    def round_deliver(self, k: Round, messages: tuple[Message, ...]) -> None:
        """Receive phase for round *k*; called only while undecided.

        *messages* still contains any DECIDE messages (already acted on);
        implementations normally filter to their own tags.
        """
