"""Common behaviour shared by all consensus automata.

:class:`ConsensusAutomaton` layers the universal decide/announce/halt
protocol over :class:`~repro.algorithms.base.Automaton`:

* any received ``("DECIDE", v)`` message — current-round or delayed —
  makes the process decide v;
* in the round after deciding, the process broadcasts ``("DECIDE", v)``
  once (if :attr:`announce_decision` is set) and then *returns* (halts).

This matches the paper's Phase-2 convention for A_{t+2} ("in round t+3,
p_i sends a DECIDE message with the decision value to other processes and
returns") and the standard decision-flooding of the rotating-coordinator
baselines.  Algorithms implement :meth:`round_payload` and
:meth:`round_deliver_view` and never deal with DECIDE plumbing themselves.

The protocol itself runs on :class:`~repro.sim.view.RoundView`\\ s: the
view's precomputed ``decides`` tuple replaces the full-inbox DECIDE scan,
and the algorithm hook receives the structured view.  The legacy
message-tuple entry points remain as bridges — a direct
``deliver(k, messages)`` call (tests, out-of-tree drivers) builds a view
and lands in exactly the same code path, and an old-style subclass that
only overrides :meth:`round_deliver` still works through the default
:meth:`round_deliver_view`.
"""

from __future__ import annotations

from abc import abstractmethod

from repro.algorithms.base import Automaton, legacy_hook_wins
from repro.errors import AlgorithmError
from repro.model.messages import Message
from repro.sim.view import RoundView
from repro.types import Payload, Round, Value

DECIDE = "DECIDE"


def decide_payload(value: Value) -> Payload:
    return (DECIDE, value)


def is_decide(message: Message) -> bool:
    payload = message.payload
    return isinstance(payload, tuple) and bool(payload) and payload[0] == DECIDE


_ROUND_HOOK_CACHE: dict[type, bool] = {}


def _legacy_round_hook_wins(cls: type) -> bool:
    """True when ``cls``'s most-derived round hook is the legacy one.

    The :func:`repro.algorithms.base.legacy_hook_wins` rule applied to
    the ``round_deliver``/``round_deliver_view`` pair.  This is what
    keeps pre-view subclasses of *ported* algorithms working: e.g. an
    out-of-tree ``class MyFloodSet(FloodSet)`` overriding only
    ``round_deliver`` must run its override, not FloodSet's inherited
    ``round_deliver_view`` — a plain identity check against the
    ConsensusAutomaton default cannot see that, because the ancestor's
    view hook shadows it.
    """
    return legacy_hook_wins(
        cls, ConsensusAutomaton, "round_deliver_view", "round_deliver",
        _ROUND_HOOK_CACHE,
    )


class ConsensusAutomaton(Automaton):
    """Base class handling DECIDE flooding and post-decision halting.

    Attributes:
        announce_decision: if True (default), broadcast one DECIDE message
            in the round after deciding, then halt.  If False, halt
            immediately after deciding (used by FloodSet, where all correct
            processes decide simultaneously and announcements are
            redundant).
        relay_decision: if True (default), a process that *adopted* its
            decision from a received DECIDE message re-broadcasts it once
            before halting.  Relaying shortens decision latency when the
            original announcement is delayed to some receivers; setting
            this to False isolates that effect (the ablation in
            benchmarks/bench_ablation.py).
    """

    announce_decision: bool = True
    relay_decision: bool = True

    # -- kernel-facing wrappers ---------------------------------------------

    def payload(self, k: Round) -> Payload | None:
        if self.decided:
            return decide_payload(self.decision)
        return self.round_payload(k)

    def deliver_view(self, k: Round, view: RoundView) -> None:
        if type(self).deliver is not ConsensusAutomaton.deliver:
            # An old-style subclass took over the whole receive phase —
            # the pre-view kernel called ``deliver`` directly, so that
            # override, not the decide protocol, defines its behavior.
            self.deliver(k, view.messages)
            return
        self._deliver_protocol(k, view)

    def deliver(self, k: Round, messages: tuple[Message, ...]) -> None:
        # Legacy entry point: structure the flat tuple and run the one
        # protocol implementation.  ``from_messages`` preserves the
        # caller's message order, so hand-built test inboxes behave as
        # they always did.
        view = RoundView.from_messages(k, self.pid, self.n, messages)
        if type(self).deliver_view is not ConsensusAutomaton.deliver_view:
            # The mirror of deliver_view's check above: a subclass that
            # took over the receive phase at the view level defines the
            # behavior of direct legacy calls too.
            self.deliver_view(k, view)
            return
        self._deliver_protocol(k, view)

    def _deliver_protocol(self, k: Round, view: RoundView) -> None:
        """The universal decide/announce/halt protocol, on a view."""
        if self.decided:
            # The DECIDE broadcast for this round went out in the send
            # phase; the invocation now returns.
            self._halt()
            return
        adopted = False
        for payload in view.decides:
            self._decide(payload[1], k)
            adopted = True
        if self.decided:
            if not self.announce_decision or (
                adopted and not self.relay_decision
            ):
                self._halt()
            return
        if _legacy_round_hook_wins(type(self)):
            self.round_deliver(k, view.messages)
        else:
            self.round_deliver_view(k, view)
        if self.decided and not self.announce_decision:
            self._halt()

    # -- algorithm-specific hooks ---------------------------------------------

    @abstractmethod
    def round_payload(self, k: Round) -> Payload | None:
        """Payload for round *k*; called only while undecided."""

    def round_deliver_view(self, k: Round, view: RoundView) -> None:
        """Receive phase for round *k*; called only while undecided.

        *view* still carries any DECIDE messages (already acted on);
        implementations normally consume only their own tag buckets.

        The default falls back to the legacy :meth:`round_deliver` for
        old-style subclasses.  A subclass must override at least one of
        the two hooks; the most-derived override wins the dispatch (a
        class defining both prefers the view hook, which skips
        flat-tuple materialization on the kernel's hot path).
        """
        if type(self).round_deliver is ConsensusAutomaton.round_deliver:
            raise AlgorithmError(
                f"{type(self).__name__} implements neither "
                f"round_deliver_view nor round_deliver"
            )
        self.round_deliver(k, view.messages)

    def round_deliver(self, k: Round, messages: tuple[Message, ...]) -> None:
        """Legacy message-tuple receive hook (see :meth:`round_deliver_view`).

        Kept so direct callers of old-style hooks keep working; the
        default bridges to the view implementation.
        """
        if (
            type(self).round_deliver_view
            is ConsensusAutomaton.round_deliver_view
        ):
            raise AlgorithmError(
                f"{type(self).__name__} implements neither "
                f"round_deliver_view nor round_deliver"
            )
        self.round_deliver_view(
            k, RoundView.from_messages(k, self.pid, self.n, messages)
        )
