"""A Hurfin–Raynal-style ◇S consensus — the paper's 2t + 2 baseline.

Hurfin & Raynal (Distributed Computing 1999) gave "a simple and fast
asynchronous consensus protocol based on a weak failure detector" with two
communication steps per coordinator.  The paper singles it out as the most
efficient indulgent algorithm previously known — and notes it has a
synchronous run requiring **2t + 2** rounds for a global decision, against
which A_{t+2}'s t + 2 is the improvement.

Transposition to ES, two rounds per cycle ρ with coordinator
c(ρ) = (ρ−1) mod n:

1. **Proposal round** (round 2ρ−1): the coordinator broadcasts
   ``(HR_PROP, ρ, est)``; everyone else sends dummies.
2. **Echo round** (round 2ρ): a process that received the proposal v sends
   ``(HR_ACK, ρ, v)``, otherwise ``(HR_NACK, ρ)``.  On reception: any ack
   makes the process adopt v (est ← v); acks from ≥ n−t processes make it
   decide v.

Safety: only the coordinator's single value circulates within a cycle, so
all acks of a cycle carry the same v.  If someone decides v at cycle ρ it
saw n−t acks; any process completing the cycle receives ≥ n−t round-2ρ
messages, which must include at least (n−t) + (n−t) − n = n − 2t ≥ 1 ack —
so every survivor adopts v before the next cycle, and later coordinators
can only propose v.

Worst case in synchronous runs: crash coordinators p_0 … p_{t−1} one per
cycle before they manage to propose; cycle t + 1 then succeeds, deciding
at round 2(t + 1) = **2t + 2** (reproduced in E5/E6).
"""

from __future__ import annotations

from repro.algorithms.common import ConsensusAutomaton
from repro.sim.view import RoundView
from repro.types import Payload, ProcessId, Round, Value

HR_PROP = "HR_PROP"
HR_ACK = "HR_ACK"
HR_NACK = "HR_NACK"

ROUNDS_PER_CYCLE = 2


def cycle_of(k: Round) -> tuple[int, int]:
    """Map an ES round to (cycle, phase) with phase in {1, 2}."""
    cycle, phase = divmod(k - 1, ROUNDS_PER_CYCLE)
    return cycle + 1, phase + 1


class HurfinRaynalES(ConsensusAutomaton):
    """Two-phase rotating-coordinator ◇S consensus in ES."""

    def __init__(self, pid: ProcessId, n: int, t: int, proposal: Value):
        super().__init__(pid, n, t, proposal)
        self.est: Value = proposal
        self._proposal_seen: Value | None = None

    @staticmethod
    def coordinator(cycle: int, n: int) -> ProcessId:
        return (cycle - 1) % n

    def round_payload(self, k: Round) -> Payload | None:
        cycle, phase = cycle_of(k)
        if phase == 1:
            if self.pid == self.coordinator(cycle, self.n):
                return (HR_PROP, cycle, self.est)
            return None
        if self._proposal_seen is not None:
            return (HR_ACK, cycle, self._proposal_seen)
        return (HR_NACK, cycle)

    def round_deliver_view(self, k: Round, view: RoundView) -> None:
        cycle, phase = cycle_of(k)
        if phase == 1:
            coordinator = self.coordinator(cycle, self.n)
            self._proposal_seen = None
            for sender, payload in view.tagged(HR_PROP):
                if sender == coordinator and payload[1] == cycle:
                    self._proposal_seen = payload[2]
        else:
            acks = [
                payload
                for _sender, payload in view.tagged(HR_ACK)
                if payload[1] == cycle
            ]
            if acks:
                self.est = acks[0][2]
            if len(acks) >= self.n - self.t:
                self._decide(acks[0][2], k)

    @classmethod
    def factory(cls):
        return cls
