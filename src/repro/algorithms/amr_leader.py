"""The Mostéfaoui–Raynal leader-based consensus — the k + 2f + 2 baseline.

Section 6 of the paper derives A_{f+2} as "an optimized version of the
second leader-based algorithm of [Mostéfaoui & Raynal 2001]", denoted AMR,
and notes (footnote 10) that a run that becomes synchronous after round k
with f later crashes takes AMR **k + 2f + 2** rounds to decide — two
communication steps per leader generation — whereas A_{f+2} needs only
k + f + 2.

Footnote 10 also supplies the translation of the eventual-leader primitive
to ES, which we use verbatim: in every round, each process elects as leader
the process with the *minimum id among the senders of the messages it
received in that round*.

Structure — two ES rounds per cycle ρ, assuming t < n/3:

1. **Leader round** (round 2ρ−1): every process sends ``(AMR_EST, ρ,
   est)``; each receiver adopts the estimate of the minimum-id sender as
   its *candidate*.
2. **Vote round** (round 2ρ): every process sends ``(AMR_CAND, ρ,
   cand)``.  Among the n−t votes with the lowest sender ids: if all carry
   the same v, decide v; else if some v appears ≥ n−2t times, adopt est ←
   v; else est ← the minimum vote.

Safety uses the paper's t < n/3 counting observation: if some process sees
n−t identical votes v, every other process's n−t votes contain v at least
n−2t times and any other value fewer than n−2t times, so every survivor
adopts v.
"""

from __future__ import annotations

from repro.algorithms.common import ConsensusAutomaton
from repro.errors import AlgorithmError
from repro.sim.view import RoundView
from repro.types import Payload, ProcessId, Round, Value

AMR_EST = "AMR_EST"
AMR_CAND = "AMR_CAND"

ROUNDS_PER_CYCLE = 2


def cycle_of(k: Round) -> tuple[int, int]:
    cycle, phase = divmod(k - 1, ROUNDS_PER_CYCLE)
    return cycle + 1, phase + 1


def lowest_sender_items(
    items, quota: int
) -> list[tuple[ProcessId, Payload]]:
    """The *quota* ``(sender, payload)`` items with the lowest sender
    ids (paper, Figure 5).

    Kernel-built views arrive ascending by sender already, so the sort
    is a near-free stability pass; it stays for hand-ordered inboxes
    reaching the ported algorithms through the legacy bridges.
    """
    return sorted(items, key=lambda item: item[0])[:quota]


class AMRLeaderES(ConsensusAutomaton):
    """Two-step leader-based consensus (requires t < n/3)."""

    def __init__(self, pid: ProcessId, n: int, t: int, proposal: Value):
        super().__init__(pid, n, t, proposal)
        if 3 * t >= n:
            raise AlgorithmError(
                f"AMR requires t < n/3 (got n={n}, t={t})"
            )
        self.est: Value = proposal
        self._candidate: Value = proposal

    def round_payload(self, k: Round) -> Payload | None:
        cycle, phase = cycle_of(k)
        if phase == 1:
            return (AMR_EST, cycle, self.est)
        return (AMR_CAND, cycle, self._candidate)

    def round_deliver_view(self, k: Round, view: RoundView) -> None:
        cycle, phase = cycle_of(k)
        current = [
            item
            for item in view.tagged(AMR_EST if phase == 1 else AMR_CAND)
            if item[1][1] == cycle
        ]
        if not current:
            return
        if phase == 1:
            _leader, payload = min(current, key=lambda item: item[0])
            self._candidate = payload[2]
            return
        votes = lowest_sender_items(current, self.n - self.t)
        values = [payload[2] for _sender, payload in votes]
        distinct = set(values)
        if len(distinct) == 1 and len(votes) >= self.n - self.t:
            self._decide(values[0], k)
            return
        threshold = self.n - 2 * self.t
        dominant = [v for v in distinct if values.count(v) >= threshold]
        if dominant:
            # At most one value can reach n-2t votes when t < n/3.
            self.est = dominant[0]
        else:
            self.est = min(values)

    @classmethod
    def factory(cls):
        return cls
