"""FloodSet — consensus in the synchronous model SCS in t + 1 rounds.

The classic algorithm (Lynch 1996, Section 6.2): every process floods the
set W of proposal values it has seen for t + 1 rounds, then decides
``min(W)``.  With at most t crashes, some round among the first t + 1 is
failure-free, after which all W sets are equal; hence agreement, and every
run achieves a global decision at round t + 1 — matching the t + 1 lower
bound for consensus in SCS.

The paper uses FloodSet as the synchronous yardstick: indulgence costs
exactly one extra round on top of FloodSet's t + 1.
"""

from __future__ import annotations

from repro.algorithms.common import ConsensusAutomaton
from repro.sim.bitset import intern_values
from repro.sim.view import RoundView
from repro.types import Payload, ProcessId, Round, Value

FLOOD = "FLOOD"


class FloodSet(ConsensusAutomaton):
    """FloodSet automaton for SCS.

    Decides ``min(W)`` at the end of round t + 1 and halts immediately;
    announcements are unnecessary because every correct process decides in
    the same round.
    """

    announce_decision = False

    def __init__(self, pid: ProcessId, n: int, t: int, proposal: Value):
        super().__init__(pid, n, t, proposal)
        self.known: frozenset[Value] = intern_values(frozenset({proposal}))

    @property
    def decision_round_bound(self) -> Round:
        return self.t + 1

    def round_payload(self, k: Round) -> Payload | None:
        return (FLOOD, k, self.known)

    def round_deliver_view(self, k: Round, view: RoundView) -> None:
        # W sets converge within a couple of rounds, after which every
        # union is a no-op: keep the existing (interned) frozenset when
        # nothing new arrived, and intern grown sets so all n processes'
        # equal W sets are one shared object, not n rebuilt copies.
        known = self.known
        union = set(known)
        for _sender, payload in view.tagged(FLOOD):
            values = payload[2]
            if values is not known:
                union.update(values)
        if len(union) != len(known):
            self.known = intern_values(frozenset(union))
        if k == self.t + 1:
            self._decide(min(self.known), k)

    @classmethod
    def factory(cls):
        """An :data:`~repro.algorithms.base.AlgorithmFactory` for this class."""
        return cls
