"""Consensus algorithm automata: the paper's baselines and substrates.

Every algorithm is a deterministic :class:`~repro.algorithms.base.Automaton`
subclass driven round-by-round by the kernel.  This package contains the
published algorithms the paper builds on or compares against:

* :mod:`repro.algorithms.floodset` — FloodSet (Lynch), consensus in SCS in
  exactly t + 1 rounds; the synchronous yardstick.
* :mod:`repro.algorithms.floodset_ws` — FloodSetWS (Charron-Bost,
  Guerraoui, Schiper), the P-based ancestor of A_{t+2}.
* :mod:`repro.algorithms.chandra_toueg` — a rotating-coordinator ◇S
  consensus in the style of Chandra–Toueg, transposed to ES; used as the
  underlying module C of A_{t+2}.
* :mod:`repro.algorithms.hurfin_raynal` — a two-phase rotating-coordinator
  ◇S consensus in the style of Hurfin–Raynal; the paper's 2t + 2 baseline.
* :mod:`repro.algorithms.amr_leader` — the leader-based consensus of
  Mostéfaoui–Raynal (two steps per leader generation); the k + 2f + 2
  baseline of Section 6.
* :mod:`repro.algorithms.early_deciding` — an early-deciding SCS consensus
  (min(f + 2, t + 1) rounds), context for the Section 6 corollary.

The paper's own algorithms (A_{t+2} and friends) live in :mod:`repro.core`.
"""

from repro.algorithms.base import AlgorithmFactory, Automaton, make_automata
from repro.algorithms.registry import available_algorithms, get_factory

__all__ = [
    "AlgorithmFactory",
    "Automaton",
    "make_automata",
    "available_algorithms",
    "get_factory",
]
