"""The automaton contract every consensus algorithm implements.

The kernel drives each process's automaton through rounds: first
:meth:`Automaton.payload` (send phase), then :meth:`Automaton.deliver`
(receive phase).  Automata are strictly deterministic — their behaviour is
a function of (pid, n, t, proposal) and the delivered messages — which is
what makes run views comparable across schedules.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

from repro.errors import AlgorithmError
from repro.model.messages import Message
from repro.types import Payload, ProcessId, Round, Value, validate_system_size


class Automaton(ABC):
    """One process's deterministic state machine.

    Subclasses implement :meth:`payload` and :meth:`deliver` and report
    decisions via :meth:`_decide`; they signal that the process *returns*
    from the consensus invocation via :meth:`_halt` (after which the kernel
    stops driving the automaton — it sends nothing and receives nothing).
    """

    def __init__(self, pid: ProcessId, n: int, t: int, proposal: Value):
        validate_system_size(n, t)
        if not 0 <= pid < n:
            raise AlgorithmError(f"pid {pid} out of range 0..{n - 1}")
        self.pid = pid
        self.n = n
        self.t = t
        self.proposal = proposal
        self._decision: Value | None = None
        self._decision_round: Round | None = None
        self._halted = False

    # -- kernel-facing API ---------------------------------------------------

    @abstractmethod
    def payload(self, k: Round) -> Payload | None:
        """The payload to broadcast in round *k*.

        Returning ``None`` means the algorithm generates no message; the
        kernel substitutes a dummy (the paper's footnote 1 keeps the
        all-to-all exchange pattern alive for suspicion semantics).
        """

    @abstractmethod
    def deliver(self, k: Round, messages: tuple[Message, ...]) -> None:
        """Process the messages received in round *k* (receive phase).

        *messages* contains round-k messages delivered in round k **and**
        any earlier-round messages whose delayed delivery lands in round k,
        in canonical order.  Round-based algorithms typically act on
        current-round messages (``m.sent_round == k``) and on control
        messages such as DECIDE regardless of age.
        """

    # -- decision / halting -----------------------------------------------

    @property
    def decision(self) -> Value | None:
        return self._decision

    @property
    def decision_round(self) -> Round | None:
        return self._decision_round

    @property
    def decided(self) -> bool:
        return self._decision is not None

    @property
    def halted(self) -> bool:
        return self._halted

    def _decide(self, value: Value, k: Round) -> None:
        """Record a decision.  Deciding twice with different values is a bug."""
        if self._decision is not None:
            if self._decision != value:
                raise AlgorithmError(
                    f"p{self.pid} decided {self._decision!r} at round "
                    f"{self._decision_round} and now {value!r} at round {k}"
                )
            return
        self._decision = value
        self._decision_round = k

    def _halt(self) -> None:
        self._halted = True

    # -- shared helpers ------------------------------------------------------

    @staticmethod
    def current_round(
        messages: Sequence[Message], k: Round
    ) -> tuple[Message, ...]:
        """The subset of *messages* that were sent in round *k*."""
        return tuple(m for m in messages if m.sent_round == k)

    def others(self) -> tuple[ProcessId, ...]:
        """All process ids except this process's own."""
        return tuple(p for p in range(self.n) if p != self.pid)

    def __repr__(self) -> str:
        state = "halted" if self._halted else (
            f"decided={self._decision!r}" if self.decided else "running"
        )
        return f"{type(self).__name__}(p{self.pid}, {state})"


AlgorithmFactory = Callable[[ProcessId, int, int, Value], Automaton]
"""Constructor signature shared by all algorithms: (pid, n, t, proposal)."""


def make_automata(
    factory: AlgorithmFactory,
    n: int,
    t: int,
    proposals: Sequence[Value],
) -> list[Automaton]:
    """Instantiate one automaton per process for a run.

    ``proposals[i]`` is process i's proposal; its length must be *n*.
    """
    if len(proposals) != n:
        raise AlgorithmError(
            f"need {n} proposals, got {len(proposals)}"
        )
    return [factory(pid, n, t, proposals[pid]) for pid in range(n)]
