"""The automaton contract every consensus algorithm implements.

The kernel drives each process's automaton through rounds: first
:meth:`Automaton.payload` (send phase), then :meth:`Automaton.deliver_view`
(receive phase, handed a structured :class:`~repro.sim.view.RoundView`).
Automata are strictly deterministic — their behaviour is a function of
(pid, n, t, proposal) and the delivered messages — which is what makes
run views comparable across schedules.

Automata may implement the receive phase at either level:

* :meth:`Automaton.deliver_view` — the fast path; consumes the view's
  pre-partitioned buckets and never materializes flat message tuples;
* :meth:`Automaton.deliver` — the legacy path over the canonically
  ordered flat message tuple.  The base :meth:`deliver_view` shim falls
  back to it, so out-of-tree automata written against the old contract
  run unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, ClassVar, Sequence

from repro.errors import AlgorithmError
from repro.model.messages import Message
from repro.types import Payload, ProcessId, Round, Value, validate_system_size

if TYPE_CHECKING:  # import cycle: repro.sim.view never imports algorithms
    from repro.sim.phase1_plane import Phase1Plane
    from repro.sim.view import RoundView


class Automaton(ABC):
    """One process's deterministic state machine.

    Subclasses implement :meth:`payload` plus at least one receive hook
    (:meth:`deliver_view`, or the legacy :meth:`deliver`) and report
    decisions via :meth:`_decide`; they signal that the process *returns*
    from the consensus invocation via :meth:`_halt` (after which the kernel
    stops driving the automaton — it sends nothing and receives nothing).
    """

    #: The run-level batched-delivery protocol this automaton class
    #: speaks, or ``None`` (the default — per-automaton delivery only).
    #: When every automaton in a run declares the same known protocol,
    #: the kernel builds one shared plane for the run and hands it to
    #: each automaton via :meth:`bind_phase1_plane`; see
    #: :mod:`repro.sim.phase1_plane`.  Declaring a protocol is a
    #: contract about the automaton's state layout — subclasses of a
    #: declaring class that change Phase-1 state handling must reset
    #: this to ``None``.
    phase1_plane_protocol: ClassVar[str | None] = None

    def __init__(self, pid: ProcessId, n: int, t: int, proposal: Value):
        validate_system_size(n, t)
        if not 0 <= pid < n:
            raise AlgorithmError(f"pid {pid} out of range 0..{n - 1}")
        self.pid = pid
        self.n = n
        self.t = t
        self.proposal = proposal
        self._decision: Value | None = None
        self._decision_round: Round | None = None
        self._halted = False

    # -- kernel-facing API ---------------------------------------------------

    @abstractmethod
    def payload(self, k: Round) -> Payload | None:
        """The payload to broadcast in round *k*.

        Returning ``None`` means the algorithm generates no message; the
        kernel substitutes a dummy (the paper's footnote 1 keeps the
        all-to-all exchange pattern alive for suspicion semantics).
        """

    def deliver(self, k: Round, messages: tuple[Message, ...]) -> None:
        """Process the messages received in round *k* (receive phase).

        *messages* contains round-k messages delivered in round k **and**
        any earlier-round messages whose delayed delivery lands in round k,
        in canonical order.  Round-based algorithms typically act on
        current-round messages (``m.sent_round == k``) and on control
        messages such as DECIDE regardless of age.

        The default bridges direct legacy calls (tests, out-of-tree
        drivers) into an overridden :meth:`deliver_view`; an automaton
        must override at least one of the two hooks.
        """
        if type(self).deliver_view is Automaton.deliver_view:
            raise AlgorithmError(
                f"{type(self).__name__} implements neither deliver nor "
                f"deliver_view"
            )
        from repro.sim.view import RoundView

        self.deliver_view(
            k, RoundView.from_messages(k, self.pid, self.n, messages)
        )

    def deliver_view(self, k: Round, view: "RoundView") -> None:
        """Process round *k*'s delivery as a structured round view.

        The kernel's entry point.  *view* carries the same delivery as
        the legacy flat tuple, pre-partitioned (current items by tag,
        delayed separate, present-sender set); see
        :class:`~repro.sim.view.RoundView`.  The default implementation
        is the compatibility shim: it materializes the canonical flat
        message tuple and hands it to :meth:`deliver`, so automata
        written before views existed behave identically.  Subclasses
        that override this should never also need :meth:`deliver` to
        run — the kernel calls only ``deliver_view``.
        """
        if type(self).deliver is Automaton.deliver:
            raise AlgorithmError(
                f"{type(self).__name__} implements neither deliver nor "
                f"deliver_view"
            )
        self.deliver(k, view.messages)

    def bind_phase1_plane(self, plane: "Phase1Plane") -> None:
        """Accept the run's shared Phase-1 plane (kernel, once per run).

        Called only on automata whose class declares a
        :attr:`phase1_plane_protocol`; such classes must override this
        to stash the plane and route their Phase-1 updates through it.
        The base implementation refuses — declaring a protocol without
        implementing the bind is a bug, not a silent fallback.
        """
        raise AlgorithmError(
            f"{type(self).__name__} declares plane protocol "
            f"{type(self).phase1_plane_protocol!r} but does not "
            f"implement bind_phase1_plane"
        )

    # -- decision / halting -----------------------------------------------

    @property
    def decision(self) -> Value | None:
        return self._decision

    @property
    def decision_round(self) -> Round | None:
        return self._decision_round

    @property
    def decided(self) -> bool:
        return self._decision is not None

    @property
    def halted(self) -> bool:
        return self._halted

    def _decide(self, value: Value, k: Round) -> None:
        """Record a decision.  Deciding twice with different values is a bug."""
        if self._decision is not None:
            if self._decision != value:
                raise AlgorithmError(
                    f"p{self.pid} decided {self._decision!r} at round "
                    f"{self._decision_round} and now {value!r} at round {k}"
                )
            return
        self._decision = value
        self._decision_round = k

    def _halt(self) -> None:
        self._halted = True

    # -- shared helpers ------------------------------------------------------

    @staticmethod
    def current_round(
        messages: Sequence[Message], k: Round
    ) -> tuple[Message, ...]:
        """The subset of *messages* that were sent in round *k*."""
        return tuple(m for m in messages if m.sent_round == k)

    def others(self) -> tuple[ProcessId, ...]:
        """All process ids except this process's own."""
        return tuple(p for p in range(self.n) if p != self.pid)

    def __repr__(self) -> str:
        state = "halted" if self._halted else (
            f"decided={self._decision!r}" if self.decided else "running"
        )
        return f"{type(self).__name__}(p{self.pid}, {state})"


AlgorithmFactory = Callable[[ProcessId, int, int, Value], Automaton]
"""Constructor signature shared by all algorithms: (pid, n, t, proposal)."""


def legacy_hook_wins(
    cls: type,
    stop: type,
    view_name: str,
    legacy_name: str,
    cache: dict[type, bool],
) -> bool:
    """The one dispatch rule for a (view hook, legacy hook) pair.

    Walking the MRO from the most-derived class, the first class below
    *stop* that defines either hook decides: True iff it defines only
    the legacy hook (defining both prefers the view hook).  This keeps
    a subclass that overrides only the legacy hook running its override
    even when an ancestor ported to the view hook — a plain identity
    check against the base default cannot see that shadowing.  Both
    hook pairs (``deliver``/``deliver_view`` here,
    ``round_deliver``/``round_deliver_view`` in
    :mod:`repro.algorithms.common`) share this walk so the two dispatch
    levels can never disagree on the rule.  *cache* memoizes per class
    (one MRO walk per automaton class, ever).
    """
    cached = cache.get(cls)
    if cached is None:
        cached = False
        for klass in cls.__mro__:
            if klass is stop:
                break
            defines_view = view_name in klass.__dict__
            defines_legacy = legacy_name in klass.__dict__
            if defines_view or defines_legacy:
                cached = defines_legacy and not defines_view
                break
        cache[cls] = cached
    return cached


_DELIVER_HOOK_CACHE: dict[type, bool] = {}


def prefers_legacy_deliver(cls: type) -> bool:
    """True when ``cls``'s most-derived delivery hook is legacy
    ``deliver`` — the kernel's dispatch rule for the
    ``deliver``/``deliver_view`` pair (see :func:`legacy_hook_wins`)."""
    return legacy_hook_wins(
        cls, Automaton, "deliver_view", "deliver", _DELIVER_HOOK_CACHE
    )


def make_automata(
    factory: AlgorithmFactory,
    n: int,
    t: int,
    proposals: Sequence[Value],
) -> list[Automaton]:
    """Instantiate one automaton per process for a run.

    ``proposals[i]`` is process i's proposal; its length must be *n*.
    """
    if len(proposals) != n:
        raise AlgorithmError(
            f"need {n} proposals, got {len(proposals)}"
        )
    return [factory(pid, n, t, proposals[pid]) for pid in range(n)]
