"""Name-based registry of all consensus algorithms in the package.

Benches, sweeps and examples refer to algorithms by name; the registry maps
names to :data:`~repro.algorithms.base.AlgorithmFactory` callables together
with the model each algorithm is designed for.

The registry is also the provenance authority for the batch engine's
content-addressed result cache (:mod:`repro.engine.cache`):
:func:`algorithm_source_hash` fingerprints the source code implementing an
algorithm, so cached records are invalidated the moment the code that
produced them changes.
"""

from __future__ import annotations

import hashlib
import inspect
import sys
from dataclasses import dataclass
from types import ModuleType
from typing import Callable

from repro.algorithms.base import AlgorithmFactory


@dataclass(frozen=True)
class AlgorithmInfo:
    """Registry entry: how to build an algorithm and where it is sound.

    Attributes:
        name: registry key.
        model: "SCS" or "ES" — the model the algorithm solves consensus in.
        make: zero-argument callable returning a fresh factory.
        summary: one-line description for tables.
    """

    name: str
    model: str
    make: Callable[[], AlgorithmFactory]
    summary: str


def _entries() -> dict[str, AlgorithmInfo]:
    # Imports are local so that `repro.algorithms` never imports
    # `repro.core` at module load time (core depends on algorithms).
    from repro.algorithms.amr_leader import AMRLeaderES
    from repro.algorithms.chandra_toueg import ChandraTouegES
    from repro.algorithms.early_deciding import EarlyDecidingSCS
    from repro.algorithms.floodset import FloodSet
    from repro.algorithms.floodset_ws import FloodSetWS
    from repro.algorithms.hurfin_raynal import HurfinRaynalES
    from repro.core.adiamond_s import ADiamondS
    from repro.core.afp2 import AFPlus2
    from repro.core.att2 import ATt2
    from repro.core.att2_optimized import ATt2Optimized

    infos = [
        AlgorithmInfo(
            "floodset", "SCS", lambda: FloodSet,
            "FloodSet: t+1 rounds in SCS (Lynch)",
        ),
        AlgorithmInfo(
            "floodset_ws", "SCS", lambda: FloodSetWS,
            "FloodSetWS: t+1 rounds with perfect failure detection (CGS)",
        ),
        AlgorithmInfo(
            "early_deciding", "SCS", lambda: EarlyDecidingSCS,
            "Early-deciding SCS consensus: min(f+2, t+1) rounds",
        ),
        AlgorithmInfo(
            "chandra_toueg", "ES", lambda: ChandraTouegES,
            "Chandra-Toueg-style ◇S consensus in ES (3 rounds/cycle)",
        ),
        AlgorithmInfo(
            "hurfin_raynal", "ES", lambda: HurfinRaynalES,
            "Hurfin-Raynal-style ◇S consensus in ES (2 rounds/cycle)",
        ),
        AlgorithmInfo(
            "amr_leader", "ES", lambda: AMRLeaderES,
            "Mostefaoui-Raynal leader-based consensus (t < n/3)",
        ),
        AlgorithmInfo(
            "att2", "ES", ATt2.factory,
            "A_{t+2}: the paper's matching algorithm (Figure 2)",
        ),
        AlgorithmInfo(
            "att2_optimized", "ES", ATt2Optimized.factory,
            "A_{t+2} + failure-free round-2 decision (Figure 4)",
        ),
        AlgorithmInfo(
            "adiamond_s", "ES", ADiamondS.factory,
            "A_◇S: the ◇S transposition (Figure 3)",
        ),
        AlgorithmInfo(
            "afp2", "ES", lambda: AFPlus2,
            "A_{f+2}: eventual fast decision, t < n/3 (Figure 5)",
        ),
    ]
    return {info.name: info for info in infos}


def available_algorithms() -> dict[str, AlgorithmInfo]:
    """All registered algorithms, keyed by name."""
    return _entries()


def _require(name: str) -> AlgorithmInfo:
    """The registry entry for *name* (raises KeyError with suggestions)."""
    entries = _entries()
    if name not in entries:
        known = ", ".join(sorted(entries))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}")
    return entries[name]


def get_factory(name: str) -> AlgorithmFactory:
    """The factory for algorithm *name* (raises KeyError with suggestions)."""
    return _require(name).make()


# -- source fingerprints (cache invalidation) ------------------------------

_SOURCE_HASH_CACHE: dict[str, str] = {}


def _module_closure(roots: list[ModuleType]) -> list[ModuleType]:
    """The transitive repro-module closure of *roots*, sorted by name.

    Walks each module's globals: any ``repro.*`` module referenced there —
    directly, or as the defining module of an imported class/function — is
    pulled in and walked too.  This is what makes the fingerprint cover
    *composed* dependencies, not just inheritance: ``att2`` imports
    ``ChandraTouegES`` as its default underlying consensus and
    ``suspicion.EstimateState`` for its message state, so editing either
    module changes att2's fingerprint.  Modules without a backing file
    (builtins) are skipped.
    """
    seen: dict[str, ModuleType] = {}
    stack = list(roots)
    while stack:
        module = stack.pop()
        name = getattr(module, "__name__", None)
        if name is None or name in seen:
            continue
        if not getattr(module, "__file__", None):
            continue
        seen[name] = module
        for value in vars(module).values():
            dep = (
                value if isinstance(value, ModuleType)
                else inspect.getmodule(value)
            )
            dep_name = getattr(dep, "__name__", "")
            if dep_name != "repro" and not dep_name.startswith("repro."):
                continue  # only this package, not e.g. site-packages repro*
            if dep_name not in seen:
                stack.append(dep)
    return [seen[name] for name in sorted(seen)]


def source_closure_hash(roots: list[ModuleType]) -> str | None:
    """SHA-256 over the source of *roots*' transitive repro-module closure.

    Returns ``None`` when the closure is empty or any member's source text
    is unavailable (frozen interpreter, interactive definitions) — callers
    treat that as "unfingerprintable", i.e. uncacheable.
    """
    modules = _module_closure(roots)
    if not modules:
        return None
    digest = hashlib.sha256()
    for module in modules:
        try:
            source = inspect.getsource(module)
        except (OSError, TypeError):
            return None
        digest.update(module.__name__.encode())
        digest.update(b"\x00")
        digest.update(source.encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def _source_modules(info: AlgorithmInfo) -> list[ModuleType]:
    """Modules whose source defines *info*'s algorithm, sorted by name.

    Roots are the factory's own defining module plus every class in the
    MRO of the produced factory (and of the class a bound ``factory``
    classmethod is attached to); the result is their transitive closure
    (:func:`_module_closure`) — so ``att2_optimized`` depends on the
    ``att2.py`` it subclasses, every automaton depends on ``base.py``,
    and composed modules (underlying consensus, suspicion state) are
    covered too.
    """
    roots: dict[str, ModuleType] = {}
    owner = getattr(info.make, "__self__", None)
    for obj in (owner, info.make()):
        if obj is None:
            continue
        entries = obj.__mro__ if isinstance(obj, type) else [obj]
        for entry in entries:
            module = inspect.getmodule(entry)
            if module is None or not getattr(module, "__file__", None):
                continue
            # Stdlib bases (abc.ABC in every automaton's MRO) carry no
            # algorithm behavior; hashing them would invalidate the whole
            # cache on a Python upgrade — or disable caching entirely
            # where stdlib source is unavailable.
            if module.__name__.partition(".")[0] in sys.stdlib_module_names:
                continue
            roots[module.__name__] = module
    return _module_closure(list(roots.values()))


def algorithm_source_hash(name: str) -> str | None:
    """SHA-256 fingerprint of the source code implementing algorithm *name*.

    A pure content hash over the modules of :func:`_source_modules`, so it
    changes exactly when the algorithm's implementation — or anything in
    its import closure (inherited bases, composed underlying consensus,
    shared helpers) — is edited: the code-change component of the engine's
    cache keys.  Returns ``None`` when source text is unavailable (frozen
    interpreter, interactively-defined factory): such algorithms are
    simply uncacheable.  Raises ``KeyError`` for unregistered names, like
    :func:`get_factory`.

    Hashes are memoized per name; call :func:`clear_source_hash_cache`
    after reloading an algorithm module in-process (tests do).
    """
    if name in _SOURCE_HASH_CACHE:
        return _SOURCE_HASH_CACHE[name]
    result = source_closure_hash(_source_modules(_require(name)))
    if result is not None:
        _SOURCE_HASH_CACHE[name] = result
    return result


def clear_source_hash_cache() -> None:
    """Forget memoized source fingerprints (after in-process module edits)."""
    _SOURCE_HASH_CACHE.clear()
