"""Name-based registry of all consensus algorithms in the package.

Benches, sweeps and examples refer to algorithms by name; the registry maps
names to :data:`~repro.algorithms.base.AlgorithmFactory` callables together
with the model each algorithm is designed for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.algorithms.base import AlgorithmFactory


@dataclass(frozen=True)
class AlgorithmInfo:
    """Registry entry: how to build an algorithm and where it is sound.

    Attributes:
        name: registry key.
        model: "SCS" or "ES" — the model the algorithm solves consensus in.
        make: zero-argument callable returning a fresh factory.
        summary: one-line description for tables.
    """

    name: str
    model: str
    make: Callable[[], AlgorithmFactory]
    summary: str


def _entries() -> dict[str, AlgorithmInfo]:
    # Imports are local so that `repro.algorithms` never imports
    # `repro.core` at module load time (core depends on algorithms).
    from repro.algorithms.amr_leader import AMRLeaderES
    from repro.algorithms.chandra_toueg import ChandraTouegES
    from repro.algorithms.early_deciding import EarlyDecidingSCS
    from repro.algorithms.floodset import FloodSet
    from repro.algorithms.floodset_ws import FloodSetWS
    from repro.algorithms.hurfin_raynal import HurfinRaynalES
    from repro.core.adiamond_s import ADiamondS
    from repro.core.afp2 import AFPlus2
    from repro.core.att2 import ATt2
    from repro.core.att2_optimized import ATt2Optimized

    infos = [
        AlgorithmInfo(
            "floodset", "SCS", lambda: FloodSet,
            "FloodSet: t+1 rounds in SCS (Lynch)",
        ),
        AlgorithmInfo(
            "floodset_ws", "SCS", lambda: FloodSetWS,
            "FloodSetWS: t+1 rounds with perfect failure detection (CGS)",
        ),
        AlgorithmInfo(
            "early_deciding", "SCS", lambda: EarlyDecidingSCS,
            "Early-deciding SCS consensus: min(f+2, t+1) rounds",
        ),
        AlgorithmInfo(
            "chandra_toueg", "ES", lambda: ChandraTouegES,
            "Chandra-Toueg-style ◇S consensus in ES (3 rounds/cycle)",
        ),
        AlgorithmInfo(
            "hurfin_raynal", "ES", lambda: HurfinRaynalES,
            "Hurfin-Raynal-style ◇S consensus in ES (2 rounds/cycle)",
        ),
        AlgorithmInfo(
            "amr_leader", "ES", lambda: AMRLeaderES,
            "Mostefaoui-Raynal leader-based consensus (t < n/3)",
        ),
        AlgorithmInfo(
            "att2", "ES", ATt2.factory,
            "A_{t+2}: the paper's matching algorithm (Figure 2)",
        ),
        AlgorithmInfo(
            "att2_optimized", "ES", ATt2Optimized.factory,
            "A_{t+2} + failure-free round-2 decision (Figure 4)",
        ),
        AlgorithmInfo(
            "adiamond_s", "ES", ADiamondS.factory,
            "A_◇S: the ◇S transposition (Figure 3)",
        ),
        AlgorithmInfo(
            "afp2", "ES", lambda: AFPlus2,
            "A_{f+2}: eventual fast decision, t < n/3 (Figure 5)",
        ),
    ]
    return {info.name: info for info in infos}


def available_algorithms() -> dict[str, AlgorithmInfo]:
    """All registered algorithms, keyed by name."""
    return _entries()


def get_factory(name: str) -> AlgorithmFactory:
    """The factory for algorithm *name* (raises KeyError with suggestions)."""
    entries = _entries()
    if name not in entries:
        known = ", ".join(sorted(entries))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}")
    return entries[name].make()
