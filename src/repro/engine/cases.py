"""Concrete executable cases for the batch engine.

A :class:`Case` pins down one run completely: which algorithm (by registry
name), which adversary schedule, and which proposals.  Cases are plain
frozen dataclasses so that a worker process can receive one over a
``multiprocessing`` pipe and execute it without any shared state.

The optional ``factory`` field lets in-process callers (the legacy
:mod:`repro.analysis.sweep` entry points) attach a pre-built automaton
factory that is *not* registered under ``algorithm``.  Such cases are not
generally picklable, so the runner executes them on the serial path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.algorithms.base import AlgorithmFactory
from repro.algorithms.registry import get_factory
from repro.model.schedule import Schedule
from repro.types import Value


@dataclass(frozen=True)
class Case:
    """One fully-specified run of the batch engine.

    Attributes:
        index: position in the expanded grid.  Record streams are re-sorted
            by this index, which is what makes parallel and serial execution
            produce identical outputs.
        algorithm: registry name (see :mod:`repro.algorithms.registry`),
            resolvable inside a worker process.
        workload: human-readable schedule label; for seeded families the
            label embeds the derived seed so any case can be regenerated.
        schedule: the adversary schedule to execute against.
        proposals: one proposal per process.
        factory: optional pre-built factory overriding registry resolution
            (serial execution only).
        trace: kernel trace mode for this case (``"full"`` or ``"lean"``,
            see :func:`repro.sim.kernel.execute`).  Excluded from case
            identity: the :class:`~repro.analysis.sweep.SweepRecord` a
            case produces is byte-identical in either mode (the mode only
            decides whether per-round records are materialized along the
            way), so it can never distinguish two cases — and the engine
            defaults to the lean mode, whose trace costs nothing to
            discard.
    """

    index: int
    algorithm: str
    workload: str
    schedule: Schedule
    proposals: tuple[Value, ...]
    factory: AlgorithmFactory | None = field(default=None, compare=False)
    trace: str = field(default="lean", compare=False)

    def resolve_factory(self) -> AlgorithmFactory:
        """The automaton factory this case runs: explicit or from the registry."""
        if self.factory is not None:
            return self.factory
        return get_factory(self.algorithm)


def cases_from(
    entries: Iterable[tuple[str, str, Schedule, Sequence[Value]]],
) -> list[Case]:
    """An indexed case list from ``(algorithm, workload, schedule, proposals)``
    tuples, numbered in iteration order — the hand-built counterpart of
    :func:`repro.engine.grids.expand_grid` for ad-hoc grids."""
    return [
        Case(
            index=index,
            algorithm=algorithm,
            workload=workload,
            schedule=schedule,
            proposals=tuple(proposals),
        )
        for index, (algorithm, workload, schedule, proposals)
        in enumerate(entries)
    ]
