"""Declarative case grids and the seeded schedule-family layer.

A :class:`GridSpec` describes a whole experiment *declaratively* —
algorithms × schedule families × proposal pattern — and
:func:`expand_grid` turns it into the concrete, ordered list of
:class:`~repro.engine.cases.Case` objects the runner executes.  Scenario
coverage therefore scales by config (bump a family's ``count``) rather
than by writing new loops.

Families come in two flavours:

* **deterministic** kinds wrap the structured workload generators in
  :mod:`repro.workloads` (cascades, coordinator killers, async prefixes…);
  their ``count`` is normally 1 because every instance is identical.
* **seeded** kinds wrap :mod:`repro.sim.random_schedules`; instance *i* of
  a family is built from a seed derived via :func:`case_seed`, a pure
  function of ``(grid seed, family name, i)``.  Derivation uses SHA-256,
  so the expansion is reproducible across processes, machines and Python
  versions — the foundation of the engine's determinism guarantee.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.algorithms.registry import available_algorithms
from repro.engine.cases import Case
from repro.errors import ReproError
from repro.model.schedule import Schedule
from repro.sim.random_schedules import (
    random_es_schedule,
    random_proposals,
    random_scs_schedule,
    random_serial_schedule,
)
from repro.types import Round, validate_system_size

#: Family kinds backed by seeded random generators.
SEEDED_KINDS = ("random_es", "random_scs", "random_serial")

#: Family kinds backed by deterministic workload generators.
DETERMINISTIC_KINDS = (
    "failure_free",
    "cascade",
    "hiding_chain",
    "block",
    "killer",
    "async_prefix",
    "rotating",
)


class GridError(ReproError):
    """An ill-formed grid specification."""


def case_seed(master_seed: int, family: str, index: int) -> int:
    """The derived seed for instance *index* of *family* under *master_seed*.

    A pure, platform-independent function (SHA-256 of the identifying
    string), so re-expanding a grid — in any process — regenerates exactly
    the same schedules.
    """
    key = f"{master_seed}:{family}:{index}".encode()
    return int.from_bytes(hashlib.sha256(key).digest()[:8], "big")


@dataclass(frozen=True)
class FamilySpec:
    """One schedule family of a grid.

    Attributes:
        name: label for records ("workload" column); must be unique within
            a grid.
        kind: one of :data:`SEEDED_KINDS` or :data:`DETERMINISTIC_KINDS`.
        count: how many instances to expand.
        horizon: round horizon for every instance.
        params: extra keyword arguments for the underlying generator, as a
            sorted tuple of pairs (kept hashable so specs can be dict keys).
    """

    name: str
    kind: str
    count: int = 1
    horizon: Round = 12
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in SEEDED_KINDS + DETERMINISTIC_KINDS:
            known = ", ".join(SEEDED_KINDS + DETERMINISTIC_KINDS)
            raise GridError(f"unknown family kind {self.kind!r}; known: {known}")
        if self.count < 1:
            raise GridError(f"family {self.name!r}: count must be >= 1")


def family(
    name: str,
    kind: str,
    *,
    count: int = 1,
    horizon: Round = 12,
    **params: Any,
) -> FamilySpec:
    """Convenience constructor: keyword params instead of a pair-tuple."""
    return FamilySpec(
        name=name,
        kind=kind,
        count=count,
        horizon=horizon,
        params=tuple(sorted(params.items())),
    )


@dataclass(frozen=True)
class GridSpec:
    """A declarative (algorithm × schedule-family × proposals) grid.

    Attributes:
        n: number of processes for every case.
        t: resilience bound for every case.
        algorithms: registry names to run each family instance against.
        families: the schedule families to expand.
        seed: master seed for seeded families and random proposals.
        proposal_mode: ``"range"`` (proposals ``0..n-1``, the experiments'
            default) or ``"random"`` (per-case seeded random proposals).
    """

    n: int
    t: int
    algorithms: tuple[str, ...]
    families: tuple[FamilySpec, ...]
    seed: int = 0
    proposal_mode: str = "range"

    def __post_init__(self) -> None:
        validate_system_size(self.n, self.t)
        if not self.algorithms:
            raise GridError("grid needs at least one algorithm")
        if not self.families:
            raise GridError("grid needs at least one schedule family")
        known = available_algorithms()
        for name in self.algorithms:
            if name not in known:
                raise GridError(
                    f"unknown algorithm {name!r}; known: "
                    + ", ".join(sorted(known))
                )
        names = [fam.name for fam in self.families]
        if len(names) != len(set(names)):
            raise GridError(f"duplicate family names in {names}")
        if self.proposal_mode not in ("range", "random"):
            raise GridError(
                f"proposal_mode must be 'range' or 'random', "
                f"got {self.proposal_mode!r}"
            )

    @property
    def case_count(self) -> int:
        """Number of cases :func:`expand_grid` will produce."""
        return len(self.algorithms) * sum(f.count for f in self.families)


def build_schedule(
    spec: FamilySpec, n: int, t: int, seed: int
) -> Schedule:
    """Instantiate one schedule of *spec* (seeded kinds consume *seed*)."""
    from repro.workloads import (
        async_prefix,
        block_crashes,
        coordinator_killer,
        rotating_delays,
        serial_cascade,
        value_hiding_chain,
    )

    params: Mapping[str, Any] = dict(spec.params)
    h = spec.horizon
    builders = {
        "failure_free": lambda: Schedule.failure_free(n, t, h),
        "cascade": lambda: serial_cascade(n, t, h, **params),
        "hiding_chain": lambda: value_hiding_chain(n, t, h),
        "block": lambda: block_crashes(n, t, h, **params),
        "killer": lambda: coordinator_killer(n, t, h, **params),
        "async_prefix": lambda: async_prefix(n, t, h, **params),
        "rotating": lambda: rotating_delays(n, t, h, **params),
        "random_es": lambda: random_es_schedule(n, t, seed, horizon=h, **params),
        "random_scs": lambda: random_scs_schedule(n, t, seed, horizon=h, **params),
        "random_serial": lambda: random_serial_schedule(
            n, t, seed, horizon=h, **params
        ),
    }
    return builders[spec.kind]()


def expand_family(
    spec: FamilySpec, n: int, t: int, master_seed: int
) -> list[tuple[str, Schedule]]:
    """All ``(label, schedule)`` instances of one family.

    Seeded labels embed the derived seed (``name[i]@seed``) so that a
    failing case can be regenerated directly with the family's generator.
    """
    instances = []
    for i in range(spec.count):
        if spec.kind in SEEDED_KINDS:
            seed = case_seed(master_seed, spec.name, i)
            label = f"{spec.name}[{i}]@{seed}"
        else:
            seed = 0
            label = spec.name if spec.count == 1 else f"{spec.name}[{i}]"
        instances.append((label, build_schedule(spec, n, t, seed)))
    return instances


def expand_grid(spec: GridSpec) -> list[Case]:
    """Expand a grid into its ordered, concrete case list.

    Order is algorithm-major (all of algorithm 0's cases, then algorithm
    1's, …), families in declaration order, instances by index — and the
    ``Case.index`` fields number the expansion sequentially, defining the
    canonical record order for any execution of this grid.
    """
    per_family = [
        expand_family(fam, spec.n, spec.t, spec.seed) for fam in spec.families
    ]
    cases: list[Case] = []
    for algorithm in spec.algorithms:
        for fam, instances in zip(spec.families, per_family):
            for i, (label, schedule) in enumerate(instances):
                if spec.proposal_mode == "random":
                    proposals = tuple(
                        random_proposals(
                            spec.n,
                            case_seed(spec.seed, f"{fam.name}/proposals", i),
                        )
                    )
                else:
                    proposals = tuple(range(spec.n))
                cases.append(
                    Case(
                        index=len(cases),
                        algorithm=algorithm,
                        workload=label,
                        schedule=schedule,
                        proposals=proposals,
                    )
                )
    return cases


DEFAULT_SWEEP_ALGORITHMS = (
    "att2",
    "att2_optimized",
    "adiamond_s",
    "hurfin_raynal",
    "chandra_toueg",
)


def default_sweep_grid(
    n: int = 5,
    t: int = 2,
    *,
    seed: int = 0,
    algorithms: tuple[str, ...] = DEFAULT_SWEEP_ALGORITHMS,
    cases_per_family: int = 12,
    proposal_mode: str = "random",
) -> GridSpec:
    """The CLI's stock grid: seeded families plus the structured workloads.

    With the defaults this expands to ``5 algorithms × (12 + 6 + 6 seeded
    + 5 structured) = 145`` cases, comfortably above the 100-case floor
    the engine is benchmarked at.
    """
    horizon = max(12, 3 * t + 6)
    families = (
        family("es", "random_es", count=cases_per_family, horizon=horizon),
        family("scs", "random_scs", count=max(1, cases_per_family // 2),
               horizon=horizon),
        family("serial", "random_serial", count=max(1, cases_per_family // 2),
               horizon=horizon),
        family("failure_free", "failure_free", horizon=horizon),
        family("cascade", "cascade", horizon=horizon),
        family("hiding_chain", "hiding_chain", horizon=horizon),
        family("killer2", "killer", horizon=horizon, rounds_per_cycle=2),
        family("killer3", "killer", horizon=horizon, rounds_per_cycle=3),
    )
    return GridSpec(
        n=n,
        t=t,
        algorithms=algorithms,
        families=families,
        seed=seed,
        proposal_mode=proposal_mode,
    )
