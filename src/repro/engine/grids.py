"""Declarative case grids, the seeded schedule-family layer, grid files.

A :class:`GridSpec` describes a whole experiment *declaratively* —
algorithms × schedule families × proposal pattern — and
:func:`expand_grid` turns it into the concrete, ordered list of
:class:`~repro.engine.cases.Case` objects the runner executes.  Scenario
coverage therefore scales by config (bump a family's ``count``) rather
than by writing new loops.

Families come in two flavours:

* **deterministic** kinds wrap the structured workload generators in
  :mod:`repro.workloads` (cascades, coordinator killers, async prefixes…);
  their ``count`` is normally 1 because every instance is identical.
* **seeded** kinds wrap :mod:`repro.sim.random_schedules`; instance *i* of
  a family is built from a seed derived via :func:`case_seed`, a pure
  function of ``(grid seed, family name, i)``.  Derivation uses SHA-256,
  so the expansion is reproducible across processes, machines and Python
  versions — the foundation of the engine's determinism guarantee.

Grid specs are plain data and round-trip through JSON
(:meth:`GridSpec.to_data`/:meth:`GridSpec.from_data`, ``save``/``load``),
so experiment definitions live in versioned files and run with
``python -m repro sweep --grid grid.json`` instead of bespoke scripts.

A :class:`ShardSpec` slices an expanded grid deterministically (round-robin
over case indices), so one grid file can fan out across machines; the
per-shard exports recombine canonically via
:meth:`~repro.engine.results.BatchResult.merge` because every record
carries its originating case index.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.algorithms.registry import available_algorithms
from repro.engine.cases import Case
from repro.errors import ReproError
from repro.model.schedule import Schedule
from repro.sim.random_schedules import (
    random_es_schedule,
    random_proposals,
    random_scs_schedule,
    random_serial_schedule,
)
from repro.types import Round, validate_system_size

#: Family kinds backed by seeded random generators.
SEEDED_KINDS = ("random_es", "random_scs", "random_serial")

#: Family kinds backed by deterministic workload generators.
DETERMINISTIC_KINDS = (
    "failure_free",
    "cascade",
    "hiding_chain",
    "block",
    "killer",
    "async_prefix",
    "rotating",
)


class GridError(ReproError):
    """An ill-formed grid specification."""


def case_seed(master_seed: int, family: str, index: int) -> int:
    """The derived seed for instance *index* of *family* under *master_seed*.

    A pure, platform-independent function (SHA-256 of the identifying
    string), so re-expanding a grid — in any process — regenerates exactly
    the same schedules.
    """
    key = f"{master_seed}:{family}:{index}".encode()
    return int.from_bytes(hashlib.sha256(key).digest()[:8], "big")


@dataclass(frozen=True)
class FamilySpec:
    """One schedule family of a grid.

    Attributes:
        name: label for records ("workload" column); must be unique within
            a grid.
        kind: one of :data:`SEEDED_KINDS` or :data:`DETERMINISTIC_KINDS`.
        count: how many instances to expand.
        horizon: round horizon for every instance.
        params: extra keyword arguments for the underlying generator, as a
            sorted tuple of pairs (kept hashable so specs can be dict keys).
    """

    name: str
    kind: str
    count: int = 1
    horizon: Round = 12
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in SEEDED_KINDS + DETERMINISTIC_KINDS:
            known = ", ".join(SEEDED_KINDS + DETERMINISTIC_KINDS)
            raise GridError(f"unknown family kind {self.kind!r}; known: {known}")
        if self.count < 1:
            raise GridError(f"family {self.name!r}: count must be >= 1")

    def to_data(self) -> dict:
        """A plain-data (JSON-safe) representation of this family."""
        return {
            "name": self.name,
            "kind": self.kind,
            "count": self.count,
            "horizon": self.horizon,
            "params": dict(self.params),
        }

    @staticmethod
    def from_data(data: Mapping) -> "FamilySpec":
        """Rebuild a family from :meth:`to_data` output (validated)."""
        _require_mapping(data, "family")
        _reject_unknown_keys(
            data, ("name", "kind", "count", "horizon", "params"), "family"
        )
        for required in ("name", "kind"):
            if required not in data:
                raise GridError(f"family entry is missing {required!r}")
        params = data.get("params", {})
        if not isinstance(params, Mapping) or not all(
            isinstance(key, str) for key in params
        ):
            raise GridError(
                f"family {data.get('name')!r}: params must be an object "
                f"with string keys, got {params!r}"
            )
        return FamilySpec(
            name=_str_field(data, "name", "family", ""),
            kind=_str_field(data, "kind", "family", ""),
            count=_int_field(data, "count", "family", 1),
            horizon=_int_field(data, "horizon", "family", 12),
            params=tuple(sorted(params.items())),
        )


def family(
    name: str,
    kind: str,
    *,
    count: int = 1,
    horizon: Round = 12,
    **params: Any,
) -> FamilySpec:
    """Convenience constructor: keyword params instead of a pair-tuple."""
    return FamilySpec(
        name=name,
        kind=kind,
        count=count,
        horizon=horizon,
        params=tuple(sorted(params.items())),
    )


@dataclass(frozen=True)
class GridSpec:
    """A declarative (algorithm × schedule-family × proposals) grid.

    Attributes:
        n: number of processes for every case.
        t: resilience bound for every case.
        algorithms: registry names to run each family instance against.
        families: the schedule families to expand.
        seed: master seed for seeded families and random proposals.
        proposal_mode: ``"range"`` (proposals ``0..n-1``, the experiments'
            default) or ``"random"`` (per-case seeded random proposals).
    """

    n: int
    t: int
    algorithms: tuple[str, ...]
    families: tuple[FamilySpec, ...]
    seed: int = 0
    proposal_mode: str = "range"

    def __post_init__(self) -> None:
        validate_system_size(self.n, self.t)
        if not self.algorithms:
            raise GridError("grid needs at least one algorithm")
        if not self.families:
            raise GridError("grid needs at least one schedule family")
        known = available_algorithms()
        for name in self.algorithms:
            if name not in known:
                raise GridError(
                    f"unknown algorithm {name!r}; known: "
                    + ", ".join(sorted(known))
                )
        names = [fam.name for fam in self.families]
        if len(names) != len(set(names)):
            raise GridError(f"duplicate family names in {names}")
        if self.proposal_mode not in ("range", "random"):
            raise GridError(
                f"proposal_mode must be 'range' or 'random', "
                f"got {self.proposal_mode!r}"
            )

    @property
    def case_count(self) -> int:
        """Number of cases :func:`expand_grid` will produce."""
        return len(self.algorithms) * sum(f.count for f in self.families)

    # -- serialization -----------------------------------------------------

    def to_data(self) -> dict:
        """A plain-data (JSON-safe) representation of the whole grid.

        Round-trips losslessly through :meth:`from_data` for any spec
        built via :func:`family` (whose ``params`` are canonically
        sorted); hand-built unsorted param tuples are normalized.
        """
        return {
            "version": GRID_FORMAT_VERSION,
            "n": self.n,
            "t": self.t,
            "algorithms": list(self.algorithms),
            "families": [fam.to_data() for fam in self.families],
            "seed": self.seed,
            "proposal_mode": self.proposal_mode,
        }

    @staticmethod
    def from_data(data: Mapping) -> "GridSpec":
        """Rebuild a grid from :meth:`to_data` output.

        Validation is strict — unknown keys, a missing/foreign ``version``,
        wrongly-typed values and malformed families all raise
        :class:`GridError` with the offending key named.  Every
        experiment-defining grid key is *required* (``to_data`` always
        writes them all): a hand-written file silently defaulting
        ``seed`` or ``proposal_mode`` would run a different experiment
        than its author believes.  Only a family's ``count``/``horizon``/
        ``params`` may be omitted — they take the same defaults as the
        :class:`FamilySpec` constructor itself.
        """
        _require_mapping(data, "grid")
        _reject_unknown_keys(
            data,
            ("version", "n", "t", "algorithms", "families", "seed",
             "proposal_mode"),
            "grid",
        )
        if data.get("version") != GRID_FORMAT_VERSION:
            raise GridError(
                f"unsupported grid format version {data.get('version')!r} "
                f"(this engine reads version {GRID_FORMAT_VERSION})"
            )
        for required in ("n", "t", "algorithms", "families", "seed",
                         "proposal_mode"):
            if required not in data:
                raise GridError(f"grid is missing {required!r}")
        for key in ("algorithms", "families"):
            if not isinstance(data[key], Sequence) or isinstance(
                data[key], (str, bytes)
            ):
                raise GridError(f"grid {key!r} must be a list")
        if not all(isinstance(name, str) for name in data["algorithms"]):
            raise GridError(
                f"grid 'algorithms' must be a list of strings, "
                f"got {data['algorithms']!r}"
            )
        return GridSpec(
            n=_int_field(data, "n", "grid", 0),
            t=_int_field(data, "t", "grid", 0),
            algorithms=tuple(data["algorithms"]),
            families=tuple(
                FamilySpec.from_data(entry) for entry in data["families"]
            ),
            seed=_int_field(data, "seed", "grid", 0),
            proposal_mode=_str_field(data, "proposal_mode", "grid", "range"),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        """Canonical JSON: two equal specs serialize byte-identically."""
        return json.dumps(self.to_data(), indent=indent, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "GridSpec":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise GridError(f"grid file is not valid JSON: {exc}")
        return GridSpec.from_data(data)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    @staticmethod
    def load(path: str) -> "GridSpec":
        """Read a grid spec from a JSON file (``GridError`` on bad data)."""
        with open(path, "r", encoding="utf-8") as handle:
            return GridSpec.from_json(handle.read())


#: Grid-file format version; bumped whenever the spec schema changes.
GRID_FORMAT_VERSION = 1


def _require_mapping(data: Any, what: str) -> None:
    if not isinstance(data, Mapping):
        raise GridError(
            f"{what} spec must be an object, got {type(data).__name__}"
        )


def _int_field(data: Mapping, key: str, what: str, default: int) -> int:
    """The integer at *key* (``GridError`` naming the key on a bad type).

    ``bool`` is explicitly excluded — JSON ``true`` is not a count.
    """
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise GridError(
            f"{what} {key!r} must be an integer, got {value!r}"
        )
    return value


def _str_field(data: Mapping, key: str, what: str, default: str) -> str:
    value = data.get(key, default)
    if not isinstance(value, str):
        raise GridError(
            f"{what} {key!r} must be a string, got {value!r}"
        )
    return value


def _reject_unknown_keys(
    data: Mapping, known: tuple[str, ...], what: str
) -> None:
    unknown = sorted(set(data) - set(known))
    if unknown:
        raise GridError(
            f"unknown {what} keys {unknown}; known: " + ", ".join(known)
        )


@dataclass(frozen=True)
class ShardSpec:
    """One deterministic slice of an expanded grid: shard *index* of *count*.

    Selection is round-robin over case indices (``case.index % count ==
    index``), a pure function of the expansion — every machine slicing
    the same grid file agrees on the partition without coordination, and
    round-robin keeps per-shard load balanced even when expensive cases
    cluster (e.g. one algorithm's block of the expansion).  The shards of
    a grid partition its index space, which is exactly the contract
    :meth:`~repro.engine.results.BatchResult.merge` needs to recombine
    shard exports into the whole-grid result in any arrival order.
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise GridError(
                f"shard count must be >= 1, got {self.count}"
            )
        if not 0 <= self.index < self.count:
            raise GridError(
                f"shard index must satisfy 0 <= index < count, "
                f"got {self.index}/{self.count}"
            )

    @staticmethod
    def parse(text: str) -> "ShardSpec":
        """Parse the CLI form ``I/N`` (e.g. ``0/4``), validating both parts."""
        head, sep, tail = text.partition("/")
        try:
            if not sep:
                raise ValueError
            index, count = int(head), int(tail)
        except ValueError:
            raise GridError(
                f"malformed shard {text!r}: expected I/N with integers, "
                f"e.g. 0/4"
            )
        return ShardSpec(index=index, count=count)

    def select(self, cases: Sequence) -> list:
        """The sub-list of *cases* belonging to this shard."""
        return [
            case for case in cases if case.index % self.count == self.index
        ]

    def describe(self) -> str:
        return f"shard {self.index}/{self.count}"


def build_schedule(
    spec: FamilySpec, n: int, t: int, seed: int
) -> Schedule:
    """Instantiate one schedule of *spec* (seeded kinds consume *seed*)."""
    from repro.workloads import (
        async_prefix,
        block_crashes,
        coordinator_killer,
        rotating_delays,
        serial_cascade,
        value_hiding_chain,
    )

    params: Mapping[str, Any] = dict(spec.params)
    h = spec.horizon
    builders = {
        "failure_free": lambda: Schedule.failure_free(n, t, h),
        "cascade": lambda: serial_cascade(n, t, h, **params),
        "hiding_chain": lambda: value_hiding_chain(n, t, h),
        "block": lambda: block_crashes(n, t, h, **params),
        "killer": lambda: coordinator_killer(n, t, h, **params),
        "async_prefix": lambda: async_prefix(n, t, h, **params),
        "rotating": lambda: rotating_delays(n, t, h, **params),
        "random_es": lambda: random_es_schedule(n, t, seed, horizon=h, **params),
        "random_scs": lambda: random_scs_schedule(n, t, seed, horizon=h, **params),
        "random_serial": lambda: random_serial_schedule(
            n, t, seed, horizon=h, **params
        ),
    }
    return builders[spec.kind]()


def expand_family(
    spec: FamilySpec, n: int, t: int, master_seed: int
) -> list[tuple[str, Schedule]]:
    """All ``(label, schedule)`` instances of one family.

    Seeded labels embed the derived seed (``name[i]@seed``) so that a
    failing case can be regenerated directly with the family's generator.
    """
    instances = []
    for i in range(spec.count):
        if spec.kind in SEEDED_KINDS:
            seed = case_seed(master_seed, spec.name, i)
            label = f"{spec.name}[{i}]@{seed}"
        else:
            seed = 0
            label = spec.name if spec.count == 1 else f"{spec.name}[{i}]"
        instances.append((label, build_schedule(spec, n, t, seed)))
    return instances


def expand_grid(spec: GridSpec) -> list[Case]:
    """Expand a grid into its ordered, concrete case list.

    Order is algorithm-major (all of algorithm 0's cases, then algorithm
    1's, …), families in declaration order, instances by index — and the
    ``Case.index`` fields number the expansion sequentially, defining the
    canonical record order for any execution of this grid.
    """
    per_family = [
        expand_family(fam, spec.n, spec.t, spec.seed) for fam in spec.families
    ]
    cases: list[Case] = []
    for algorithm in spec.algorithms:
        for fam, instances in zip(spec.families, per_family):
            for i, (label, schedule) in enumerate(instances):
                if spec.proposal_mode == "random":
                    proposals = tuple(
                        random_proposals(
                            spec.n,
                            case_seed(spec.seed, f"{fam.name}/proposals", i),
                        )
                    )
                else:
                    proposals = tuple(range(spec.n))
                cases.append(
                    Case(
                        index=len(cases),
                        algorithm=algorithm,
                        workload=label,
                        schedule=schedule,
                        proposals=proposals,
                    )
                )
    return cases


DEFAULT_SWEEP_ALGORITHMS = (
    "att2",
    "att2_optimized",
    "adiamond_s",
    "hurfin_raynal",
    "chandra_toueg",
)


#: Stock sweep profiles: named multi-grid experiment presets for the CLI.
#: ``large`` is the established large-n configuration — n ∈ {25, 50} at
#: t just under n/3 with the long horizons the stock formula derives (30
#: and 54 rounds); family counts shrink with n so the whole profile
#: stays a minutes-not-hours run on one machine.  ``xlarge`` is the
#: n = 100 milestone the round-view delivery pipeline exists for: one
#: instance per family at horizon 102, the stock harness for scaling
#: studies of the t + 2-round price of indulgence (a smoke CI lane runs
#: it under a wall-clock budget so n = 100 regressions fail fast).
#: ``xxlarge`` is the bitset data plane's milestone — n = 250 with t
#: *pinned* at the xlarge value (rounds-to-decide scales with t, so
#: holding t isolates the per-round data-plane cost that n² drives);
#: run it with the process-pool backend and ``--spool`` so the driver's
#: memory stays bounded by one record.
SWEEP_PROFILES = ("large", "xlarge", "xxlarge")


def profile_grids(
    profile: str, *, seed: int = 0
) -> list[tuple[str, GridSpec]]:
    """The labelled grids of a named sweep profile (see ``--profile``).

    Returns ``(label, grid)`` pairs; the CLI runs them as one combined
    sweep (indices offset per grid, workloads prefixed with the label)
    so the export is a single mergeable file.
    """
    if profile == "large":
        return [
            ("n25", default_sweep_grid(25, 8, seed=seed,
                                       cases_per_family=4)),
            ("n50", default_sweep_grid(50, 16, seed=seed,
                                       cases_per_family=2)),
        ]
    if profile == "xlarge":
        return [
            ("n100", default_sweep_grid(100, 32, seed=seed,
                                        cases_per_family=1)),
        ]
    if profile == "xxlarge":
        return [
            ("n250", default_sweep_grid(250, 32, seed=seed,
                                        cases_per_family=1)),
        ]
    raise GridError(
        f"unknown sweep profile {profile!r}; known: "
        + ", ".join(SWEEP_PROFILES)
    )


def default_sweep_grid(
    n: int = 5,
    t: int = 2,
    *,
    seed: int = 0,
    algorithms: tuple[str, ...] = DEFAULT_SWEEP_ALGORITHMS,
    cases_per_family: int = 12,
    proposal_mode: str = "random",
) -> GridSpec:
    """The CLI's stock grid: seeded families plus the structured workloads.

    With the defaults this expands to ``5 algorithms × (12 + 6 + 6 seeded
    + 5 structured) = 145`` cases, comfortably above the 100-case floor
    the engine is benchmarked at.
    """
    horizon = max(12, 3 * t + 6)
    families = (
        family("es", "random_es", count=cases_per_family, horizon=horizon),
        family("scs", "random_scs", count=max(1, cases_per_family // 2),
               horizon=horizon),
        family("serial", "random_serial", count=max(1, cases_per_family // 2),
               horizon=horizon),
        family("failure_free", "failure_free", horizon=horizon),
        family("cascade", "cascade", horizon=horizon),
        family("hiding_chain", "hiding_chain", horizon=horizon),
        family("killer2", "killer", horizon=horizon, rounds_per_cycle=2),
        family("killer3", "killer", horizon=horizon, rounds_per_cycle=3),
    )
    return GridSpec(
        n=n,
        t=t,
        algorithms=algorithms,
        families=families,
        seed=seed,
        proposal_mode=proposal_mode,
    )
