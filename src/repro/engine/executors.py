"""Pluggable execution backends for the batch engine.

The engine's unit of work is one :class:`~repro.engine.cases.Case`; an
*executor* is any object with a ``map_cases(cases)`` method yielding
``(case index, record)`` pairs, in **any** order.  The runner
(:mod:`repro.engine.runner`) re-sorts the collected stream by case index,
so an executor's scheduling policy is never observable in the output —
that is the determinism contract that makes backends interchangeable.

Three backends ship with the engine:

* :class:`SerialExecutor` — inline, in-process, zero overhead; the
  reference implementation every other backend must match byte-for-byte.
* :class:`ProcessExecutor` — a ``multiprocessing`` pool.  Cases cross a
  pipe, so they must be picklable; cases carrying an explicit in-process
  ``factory`` (the legacy :mod:`repro.analysis.sweep` path) are split
  off and executed inline while everything else still runs on the pool.
* :class:`ThreadExecutor` — a ``concurrent.futures.ThreadPoolExecutor``.
  Threads share the interpreter, so explicit factories are fine; the GIL
  bounds speedup for the pure-Python kernel, but the backend is the right
  shape for I/O-heavy executors (and exercises the protocol without
  pickling).

:func:`resolve_executor` maps the CLI's ``--backend`` names to instances;
:func:`resolve_workers` clamps requested pool sizes.  Distributed
sharding composes with any backend: a :class:`~repro.engine.grids.ShardSpec`
slices the expanded grid, each shard runs under whatever executor its
machine prefers, and :meth:`~repro.engine.results.BatchResult.merge`
recombines the exports canonically.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Protocol, Sequence

from repro.analysis.sweep import SweepRecord, run_case
from repro.engine.cases import Case
from repro.errors import ReproError

#: CLI names of the stock backends, in documentation order.
BACKENDS = ("serial", "processes", "threads")


class ExecutorError(ReproError):
    """An unusable executor configuration (unknown backend, bad pool size)."""


class Executor(Protocol):
    """The execution-backend protocol.

    ``name`` identifies the backend in CLI output and logs; ``map_cases``
    executes every case and yields ``(case index, record)`` pairs in any
    order it likes.  Implementations must be pure transports: the record
    for a case is produced by :func:`execute_case` (or an equivalent
    computation), never altered in flight.
    """

    name: str

    def map_cases(
        self, cases: Sequence[Case]
    ) -> Iterator[tuple[int, SweepRecord]]: ...


def execute_case(case: Case) -> tuple[int, SweepRecord]:
    """Run one case and return its (index, record) pair.

    Module-level (not a closure) so a multiprocessing pool can pickle it.
    The record is stamped with the case's index, making record streams
    self-describing for order-independent recombination.
    """
    record, _trace = run_case(
        case.algorithm,
        case.resolve_factory(),
        case.workload,
        case.schedule,
        list(case.proposals),
        trace_mode=case.trace,
    )
    return case.index, replace(record, case_index=case.index)


def resolve_workers(workers: int | None, n_cases: int) -> int:
    """Clamp a requested worker count to something sensible.

    ``None`` or 0 auto-sizes to the machine (capped at 8 — the per-case
    work is small, so more workers mostly add IPC overhead).
    """
    if workers is None or workers <= 0:
        workers = min(8, os.cpu_count() or 1)
    return max(1, min(workers, n_cases))


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, no re-import) where the platform offers it."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


@dataclass(frozen=True)
class SerialExecutor:
    """Inline in-process execution — the reference backend."""

    name = "serial"

    def map_cases(
        self, cases: Sequence[Case]
    ) -> Iterator[tuple[int, SweepRecord]]:
        for case in cases:
            yield execute_case(case)


@dataclass(frozen=True)
class ProcessExecutor:
    """A ``multiprocessing`` pool backend.

    ``workers=None`` auto-sizes to the machine.  Cases carrying an
    explicit in-process factory (unpicklable in general) are partitioned
    out and executed inline, so one legacy case no longer forces the
    whole batch onto the serial path; the pool runs everything else.
    Falls back to serial entirely when the pool cannot help: a single
    worker or fewer than two poolable cases.

    Pool results are drained *inside* the pool context and forwarded
    afterwards, so the pool is torn down deterministically even when the
    consumer abandons the iterator mid-stream (an exception while
    merging records must not leave worker processes alive until GC).
    """

    workers: int | None = None
    name = "processes"

    def map_cases(
        self, cases: Sequence[Case]
    ) -> Iterator[tuple[int, SweepRecord]]:
        cases = list(cases)
        workers = resolve_workers(self.workers, len(cases))
        inline = [case for case in cases if case.factory is not None]
        poolable = [case for case in cases if case.factory is None]
        if workers <= 1 or len(poolable) < 2:
            yield from SerialExecutor().map_cases(cases)
            return
        context = _pool_context()
        chunksize = max(1, len(poolable) // (workers * 4))
        with context.Pool(processes=min(workers, len(poolable))) as pool:
            drained = list(
                pool.imap_unordered(
                    execute_case, poolable, chunksize=chunksize
                )
            )
        pool.join()
        yield from drained
        yield from SerialExecutor().map_cases(inline)


@dataclass(frozen=True)
class ThreadExecutor:
    """A ``concurrent.futures.ThreadPoolExecutor`` backend.

    Shares the interpreter, so explicit in-process factories execute
    fine; the GIL bounds speedup for the CPU-bound kernel, but the
    backend exercises the executor protocol without any pickling and is
    the right shape for future I/O-bound executors.
    """

    workers: int | None = None
    name = "threads"

    def map_cases(
        self, cases: Sequence[Case]
    ) -> Iterator[tuple[int, SweepRecord]]:
        from concurrent.futures import ThreadPoolExecutor

        cases = list(cases)
        workers = resolve_workers(self.workers, len(cases))
        if workers <= 1 or len(cases) < 2:
            yield from SerialExecutor().map_cases(cases)
            return
        # Drain inside the with block: yielding lazily from inside the
        # context would keep the pool alive until GC whenever a consumer
        # abandons the iterator mid-stream (ORC003, the PR 6 bug class).
        with ThreadPoolExecutor(max_workers=workers) as pool:
            drained = list(pool.map(execute_case, cases))
        yield from drained


def resolve_executor(backend: str, *, workers: int | None = None) -> Executor:
    """An executor instance for a CLI-style *backend* name.

    ``workers`` is forwarded to pool backends (``None`` auto-sizes) and
    rejected for ``serial`` only if greater than one — asking for a
    parallel serial run is a configuration error, not a silent downgrade.
    """
    if backend == "serial":
        if workers is not None and workers > 1:
            raise ExecutorError(
                f"the serial backend runs one case at a time; "
                f"workers={workers} makes no sense (use processes/threads)"
            )
        return SerialExecutor()
    if backend == "processes":
        return ProcessExecutor(workers=workers)
    if backend == "threads":
        return ThreadExecutor(workers=workers)
    raise ExecutorError(
        f"unknown backend {backend!r}; known: " + ", ".join(BACKENDS)
    )


def executor_from_workers(workers: int | None) -> Executor:
    """The legacy ``workers=`` shim's mapping onto executors.

    Preserves the historical semantics of the bare integer: ``1`` meant
    serial, ``0``/``None`` meant an auto-sized pool, ``N > 1`` a pool of
    N — so call sites migrating from ``workers=`` to ``executor=`` get
    byte-identical behavior.
    """
    if workers == 1:
        return SerialExecutor()
    return ProcessExecutor(workers=None if workers in (None, 0) else workers)
