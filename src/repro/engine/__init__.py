"""The batch execution engine.

Declarative case grids (:mod:`repro.engine.grids`), expanded into concrete
:class:`~repro.engine.cases.Case` lists and executed by
:mod:`repro.engine.runner` on a pluggable execution backend
(:mod:`repro.engine.executors`: serial, process-pool or thread-pool —
anything satisfying the :class:`~repro.engine.executors.Executor`
protocol), with records aggregated into
:class:`~repro.engine.results.BatchResult`.  Every backend produces
identical record sequences for the same grid; see the runner module
docstring for the determinism contract.

Grids serialize to versioned JSON files
(:meth:`~repro.engine.grids.GridSpec.to_data` / ``from_data``), a
:class:`~repro.engine.grids.ShardSpec` slices an expanded grid
deterministically for distributed fan-out, and
:meth:`~repro.engine.results.BatchResult.merge` recombines shard exports
canonically.  A :class:`~repro.engine.cache.ResultCache` can be threaded
through the runners so repeated grids only execute cache misses.
"""

from repro.engine.cache import ResultCache, cache_gc, cache_stats
from repro.engine.cases import Case, cases_from
from repro.engine.executors import (
    BACKENDS,
    Executor,
    ExecutorError,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    execute_case,
    resolve_executor,
    resolve_workers,
)
from repro.engine.grids import (
    DEFAULT_SWEEP_ALGORITHMS,
    GRID_FORMAT_VERSION,
    SWEEP_PROFILES,
    FamilySpec,
    GridError,
    GridSpec,
    ShardSpec,
    case_seed,
    default_sweep_grid,
    expand_family,
    expand_grid,
    family,
    profile_grids,
)
from repro.engine.results import AlgorithmSummary, BatchResult
from repro.engine.runner import run_batch, run_cases, stream_batch
from repro.engine.sink import JsonlRecordSink, RecordSink, read_spool

__all__ = [
    "BACKENDS",
    "Case",
    "Executor",
    "ExecutorError",
    "FamilySpec",
    "GridSpec",
    "GridError",
    "GRID_FORMAT_VERSION",
    "AlgorithmSummary",
    "BatchResult",
    "ProcessExecutor",
    "ResultCache",
    "SerialExecutor",
    "ShardSpec",
    "ThreadExecutor",
    "DEFAULT_SWEEP_ALGORITHMS",
    "SWEEP_PROFILES",
    "cache_gc",
    "cache_stats",
    "case_seed",
    "cases_from",
    "default_sweep_grid",
    "expand_family",
    "expand_grid",
    "family",
    "profile_grids",
    "execute_case",
    "resolve_executor",
    "resolve_workers",
    "run_batch",
    "run_cases",
    "stream_batch",
    "JsonlRecordSink",
    "RecordSink",
    "read_spool",
]
