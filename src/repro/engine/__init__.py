"""The batch execution engine.

Declarative case grids (:mod:`repro.engine.grids`), expanded into concrete
:class:`~repro.engine.cases.Case` lists and executed — serially or across
a ``multiprocessing`` worker pool — by :mod:`repro.engine.runner`, with
records aggregated into :class:`~repro.engine.results.BatchResult`.
Parallel and serial execution of the same grid produce identical record
sequences; see the runner module docstring for the determinism contract.
A :class:`~repro.engine.cache.ResultCache` can be threaded through the
runners so repeated grids only execute cache misses.
"""

from repro.engine.cache import ResultCache
from repro.engine.cases import Case, cases_from
from repro.engine.grids import (
    DEFAULT_SWEEP_ALGORITHMS,
    FamilySpec,
    GridError,
    GridSpec,
    case_seed,
    default_sweep_grid,
    expand_family,
    expand_grid,
    family,
)
from repro.engine.results import AlgorithmSummary, BatchResult
from repro.engine.runner import (
    execute_case,
    resolve_workers,
    run_batch,
    run_cases,
)

__all__ = [
    "Case",
    "FamilySpec",
    "GridSpec",
    "GridError",
    "AlgorithmSummary",
    "BatchResult",
    "ResultCache",
    "DEFAULT_SWEEP_ALGORITHMS",
    "case_seed",
    "cases_from",
    "default_sweep_grid",
    "expand_family",
    "expand_grid",
    "family",
    "execute_case",
    "resolve_workers",
    "run_batch",
    "run_cases",
]
