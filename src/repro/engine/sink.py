"""Record sinks: streaming sweep records out of the driver's memory.

Up to the n = 100 milestone every sweep materialized its complete
:class:`~repro.engine.results.BatchResult` in the driver process before
a single byte reached disk.  That is the wrong shape for ``--profile
xxlarge``: the driver's memory should be bounded by *one* record, not by
the grid, and a run killed half-way should leave every finished case on
disk instead of nothing.

A :class:`RecordSink` is the engine-side half of that contract — any
object with ``append(record)`` / ``close()``.  The runner
(:func:`repro.engine.runner.stream_batch`) and the orchestrator feed
every produced :class:`~repro.analysis.sweep.SweepRecord` to the sink
the moment it arrives (cache hits first, then executor completions, in
whatever order the pool finishes), and hold nothing back.

:class:`JsonlRecordSink` is the stock implementation: an append-only
JSONL *spool* — one canonically serialized record per line, flushed per
append, so the file is crash-consistent by construction.  The spool is
**unordered** (completion order is nondeterministic under a pool); the
canonical order is restored when the spool is read back:
:func:`read_spool` streams the records and tolerates a torn final line
— the signature of a driver killed mid-write — so a partial spool always
recovers as a clean partial result, and
:meth:`BatchResult.load <repro.engine.results.BatchResult.load>` (which
sniffs the spool format) re-sorts by ``case_index`` into exactly the
bytes the in-memory path would have exported.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Iterator, Protocol, runtime_checkable

from repro.analysis.sweep import SweepRecord

__all__ = [
    "RecordSink",
    "JsonlRecordSink",
    "read_spool",
    "record_to_line",
]


@runtime_checkable
class RecordSink(Protocol):
    """The record-streaming protocol.

    ``append`` receives each record as it is produced — in completion
    order, which under a pool backend is nondeterministic; records carry
    their ``case_index``, so canonical order is recoverable downstream.
    ``close`` flushes and releases whatever the sink holds; appending
    after close is an error.  Sinks must be durable incrementally: a
    driver killed between two appends must leave every previously
    appended record readable.
    """

    def append(self, record: SweepRecord) -> None: ...

    def close(self) -> None: ...


def record_to_line(record: SweepRecord) -> str:
    """One record as its canonical single-line JSON (no trailing newline).

    The same key-sorted serialization ``BatchResult.to_json`` uses for
    the ``records`` array, so a spool line and an export entry are the
    same bytes modulo whitespace.
    """
    return json.dumps(asdict(record), sort_keys=True)


class JsonlRecordSink:
    """An append-only JSONL spool on disk — one record per line.

    Opens the path in append mode (a retried driver continues an
    existing spool rather than truncating it) and flushes every line, so
    the spool never holds more than the line being written in volatile
    state.  Use as a context manager or call :meth:`close` explicitly.
    """

    def __init__(self, path: str):
        self.path = path
        self.count = 0
        self._handle = open(path, "a", encoding="utf-8")

    def append(self, record: SweepRecord) -> None:
        self._handle.write(record_to_line(record))
        self._handle.write("\n")
        self._handle.flush()
        self.count += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlRecordSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_spool(path: str) -> Iterator[SweepRecord]:
    """Stream the records of a JSONL spool, tolerating a torn tail.

    A driver killed mid-append leaves at most one incomplete final line;
    that line is silently dropped — the spool then reads as the clean
    partial result of every record that finished.  A malformed line
    *followed by* further records is not a torn tail but corruption, and
    raises ``ValueError`` naming the line.
    """
    pending_error: str | None = None
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if pending_error is not None:
                raise ValueError(pending_error)
            stripped = line.strip()
            if not stripped:
                continue
            try:
                data = json.loads(stripped)
                record = SweepRecord(**data)
            except (ValueError, TypeError):
                # Only legal as the last line (torn by a mid-write kill);
                # defer the verdict until we know whether more follows.
                pending_error = (
                    f"{path}:{lineno}: malformed spool line is not the "
                    f"final line — the spool is corrupt, not torn"
                )
                continue
            yield record
