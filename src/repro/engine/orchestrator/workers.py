"""Worker inventory for the distributed sweep orchestrator.

A :class:`WorkerSpec` names one machine slot the orchestrator may launch
shards on: either a **local** subprocess worker (``host`` empty) or a
**remote** SSH worker (``host`` set, with the repository checkout path
that shard commands should run from).  Workers are plain frozen data —
the execution mechanics live in :mod:`repro.engine.orchestrator.backends`.

Inventories come from a **workers file** (conventionally ``hosts.toml``):

.. code-block:: toml

    # Optional defaults applied to every worker that omits the key.
    [defaults]
    python = "python3"
    repo = "/srv/repro"

    [[workers]]
    name = "local-a"          # optional; defaults to host or local-<i>

    [[workers]]
    name = "big-box"
    host = "node1.example.com"
    python = "python3.12"
    repo = "/home/sweeps/repro"

Parsing uses :mod:`tomllib` where the interpreter ships it (3.11+); on
older interpreters a built-in fallback parser reads exactly the subset
above (``[defaults]``, repeated ``[[workers]]`` tables, ``key = "value"``
string pairs, comments and blank lines) so a cluster can mix Python
versions without anyone installing a TOML package.  Validation is strict
either way — unknown keys, duplicate names and non-string values all
raise :class:`OrchestratorError`, because a typo in a hosts file must
never silently drop a machine from the sweep.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ReproError

try:  # stdlib since 3.11; the fallback parser covers 3.10
    import tomllib
except ImportError:  # pragma: no cover - exercised via monkeypatch
    tomllib = None  # type: ignore[assignment]

#: Keys a worker table may carry (everything optional but ``name``/
#: ``host`` — a table may even be empty, yielding an anonymous local
#: worker).
_WORKER_KEYS = ("name", "host", "python", "repo")

#: Keys the ``[defaults]`` table may carry (no per-machine identity).
_DEFAULT_KEYS = ("python", "repo")


class OrchestratorError(ReproError):
    """An unusable orchestrator configuration or a failed orchestration."""


@dataclass(frozen=True)
class WorkerSpec:
    """One machine slot the orchestrator can launch shards on.

    Attributes:
        name: unique label used in events, reports and reassignment
            bookkeeping.
        host: SSH destination (``user@host`` accepted); empty for a
            local subprocess worker.
        python: interpreter to invoke on the worker (local workers
            default to ``sys.executable`` at launch time).
        repo: repository checkout to run from — required for remote
            workers (the shard command ``cd``s there), ignored for
            local ones, which inherit the orchestrator's environment.
    """

    name: str
    host: str = ""
    python: str = ""
    repo: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise OrchestratorError("worker needs a non-empty name")
        if self.host and not self.repo:
            raise OrchestratorError(
                f"remote worker {self.name!r} needs repo= (the checkout "
                f"path to run shards from)"
            )

    @property
    def is_remote(self) -> bool:
        return bool(self.host)

    def describe(self) -> str:
        return f"{self.name} ({'ssh ' + self.host if self.host else 'local'})"


def local_workers(count: int) -> list[WorkerSpec]:
    """*count* anonymous local subprocess workers (``--local N``)."""
    if count < 1:
        raise OrchestratorError(f"need at least one worker, got {count}")
    return [WorkerSpec(name=f"local-{i}") for i in range(count)]


def workers_from_data(data: Mapping) -> list[WorkerSpec]:
    """Validated workers from parsed hosts-file data (strict; see module)."""
    if not isinstance(data, Mapping):
        raise OrchestratorError(
            f"workers file must be a table, got {type(data).__name__}"
        )
    unknown = sorted(set(data) - {"workers", "defaults"})
    if unknown:
        raise OrchestratorError(
            f"unknown workers-file keys {unknown}; known: defaults, workers"
        )
    defaults = data.get("defaults", {})
    if not isinstance(defaults, Mapping):
        raise OrchestratorError("[defaults] must be a table")
    bad = sorted(set(defaults) - set(_DEFAULT_KEYS))
    if bad:
        raise OrchestratorError(
            f"unknown [defaults] keys {bad}; known: "
            + ", ".join(_DEFAULT_KEYS)
        )
    entries = data.get("workers")
    if not isinstance(entries, Sequence) or isinstance(entries, (str, bytes)):
        raise OrchestratorError(
            "workers file needs at least one [[workers]] table"
        )
    workers: list[WorkerSpec] = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, Mapping):
            raise OrchestratorError(f"[[workers]] entry {i} is not a table")
        bad = sorted(set(entry) - set(_WORKER_KEYS))
        if bad:
            raise OrchestratorError(
                f"worker entry {i}: unknown keys {bad}; known: "
                + ", ".join(_WORKER_KEYS)
            )
        merged = {**defaults, **entry}
        for key, value in merged.items():
            if not isinstance(value, str):
                raise OrchestratorError(
                    f"worker entry {i}: {key!r} must be a string, "
                    f"got {value!r}"
                )
        host = merged.get("host", "")
        name = merged.get("name") or host or f"local-{i}"
        workers.append(
            WorkerSpec(
                name=name,
                host=host,
                python=merged.get("python", ""),
                repo=merged.get("repo", ""),
            )
        )
    if not workers:
        raise OrchestratorError(
            "workers file needs at least one [[workers]] table"
        )
    names = [worker.name for worker in workers]
    duplicates = sorted({name for name in names if names.count(name) > 1})
    if duplicates:
        raise OrchestratorError(
            f"duplicate worker names {duplicates}: names key reassignment "
            f"bookkeeping and must be unique"
        )
    return workers


def load_workers_file(path: str) -> list[WorkerSpec]:
    """Parse and validate a hosts file (``OrchestratorError`` on bad data)."""
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise OrchestratorError(f"cannot read workers file {path!r}: {exc}")
    if tomllib is not None:
        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise OrchestratorError(
                f"workers file {path!r} is not valid TOML: {exc}"
            )
    else:
        data = _parse_minimal_toml(raw.decode("utf-8", errors="replace"))
    return workers_from_data(data)


# -- the 3.10 fallback parser ----------------------------------------------

_SECTION_RE = re.compile(r"^\[\[\s*([A-Za-z0-9_-]+)\s*\]\]$")
_TABLE_RE = re.compile(r"^\[\s*([A-Za-z0-9_-]+)\s*\]$")
_PAIR_RE = re.compile(
    r"""^([A-Za-z0-9_-]+)\s*=\s*"([^"]*)"\s*(?:#.*)?$"""
)


def _parse_minimal_toml(text: str) -> dict:
    """The hosts-file TOML subset, for interpreters without :mod:`tomllib`.

    Supports ``[defaults]``, repeated ``[[workers]]`` array tables and
    double-quoted ``key = "value"`` string pairs; comments and blank
    lines are skipped.  Anything else is a loud
    :class:`OrchestratorError` naming the offending line — the fallback
    must never *mis*read a file the real parser would accept.
    """
    data: dict = {}
    current: dict | None = None
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        section = _SECTION_RE.match(line)
        if section:
            current = {}
            data.setdefault(section.group(1), []).append(current)
            continue
        table = _TABLE_RE.match(line)
        if table:
            current = data.setdefault(table.group(1), {})
            if not isinstance(current, dict):
                raise OrchestratorError(
                    f"workers file line {lineno}: table {table.group(1)!r} "
                    f"conflicts with an earlier [[...]] array table"
                )
            continue
        pair = _PAIR_RE.match(line)
        if pair:
            if current is None:
                raise OrchestratorError(
                    f"workers file line {lineno}: key outside any table"
                )
            current[pair.group(1)] = pair.group(2)
            continue
        raise OrchestratorError(
            f"workers file line {lineno} is not in the supported subset "
            f"(tables, [[workers]], key = \"value\"): {line!r}"
        )
    return data
