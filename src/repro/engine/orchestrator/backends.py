"""Worker execution backends for the sweep orchestrator.

A *worker backend* knows how to run one shard of a grid on one
:class:`~repro.engine.orchestrator.workers.WorkerSpec` and hand the
shard's :class:`~repro.engine.results.BatchResult` back to the driver:

.. code-block:: python

    class WorkerBackend(Protocol):
        async def run_shard(worker, shard, attempt) -> BatchResult: ...
        async def warm(worker) -> None: ...          # optional cache warm
        async def probe(worker) -> bool: ...         # heartbeat liveness

Two implementations ship here, behind the same interface:

* :class:`LocalWorkerBackend` — each attempt is one
  ``python -m repro sweep --shard I/N --json <file>`` subprocess; the
  shard export is read back from the file.  This is both the production
  single-machine fan-out (workers = processes) and the substrate the
  failure-path tests inject faults into.
* :class:`SSHWorkerBackend` — the same shard command wrapped in
  ``ssh`` against the worker's checkout; the export streams back over
  stdout, so one connection per attempt suffices.

Every attempt is **idempotent** by the engine's determinism contract: a
shard re-run after a crash produces byte-identical records, so the
driver may retry and reassign freely.  A shared ``--cache`` directory
makes re-runs cheap too — whatever cases the dead attempt finished are
warm hits for its successor.

Shard exports are accepted whenever the output parses as a valid batch
export, regardless of the worker's exit status: ``repro sweep`` exits 1
on *safety violations*, which are genuine results, not infrastructure
failures.  Missing or truncated output (a worker killed mid-write) is a
:class:`ShardFailure`, which the driver turns into a retry.
"""

from __future__ import annotations

import asyncio
import os
import shlex
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Protocol

from repro.engine.grids import ShardSpec
from repro.engine.results import BatchResult
from repro.engine.orchestrator.workers import OrchestratorError, WorkerSpec


class ShardFailure(OrchestratorError):
    """One shard attempt failed (bad exit, missing/invalid export, kill)."""


class WorkerBackend(Protocol):
    """The orchestrator's worker-execution interface."""

    async def run_shard(
        self, worker: WorkerSpec, shard: ShardSpec, attempt: int
    ) -> BatchResult: ...

    async def warm(self, worker: WorkerSpec) -> None: ...

    async def probe(self, worker: WorkerSpec) -> bool: ...


def _child_env() -> dict:
    """The orchestrator's environment with this repro import path pinned.

    Local shard subprocesses must resolve the same ``repro`` package the
    orchestrator runs, whatever the caller's working directory; the
    package's parent directory is prepended to ``PYTHONPATH``.
    """
    env = dict(os.environ)
    import repro

    src = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH", "")
    if src not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src + (os.pathsep + existing if existing else "")
        )
    return env


def sweep_argv(
    grid_args: tuple[str, ...],
    shard: ShardSpec,
    json_path: str,
    *,
    backend: str = "serial",
    trace: str = "lean",
    cache: str = "",
) -> list[str]:
    """The ``repro sweep`` argument vector one shard attempt runs.

    ``grid_args`` is the grid-selecting prefix (``--grid PATH`` or
    ``--profile NAME [--seed N]``) passed through verbatim, so workers
    expand exactly the grid the orchestrator planned — the byte-identity
    of the merged export rests on every worker agreeing on the
    expansion.
    """
    argv = [
        "-m", "repro", "sweep",
        *grid_args,
        "--shard", f"{shard.index}/{shard.count}",
        "--backend", backend,
        "--trace", trace,
        "--json", json_path,
    ]
    if cache:
        argv += ["--cache", cache]
    return argv


async def _run_process(
    argv: list[str],
    *,
    env: Mapping | None = None,
    kill_after: float | None = None,
) -> tuple[int, bytes, bytes]:
    """Run *argv*, returning ``(returncode, stdout, stderr)``.

    The subprocess is killed — deterministically, not at GC — when the
    surrounding task is cancelled (driver timeout or a heartbeat-dead
    worker).  ``kill_after`` is the fault-injection hook: the process is
    SIGKILLed after that many seconds, simulating a worker dying
    mid-shard.
    """
    proc = await asyncio.create_subprocess_exec(
        *argv,
        stdout=asyncio.subprocess.PIPE,
        stderr=asyncio.subprocess.PIPE,
        env=dict(env) if env is not None else None,
    )
    killer = None
    if kill_after is not None:
        async def _kill_later() -> None:
            await asyncio.sleep(kill_after)
            if proc.returncode is None:
                proc.kill()

        killer = asyncio.ensure_future(_kill_later())
    try:
        stdout, stderr = await proc.communicate()
    except asyncio.CancelledError:
        if proc.returncode is None:
            proc.kill()
            await proc.wait()
        raise
    finally:
        if killer is not None:
            killer.cancel()
    return proc.returncode, stdout, stderr


def _tail(blob: bytes, limit: int = 400) -> str:
    text = blob.decode("utf-8", errors="replace").strip()
    return text[-limit:] if len(text) > limit else text


@dataclass
class LocalWorkerBackend:
    """Shard attempts as local ``repro sweep`` subprocesses.

    Attributes:
        grid_args: grid-selecting CLI prefix forwarded to every worker
            (see :func:`sweep_argv`).
        workdir: directory shard exports are written into (one file per
            attempt, so a killed attempt can never corrupt its
            successor's output).
        cache: optional shared result-cache directory forwarded as
            ``--cache`` — retried shards warm-hit everything a dead
            predecessor finished.
        trace: kernel trace mode for workers (records are byte-identical
            either way).
        worker_backend: execution backend *inside* each worker process
            (default serial: with one worker process per machine slot,
            the orchestrator already owns the parallelism).
        chaos_kill: fault-injection knob — shard indices whose *first*
            attempt is SIGKILLed mid-run (used by tests and the CI
            lane's forced-retry check; harmless in production).
        chaos_kill_delay: seconds before the injected kill fires.
    """

    grid_args: tuple[str, ...]
    workdir: str | os.PathLike
    cache: str = ""
    trace: str = "lean"
    worker_backend: str = "serial"
    chaos_kill: frozenset[int] = frozenset()
    chaos_kill_delay: float = 0.25
    _env: dict = field(default_factory=_child_env, repr=False)

    def _attempt_path(
        self, worker: WorkerSpec, shard: ShardSpec, attempt: int
    ) -> Path:
        return Path(self.workdir) / (
            f"shard{shard.index:04d}-of{shard.count}"
            f"-attempt{attempt}-{worker.name}.json"
        )

    async def run_shard(
        self, worker: WorkerSpec, shard: ShardSpec, attempt: int
    ) -> BatchResult:
        out = self._attempt_path(worker, shard, attempt)
        out.parent.mkdir(parents=True, exist_ok=True)
        argv = [worker.python or sys.executable] + sweep_argv(
            self.grid_args,
            shard,
            str(out),
            backend=self.worker_backend,
            trace=self.trace,
            cache=self.cache,
        )
        kill_after = (
            self.chaos_kill_delay
            if shard.index in self.chaos_kill and attempt == 1
            else None
        )
        returncode, _stdout, stderr = await _run_process(
            argv, env=self._env, kill_after=kill_after
        )
        try:
            return BatchResult.load(str(out))
        except (OSError, ValueError, TypeError, KeyError) as exc:
            raise ShardFailure(
                f"shard {shard.index}/{shard.count} on {worker.name}: "
                f"no usable export (exit {returncode}; {exc}); "
                f"stderr: {_tail(stderr) or '<empty>'}"
            )

    async def warm(self, worker: WorkerSpec) -> None:
        """Local workers share the cache directory — warming is free."""
        return None

    async def probe(self, worker: WorkerSpec) -> bool:
        """The local machine is, by construction, reachable."""
        return True


@dataclass
class SSHWorkerBackend(LocalWorkerBackend):
    """Shard attempts over SSH, same interface and knobs as local.

    One connection per attempt: the remote command runs the shard with
    its export going to a file under the worker's checkout, then
    streams the file back over stdout (human-readable sweep output goes
    to stderr).  ``ssh_options`` defaults to ``BatchMode=yes`` so a
    worker with broken auth fails fast instead of prompting.
    """

    ssh_options: tuple[str, ...] = ("-oBatchMode=yes",)
    probe_timeout: float = 10.0

    def _remote_command(
        self, worker: WorkerSpec, shard: ShardSpec, attempt: int
    ) -> str:
        remote_out = (
            f"{worker.repo}/.orchestrate-shard{shard.index}"
            f"-attempt{attempt}.json"
        )
        argv = [worker.python or "python3"] + sweep_argv(
            self.grid_args,
            shard,
            remote_out,
            backend=self.worker_backend,
            trace=self.trace,
            cache=self.cache,
        )
        run = " ".join(shlex.quote(part) for part in argv)
        return (
            f"cd {shlex.quote(worker.repo)} && "
            f"PYTHONPATH=src {run} 1>&2 && "
            f"cat {shlex.quote(remote_out)} && "
            f"rm -f {shlex.quote(remote_out)}"
        )

    async def run_shard(
        self, worker: WorkerSpec, shard: ShardSpec, attempt: int
    ) -> BatchResult:
        if not worker.is_remote:
            return await super().run_shard(worker, shard, attempt)
        argv = [
            "ssh", *self.ssh_options, worker.host,
            self._remote_command(worker, shard, attempt),
        ]
        returncode, stdout, stderr = await _run_process(argv)
        if returncode != 0 or not stdout.strip():
            raise ShardFailure(
                f"shard {shard.index}/{shard.count} on {worker.name}: "
                f"ssh exit {returncode}; stderr: {_tail(stderr) or '<empty>'}"
            )
        import json

        try:
            return BatchResult.from_data(json.loads(stdout))
        except (ValueError, TypeError, KeyError) as exc:
            raise ShardFailure(
                f"shard {shard.index}/{shard.count} on {worker.name}: "
                f"unparseable export over ssh ({exc})"
            )

    async def warm(self, worker: WorkerSpec) -> None:
        """Ship the local cache directory to the worker (tar over ssh).

        Best-effort pre-start warm: a worker that already holds the
        entries just overwrites them with identical bytes (the cache is
        content-addressed), and a failed warm costs only recomputation.
        """
        if not worker.is_remote or not self.cache:
            return None
        remote_cache = f"{worker.repo}/.orchestrate-cache"
        argv = [
            "sh", "-c",
            f"tar -C {shlex.quote(self.cache)} -cf - . | "
            f"ssh {' '.join(self.ssh_options)} {shlex.quote(worker.host)} "
            f"'mkdir -p {shlex.quote(remote_cache)} && "
            f"tar -C {shlex.quote(remote_cache)} -xf -'",
        ]
        returncode, _stdout, stderr = await _run_process(argv)
        if returncode != 0:
            raise ShardFailure(
                f"cache warm for {worker.name} failed "
                f"(exit {returncode}): {_tail(stderr)}"
            )

    async def probe(self, worker: WorkerSpec) -> bool:
        """Heartbeat: can the worker still answer a trivial command?"""
        if not worker.is_remote:
            return True
        try:
            returncode, _stdout, _stderr = await asyncio.wait_for(
                _run_process(
                    ["ssh", *self.ssh_options, worker.host, "true"]
                ),
                self.probe_timeout,
            )
        except (asyncio.TimeoutError, OSError):
            return False
        return returncode == 0


def build_backend(
    workers: list[WorkerSpec],
    *,
    grid_args: tuple[str, ...],
    workdir: str | os.PathLike,
    cache: str = "",
    trace: str = "lean",
    worker_backend: str = "serial",
    chaos_kill: frozenset[int] = frozenset(),
) -> WorkerBackend:
    """The right backend for a worker inventory.

    All-local inventories get the plain subprocess backend; any remote
    worker upgrades the whole inventory to the SSH backend, which
    transparently runs its local members as subprocesses — one backend
    object either way, so the driver never routes.
    """
    cls = (
        SSHWorkerBackend
        if any(worker.is_remote for worker in workers)
        else LocalWorkerBackend
    )
    return cls(
        grid_args=grid_args,
        workdir=workdir,
        cache=cache,
        trace=trace,
        worker_backend=worker_backend,
        chaos_kill=chaos_kill,
    )
