"""The asyncio driver that owns a distributed sweep's lifecycle.

:func:`orchestrate` (sync wrapper over :func:`orchestrate_async`) plans
``shard_count`` round-robin shards of a grid, launches them on a worker
inventory through a :class:`~repro.engine.orchestrator.backends.WorkerBackend`,
and folds each shard's export into the running
:class:`~repro.engine.results.BatchResult` **as it completes** via
:meth:`BatchResult.merge` — the merged result exists incrementally, not
only at the end, and the merge itself enforces that no shard is ever
double-counted (overlapping case indices raise).

Robustness model:

* **Per-attempt timeout** — an attempt that exceeds ``timeout`` seconds
  is cancelled (the backend kills its subprocess) and counts as a
  failure.
* **Retry with exponential backoff** — a failed shard is requeued after
  ``backoff * 2**(attempt-1)`` seconds, up to ``retries`` retries
  (``retries + 1`` total attempts).
* **Reassignment** — a retried shard remembers which workers already
  failed it and prefers a fresh worker while one exists; once every
  worker has failed a shard, anyone may try again.
* **Heartbeat liveness** — a monitor probes every worker with an
  in-flight attempt each ``heartbeat`` seconds (``WorkerBackend.probe``;
  SSH workers answer a trivial remote command).  A dead probe cancels
  the attempt immediately — minutes before a long timeout would — and
  the shard is reassigned.
* **Partial-failure report** — shards that exhaust their attempts are
  reported per shard (worker history and last error) in the
  :class:`OrchestrationReport`; everything that did complete is still
  merged and usable.

Correctness rests on the engine's determinism contract: a re-executed
shard produces byte-identical records (idempotence), so retries and
reassignment can never corrupt the merged output — and a shared result
cache makes them cheap, because a successor warm-hits every case its
dead predecessor already finished.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable

from repro.engine.grids import ShardSpec
from repro.engine.orchestrator.backends import ShardFailure, WorkerBackend
from repro.engine.orchestrator.workers import OrchestratorError, WorkerSpec
from repro.engine.results import BatchResult
from repro.engine.sink import RecordSink

#: Event kinds emitted to ``on_event`` (CLI progress, test assertions).
EVENT_KINDS = (
    "warm", "launch", "complete", "retry", "fail",
    "heartbeat", "worker-dead",
)


@dataclass(frozen=True)
class OrchestratorEvent:
    """One observable step of an orchestration, for progress streams."""

    kind: str
    detail: str
    shard: int | None = None
    worker: str | None = None
    attempt: int | None = None

    def describe(self) -> str:
        where = ""
        if self.shard is not None:
            where = f"shard {self.shard}"
            if self.attempt is not None:
                where += f" attempt {self.attempt}"
            if self.worker:
                where += f" on {self.worker}"
            where += ": "
        elif self.worker:
            where = f"{self.worker}: "
        return f"[{self.kind}] {where}{self.detail}"


OnEvent = Callable[[OrchestratorEvent], None]


@dataclass(frozen=True)
class ShardOutcome:
    """Terminal fate of one shard: completed or failed, after how much."""

    shard: int
    status: str  # "completed" | "failed"
    worker: str  # the worker of the final attempt
    attempts: int
    cases: int = 0
    error: str = ""
    workers_tried: tuple[str, ...] = ()


@dataclass(frozen=True)
class OrchestrationReport:
    """Everything an orchestration produced, including what it couldn't.

    ``result`` holds the merged records of every *completed* shard; when
    ``complete`` is false, it is a usable partial result and ``failed``
    lists exactly which shards are missing, with their attempt history —
    re-running just those shards (``repro sweep --shard I/N``) and
    merging is always a valid recovery, because shard execution is
    idempotent.
    """

    result: BatchResult
    outcomes: tuple[ShardOutcome, ...]
    shard_count: int

    @property
    def completed(self) -> tuple[ShardOutcome, ...]:
        return tuple(o for o in self.outcomes if o.status == "completed")

    @property
    def failed(self) -> tuple[ShardOutcome, ...]:
        return tuple(o for o in self.outcomes if o.status == "failed")

    @property
    def complete(self) -> bool:
        return not self.failed

    @property
    def total_attempts(self) -> int:
        return sum(outcome.attempts for outcome in self.outcomes)

    def describe(self) -> str:
        lines = [
            f"orchestrate: {len(self.completed)}/{self.shard_count} shards "
            f"completed ({self.result.case_count} cases, "
            f"{self.total_attempts} attempts)"
        ]
        for outcome in self.failed:
            tried = ", ".join(outcome.workers_tried) or outcome.worker
            lines.append(
                f"  shard {outcome.shard}/{self.shard_count}: FAILED after "
                f"{outcome.attempts} attempts (workers: {tried}) — "
                f"{outcome.error}"
            )
        if self.failed:
            lines.append(
                "  recovery: re-run the failed shards with "
                "`repro sweep --shard I/N --json ...` and fold them in "
                "with `repro merge` — shard execution is idempotent."
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class _Attempt:
    """One queued execution attempt of one shard."""

    shard: ShardSpec
    attempt: int  # 1-based
    excluded: frozenset[str] = frozenset()
    tried: tuple[str, ...] = ()


def orchestrate(
    workers: list[WorkerSpec],
    backend: WorkerBackend,
    shard_count: int,
    *,
    retries: int = 2,
    timeout: float | None = 600.0,
    backoff: float = 0.5,
    heartbeat: float | None = 5.0,
    warm: bool = False,
    on_event: OnEvent | None = None,
    sink: RecordSink | None = None,
) -> OrchestrationReport:
    """Run a whole distributed sweep; the synchronous entry point."""
    return asyncio.run(
        orchestrate_async(
            workers,
            backend,
            shard_count,
            retries=retries,
            timeout=timeout,
            backoff=backoff,
            heartbeat=heartbeat,
            warm=warm,
            on_event=on_event,
            sink=sink,
        )
    )


async def orchestrate_async(
    workers: list[WorkerSpec],
    backend: WorkerBackend,
    shard_count: int,
    *,
    retries: int = 2,
    timeout: float | None = 600.0,
    backoff: float = 0.5,
    heartbeat: float | None = 5.0,
    warm: bool = False,
    on_event: OnEvent | None = None,
    sink: RecordSink | None = None,
) -> OrchestrationReport:
    """See :func:`orchestrate`; this is the event-loop-native form.

    ``sink`` streams every accepted shard's records to an append-only
    spool the moment the shard merges: a driver killed mid-orchestration
    leaves every completed shard durable on disk, and
    :meth:`BatchResult.load_spool
    <repro.engine.results.BatchResult.load_spool>` rebuilds the clean
    partial (the ``.partial`` recovery path).  Shards that never
    complete contribute nothing to the spool — retries re-execute them
    idempotently, so the spool can never double-count.
    """
    if not workers:
        raise OrchestratorError("orchestrate needs at least one worker")
    if shard_count < 1:
        raise OrchestratorError(
            f"shard count must be >= 1, got {shard_count}"
        )
    if retries < 0:
        raise OrchestratorError(f"retries must be >= 0, got {retries}")
    names = [worker.name for worker in workers]
    if len(names) != len(set(names)):
        raise OrchestratorError(f"duplicate worker names in {names}")

    def emit(kind: str, detail: str, **where: object) -> None:
        if on_event is not None:
            on_event(OrchestratorEvent(kind=kind, detail=detail, **where))

    max_attempts = retries + 1
    queue: asyncio.Queue = asyncio.Queue()
    for index in range(shard_count):
        queue.put_nowait(_Attempt(ShardSpec(index, shard_count), 1))

    merged = BatchResult(records=())
    outcomes: dict[int, ShardOutcome] = {}
    remaining = shard_count
    inflight: dict[str, asyncio.Future] = {}
    heartbeat_killed: set[asyncio.Future] = set()
    retry_tasks: set[asyncio.Task] = set()

    def terminal() -> None:
        nonlocal remaining
        remaining -= 1
        if remaining == 0:
            queue.put_nowait(None)  # sentinel; worker loops cascade it

    async def requeue_later(attempt: _Attempt, delay: float) -> None:
        await asyncio.sleep(delay)
        queue.put_nowait(attempt)

    def handle_failure(
        task: _Attempt, worker: WorkerSpec, reason: str
    ) -> None:
        index = task.shard.index
        tried = task.tried + (worker.name,)
        if task.attempt >= max_attempts:
            emit("fail", f"giving up after {task.attempt} attempts: "
                         f"{reason}",
                 shard=index, worker=worker.name, attempt=task.attempt)
            outcomes[index] = ShardOutcome(
                shard=index,
                status="failed",
                worker=worker.name,
                attempts=task.attempt,
                error=reason,
                workers_tried=tried,
            )
            terminal()
            return
        excluded = task.excluded | {worker.name}
        if all(name in excluded for name in names):
            # every worker has failed this shard once — let anyone retry
            excluded = frozenset()
        delay = backoff * (2 ** (task.attempt - 1))
        emit("retry", f"{reason}; retrying in {delay:g}s "
                      f"(attempt {task.attempt + 1}/{max_attempts})",
             shard=index, worker=worker.name, attempt=task.attempt)
        retry = _Attempt(
            shard=task.shard,
            attempt=task.attempt + 1,
            excluded=excluded,
            tried=tried,
        )
        handle = asyncio.get_running_loop().create_task(
            requeue_later(retry, delay)
        )
        retry_tasks.add(handle)
        handle.add_done_callback(retry_tasks.discard)

    def accept(
        task: _Attempt, worker: WorkerSpec, result: BatchResult
    ) -> None:
        nonlocal merged
        index = task.shard.index
        try:
            # Incremental merge: the running result grows as shards
            # land, and merge's overlap check guarantees no shard can
            # ever be folded in twice.
            merged = BatchResult.merge([merged, result])
        except ValueError as exc:
            handle_failure(
                task, worker, f"merge rejected shard export: {exc}"
            )
            return
        if sink is not None:
            # Stream the accepted shard to the durable spool only after
            # the overlap check admitted it — the spool mirrors exactly
            # the merged record set, shard by shard.
            for record in result.records:
                sink.append(record)
        emit("complete", f"{result.case_count} cases merged "
                         f"({merged.case_count} total)",
             shard=index, worker=worker.name, attempt=task.attempt)
        outcomes[index] = ShardOutcome(
            shard=index,
            status="completed",
            worker=worker.name,
            attempts=task.attempt,
            cases=result.case_count,
            workers_tried=task.tried + (worker.name,),
        )
        terminal()

    async def worker_loop(worker: WorkerSpec) -> None:
        while True:
            task = await queue.get()
            if task is None:
                queue.put_nowait(None)
                return
            if task.excluded and worker.name in task.excluded:
                # this worker already failed the shard; hand it back and
                # let a fresh worker pick it up
                queue.put_nowait(task)
                await asyncio.sleep(0.05)
                continue
            emit("launch", "started",
                 shard=task.shard.index, worker=worker.name,
                 attempt=task.attempt)
            attempt_future = asyncio.ensure_future(
                backend.run_shard(worker, task.shard, task.attempt)
            )
            inflight[worker.name] = attempt_future
            try:
                result = await asyncio.wait_for(attempt_future, timeout)
            except asyncio.TimeoutError:
                handle_failure(
                    task, worker, f"timed out after {timeout:g}s"
                )
            except asyncio.CancelledError:
                if attempt_future in heartbeat_killed:
                    heartbeat_killed.discard(attempt_future)
                    handle_failure(task, worker, "worker heartbeat lost")
                else:  # the orchestration itself is being torn down
                    raise
            except ShardFailure as exc:
                handle_failure(task, worker, str(exc))
            except Exception as exc:  # backend defect: bounded like any failure
                handle_failure(
                    task, worker, f"{type(exc).__name__}: {exc}"
                )
            finally:
                inflight.pop(worker.name, None)
            if attempt_future.done() and not attempt_future.cancelled() \
                    and attempt_future.exception() is None:
                accept(task, worker, attempt_future.result())

    async def heartbeat_loop() -> None:
        by_name = {worker.name: worker for worker in workers}
        while True:
            await asyncio.sleep(heartbeat)
            emit("heartbeat",
                 f"{shard_count - remaining}/{shard_count} shards done, "
                 f"{len(inflight)} in flight")
            for name, future in list(inflight.items()):
                if future.done():
                    continue
                try:
                    alive = await backend.probe(by_name[name])
                except Exception:
                    alive = False
                if not alive and not future.done():
                    emit("worker-dead",
                         "heartbeat probe failed; cancelling attempt",
                         worker=name)
                    heartbeat_killed.add(future)
                    future.cancel()

    if warm:
        for worker in workers:
            try:
                await backend.warm(worker)
                emit("warm", "cache warmed", worker=worker.name)
            except Exception as exc:  # warm is best-effort by contract
                emit("warm", f"cache warm failed (continuing): {exc}",
                     worker=worker.name)

    loops = [
        asyncio.get_running_loop().create_task(worker_loop(worker))
        for worker in workers
    ]
    monitor = (
        asyncio.get_running_loop().create_task(heartbeat_loop())
        if heartbeat
        else None
    )
    try:
        await asyncio.gather(*loops)
    finally:
        if monitor is not None:
            monitor.cancel()
        for handle in retry_tasks:
            handle.cancel()

    return OrchestrationReport(
        result=merged,
        outcomes=tuple(
            outcomes[index] for index in sorted(outcomes)
        ),
        shard_count=shard_count,
    )
