"""Distributed sweep orchestration: one driver owning the whole lifecycle.

The orchestrator crosses the machine boundary the engine was built for:
instead of a human running ``repro sweep --shard I/N`` per box, one
process plans the shards, launches them on a worker inventory (local
subprocesses and/or SSH hosts behind the same
:class:`~repro.engine.orchestrator.backends.WorkerBackend` interface),
streams per-shard exports back as they complete, merges them
incrementally, and handles the unglamorous parts — per-attempt
timeouts, exponential-backoff retries, reassignment away from dead
workers, heartbeat liveness, and a per-shard partial-failure report
when a shard is truly unrunnable.

CLI: ``repro orchestrate --grid DIR --workers-file hosts.toml`` (or
``--local N`` for same-machine fan-out).  See
:mod:`repro.engine.orchestrator.driver` for the robustness model and
``docs/engine.md`` for the operational guide.
"""

from repro.engine.orchestrator.backends import (
    LocalWorkerBackend,
    SSHWorkerBackend,
    ShardFailure,
    WorkerBackend,
    build_backend,
    sweep_argv,
)
from repro.engine.orchestrator.driver import (
    OrchestrationReport,
    OrchestratorEvent,
    ShardOutcome,
    orchestrate,
    orchestrate_async,
)
from repro.engine.orchestrator.workers import (
    OrchestratorError,
    WorkerSpec,
    load_workers_file,
    local_workers,
    workers_from_data,
)

__all__ = [
    "LocalWorkerBackend",
    "OrchestrationReport",
    "OrchestratorError",
    "OrchestratorEvent",
    "SSHWorkerBackend",
    "ShardFailure",
    "ShardOutcome",
    "WorkerBackend",
    "WorkerSpec",
    "build_backend",
    "load_workers_file",
    "local_workers",
    "orchestrate",
    "orchestrate_async",
    "sweep_argv",
    "workers_from_data",
]
