"""The batch execution engine: serial and multiprocessing case runners.

:func:`run_batch` is the main entry point: it takes a declarative
:class:`~repro.engine.grids.GridSpec` (or an already-expanded case list),
executes every case — across a ``multiprocessing`` pool when ``workers >
1``, or inline otherwise — and aggregates the streamed
:class:`~repro.analysis.sweep.SweepRecord` stream into a
:class:`~repro.engine.results.BatchResult`.

Determinism contract: executions of the same grid produce *identical*
record sequences regardless of worker count.  Three properties make this
hold:

* case expansion is a pure function of the spec (seeds derived by SHA-256,
  never by global RNG state);
* each case runs on the deterministic kernel, so its record is a function
  of the case alone;
* records are collected as ``(case index, record)`` pairs and re-sorted by
  index, erasing pool scheduling order.  Each record also carries its
  index (``SweepRecord.case_index``), so shard outputs can be recombined
  canonically by :meth:`~repro.engine.results.BatchResult.merge` in any
  arrival order.

Passing a :class:`~repro.engine.cache.ResultCache` as ``cache=`` splits
the cases into hits and misses up front: hits are answered from disk
(re-stamped with the requesting case's label and index), only misses
reach the kernel/pool, and freshly-computed records are stored back.
Because cached records are byte-identical to recomputed ones, a warm
cache changes nothing but wall-clock time.

Workers resolve automaton factories from the algorithm registry by name,
so cases stay picklable.  Cases carrying an explicit in-process ``factory``
(the legacy ``analysis.sweep`` path) are executed serially and are never
cached (see :meth:`~repro.engine.cache.ResultCache.case_key`).
"""

from __future__ import annotations

import multiprocessing
import os
from collections import Counter
from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.analysis.sweep import SweepRecord, run_case
from repro.engine.cases import Case
from repro.engine.grids import GridError, GridSpec, expand_grid
from repro.engine.results import BatchResult

if TYPE_CHECKING:
    from repro.engine.cache import ResultCache

OnRecord = Callable[[int, SweepRecord], None]


def execute_case(case: Case) -> tuple[int, SweepRecord]:
    """Run one case and return its (index, record) pair.

    Module-level (not a closure) so the multiprocessing pool can pickle it.
    The record is stamped with the case's index, making record streams
    self-describing for order-independent recombination.
    """
    record, _trace = run_case(
        case.algorithm,
        case.resolve_factory(),
        case.workload,
        case.schedule,
        list(case.proposals),
    )
    return case.index, replace(record, case_index=case.index)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, no re-import) where the platform offers it."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def resolve_workers(workers: int | None, n_cases: int) -> int:
    """Clamp a requested worker count to something sensible.

    ``None`` or 0 auto-sizes to the machine (capped at 8 — the per-case
    work is small, so more workers mostly add IPC overhead).
    """
    if workers is None or workers <= 0:
        workers = min(8, os.cpu_count() or 1)
    return max(1, min(workers, n_cases))


def _check_unique_indices(cases: Sequence[Case]) -> None:
    """Reject duplicate case indices before anything executes.

    Duplicate indices would make the canonical record order ambiguous and
    silently corrupt merge keys; the docstring contract has always
    required uniqueness, so violating it is a :class:`GridError`.
    """
    counts = Counter(case.index for case in cases)
    duplicates = sorted(index for index, count in counts.items() if count > 1)
    if duplicates:
        raise GridError(
            f"duplicate case indices {duplicates}: case indices must be "
            f"unique — they define the canonical record order"
        )


def run_cases(
    cases: Iterable[Case],
    *,
    workers: int = 1,
    on_record: OnRecord | None = None,
    cache: "ResultCache | None" = None,
) -> list[SweepRecord]:
    """Execute *cases* and return their records in canonical case order.

    Args:
        cases: expanded cases; their ``index`` fields define the output
            order (they need not be contiguous, but must be unique —
            duplicates raise :class:`GridError`).
        workers: pool size; <= 1 selects the deterministic serial path.
            Cases with explicit in-process factories force the serial path.
        on_record: optional streaming callback, invoked as each record
            arrives — cache hits first (in case order), then executed
            misses in completion order, which under a pool is
            nondeterministic.  Only the returned list is canonical.
        cache: optional :class:`~repro.engine.cache.ResultCache`; hits
            skip the kernel entirely, misses are executed and stored back.
    """
    cases = list(cases)  # tolerate one-shot iterators: we iterate twice
    _check_unique_indices(cases)

    indexed: list[tuple[int, SweepRecord]] = []
    pending: Sequence[Case] = cases
    key_by_index: dict[int, str | None] = {}
    duplicate_of: dict[int, list[Case]] = {}
    if cache is not None:
        # Partition into hits, misses, and in-flight duplicates: several
        # cases sharing one content key (same algorithm/schedule/proposals
        # under different labels) execute a single representative, whose
        # record serves the rest re-stamped — each distinct computation
        # pays the kernel at most once per batch.
        pending = []
        seen_keys: dict[str, int] = {}
        for case in cases:
            key = cache.case_key(case)
            if key is not None and key in seen_keys:
                duplicate_of.setdefault(seen_keys[key], []).append(case)
                continue
            record = cache.lookup(case, key)
            if record is None:
                if key is not None:
                    seen_keys[key] = case.index
                key_by_index[case.index] = key
                pending.append(case)
            else:
                indexed.append((case.index, record))
                if on_record is not None:
                    on_record(case.index, record)

    serial_only = any(case.factory is not None for case in pending)
    workers = resolve_workers(workers, len(pending))
    by_index = {case.index: case for case in pending}

    def collect(pair: tuple[int, SweepRecord]) -> None:
        index, record = pair
        if cache is not None:
            cache.store(by_index[index], record, key_by_index[index])
        indexed.append(pair)
        if on_record is not None:
            on_record(index, record)
        for duplicate in duplicate_of.get(index, ()):
            cache.deduped += 1
            stamped = replace(
                record,
                workload=duplicate.workload,
                case_index=duplicate.index,
            )
            indexed.append((duplicate.index, stamped))
            if on_record is not None:
                on_record(duplicate.index, stamped)

    if workers <= 1 or serial_only or len(pending) < 2:
        for case in pending:
            collect(execute_case(case))
    else:
        context = _pool_context()
        chunksize = max(1, len(pending) // (workers * 4))
        with context.Pool(processes=workers) as pool:
            for pair in pool.imap_unordered(
                execute_case, pending, chunksize=chunksize
            ):
                collect(pair)
    indexed.sort(key=lambda pair: pair[0])
    return [record for _index, record in indexed]


def run_batch(
    grid: GridSpec | Iterable[Case],
    *,
    workers: int = 1,
    on_record: OnRecord | None = None,
    cache: "ResultCache | None" = None,
) -> BatchResult:
    """Expand (if needed) and execute a grid, returning the aggregate result."""
    if isinstance(grid, GridSpec):
        cases: Sequence[Case] = expand_grid(grid)
    else:
        cases = list(grid)
    return BatchResult(
        records=tuple(
            run_cases(cases, workers=workers, on_record=on_record,
                      cache=cache)
        )
    )
