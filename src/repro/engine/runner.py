"""The batch execution engine: case runners over pluggable backends.

:func:`run_batch` is the main entry point: it takes a declarative
:class:`~repro.engine.grids.GridSpec` (or an already-expanded case list),
executes every case on an execution backend
(:mod:`repro.engine.executors`) and aggregates the streamed
:class:`~repro.analysis.sweep.SweepRecord` stream into a
:class:`~repro.engine.results.BatchResult`.

Determinism contract: executions of the same grid produce *identical*
record sequences regardless of backend or pool size.  Three properties
make this hold:

* case expansion is a pure function of the spec (seeds derived by SHA-256,
  never by global RNG state);
* each case runs on the deterministic kernel, so its record is a function
  of the case alone;
* executors yield ``(case index, record)`` pairs in arbitrary order and
  the runner re-sorts by index, erasing scheduling order.  Each record
  also carries its index (``SweepRecord.case_index``), so shard outputs
  can be recombined canonically by
  :meth:`~repro.engine.results.BatchResult.merge` in any arrival order.

Backends are selected with ``executor=`` — :class:`SerialExecutor`,
:class:`ProcessExecutor` or :class:`ThreadExecutor` (or anything else
satisfying the :class:`~repro.engine.executors.Executor` protocol).  The
bare ``workers=`` integer of the original API still works as a deprecated
shim (``1`` → serial, ``0`` → auto-sized process pool, ``N`` → pool of
N) and warns.

Passing a :class:`~repro.engine.cache.ResultCache` as ``cache=`` splits
the cases into hits and misses up front: hits are answered from disk
(re-stamped with the requesting case's label and index), only misses
reach the executor, and freshly-computed records are stored back.
Because cached records are byte-identical to recomputed ones, a warm
cache changes nothing but wall-clock time.

Workers resolve automaton factories from the algorithm registry by name,
so cases stay picklable.  Cases carrying an explicit in-process ``factory``
(the legacy ``analysis.sweep`` path) make :class:`ProcessExecutor` fall
back to serial execution and are never cached (see
:meth:`~repro.engine.cache.ResultCache.case_key`).
"""

from __future__ import annotations

import warnings
from collections import Counter
from dataclasses import replace
from typing import TYPE_CHECKING, Callable, Iterable, Sequence, cast

from repro.analysis.sweep import SweepRecord
from repro.engine.cases import Case
from repro.engine.executors import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    execute_case,
    executor_from_workers,
    resolve_executor,
    resolve_workers,
)
from repro.engine.grids import GridError, GridSpec, ShardSpec, expand_grid
from repro.engine.results import BatchResult

if TYPE_CHECKING:
    from repro.engine.cache import ResultCache
    from repro.engine.sink import RecordSink

__all__ = [
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "execute_case",
    "resolve_executor",
    "resolve_workers",
    "run_batch",
    "run_cases",
    "stream_batch",
]

OnRecord = Callable[[int, SweepRecord], None]

_UNSET = object()


def _check_unique_indices(cases: Sequence[Case]) -> None:
    """Reject duplicate case indices before anything executes.

    Duplicate indices would make the canonical record order ambiguous and
    silently corrupt merge keys; the docstring contract has always
    required uniqueness, so violating it is a :class:`GridError`.
    """
    counts = Counter(case.index for case in cases)
    duplicates = sorted(index for index, count in counts.items() if count > 1)
    if duplicates:
        raise GridError(
            f"duplicate case indices {duplicates}: case indices must be "
            f"unique — they define the canonical record order"
        )


def _resolve_backend(
    executor: Executor | None, workers: "int | None | object"
) -> Executor:
    """The executor to run on, honoring the deprecated ``workers=`` shim.

    ``stacklevel=3`` attributes the warning to whoever called
    ``run_cases``/``run_batch`` — both resolve their backend directly
    (``run_batch`` before delegating), so the caller's frame is always
    exactly two above this helper's.
    """
    if workers is not _UNSET:
        if executor is not None:
            raise TypeError(
                "pass either executor= or the deprecated workers=, not both"
            )
        warnings.warn(
            "workers= is deprecated; pass executor=SerialExecutor() / "
            "ProcessExecutor(workers=N) / ThreadExecutor(workers=N) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return executor_from_workers(cast("int | None", workers))
    return executor if executor is not None else SerialExecutor()


def run_cases(
    cases: Iterable[Case],
    *,
    executor: Executor | None = None,
    workers: "int | None | object" = _UNSET,
    on_record: OnRecord | None = None,
    cache: "ResultCache | None" = None,
    trace: str | None = None,
    sink: "RecordSink | None" = None,
    collect: bool = True,
) -> list[SweepRecord]:
    """Execute *cases* and return their records in canonical case order.

    Args:
        cases: expanded cases; their ``index`` fields define the output
            order (they need not be contiguous, but must be unique —
            duplicates raise :class:`GridError`).
        executor: execution backend (default :class:`SerialExecutor`).
        workers: deprecated pool-size shim; <= 1 selects the serial path,
            0 an auto-sized process pool.  Mutually exclusive with
            ``executor``.
        on_record: optional streaming callback, invoked as each record
            arrives — cache hits first (in case order), then executed
            misses in the executor's completion order, which under a pool
            is nondeterministic.  Only the returned list is canonical.
        cache: optional :class:`~repro.engine.cache.ResultCache`; hits
            skip the executor entirely, misses are executed and stored
            back.
        trace: optional kernel trace-mode override stamped onto every
            case (``"full"`` or ``"lean"``; ``None`` keeps each case's
            own mode).  Records — and therefore exports and cache
            entries — are byte-identical across modes; the flag only
            selects how much the kernel materializes along the way.
        sink: optional :class:`~repro.engine.sink.RecordSink`; every
            record is appended as it arrives (same ordering caveat as
            ``on_record``).  The caller owns the sink's lifecycle.
        collect: when false, records are *not* accumulated (the return
            value is an empty list) — combined with ``sink`` this bounds
            the driver's memory by one record instead of the batch; the
            canonical order is restored when the spool is read back.
    """
    backend = _resolve_backend(executor, workers)
    cases = list(cases)  # tolerate one-shot iterators: we iterate twice
    if trace is not None:
        cases = [
            case if case.trace == trace else replace(case, trace=trace)
            for case in cases
        ]
    _check_unique_indices(cases)

    indexed: list[tuple[int, SweepRecord]] = []

    def emit(index: int, record: SweepRecord) -> None:
        if collect:
            indexed.append((index, record))
        if on_record is not None:
            on_record(index, record)
        if sink is not None:
            sink.append(record)

    pending: Sequence[Case] = cases
    key_by_index: dict[int, str | None] = {}
    duplicate_of: dict[int, list[Case]] = {}
    if cache is not None:
        # Partition into hits, misses, and in-flight duplicates: several
        # cases sharing one content key (same algorithm/schedule/proposals
        # under different labels) execute a single representative, whose
        # record serves the rest re-stamped — each distinct computation
        # pays the kernel at most once per batch.
        pending = []
        seen_keys: dict[str, int] = {}
        for case in cases:
            key = cache.case_key(case)
            if key is not None and key in seen_keys:
                duplicate_of.setdefault(seen_keys[key], []).append(case)
                continue
            record = cache.lookup(case, key)
            if record is None:
                if key is not None:
                    seen_keys[key] = case.index
                key_by_index[case.index] = key
                pending.append(case)
            else:
                emit(case.index, record)

    by_index = {case.index: case for case in pending}

    def handle(pair: tuple[int, SweepRecord]) -> None:
        index, record = pair
        if cache is not None:
            cache.store(by_index[index], record, key_by_index[index])
        emit(index, record)
        for duplicate in duplicate_of.get(index, ()):
            cache.deduped += 1
            stamped = replace(
                record,
                workload=duplicate.workload,
                case_index=duplicate.index,
            )
            emit(duplicate.index, stamped)

    for pair in backend.map_cases(pending):
        handle(pair)
    indexed.sort(key=lambda pair: pair[0])
    return [record for _index, record in indexed]


def run_batch(
    grid: GridSpec | Iterable[Case],
    *,
    executor: Executor | None = None,
    workers: "int | None | object" = _UNSET,
    shard: ShardSpec | None = None,
    on_record: OnRecord | None = None,
    cache: "ResultCache | None" = None,
    trace: str | None = None,
) -> BatchResult:
    """Expand (if needed) and execute a grid, returning the aggregate result.

    ``shard`` selects one deterministic slice of the expanded case list
    (see :class:`~repro.engine.grids.ShardSpec`); the per-shard
    :class:`~repro.engine.results.BatchResult` exports recombine with
    :meth:`~repro.engine.results.BatchResult.merge` into exactly the
    whole-grid result, regardless of backend or merge order.  ``trace``
    overrides every case's kernel trace mode (see :func:`run_cases`);
    the result is byte-identical across modes.
    """
    backend = _resolve_backend(executor, workers)
    if isinstance(grid, GridSpec):
        cases: Sequence[Case] = expand_grid(grid)
    else:
        cases = list(grid)
    if shard is not None:
        cases = shard.select(cases)
    return BatchResult(
        records=tuple(
            run_cases(cases, executor=backend,
                      on_record=on_record, cache=cache, trace=trace)
        )
    )


def stream_batch(
    grid: GridSpec | Iterable[Case],
    *,
    sink: "RecordSink",
    executor: Executor | None = None,
    shard: ShardSpec | None = None,
    on_record: OnRecord | None = None,
    cache: "ResultCache | None" = None,
    trace: str | None = None,
) -> int:
    """Execute a grid streaming every record to *sink*; returns the count.

    The bounded-memory counterpart of :func:`run_batch`: the driver never
    holds more than the record in flight — everything lands in the sink
    (typically a :class:`~repro.engine.sink.JsonlRecordSink` spool) as it
    completes.  Rebuilding the canonical
    :class:`~repro.engine.results.BatchResult` from the spool
    (:meth:`BatchResult.load_spool
    <repro.engine.results.BatchResult.load_spool>`) yields byte-identical
    exports to the in-memory path — the engine's determinism contract
    does not care where the records waited.  The caller owns the sink's
    lifecycle (close it to guarantee the tail is flushed).
    """
    if isinstance(grid, GridSpec):
        cases: Sequence[Case] = expand_grid(grid)
    else:
        cases = list(grid)
    if shard is not None:
        cases = shard.select(cases)
    count = 0

    def counting(index: int, record: SweepRecord) -> None:
        nonlocal count
        count += 1
        if on_record is not None:
            on_record(index, record)

    run_cases(
        cases,
        executor=executor,
        on_record=counting,
        cache=cache,
        trace=trace,
        sink=sink,
        collect=False,
    )
    return count
