"""The batch execution engine: serial and multiprocessing case runners.

:func:`run_batch` is the main entry point: it takes a declarative
:class:`~repro.engine.grids.GridSpec` (or an already-expanded case list),
executes every case — across a ``multiprocessing`` pool when ``workers >
1``, or inline otherwise — and aggregates the streamed
:class:`~repro.analysis.sweep.SweepRecord` stream into a
:class:`~repro.engine.results.BatchResult`.

Determinism contract: executions of the same grid produce *identical*
record sequences regardless of worker count.  Three properties make this
hold:

* case expansion is a pure function of the spec (seeds derived by SHA-256,
  never by global RNG state);
* each case runs on the deterministic kernel, so its record is a function
  of the case alone;
* records are collected as ``(case index, record)`` pairs and re-sorted by
  index, erasing pool scheduling order.

Workers resolve automaton factories from the algorithm registry by name,
so cases stay picklable.  Cases carrying an explicit in-process ``factory``
(the legacy ``analysis.sweep`` path) are executed serially.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, Sequence

from repro.analysis.sweep import SweepRecord, run_case
from repro.engine.cases import Case
from repro.engine.grids import GridSpec, expand_grid
from repro.engine.results import BatchResult

OnRecord = Callable[[int, SweepRecord], None]


def execute_case(case: Case) -> tuple[int, SweepRecord]:
    """Run one case and return its (index, record) pair.

    Module-level (not a closure) so the multiprocessing pool can pickle it.
    """
    record, _trace = run_case(
        case.algorithm,
        case.resolve_factory(),
        case.workload,
        case.schedule,
        list(case.proposals),
    )
    return case.index, record


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, no re-import) where the platform offers it."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def resolve_workers(workers: int | None, n_cases: int) -> int:
    """Clamp a requested worker count to something sensible.

    ``None`` or 0 auto-sizes to the machine (capped at 8 — the per-case
    work is small, so more workers mostly add IPC overhead).
    """
    if workers is None or workers <= 0:
        workers = min(8, os.cpu_count() or 1)
    return max(1, min(workers, n_cases))


def run_cases(
    cases: Sequence[Case],
    *,
    workers: int = 1,
    on_record: OnRecord | None = None,
) -> list[SweepRecord]:
    """Execute *cases* and return their records in canonical case order.

    Args:
        cases: expanded cases; their ``index`` fields define the output
            order (they need not be contiguous, only unique).
        workers: pool size; <= 1 selects the deterministic serial path.
            Cases with explicit in-process factories force the serial path.
        on_record: optional streaming callback, invoked as each record
            arrives (in completion order, which under a pool is
            nondeterministic — only the returned list is canonical).
    """
    serial_only = any(case.factory is not None for case in cases)
    workers = resolve_workers(workers, len(cases))

    indexed: list[tuple[int, SweepRecord]] = []
    if workers <= 1 or serial_only or len(cases) < 2:
        for case in cases:
            pair = execute_case(case)
            indexed.append(pair)
            if on_record is not None:
                on_record(*pair)
    else:
        context = _pool_context()
        chunksize = max(1, len(cases) // (workers * 4))
        with context.Pool(processes=workers) as pool:
            for pair in pool.imap_unordered(
                execute_case, cases, chunksize=chunksize
            ):
                indexed.append(pair)
                if on_record is not None:
                    on_record(*pair)
    indexed.sort(key=lambda pair: pair[0])
    return [record for _index, record in indexed]


def run_batch(
    grid: GridSpec | Iterable[Case],
    *,
    workers: int = 1,
    on_record: OnRecord | None = None,
) -> BatchResult:
    """Expand (if needed) and execute a grid, returning the aggregate result."""
    if isinstance(grid, GridSpec):
        cases: Sequence[Case] = expand_grid(grid)
    else:
        cases = list(grid)
    return BatchResult(
        records=tuple(run_cases(cases, workers=workers, on_record=on_record))
    )
