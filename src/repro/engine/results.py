"""Aggregated results of a batch execution.

A :class:`BatchResult` holds the full, canonically-ordered record stream
of one batch plus derived per-algorithm summaries: worst-case global
decision round with its witness workload (the paper's headline statistic),
safety-violation counts, and message totals.  ``to_json`` serializes the
whole result — records included — so sweeps can be archived and diffed;
two executions of the same grid are expected to produce byte-identical
JSON regardless of worker count.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import asdict, dataclass
from typing import Iterable, Mapping

from repro.analysis.sweep import SweepRecord
from repro.types import Round

#: Bumped with every record-schema change (2: records carry ``case_index``)
#: so older readers fail with a clean version error, not a TypeError.
FORMAT_VERSION = 2


@dataclass(frozen=True)
class AlgorithmSummary:
    """Per-algorithm aggregate over one batch.

    ``worst_round`` follows the convention of
    :func:`repro.analysis.sweep.worst_case_round`: a case that does not
    reach a global decision within its horizon counts as ``horizon + 1``,
    a conservative lower estimate of the true round.
    """

    algorithm: str
    cases: int
    decided: int
    violations: int
    worst_round: Round
    worst_workload: str
    messages: int

    ROW_HEADERS = (
        "algorithm", "cases", "decided", "violations",
        "worst round", "witness workload", "messages",
    )

    def row(self) -> tuple:
        return (
            self.algorithm,
            self.cases,
            self.decided,
            self.violations,
            self.worst_round,
            self.worst_workload,
            self.messages,
        )


def _effective_round(record: SweepRecord) -> Round:
    return (
        record.global_round
        if record.global_round is not None
        else record.horizon + 1
    )


@dataclass(frozen=True)
class BatchResult:
    """The complete outcome of one batch execution.

    ``records`` are in canonical case order (sorted by ``Case.index`` at
    collection time), independent of how many workers executed the batch.
    """

    records: tuple[SweepRecord, ...]

    @property
    def case_count(self) -> int:
        return len(self.records)

    @property
    def algorithms(self) -> tuple[str, ...]:
        """Algorithm names in first-appearance order."""
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.algorithm, None)
        return tuple(seen)

    def for_algorithm(self, algorithm: str) -> tuple[SweepRecord, ...]:
        return tuple(r for r in self.records if r.algorithm == algorithm)

    def find(self, algorithm: str, workload: str) -> SweepRecord:
        """The unique record for (algorithm, workload); raises if absent."""
        for record in self.records:
            if record.algorithm == algorithm and record.workload == workload:
                return record
        raise KeyError(f"no record for ({algorithm!r}, {workload!r})")

    def violations(self) -> tuple[SweepRecord, ...]:
        """Records that broke agreement or validity."""
        return tuple(
            r for r in self.records
            if not (r.agreement_ok and r.validity_ok)
        )

    def worst_case(self, algorithm: str) -> tuple[Round, str]:
        """Worst global decision round for *algorithm*, with its witness.

        Ties keep the earliest record, matching the serial search in
        :func:`repro.analysis.sweep.worst_case_round`; undecided cases
        count as ``horizon + 1``.
        """
        worst: Round = 0
        witness = "<none>"
        for record in self.for_algorithm(algorithm):
            effective = _effective_round(record)
            if effective > worst:
                worst, witness = effective, record.workload
        return worst, witness

    def summary(self, algorithm: str) -> AlgorithmSummary:
        records = self.for_algorithm(algorithm)
        worst, witness = self.worst_case(algorithm)
        return AlgorithmSummary(
            algorithm=algorithm,
            cases=len(records),
            decided=sum(1 for r in records if r.global_round is not None),
            violations=sum(
                1 for r in records if not (r.agreement_ok and r.validity_ok)
            ),
            worst_round=worst,
            worst_workload=witness,
            messages=sum(r.messages for r in records),
        )

    def summaries(self) -> list[AlgorithmSummary]:
        """One summary per algorithm, in first-appearance order."""
        return [self.summary(name) for name in self.algorithms]

    # -- serialization -----------------------------------------------------

    def to_data(self) -> dict:
        """A plain-data (JSON-safe) representation of the whole batch."""
        return {
            "version": FORMAT_VERSION,
            "cases": self.case_count,
            "records": [asdict(record) for record in self.records],
            "summaries": [asdict(summary) for summary in self.summaries()],
        }

    def to_json(self, *, indent: int | None = None) -> str:
        """Canonical JSON: two equal results serialize byte-identically."""
        return json.dumps(self.to_data(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(indent=2))
            handle.write("\n")

    @staticmethod
    def load(path: str) -> "BatchResult":
        """Read a ``save``d (or ``--json``-exported) result back from disk.

        The inverse of :meth:`save`; shard exports loaded this way feed
        :meth:`merge` to recombine a sharded sweep.  JSONL record spools
        (:mod:`repro.engine.sink`) are detected by their first line — a
        complete record object — and routed through :meth:`load_spool`,
        so every consumer of exports accepts a spool transparently.
        Raises ``ValueError`` on malformed JSON or a foreign format
        version, ``OSError`` on an unreadable path.
        """
        with open(path, "r", encoding="utf-8") as handle:
            head = handle.readline()
            try:
                first = json.loads(head)
            except ValueError:
                first = None
            if isinstance(first, dict) and "algorithm" in first:
                pass  # a spool line; re-read via the streaming reader
            else:
                handle.seek(0)
                return BatchResult.from_data(json.load(handle))
        return BatchResult.load_spool(path)

    @staticmethod
    def load_spool(path: str) -> "BatchResult":
        """Rebuild a result from a JSONL record spool (streaming reader).

        The spool is unordered (pool completion order) and may end in a
        torn line if the producing driver was killed mid-write; the
        reader drops the torn tail, and the records are re-sorted into
        canonical case order — so the rebuilt result (and its
        :meth:`to_json` bytes) is exactly what the in-memory path would
        have produced from the same finished cases.  Duplicate case
        indices (a spool appended twice) raise ``ValueError`` via
        :meth:`merge`'s overlap check.
        """
        from repro.engine.sink import read_spool

        records = tuple(read_spool(path))
        return BatchResult.merge([BatchResult(records=records)])

    @staticmethod
    def from_data(data: Mapping) -> "BatchResult":
        """Rebuild a result from :meth:`to_data` output (summaries re-derived)."""
        if data.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported batch format version {data.get('version')!r}"
            )
        return BatchResult(
            records=tuple(
                SweepRecord(**entry) for entry in data["records"]
            )
        )

    @staticmethod
    def merge(results: Iterable["BatchResult"]) -> "BatchResult":
        """Recombine several batches (e.g. per-shard results) canonically.

        Engine-produced records carry their originating case index
        (``SweepRecord.case_index``); when every record has one, the
        merged stream is re-sorted by that key, so the result is
        identical regardless of shard arrival order — and duplicate
        indices raise ``ValueError``, because shards of one grid must
        partition its index space and silently concatenating an
        overlapping (or twice-loaded) shard would corrupt every
        aggregate downstream.  Streams containing index-less records
        (hand-built, ``case_index == -1``) fall back to plain
        concatenation order.
        """
        merged: list[SweepRecord] = []
        for result in results:
            merged.extend(result.records)
        indices = [record.case_index for record in merged]
        if all(index >= 0 for index in indices):
            counts = Counter(indices)
            duplicates = sorted(
                index for index, count in counts.items() if count > 1
            )
            if duplicates:
                raise ValueError(
                    f"shards overlap: case indices {duplicates[:10]} "
                    f"appear in more than one input — shards of one grid "
                    f"must partition its index space"
                )
            merged.sort(key=lambda record: record.case_index)
        return BatchResult(records=tuple(merged))
