"""Content-addressed on-disk cache for batch-engine sweep records.

Every case the engine executes is a pure function of *what code ran
against what input*: the record is fully determined by (algorithm
implementation, adversary schedule, proposals).  The cache therefore keys
each :class:`~repro.analysis.sweep.SweepRecord` by SHA-256 over

* the key-scheme version tag (``repro-sweep-cache-v1``),
* the algorithm's registry name,
* :func:`repro.algorithms.registry.algorithm_source_hash` — a content
  hash of the algorithm's transitive module closure (its own module, MRO
  bases, composed underlying consensus, shared helpers), so editing an
  algorithm's source invalidates that algorithm's entries and its
  dependents', and nothing else,
* a runtime fingerprint — the source closure of the simulation kernel and
  the metric/record machinery (:mod:`repro.sim.kernel`,
  :mod:`repro.analysis.metrics`, :mod:`repro.analysis.sweep` and
  everything they import), so editing how records are *produced*
  invalidates everything,
* :meth:`repro.model.schedule.Schedule.digest` — the canonical schedule
  identity, and
* the proposals tuple.

Workload labels and case indices are *not* part of the key: two cases
that run the same code on the same inputs share one entry, and
:meth:`ResultCache.lookup` re-stamps ``workload`` and ``case_index`` from
the requesting case so a warm run is byte-identical to a cold one.

Entries are one JSON file each under ``directory/<key[:2]>/<key>.json``,
written atomically (temp file + ``os.replace``) so concurrent sweeps may
share a directory.  Corrupted, truncated or version-skewed entries are
treated as misses and overwritten on the next store — a cache directory
can always be deleted wholesale without losing anything but time.
:func:`cache_gc` (CLI: ``repro cache gc``) evicts entries by age and/or
LRU-by-mtime size bound, so long-lived shared directories stop growing
without bound; the same recomputability makes any eviction safe.

Uncacheable cases (explicit in-process factories, whose captured state
cannot be fingerprinted; or algorithms whose source is unavailable) are
passed through to the kernel untouched and counted in neither ``hits``
nor ``misses``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import asdict, replace
from pathlib import Path
from typing import Iterator, cast

try:  # POSIX advisory locking for the shared stats sidecar
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.algorithms.registry import (
    algorithm_source_hash,
    source_closure_hash,
)
from repro.analysis.sweep import SweepRecord
from repro.engine.cases import Case

#: On-disk entry format version; bumped whenever the entry layout changes.
ENTRY_VERSION = 1

#: Lifetime-counter sidecar file name (lives at the cache root, outside
#: the ``<key[:2]>/`` entry fan-out so entry globs never see it).
STATS_FILE = "stats.json"

#: Counters accumulated in the stats sidecar.
_STAT_KEYS = ("hits", "misses", "deduped", "store_failures", "sweeps")


@contextmanager
def _stats_lock(root: "Path") -> Iterator[None]:
    """Serialize read-modify-write cycles on the stats sidecar.

    Uses an ``flock`` on a dedicated ``stats.json.lock`` file (the lock
    file lives at the cache root, outside the entry fan-out, so entry
    globs never see it).  Concurrent shard processes flushing their
    counters into one shared directory each merge under the lock, so no
    delta is ever lost to an unlocked read-modify-write race.  Best
    effort by design: on platforms without ``fcntl`` or when the lock
    file cannot be created (read-only directory), callers proceed
    unlocked — stats are advisory metadata and must never abort a sweep.
    """
    if fcntl is None:
        yield False
        return
    fd = None
    try:
        fd = os.open(
            root / f"{STATS_FILE}.lock", os.O_CREAT | os.O_RDWR, 0o644
        )
        fcntl.flock(fd, fcntl.LOCK_EX)
    except OSError:
        if fd is not None:
            os.close(fd)
        yield False
        return
    try:
        yield True
    finally:
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)
        except OSError:
            pass
        os.close(fd)


def _read_stats_file(path: "Path") -> dict:
    """The accumulated counters in *path* (zeros when absent/corrupt).

    Also carries the ``last_gc`` summary (:func:`cache_gc`) through, so
    counter flushes never erase it; ``None`` when no gc ever ran.
    """
    totals = {key: 0 for key in _STAT_KEYS}
    totals["last_gc"] = None
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        for key in _STAT_KEYS:
            value = data.get(key, 0)
            if isinstance(value, int) and value >= 0:
                totals[key] = value
        last_gc = data.get("last_gc")
        if isinstance(last_gc, dict):
            totals["last_gc"] = last_gc
    except (OSError, ValueError, AttributeError):
        pass
    return totals


def _is_entry_path(path: "Path") -> bool:
    """True iff *path* has the exact shape of a cache entry.

    Entries are always ``<2 hex>/<64 hex>.json`` with the directory
    equal to the key's first two characters.  Everything that touches
    entries in bulk — stats, gc — filters on this shape, so a mistyped
    directory handed to the *destructive* ``cache gc`` can never match
    (and therefore never delete) unrelated JSON files that merely live
    in some two-character subdirectory.
    """
    stem = path.stem
    prefix = path.parent.name
    if len(stem) != 64 or not stem.startswith(prefix):
        return False
    try:
        int(stem, 16)
    except ValueError:
        return False
    return True


def _entry_paths(root: "Path") -> Iterator[Path]:
    """All cache-entry files under *root* (shape-filtered, see above)."""
    return (
        path for path in root.glob("??/*.json") if _is_entry_path(path)
    )


def cache_stats(directory: str | os.PathLike) -> dict:
    """Inspect a cache directory without constructing a live cache.

    Returns entry count, total entry bytes, the lifetime counters folded
    in by :meth:`ResultCache.flush_stats`, and the derived hit rate
    (``None`` when no lookups were ever recorded).  Raises ``OSError``
    when *directory* is not a readable directory.
    """
    root = Path(directory)
    if not root.is_dir():
        raise OSError(f"not a cache directory: {directory}")
    entries = 0
    total_bytes = 0
    for path in _entry_paths(root):
        try:
            total_bytes += path.stat().st_size
        except OSError:
            continue  # entry vanished under a concurrent sweep
        entries += 1
    stats = _read_stats_file(root / STATS_FILE)
    lookups = stats["hits"] + stats["misses"]
    stats.update(
        entries=entries,
        total_bytes=total_bytes,
        hit_rate=stats["hits"] / lookups if lookups else None,
    )
    return stats


def _write_stats_file(path: "Path", totals: dict) -> bool:
    """Atomically replace *path* with *totals*; True on success."""
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(
            json.dumps(totals, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        return False
    return True


def cache_gc(
    directory: str | os.PathLike,
    *,
    max_age_days: float | None = None,
    max_bytes: int | None = None,
    now: float | None = None,
) -> dict:
    """Evict cache entries by age and/or total size (LRU by mtime).

    Two independent bounds, either or both of which must be given:

    * ``max_age_days`` — entries whose mtime is older than this many
      days are removed unconditionally;
    * ``max_bytes`` — after the age pass, the oldest-mtime entries are
      removed until the surviving total is at most this many bytes.
      An entry's mtime is when it was last stored *or served*
      (:meth:`ResultCache.lookup` touches entries on hit), so the size
      bound really is LRU: hot entries of a shared cache outlive cold
      ones.

    Eviction is always safe: every entry is recomputable, so a gc can at
    worst cost recomputation time, and entries that vanish mid-scan
    (concurrent sweeps) are skipped silently.  The gc summary is folded
    into the ``stats.json`` sidecar as ``last_gc`` — counter flushes
    preserve it — so ``repro cache stats`` can report when the
    directory was last collected.  Returns the summary dict:
    ``removed`` / ``removed_bytes`` / ``remaining`` /
    ``remaining_bytes`` / ``at`` (epoch seconds).

    Raises ``ValueError`` when neither bound is given (a gc that can
    never evict is a configuration error) or a bound is negative, and
    ``OSError`` when *directory* is not a readable directory.
    """
    if max_age_days is None and max_bytes is None:
        raise ValueError(
            "cache_gc needs at least one bound: max_age_days or max_bytes"
        )
    if max_age_days is not None and max_age_days < 0:
        raise ValueError(f"max_age_days must be >= 0, got {max_age_days}")
    if max_bytes is not None and max_bytes < 0:
        raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
    root = Path(directory)
    if not root.is_dir():
        raise OSError(f"not a cache directory: {directory}")
    if now is None:
        now = time.time()

    entries = []
    for path in _entry_paths(root):
        try:
            stat = path.stat()
        except OSError:
            continue  # entry vanished under a concurrent sweep
        entries.append((stat.st_mtime, stat.st_size, path))
    entries.sort(key=lambda item: (item[0], str(item[2])))

    doomed = []
    if max_age_days is not None:
        cutoff = now - max_age_days * 86400.0
        while entries and entries[0][0] < cutoff:
            doomed.append(entries.pop(0))
    if max_bytes is not None:
        remaining_bytes = sum(size for _mtime, size, _path in entries)
        while entries and remaining_bytes > max_bytes:
            mtime, size, path = entries.pop(0)
            doomed.append((mtime, size, path))
            remaining_bytes -= size

    removed = removed_bytes = 0
    for mtime, size, path in doomed:
        try:
            path.unlink()
        except FileNotFoundError:
            continue  # already collected by a concurrent gc
        except OSError:
            # Unwritable — skip, never fail, but count the survivor so
            # the reported (and persisted) totals reflect the disk.
            entries.append((mtime, size, path))
            continue
        removed += 1
        removed_bytes += size

    summary = {
        "at": now,
        "removed": removed,
        "removed_bytes": removed_bytes,
        "remaining": len(entries),
        "remaining_bytes": sum(size for _mtime, size, _path in entries),
    }
    stats_path = root / STATS_FILE
    with _stats_lock(root):
        totals = _read_stats_file(stats_path)
        totals["last_gc"] = summary
        _write_stats_file(stats_path, totals)
    return summary

#: Key-scheme tag mixed into every key; bumped whenever key semantics change.
KEY_SCHEME = "repro-sweep-cache-v1"

#: Proposal types with stable, canonical ``repr`` across runs and machines.
#: Anything else (objects with address-bearing default reprs, containers
#: with unordered iteration) has no reliable fingerprint → uncacheable.
_KEYABLE_PROPOSAL_TYPES = (int, str, float)

_MISSING = object()


def _runtime_source_hash() -> str | None:
    """Fingerprint of the record-producing machinery every entry depends on.

    Covers the simulation kernel, the consensus-property checkers and the
    record constructor — plus everything in their import closure (traces,
    messages, schedules, …) — so a behavioral change anywhere between
    "case in" and "record out" invalidates the whole cache.
    """
    from repro.analysis import metrics, sweep
    from repro.sim import kernel

    return source_closure_hash([kernel, metrics, sweep])


class ResultCache:
    """A content-addressed cache mapping case keys to sweep records.

    Attributes:
        directory: root of the on-disk store (created on construction).
        hits: lookups answered from the store since construction.
        misses: lookups for cacheable cases that were not in the store.
        deduped: cases served in-flight from another case in the same
            batch that shares their content key (no disk lookup involved;
            counted by the runner).
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.deduped = 0
        self.store_failures = 0
        self._runtime_hash = _runtime_source_hash()

    # -- keys --------------------------------------------------------------

    def case_key(self, case: Case) -> str | None:
        """The content key for *case*, or ``None`` if it is uncacheable.

        Cases carrying an explicit in-process ``factory`` are never cached:
        the factory's captured state has no reliable fingerprint, and a
        false hit would silently return another algorithm's record.  The
        same goes for proposals outside the canonically-``repr``-able
        types (``Value`` is ``Any``; a default object repr embeds a memory
        address, which would at best never hit and at worst collide).
        """
        if case.factory is not None:
            return None
        if self._runtime_hash is None:
            return None
        if not all(
            value is None or isinstance(value, _KEYABLE_PROPOSAL_TYPES)
            for value in case.proposals
        ):
            return None
        source = algorithm_source_hash(case.algorithm)
        if source is None:
            return None
        payload = "\n".join((
            KEY_SCHEME,
            case.algorithm,
            source,
            self._runtime_hash,
            case.schedule.digest(),
            repr(tuple(case.proposals)),
        ))
        return hashlib.sha256(payload.encode()).hexdigest()

    def path_for(self, case: Case) -> Path | None:
        """The on-disk entry path for *case* (``None`` if uncacheable)."""
        key = self.case_key(case)
        return None if key is None else self._entry_path(key)

    def _entry_path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    # -- lookup / store ----------------------------------------------------

    def lookup(
        self, case: Case, key: "str | None | object" = _MISSING
    ) -> SweepRecord | None:
        """The cached record for *case*, re-stamped with its label and index.

        Returns ``None`` — and counts a miss — when the entry is absent or
        unreadable (corrupted JSON, wrong version, key mismatch).
        Uncacheable cases return ``None`` without touching the counters.
        Callers that already derived the case's key (the runner's
        partition loop) pass it to skip recomputation.
        """
        key = self.case_key(case) if key is _MISSING else cast(
            "str | None", key
        )
        if key is None:
            return None
        record = self._load(key)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        # Touch the entry so mtime really is a recency signal: without
        # this, :func:`cache_gc`'s "LRU" size bound orders by store time
        # and evicts the *hottest* entries of a shared cache first.
        try:
            os.utime(self._entry_path(key))
        except OSError:
            pass  # read-only share / entry raced away — hit still counts
        return replace(record, workload=case.workload, case_index=case.index)

    def store(
        self,
        case: Case,
        record: SweepRecord,
        key: "str | None | object" = _MISSING,
    ) -> None:
        """Persist *record* under *case*'s key (no-op when uncacheable).

        Write failures (read-only directory, full disk) are swallowed and
        counted in ``store_failures``: the cache's contract is to cost
        only time, never to abort a sweep whose compute already happened.
        A pre-derived *key* may be passed to skip recomputation.
        """
        key = self.case_key(case) if key is _MISSING else cast(
            "str | None", key
        )
        if key is None:
            return
        path = self._entry_path(key)
        data = {
            "version": ENTRY_VERSION,
            "key": key,
            "algorithm": case.algorithm,
            "record": asdict(record),
        }
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(
                json.dumps(data, sort_keys=True) + "\n", encoding="utf-8"
            )
            os.replace(tmp, path)
        except OSError:
            self.store_failures += 1
            try:
                tmp.unlink()
            except OSError:
                pass

    def _load(self, key: str) -> SweepRecord | None:
        try:
            data = json.loads(
                self._entry_path(key).read_text(encoding="utf-8")
            )
            if data.get("version") != ENTRY_VERSION or data.get("key") != key:
                return None
            return SweepRecord(**data["record"])
        except (OSError, ValueError, TypeError, KeyError):
            return None

    # -- reporting ---------------------------------------------------------

    def entry_count(self) -> int:
        """Number of entries currently on disk."""
        return sum(1 for _ in _entry_paths(self.directory))

    def flush_stats(self) -> None:
        """Fold this cache's session counters into ``directory/stats.json``.

        The stats file accumulates lifetime hit/miss/dedup/store-failure
        totals (plus a sweep count) across processes, so ``repro cache
        stats`` can report a hit rate for a long-lived directory.  A
        successful flush zeroes the session counters, so flushing after
        every sweep of a long-lived cache object never double-counts;
        a failed flush keeps them for the next attempt.  The
        read-merge-write cycle runs under an ``flock`` on a sidecar lock
        file (see :func:`_stats_lock`), so parallel shards flushing into
        one shared directory each add their delta instead of overwriting
        each other's; the write itself stays atomic (``os.replace``).
        Failures are swallowed like entry-store failures: stats must
        never abort a sweep.
        """
        path = self.directory / STATS_FILE
        with _stats_lock(self.directory):
            totals = _read_stats_file(path)
            totals["hits"] += self.hits
            totals["misses"] += self.misses
            totals["deduped"] += self.deduped
            totals["store_failures"] += self.store_failures
            totals["sweeps"] += 1
            flushed = _write_stats_file(path, totals)
        if flushed:
            self.hits = self.misses = self.deduped = 0
            self.store_failures = 0
        else:
            self.store_failures += 1

    def describe(self) -> str:
        """One-line hit/miss summary, e.g. for the sweep CLI.

        Mentions in-batch dedup and store failures only when they occurred
        — otherwise a persistently unwritable cache would look like an
        eternally cold one.
        """
        extras = ""
        if self.deduped:
            extras += f", {self.deduped} deduped"
        if self.store_failures:
            extras += f", {self.store_failures} store failures"
        return (
            f"cache: {self.hits} hits, {self.misses} misses{extras} "
            f"({self.directory})"
        )
