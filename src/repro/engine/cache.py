"""Content-addressed on-disk cache for batch-engine sweep records.

Every case the engine executes is a pure function of *what code ran
against what input*: the record is fully determined by (algorithm
implementation, adversary schedule, proposals).  The cache therefore keys
each :class:`~repro.analysis.sweep.SweepRecord` by SHA-256 over

* the key-scheme version tag (``repro-sweep-cache-v1``),
* the algorithm's registry name,
* :func:`repro.algorithms.registry.algorithm_source_hash` — a content
  hash of the algorithm's transitive module closure (its own module, MRO
  bases, composed underlying consensus, shared helpers), so editing an
  algorithm's source invalidates that algorithm's entries and its
  dependents', and nothing else,
* a runtime fingerprint — the source closure of the simulation kernel and
  the metric/record machinery (:mod:`repro.sim.kernel`,
  :mod:`repro.analysis.metrics`, :mod:`repro.analysis.sweep` and
  everything they import), so editing how records are *produced*
  invalidates everything,
* :meth:`repro.model.schedule.Schedule.digest` — the canonical schedule
  identity, and
* the proposals tuple.

Workload labels and case indices are *not* part of the key: two cases
that run the same code on the same inputs share one entry, and
:meth:`ResultCache.lookup` re-stamps ``workload`` and ``case_index`` from
the requesting case so a warm run is byte-identical to a cold one.

Entries are one JSON file each under ``directory/<key[:2]>/<key>.json``,
written atomically (temp file + ``os.replace``) so concurrent sweeps may
share a directory.  Corrupted, truncated or version-skewed entries are
treated as misses and overwritten on the next store — a cache directory
can always be deleted wholesale without losing anything but time.

Uncacheable cases (explicit in-process factories, whose captured state
cannot be fingerprinted; or algorithms whose source is unavailable) are
passed through to the kernel untouched and counted in neither ``hits``
nor ``misses``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, replace
from pathlib import Path

from repro.algorithms.registry import (
    algorithm_source_hash,
    source_closure_hash,
)
from repro.analysis.sweep import SweepRecord
from repro.engine.cases import Case

#: On-disk entry format version; bumped whenever the entry layout changes.
ENTRY_VERSION = 1

#: Lifetime-counter sidecar file name (lives at the cache root, outside
#: the ``<key[:2]>/`` entry fan-out so entry globs never see it).
STATS_FILE = "stats.json"

#: Counters accumulated in the stats sidecar.
_STAT_KEYS = ("hits", "misses", "deduped", "store_failures", "sweeps")


def _read_stats_file(path: "Path") -> dict:
    """The accumulated counters in *path* (zeros when absent/corrupt)."""
    totals = {key: 0 for key in _STAT_KEYS}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        for key in _STAT_KEYS:
            value = data.get(key, 0)
            if isinstance(value, int) and value >= 0:
                totals[key] = value
    except (OSError, ValueError, AttributeError):
        pass
    return totals


def cache_stats(directory: str | os.PathLike) -> dict:
    """Inspect a cache directory without constructing a live cache.

    Returns entry count, total entry bytes, the lifetime counters folded
    in by :meth:`ResultCache.flush_stats`, and the derived hit rate
    (``None`` when no lookups were ever recorded).  Raises ``OSError``
    when *directory* is not a readable directory.
    """
    root = Path(directory)
    if not root.is_dir():
        raise OSError(f"not a cache directory: {directory}")
    entries = 0
    total_bytes = 0
    for path in root.glob("??/*.json"):
        try:
            total_bytes += path.stat().st_size
        except OSError:
            continue  # entry vanished under a concurrent sweep
        entries += 1
    stats = _read_stats_file(root / STATS_FILE)
    lookups = stats["hits"] + stats["misses"]
    stats.update(
        entries=entries,
        total_bytes=total_bytes,
        hit_rate=stats["hits"] / lookups if lookups else None,
    )
    return stats

#: Key-scheme tag mixed into every key; bumped whenever key semantics change.
KEY_SCHEME = "repro-sweep-cache-v1"

#: Proposal types with stable, canonical ``repr`` across runs and machines.
#: Anything else (objects with address-bearing default reprs, containers
#: with unordered iteration) has no reliable fingerprint → uncacheable.
_KEYABLE_PROPOSAL_TYPES = (int, str, float)

_MISSING = object()


def _runtime_source_hash() -> str | None:
    """Fingerprint of the record-producing machinery every entry depends on.

    Covers the simulation kernel, the consensus-property checkers and the
    record constructor — plus everything in their import closure (traces,
    messages, schedules, …) — so a behavioral change anywhere between
    "case in" and "record out" invalidates the whole cache.
    """
    from repro.analysis import metrics, sweep
    from repro.sim import kernel

    return source_closure_hash([kernel, metrics, sweep])


class ResultCache:
    """A content-addressed cache mapping case keys to sweep records.

    Attributes:
        directory: root of the on-disk store (created on construction).
        hits: lookups answered from the store since construction.
        misses: lookups for cacheable cases that were not in the store.
        deduped: cases served in-flight from another case in the same
            batch that shares their content key (no disk lookup involved;
            counted by the runner).
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.deduped = 0
        self.store_failures = 0
        self._runtime_hash = _runtime_source_hash()

    # -- keys --------------------------------------------------------------

    def case_key(self, case: Case) -> str | None:
        """The content key for *case*, or ``None`` if it is uncacheable.

        Cases carrying an explicit in-process ``factory`` are never cached:
        the factory's captured state has no reliable fingerprint, and a
        false hit would silently return another algorithm's record.  The
        same goes for proposals outside the canonically-``repr``-able
        types (``Value`` is ``Any``; a default object repr embeds a memory
        address, which would at best never hit and at worst collide).
        """
        if case.factory is not None:
            return None
        if self._runtime_hash is None:
            return None
        if not all(
            value is None or isinstance(value, _KEYABLE_PROPOSAL_TYPES)
            for value in case.proposals
        ):
            return None
        source = algorithm_source_hash(case.algorithm)
        if source is None:
            return None
        payload = "\n".join((
            KEY_SCHEME,
            case.algorithm,
            source,
            self._runtime_hash,
            case.schedule.digest(),
            repr(tuple(case.proposals)),
        ))
        return hashlib.sha256(payload.encode()).hexdigest()

    def path_for(self, case: Case) -> Path | None:
        """The on-disk entry path for *case* (``None`` if uncacheable)."""
        key = self.case_key(case)
        return None if key is None else self._entry_path(key)

    def _entry_path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    # -- lookup / store ----------------------------------------------------

    def lookup(self, case: Case, key=_MISSING) -> SweepRecord | None:
        """The cached record for *case*, re-stamped with its label and index.

        Returns ``None`` — and counts a miss — when the entry is absent or
        unreadable (corrupted JSON, wrong version, key mismatch).
        Uncacheable cases return ``None`` without touching the counters.
        Callers that already derived the case's key (the runner's
        partition loop) pass it to skip recomputation.
        """
        if key is _MISSING:
            key = self.case_key(case)
        if key is None:
            return None
        record = self._load(key)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return replace(record, workload=case.workload, case_index=case.index)

    def store(self, case: Case, record: SweepRecord, key=_MISSING) -> None:
        """Persist *record* under *case*'s key (no-op when uncacheable).

        Write failures (read-only directory, full disk) are swallowed and
        counted in ``store_failures``: the cache's contract is to cost
        only time, never to abort a sweep whose compute already happened.
        A pre-derived *key* may be passed to skip recomputation.
        """
        if key is _MISSING:
            key = self.case_key(case)
        if key is None:
            return
        path = self._entry_path(key)
        data = {
            "version": ENTRY_VERSION,
            "key": key,
            "algorithm": case.algorithm,
            "record": asdict(record),
        }
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(
                json.dumps(data, sort_keys=True) + "\n", encoding="utf-8"
            )
            os.replace(tmp, path)
        except OSError:
            self.store_failures += 1
            try:
                tmp.unlink()
            except OSError:
                pass

    def _load(self, key: str) -> SweepRecord | None:
        try:
            data = json.loads(
                self._entry_path(key).read_text(encoding="utf-8")
            )
            if data.get("version") != ENTRY_VERSION or data.get("key") != key:
                return None
            return SweepRecord(**data["record"])
        except (OSError, ValueError, TypeError, KeyError):
            return None

    # -- reporting ---------------------------------------------------------

    def entry_count(self) -> int:
        """Number of entries currently on disk."""
        return sum(1 for _ in self.directory.glob("??/*.json"))

    def flush_stats(self) -> None:
        """Fold this cache's session counters into ``directory/stats.json``.

        The stats file accumulates lifetime hit/miss/dedup/store-failure
        totals (plus a sweep count) across processes, so ``repro cache
        stats`` can report a hit rate for a long-lived directory.  A
        successful flush zeroes the session counters, so flushing after
        every sweep of a long-lived cache object never double-counts;
        a failed flush keeps them for the next attempt.  Writes are
        atomic but last-writer-wins under concurrency — the file is
        advisory metadata, never consulted for lookups, so a lost update
        costs only bookkeeping accuracy.  Failures are swallowed like
        entry-store failures: stats must never abort a sweep.
        """
        path = self.directory / STATS_FILE
        totals = _read_stats_file(path)
        totals["hits"] += self.hits
        totals["misses"] += self.misses
        totals["deduped"] += self.deduped
        totals["store_failures"] += self.store_failures
        totals["sweeps"] += 1
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(
                json.dumps(totals, sort_keys=True) + "\n", encoding="utf-8"
            )
            os.replace(tmp, path)
        except OSError:
            self.store_failures += 1
            try:
                tmp.unlink()
            except OSError:
                pass
        else:
            self.hits = self.misses = self.deduped = 0
            self.store_failures = 0

    def describe(self) -> str:
        """One-line hit/miss summary, e.g. for the sweep CLI.

        Mentions in-batch dedup and store failures only when they occurred
        — otherwise a persistently unwritable cache would look like an
        eternally cold one.
        """
        extras = ""
        if self.deduped:
            extras += f", {self.deduped} deduped"
        if self.store_failures:
            extras += f", {self.store_failures} store failures"
        return (
            f"cache: {self.hits} hits, {self.misses} misses{extras} "
            f"({self.directory})"
        )
