"""Minimal ASCII table rendering for benches and examples."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Cells are stringified with ``str``; columns are left-aligned except
    purely numeric columns, which are right-aligned.
    """
    body = [[str(cell) for cell in row] for row in rows]
    header_cells = [str(h) for h in headers]
    columns = len(header_cells)
    for row in body:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row}"
            )
    widths = [
        max(len(header_cells[i]), *(len(r[i]) for r in body)) if body
        else len(header_cells[i])
        for i in range(columns)
    ]
    numeric = [
        bool(body) and all(_is_number(r[i]) for r in body)
        for i in range(columns)
    ]

    def render(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(
                cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i])
            )
        return "| " + " | ".join(parts) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(render(header_cells))
    lines.append(separator)
    for row in body:
        lines.append(render(row))
    lines.append(separator)
    return "\n".join(lines)


def _is_number(text: str) -> bool:
    if not text:
        return False
    try:
        float(text)
    except ValueError:
        return text.isdigit()
    return True


def format_records(records, *, title: str | None = None) -> str:
    """Render a list of :class:`~repro.analysis.sweep.SweepRecord`."""
    if not records:
        return "(no records)"
    headers = type(records[0]).ROW_HEADERS
    return format_table(headers, [r.row() for r in records], title=title)
