"""Analysis: consensus property checking, sweeps, and table rendering."""

from repro.analysis.metrics import (
    DecisionSummary,
    assert_consensus,
    check_agreement,
    check_consensus,
    check_termination,
    check_validity,
    summarize,
)
from repro.analysis.sweep import SweepRecord, run_case, sweep, worst_case_round
from repro.analysis.tables import format_records, format_table

__all__ = [
    "DecisionSummary",
    "check_validity",
    "check_agreement",
    "check_termination",
    "check_consensus",
    "assert_consensus",
    "summarize",
    "SweepRecord",
    "run_case",
    "sweep",
    "worst_case_round",
    "format_table",
    "format_records",
]
