"""Parameter sweeps: run (algorithm × workload) grids and collect records.

:class:`SweepRecord` and :func:`run_case` are the measurement primitives
of the whole analysis stack; the grid entry points (:func:`sweep`,
:func:`worst_case_round`) delegate execution to the batch engine
(:mod:`repro.engine`), which also powers ``python -m repro sweep`` and
the benches — these wrappers remain for call sites that already hold
factories and schedules in hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.algorithms.base import AlgorithmFactory
from repro.analysis.metrics import check_agreement, check_validity
from repro.model.schedule import Schedule
from repro.sim.kernel import run_algorithm
from repro.sim.trace import AnyTrace
from repro.types import Round, Value


@dataclass(frozen=True)
class SweepRecord:
    """One (algorithm, workload) measurement.

    ``case_index`` is the originating :class:`~repro.engine.cases.Case`
    index, stamped by the engine when the record is produced (or re-stamped
    on a cache hit).  It is the explicit sort key that makes
    :meth:`~repro.engine.results.BatchResult.merge` order-independent;
    ``-1`` marks hand-built records that never passed through the engine.
    """

    algorithm: str
    workload: str
    n: int
    t: int
    crashes: int
    sync_from: Round
    global_round: Round | None
    first_round: Round | None
    deciders: int
    agreement_ok: bool
    validity_ok: bool
    messages: int
    horizon: Round = 0
    correct_undecided: int = 0
    case_index: int = -1

    def row(self) -> tuple:
        return (
            self.algorithm,
            self.workload,
            self.n,
            self.t,
            self.crashes,
            self.sync_from,
            self.global_round if self.global_round is not None else "-",
            self.deciders,
            "yes" if self.agreement_ok and self.validity_ok else "NO",
        )

    ROW_HEADERS = (
        "algorithm", "workload", "n", "t", "f", "K",
        "global round", "deciders", "safe",
    )


def run_case(
    algorithm: str,
    factory: AlgorithmFactory,
    workload: str,
    schedule: Schedule,
    proposals: Sequence[Value],
    *,
    trace_mode: str = "full",
) -> tuple[SweepRecord, AnyTrace]:
    """Run one case and record its metrics (returns the trace for reuse).

    ``trace_mode`` selects the kernel's trace kind (see
    :func:`repro.sim.kernel.execute`): ``"full"`` returns the complete
    per-round :class:`~repro.sim.trace.Trace`, ``"lean"`` the
    decision-level :class:`~repro.sim.trace.LeanTrace`.  The record is
    byte-identical either way — every metric it carries is derivable
    from both kinds — so callers that discard the trace should prefer
    ``"lean"`` (the engine does).
    """
    trace = run_algorithm(factory, schedule, proposals, trace=trace_mode)
    record = SweepRecord(
        algorithm=algorithm,
        workload=workload,
        n=schedule.n,
        t=schedule.t,
        crashes=len(schedule.crashes),
        sync_from=schedule.sync_from(),
        global_round=trace.global_decision_round(),
        first_round=trace.first_decision_round(),
        deciders=len(trace.decisions),
        agreement_ok=not check_agreement(trace),
        validity_ok=not check_validity(trace),
        messages=trace.message_count(),
        horizon=schedule.horizon,
        correct_undecided=sum(
            1 for pid in schedule.correct if pid not in trace.decisions
        ),
    )
    return record, trace


def _as_cases(
    cases: Iterable[tuple[str, AlgorithmFactory, str, Schedule, Sequence[Value]]],
):
    from repro.engine.cases import Case

    return [
        Case(
            index=i,
            algorithm=algorithm,
            workload=workload,
            schedule=schedule,
            proposals=tuple(proposals),
            factory=factory,
        )
        for i, (algorithm, factory, workload, schedule, proposals)
        in enumerate(cases)
    ]


def sweep(
    cases: Iterable[
        tuple[str, AlgorithmFactory | None, str, Schedule, Sequence[Value]]
    ],
    *,
    executor=None,
    cache=None,
) -> list[SweepRecord]:
    """Run every case on the engine and return the records in input order.

    ``executor`` selects the execution backend
    (:mod:`repro.engine.executors`; default serial) and ``cache`` is
    forwarded to the engine (:class:`~repro.engine.cache.ResultCache`).
    A case's factory may be ``None``, in which case its algorithm name is
    resolved from the registry inside the engine — that is also what
    makes the case cacheable: explicit factories have no reliable code
    fingerprint, so the cache declines to key them (and they force
    process-pool executors onto their serial fallback).
    """
    from repro.engine.runner import run_cases

    return run_cases(_as_cases(cases), executor=executor, cache=cache)


def worst_case_round(
    factory: AlgorithmFactory | str,
    schedules: Iterable[tuple[str, Schedule]],
    proposals: Sequence[Value],
    *,
    executor=None,
    cache=None,
) -> tuple[Round, str]:
    """The maximum global decision round over the schedules, with its witness.

    Schedules on which the run does not decide within the horizon count as
    ``horizon + 1`` (a conservative lower estimate of the true round).

    ``factory`` may be a registry name instead of a factory callable; the
    engine then resolves it by name, which also makes the cases eligible
    for the forwarded ``cache`` (explicit factory callables never are —
    their captured state has no reliable fingerprint).  ``executor``
    selects the execution backend (default serial).
    """
    from repro.engine.results import BatchResult
    from repro.engine.runner import run_cases

    if isinstance(factory, str):
        algorithm, explicit = factory, None
    else:
        algorithm, explicit = "<worst-case>", factory
    cases = _as_cases(
        (algorithm, explicit, name, schedule, proposals)
        for name, schedule in schedules
    )
    result = BatchResult(
        records=tuple(run_cases(cases, executor=executor, cache=cache))
    )
    return result.worst_case(algorithm)
