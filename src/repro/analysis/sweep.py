"""Parameter sweeps: run (algorithm × workload) grids and collect records."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.algorithms.base import AlgorithmFactory
from repro.analysis.metrics import check_agreement, check_validity
from repro.model.schedule import Schedule
from repro.sim.kernel import run_algorithm
from repro.sim.trace import Trace
from repro.types import Round, Value


@dataclass(frozen=True)
class SweepRecord:
    """One (algorithm, workload) measurement."""

    algorithm: str
    workload: str
    n: int
    t: int
    crashes: int
    sync_from: Round
    global_round: Round | None
    first_round: Round | None
    deciders: int
    agreement_ok: bool
    validity_ok: bool
    messages: int

    def row(self) -> tuple:
        return (
            self.algorithm,
            self.workload,
            self.n,
            self.t,
            self.crashes,
            self.sync_from,
            self.global_round if self.global_round is not None else "-",
            self.deciders,
            "yes" if self.agreement_ok and self.validity_ok else "NO",
        )

    ROW_HEADERS = (
        "algorithm", "workload", "n", "t", "f", "K",
        "global round", "deciders", "safe",
    )


def run_case(
    algorithm: str,
    factory: AlgorithmFactory,
    workload: str,
    schedule: Schedule,
    proposals: Sequence[Value],
) -> tuple[SweepRecord, Trace]:
    """Run one case and record its metrics (returns the trace for reuse)."""
    trace = run_algorithm(factory, schedule, proposals)
    record = SweepRecord(
        algorithm=algorithm,
        workload=workload,
        n=schedule.n,
        t=schedule.t,
        crashes=len(schedule.crashes),
        sync_from=schedule.sync_from(),
        global_round=trace.global_decision_round(),
        first_round=trace.first_decision_round(),
        deciders=len(trace.decisions),
        agreement_ok=not check_agreement(trace),
        validity_ok=not check_validity(trace),
        messages=trace.message_count(),
    )
    return record, trace


def sweep(
    cases: Iterable[
        tuple[str, AlgorithmFactory, str, Schedule, Sequence[Value]]
    ],
) -> list[SweepRecord]:
    """Run every case and return the records."""
    return [
        run_case(algorithm, factory, workload, schedule, proposals)[0]
        for algorithm, factory, workload, schedule, proposals in cases
    ]


def worst_case_round(
    factory: AlgorithmFactory,
    schedules: Iterable[tuple[str, Schedule]],
    proposals: Sequence[Value],
) -> tuple[Round, str]:
    """The maximum global decision round over the schedules, with its witness.

    Schedules on which the run does not decide within the horizon count as
    ``horizon + 1`` (a conservative lower estimate of the true round).
    """
    worst: Round = 0
    witness = "<none>"
    for name, schedule in schedules:
        trace = run_algorithm(factory, schedule, proposals)
        global_round = trace.global_decision_round()
        if global_round is None:
            global_round = schedule.horizon + 1
        if global_round > worst:
            worst, witness = global_round, name
    return worst, witness
