"""Compact, importable versions of the paper's experiments.

The authoritative experiment definitions live in ``benchmarks/`` (one
bench per experiment, with assertions and timings).  This module exposes
lightweight row-generators for the table-shaped experiments so that the
CLI (``python -m repro experiments``) and the report example can print
them without depending on the bench files.

The grid-shaped experiments (E5–E8) build declarative case lists and
execute them on the batch engine (:mod:`repro.engine`); the experiments
that inspect traces or detector histories directly (E10, E11) run on the
kernel as before.

Every function returns ``(title, headers, rows)`` ready for
:func:`repro.analysis.tables.format_table`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.model.schedule import Schedule
from repro.sim.kernel import run_algorithm

Table = tuple[str, list[str], list[tuple]]


def _batch(
    entries: Iterable[tuple[str, str, Schedule, Sequence[int]]],
    *,
    executor=None,
):
    """Run ``(algorithm, workload, schedule, proposals)`` entries as a batch.

    ``executor`` is an engine execution backend
    (:mod:`repro.engine.executors`); the default serial backend keeps the
    compact tables deterministic and overhead-free.
    """
    from repro.engine import cases_from, run_batch

    return run_batch(cases_from(entries), executor=executor)


def price_of_indulgence(n: int = 5, t: int = 2) -> Table:
    """E5: worst-case synchronous decision rounds, per algorithm."""
    from repro.workloads import (
        coordinator_killer,
        serial_cascade,
        value_hiding_chain,
    )

    workloads = [
        ("failure_free", Schedule.failure_free(n, t, 24)),
        ("cascade", serial_cascade(n, t, 24)),
        ("hiding_chain", value_hiding_chain(n, t, 24)),
        ("killer2", coordinator_killer(n, t, 24, rounds_per_cycle=2)),
        ("killer3", coordinator_killer(n, t, 24, rounds_per_cycle=3)),
    ]
    algorithms = [
        ("floodset", "FloodSet (SCS)", t + 1),
        ("att2", "A_t+2 (ES)", t + 2),
        ("hurfin_raynal", "Hurfin-Raynal (ES)", 2 * t + 2),
        ("chandra_toueg", "Chandra-Toueg (ES)", 3 * t + 3),
    ]
    result = _batch(
        (name, workload, schedule, range(n))
        for name, _label, _paper in algorithms
        for workload, schedule in workloads
    )
    rows = []
    for name, label, paper in algorithms:
        worst, witness = result.worst_case(name)
        rows.append((label, worst, paper, witness))
    return (
        f"E5: the price of indulgence (n={n}, t={t})",
        ["algorithm", "worst sync round", "paper", "witness"],
        rows,
    )


def diamond_s_gap(resiliences: tuple[int, ...] = (1, 2, 3)) -> Table:
    """E6: A_◇S (t+2) vs Hurfin–Raynal (2t+2) on coordinator killers."""
    from repro.workloads import coordinator_killer

    systems = [(2 * t + 1, t) for t in resiliences]
    result = _batch(
        (algorithm, f"killer/t{t}",
         coordinator_killer(n, t, 2 * t + 6, rounds_per_cycle=2), range(n))
        for n, t in systems
        for algorithm in ("adiamond_s", "hurfin_raynal")
    )
    rows = []
    for n, t in systems:
        asd = result.find("adiamond_s", f"killer/t{t}")
        hr = result.find("hurfin_raynal", f"killer/t{t}")
        rows.append((n, t, asd.global_round, t + 2,
                     hr.global_round, 2 * t + 2))
    return (
        "E6: A_dS vs Hurfin-Raynal on coordinator-killer runs",
        ["n", "t", "A_dS", "paper t+2", "HR", "paper 2t+2"],
        rows,
    )


def failure_free_optimization(
    systems: tuple[tuple[int, int], ...] = ((3, 1), (5, 2), (7, 3)),
) -> Table:
    """E7: the Figure-4 optimization decides at round 2 failure-free."""
    from repro.workloads import serial_cascade

    def entries():
        for n, t in systems:
            ff = Schedule.failure_free(n, t, t + 6)
            crashy = serial_cascade(n, t, t + 6)
            yield ("att2", f"ff/n{n}", ff, range(n))
            yield ("att2_optimized", f"ff/n{n}", ff, range(n))
            yield ("att2_optimized", f"cascade/n{n}", crashy, range(n))

    result = _batch(entries())
    rows = []
    for n, t in systems:
        plain = result.find("att2", f"ff/n{n}")
        opt = result.find("att2_optimized", f"ff/n{n}")
        opt_crashy = result.find("att2_optimized", f"cascade/n{n}")
        rows.append((n, t, plain.global_round, opt.global_round,
                     opt_crashy.global_round))
    return (
        "E7: Figure-4 optimization — round 2 when failure-free",
        ["n", "t", "plain (ff)", "optimized (ff)", "optimized (cascade)"],
        rows,
    )


def eventual_fast_decision(n: int = 7, t: int = 2) -> Table:
    """E8: A_{f+2} vs AMR on sync-after-k runs with f late crashes."""
    from repro.workloads import async_prefix

    points = [(k, f) for k in (0, 2, 4) for f in (0, 1, 2)]
    result = _batch(
        (algorithm, f"k{k}f{f}",
         async_prefix(n, t, k + f + 10, k=k, crashes_after=f), range(n))
        for k, f in points
        for algorithm in ("afp2", "amr_leader")
    )
    rows = []
    for k, f in points:
        afp2 = result.find("afp2", f"k{k}f{f}")
        amr = result.find("amr_leader", f"k{k}f{f}")
        rows.append((k, f, afp2.global_round, k + f + 2,
                     amr.global_round, k + 2 * f + 2))
    return (
        f"E8: eventual fast decision (n={n}, t={t})",
        ["k", "f", "A_f+2", "bound k+f+2", "AMR", "bound k+2f+2"],
        rows,
    )


def split_brain(cases: tuple[tuple[int, int], ...] = ((4, 2), (6, 3))) -> Table:
    """E10: ES-legal partitions break agreement when t >= n/2."""
    from repro.analysis.metrics import check_agreement
    from repro.core.att2 import ATt2
    from repro.workloads import partitioned_prefix

    rows = []
    for n, t in cases:
        schedule = partitioned_prefix(
            n, t, 2 * t + 6, rounds=2 * t + 4, heal_at=2 * t + 6
        )
        half = n // 2
        factory = ATt2.factory(allow_unsafe_resilience=True)
        trace = run_algorithm(
            factory, schedule, [0] * half + [1] * (n - half)
        )
        rows.append((
            n, t, str(sorted(trace.decided_values())),
            "VIOLATED" if check_agreement(trace) else "ok",
        ))
    return (
        "E10: split-brain under t >= n/2",
        ["n", "t", "decisions", "agreement"],
        rows,
    )


def detector_simulation(samples: int = 30) -> Table:
    """E11: the simulated detector is P on SCS runs, ◇P on ES runs."""
    from repro.detectors import (
        EventuallyPerfect,
        Perfect,
        simulate_from_schedule,
    )
    from repro.sim.random_schedules import (
        random_es_schedule,
        random_scs_schedule,
    )

    scs_ok = scs_total = es_ok = es_total = 0
    for seed in range(samples):
        scs = random_scs_schedule(6, 2, seed, horizon=9)
        last = max((s.round for s in scs.crashes.values()), default=0)
        if last < scs.horizon:
            scs_total += 1
            scs_ok += Perfect.satisfied_by(simulate_from_schedule(scs))
        es = random_es_schedule(6, 2, seed, horizon=16, sync_by=7)
        last = max((s.round for s in es.crashes.values()), default=0)
        if last < es.horizon:
            es_total += 1
            es_ok += EventuallyPerfect.satisfied_by(
                simulate_from_schedule(es)
            )
    return (
        "E11: simulated failure detectors",
        ["property", "satisfied", "checked"],
        [
            ("SCS runs satisfying P", scs_ok, scs_total),
            ("ES runs satisfying ◇P", es_ok, es_total),
        ],
    )


def all_experiments() -> list[Table]:
    """Every compact experiment, in presentation order."""
    return [
        price_of_indulgence(),
        diamond_s_gap(),
        failure_free_optimization(),
        eventual_fast_decision(),
        split_brain(),
        detector_simulation(),
    ]
