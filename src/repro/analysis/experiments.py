"""Compact, importable versions of the paper's experiments.

The authoritative experiment definitions live in ``benchmarks/`` (one
bench per experiment, with assertions and timings).  This module exposes
lightweight row-generators for the table-shaped experiments so that the
CLI (``python -m repro experiments``) and the report example can print
them without depending on the bench files.

Every function returns ``(title, headers, rows)`` ready for
:func:`repro.analysis.tables.format_table`.
"""

from __future__ import annotations

from repro.analysis.sweep import run_case, worst_case_round
from repro.model.schedule import Schedule
from repro.sim.kernel import run_algorithm

Table = tuple[str, list[str], list[tuple]]


def price_of_indulgence(n: int = 5, t: int = 2) -> Table:
    """E5: worst-case synchronous decision rounds, per algorithm."""
    from repro.algorithms.chandra_toueg import ChandraTouegES
    from repro.algorithms.floodset import FloodSet
    from repro.algorithms.hurfin_raynal import HurfinRaynalES
    from repro.core.att2 import ATt2
    from repro.workloads import (
        coordinator_killer,
        serial_cascade,
        value_hiding_chain,
    )

    workloads = [
        ("failure_free", Schedule.failure_free(n, t, 24)),
        ("cascade", serial_cascade(n, t, 24)),
        ("hiding_chain", value_hiding_chain(n, t, 24)),
        ("killer2", coordinator_killer(n, t, 24, rounds_per_cycle=2)),
        ("killer3", coordinator_killer(n, t, 24, rounds_per_cycle=3)),
    ]
    rows = []
    for name, factory, paper in (
        ("FloodSet (SCS)", FloodSet, t + 1),
        ("A_t+2 (ES)", ATt2.factory(), t + 2),
        ("Hurfin-Raynal (ES)", HurfinRaynalES, 2 * t + 2),
        ("Chandra-Toueg (ES)", ChandraTouegES, 3 * t + 3),
    ):
        worst, witness = worst_case_round(factory, workloads, list(range(n)))
        rows.append((name, worst, paper, witness))
    return (
        f"E5: the price of indulgence (n={n}, t={t})",
        ["algorithm", "worst sync round", "paper", "witness"],
        rows,
    )


def diamond_s_gap(resiliences: tuple[int, ...] = (1, 2, 3)) -> Table:
    """E6: A_◇S (t+2) vs Hurfin–Raynal (2t+2) on coordinator killers."""
    from repro.algorithms.hurfin_raynal import HurfinRaynalES
    from repro.core.adiamond_s import ADiamondS
    from repro.workloads import coordinator_killer

    rows = []
    for t in resiliences:
        n = 2 * t + 1
        schedule = coordinator_killer(n, t, 2 * t + 6, rounds_per_cycle=2)
        asd, _ = run_case("a", ADiamondS.factory(), "k", schedule,
                          list(range(n)))
        hr, _ = run_case("h", HurfinRaynalES, "k", schedule,
                         list(range(n)))
        rows.append((n, t, asd.global_round, t + 2,
                     hr.global_round, 2 * t + 2))
    return (
        "E6: A_dS vs Hurfin-Raynal on coordinator-killer runs",
        ["n", "t", "A_dS", "paper t+2", "HR", "paper 2t+2"],
        rows,
    )


def failure_free_optimization(
    systems: tuple[tuple[int, int], ...] = ((3, 1), (5, 2), (7, 3)),
) -> Table:
    """E7: the Figure-4 optimization decides at round 2 failure-free."""
    from repro.core.att2 import ATt2
    from repro.core.att2_optimized import ATt2Optimized
    from repro.workloads import serial_cascade

    rows = []
    for n, t in systems:
        ff = Schedule.failure_free(n, t, t + 6)
        crashy = serial_cascade(n, t, t + 6)
        plain, _ = run_case("p", ATt2.factory(), "ff", ff, list(range(n)))
        opt, _ = run_case("o", ATt2Optimized.factory(), "ff", ff,
                          list(range(n)))
        opt_crashy, _ = run_case("o", ATt2Optimized.factory(), "c",
                                 crashy, list(range(n)))
        rows.append((n, t, plain.global_round, opt.global_round,
                     opt_crashy.global_round))
    return (
        "E7: Figure-4 optimization — round 2 when failure-free",
        ["n", "t", "plain (ff)", "optimized (ff)", "optimized (cascade)"],
        rows,
    )


def eventual_fast_decision(n: int = 7, t: int = 2) -> Table:
    """E8: A_{f+2} vs AMR on sync-after-k runs with f late crashes."""
    from repro.algorithms.amr_leader import AMRLeaderES
    from repro.core.afp2 import AFPlus2
    from repro.workloads import async_prefix

    rows = []
    for k in (0, 2, 4):
        for f in (0, 1, 2):
            schedule = async_prefix(n, t, k + f + 10, k=k, crashes_after=f)
            afp2, _ = run_case("a", AFPlus2, "w", schedule, list(range(n)))
            amr, _ = run_case("m", AMRLeaderES, "w", schedule,
                              list(range(n)))
            rows.append((k, f, afp2.global_round, k + f + 2,
                         amr.global_round, k + 2 * f + 2))
    return (
        f"E8: eventual fast decision (n={n}, t={t})",
        ["k", "f", "A_f+2", "bound k+f+2", "AMR", "bound k+2f+2"],
        rows,
    )


def split_brain(cases: tuple[tuple[int, int], ...] = ((4, 2), (6, 3))) -> Table:
    """E10: ES-legal partitions break agreement when t >= n/2."""
    from repro.analysis.metrics import check_agreement
    from repro.core.att2 import ATt2
    from repro.workloads import partitioned_prefix

    rows = []
    for n, t in cases:
        schedule = partitioned_prefix(
            n, t, 2 * t + 6, rounds=2 * t + 4, heal_at=2 * t + 6
        )
        half = n // 2
        factory = ATt2.factory(allow_unsafe_resilience=True)
        trace = run_algorithm(
            factory, schedule, [0] * half + [1] * (n - half)
        )
        rows.append((
            n, t, str(sorted(trace.decided_values())),
            "VIOLATED" if check_agreement(trace) else "ok",
        ))
    return (
        "E10: split-brain under t >= n/2",
        ["n", "t", "decisions", "agreement"],
        rows,
    )


def detector_simulation(samples: int = 30) -> Table:
    """E11: the simulated detector is P on SCS runs, ◇P on ES runs."""
    from repro.detectors import (
        EventuallyPerfect,
        Perfect,
        simulate_from_schedule,
    )
    from repro.sim.random_schedules import (
        random_es_schedule,
        random_scs_schedule,
    )

    scs_ok = scs_total = es_ok = es_total = 0
    for seed in range(samples):
        scs = random_scs_schedule(6, 2, seed, horizon=9)
        last = max((s.round for s in scs.crashes.values()), default=0)
        if last < scs.horizon:
            scs_total += 1
            scs_ok += Perfect.satisfied_by(simulate_from_schedule(scs))
        es = random_es_schedule(6, 2, seed, horizon=16, sync_by=7)
        last = max((s.round for s in es.crashes.values()), default=0)
        if last < es.horizon:
            es_total += 1
            es_ok += EventuallyPerfect.satisfied_by(
                simulate_from_schedule(es)
            )
    return (
        "E11: simulated failure detectors",
        ["property", "satisfied", "checked"],
        [
            ("SCS runs satisfying P", scs_ok, scs_total),
            ("ES runs satisfying ◇P", es_ok, es_total),
        ],
    )


def all_experiments() -> list[Table]:
    """Every compact experiment, in presentation order."""
    return [
        price_of_indulgence(),
        diamond_s_gap(),
        failure_free_optimization(),
        eventual_fast_decision(),
        split_brain(),
        detector_simulation(),
    ]
