"""Consensus property checking and decision metrics over traces.

The three consensus properties (paper, Section 1.3):

* **validity** — a decided value was proposed by some process;
* **uniform agreement** — no two processes (correct or not) decide
  differently;
* **termination** — every correct process eventually decides; over a
  finite trace this means "within the simulated horizon", so termination
  checks are only meaningful on schedules whose horizon is generous enough.

Every checker accepts either trace kind — the full per-round
:class:`~repro.sim.trace.Trace` or the decision-level
:class:`~repro.sim.trace.LeanTrace` — and produces identical results for
the same run: the properties are functions of proposals and decisions
only, which both kinds carry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConsensusViolation
from repro.sim.trace import AnyTrace
from repro.types import Round, Value


def check_validity(trace: AnyTrace) -> list[str]:
    """Violations of validity: decided values that nobody proposed."""
    proposed = set(trace.proposals)
    problems = []
    for pid, (value, round_) in sorted(trace.decisions.items()):
        if value not in proposed:
            problems.append(
                f"validity: p{pid} decided {value!r} at round {round_}, "
                f"which no process proposed"
            )
    return problems


def check_agreement(trace: AnyTrace) -> list[str]:
    """Violations of uniform agreement: two processes deciding differently."""
    values = trace.decided_values()
    if len(values) <= 1:
        return []
    detail = ", ".join(
        f"p{pid}->{value!r}@r{round_}"
        for pid, (value, round_) in sorted(trace.decisions.items())
    )
    return [f"uniform agreement: {len(values)} distinct decisions ({detail})"]


def check_termination(trace: AnyTrace) -> list[str]:
    """Violations of termination: correct processes undecided at the horizon."""
    problems = []
    for pid in sorted(trace.schedule.correct):
        if pid not in trace.decisions:
            problems.append(
                f"termination: correct p{pid} undecided after "
                f"{trace.rounds_executed} rounds"
            )
    return problems


def check_consensus(
    trace: AnyTrace, *, expect_termination: bool = True
) -> list[str]:
    """All consensus violations exhibited by the trace."""
    problems = check_validity(trace) + check_agreement(trace)
    if expect_termination:
        problems += check_termination(trace)
    return problems


def assert_consensus(
    trace: AnyTrace, *, expect_termination: bool = True
) -> AnyTrace:
    """Raise :class:`ConsensusViolation` if the trace violates consensus."""
    problems = check_consensus(trace, expect_termination=expect_termination)
    if problems:
        raise ConsensusViolation("; ".join(problems))
    return trace


@dataclass(frozen=True)
class DecisionSummary:
    """Headline numbers of one run."""

    n: int
    t: int
    crashes: int
    sync_from: Round
    global_round: Round | None
    first_round: Round | None
    deciders: int
    values: tuple[Value, ...]
    messages: int

    @property
    def decided_everywhere(self) -> bool:
        return self.deciders > 0 and self.global_round is not None


def summarize(trace: AnyTrace) -> DecisionSummary:
    return DecisionSummary(
        n=trace.n,
        t=trace.t,
        crashes=len(trace.schedule.crashes),
        sync_from=trace.schedule.sync_from(),
        global_round=trace.global_decision_round(),
        first_round=trace.first_decision_round(),
        deciders=len(trace.decisions),
        values=tuple(sorted(trace.decided_values(), key=repr)),
        messages=trace.message_count(),
    )
