"""ASCII space-time diagrams of runs — the paper's Figure 1, rendered.

One column per round, one row per process.  Cell glyphs:

* ``o``  — process sent and completed the round normally
* ``X``  — process crashed in this round
* ``.``  — process already crashed (or halted) — silent
* ``H``  — process halted (returned) at the end of this round
* ``D!`` — process decided in this round (shown with the value)

Between the rows, per-round annotations list suspicious events: delayed
arrivals (``<-s@r``: a round-r message from s arrived here) and the
suspicion sets implied by the schedule.  The examples use this to show the
five lower-bound runs side by side.
"""

from __future__ import annotations

from repro.sim.trace import Trace, require_full_trace
from repro.types import ProcessId, Round


def _cell(trace: Trace, pid: ProcessId, k: Round) -> str:
    record = trace.record(k)
    if pid in record.decided:
        return f"D={record.decided[pid]!r}"
    if pid in record.crashed:
        return "X"
    if pid in record.halted:
        return "H"
    if record.sent.get(pid) is None:
        return "."
    return "o"


def render_run(trace: Trace, *, upto: Round | None = None,
               title: str | None = None) -> str:
    """Render one run as a process × round grid (full traces only)."""
    require_full_trace(trace, "rendering a space-time diagram")
    last = min(upto or trace.rounds_executed, trace.rounds_executed)
    rounds = list(range(1, last + 1))
    header = ["proc"] + [f"r{k}" for k in rounds]
    rows = []
    for pid in range(trace.n):
        rows.append(
            [f"p{pid}"] + [_cell(trace, pid, k) for k in rounds]
        )
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows))
        for i in range(len(header))
    ]

    def line(cells):
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(header))
    out.append(line(["-" * w for w in widths]))
    for row in rows:
        out.append(line(row))
    annotations = _delay_annotations(trace, last)
    if annotations:
        out.append("delayed deliveries:")
        out.extend(f"  {a}" for a in annotations)
    return "\n".join(out)


def _delay_annotations(trace: Trace, last: Round) -> list[str]:
    notes = []
    schedule = trace.schedule
    for (sender, receiver, sent), until in sorted(schedule.delays.items()):
        if sent <= last:
            notes.append(
                f"r{sent} {sender}->{receiver} arrives r{until}"
                + (" (beyond window)" if until > last else "")
            )
    for pid, spec in sorted(schedule.crashes.items()):
        for receiver, until in spec.delayed:
            if spec.round <= last:
                notes.append(
                    f"r{spec.round} {pid}->{receiver} (crash-round) "
                    f"arrives r{until}"
                )
    return notes


def render_side_by_side(
    traces: dict[str, Trace], *, upto: Round | None = None
) -> str:
    """Render several runs one after another with their names."""
    blocks = []
    for name, trace in traces.items():
        blocks.append(render_run(trace, upto=upto, title=f"--- {name} ---"))
    return "\n\n".join(blocks)
