"""The synchronous crash-stop model SCS (Lynch 1996) — validator.

In SCS every round is synchronous by construction:

* If a process does not crash in round k, **every** process completing
  round k receives its round-k message in round k — no delays, no losses.
* If a process crashes in round k, an arbitrary subset of its round-k
  messages is lost and the rest arrive in round k — crash-round messages
  are never *delayed* (delaying them is an ES-only behaviour; see the
  paper's footnote 2).

Consensus in SCS is solvable in exactly t + 1 rounds (FloodSet matches the
t + 1 lower bound) — the yardstick against which the paper prices
indulgence.
"""

from __future__ import annotations

from repro.errors import ModelViolation
from repro.model.schedule import Schedule


def check_scs(schedule: Schedule) -> list[str]:
    """Return a list of SCS violations (empty iff the schedule is SCS-legal)."""
    violations: list[str] = []
    if len(schedule.crashes) > schedule.t:
        violations.append(
            f"{len(schedule.crashes)} crashes exceed the resilience bound "
            f"t={schedule.t}"
        )
    for (sender, receiver, k), until in sorted(schedule.delays.items()):
        violations.append(
            f"SCS forbids delayed messages: r{k} {sender}->{receiver} "
            f"delayed until {until}"
        )
    for sender, receiver, k in sorted(schedule.losses):
        crash = schedule.crash_round(sender)
        if crash != k:
            violations.append(
                f"SCS loses messages only in the sender's crash round: "
                f"r{k} {sender}->{receiver} lost but p{sender} "
                + ("never crashes" if crash is None else f"crashes in round {crash}")
            )
    for pid, spec in sorted(schedule.crashes.items()):
        if spec.delayed:
            violations.append(
                f"SCS forbids delaying crash-round messages: p{pid} round "
                f"{spec.round} delays to {[r for r, _ in spec.delayed]}"
            )
    return violations


def is_scs(schedule: Schedule) -> bool:
    return not check_scs(schedule)


def enforce_scs(schedule: Schedule) -> Schedule:
    """Raise :class:`ModelViolation` unless the schedule is SCS-legal."""
    violations = check_scs(schedule)
    if violations:
        raise ModelViolation(
            "schedule violates SCS:\n  " + "\n  ".join(violations)
        )
    return schedule
