"""Shared helpers for model validators."""

from __future__ import annotations

from repro.model.schedule import Schedule
from repro.types import ProcessId, Round


def same_round_senders(
    schedule: Schedule, receiver: ProcessId, k: Round
) -> frozenset[ProcessId]:
    """Senders whose round-k message reaches *receiver* within round k.

    Includes the receiver itself (self-delivery is immediate).  This is
    the set whose complement the receiver *suspects* in round k.
    """
    return frozenset(
        sender
        for sender in schedule.processes
        if schedule.delivery_round(sender, receiver, k) == k
    )


def suspected_by(
    schedule: Schedule, receiver: ProcessId, k: Round
) -> frozenset[ProcessId]:
    """Processes *receiver* suspects in round k: no round-k message arrived.

    Matches the paper's definition: p_i suspects p_j in round k iff p_i
    does not receive the round-k message from p_j in round k.  This is also
    the simulated failure-detector output of Section 4.
    """
    received_from = same_round_senders(schedule, receiver, k)
    return frozenset(schedule.processes) - received_from


def crash_count(schedule: Schedule) -> int:
    return len(schedule.crashes)
