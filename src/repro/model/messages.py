"""Message representation for the round-based kernel.

A message is a frozen record of who sent what to whom and in which round.
Messages are hashable and totally ordered so that delivery sets can be
canonically sorted — determinism of the kernel, and hence the soundness of
the view-indistinguishability machinery, depends on this.

``Message`` is slotted (``dataclass(slots=True)``): a large-n round
materializes O(n²) of them, and the slot layout roughly halves their
memory and speeds up the attribute reads the algorithms' receive loops
are made of.  The kernel's hot path additionally bypasses the dataclass
constructor (see :func:`fast_message`), which skips the per-instance
``__post_init__`` hashability probe — the kernel probes each payload
once per send instead, in the send phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.types import Payload, ProcessId, Round

_FIELDS = ("sent_round", "sender", "receiver", "payload")


@dataclass(frozen=True, order=True, slots=True)
class Message:
    """A single point-to-point message.

    Attributes:
        sent_round: the round in which the message was sent (its timestamp;
            the paper assumes every message is tagged with the round number).
        sender: process id of the sender.
        receiver: process id of the receiver.
        payload: the algorithm-level content.  Must be hashable; by
            convention a tuple whose first element is a string tag, e.g.
            ``("ESTIMATE", 3, est, halt_frozenset)``.
    """

    sent_round: Round
    sender: ProcessId
    receiver: ProcessId
    payload: Payload = field(compare=False)

    def __post_init__(self) -> None:
        hash(self.payload)  # fail fast on unhashable payloads

    @property
    def tag(self) -> Any:
        """The payload tag (first tuple element), or the payload itself."""
        if isinstance(self.payload, tuple) and self.payload:
            return self.payload[0]
        return self.payload

    def __repr__(self) -> str:  # compact, for trace dumps
        return (
            f"Message(r{self.sent_round} {self.sender}->{self.receiver} "
            f"{self.payload!r})"
        )

    # With both ``frozen`` and ``slots`` there is no instance ``__dict__``
    # for pickle's default state protocol, and the frozen ``__setattr__``
    # rejects the fallback slot restoration on Python 3.10 (3.11+ would
    # generate equivalent methods itself).  Explicit state methods keep
    # messages picklable across every supported interpreter — the
    # process-pool backends ship them between workers.

    def __getstate__(self) -> tuple:
        return (self.sent_round, self.sender, self.receiver, self.payload)

    def __setstate__(self, state: tuple) -> None:
        for name, value in zip(_FIELDS, state):
            object.__setattr__(self, name, value)


_new_message = Message.__new__
_set_field = object.__setattr__


def fast_message(
    sent_round: Round, sender: ProcessId, receiver: ProcessId,
    payload: Payload,
) -> Message:
    """Materialize a :class:`Message` without the dataclass constructor.

    Skips the frozen-dataclass ``__init__`` (one ``object.__setattr__``
    per field *plus* argument parsing) and the per-message
    ``__post_init__`` hashability probe.  Callers own the probe: the
    kernel hashes each payload once in the send phase, so a bad payload
    still fails fast — once per broadcast instead of once per receiver.
    Equality, ordering, hashing and pickling of the result are identical
    to a constructor-built message.
    """
    message = _new_message(Message)
    _set_field(message, "sent_round", sent_round)
    _set_field(message, "sender", sender)
    _set_field(message, "receiver", receiver)
    _set_field(message, "payload", payload)
    return message


def sort_delivery(messages: list[Message]) -> tuple[Message, ...]:
    """Canonical delivery order: by sending round, then sender id.

    Payloads are excluded from the ordering (dataclass ``compare=False``);
    a (sent_round, sender, receiver) triple uniquely identifies a message
    within one run, so the order is total in practice.
    """
    return tuple(sorted(messages))


DUMMY: Payload = ("DUMMY",)
"""Payload sent when an algorithm has nothing to say in a round.

The paper (footnote 1) assumes processes send messages to all others in
every round, inserting dummy messages when the algorithm generates none;
suspicion semantics ("no round-k message received in round k") rely on this.
"""
