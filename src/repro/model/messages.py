"""Message representation for the round-based kernel.

A message is a frozen record of who sent what to whom and in which round.
Messages are hashable and totally ordered so that delivery sets can be
canonically sorted — determinism of the kernel, and hence the soundness of
the view-indistinguishability machinery, depends on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.types import Payload, ProcessId, Round


@dataclass(frozen=True, order=True)
class Message:
    """A single point-to-point message.

    Attributes:
        sent_round: the round in which the message was sent (its timestamp;
            the paper assumes every message is tagged with the round number).
        sender: process id of the sender.
        receiver: process id of the receiver.
        payload: the algorithm-level content.  Must be hashable; by
            convention a tuple whose first element is a string tag, e.g.
            ``("ESTIMATE", 3, est, halt_frozenset)``.
    """

    sent_round: Round
    sender: ProcessId
    receiver: ProcessId
    payload: Payload = field(compare=False)

    def __post_init__(self) -> None:
        hash(self.payload)  # fail fast on unhashable payloads

    @property
    def tag(self) -> Any:
        """The payload tag (first tuple element), or the payload itself."""
        if isinstance(self.payload, tuple) and self.payload:
            return self.payload[0]
        return self.payload

    def __repr__(self) -> str:  # compact, for trace dumps
        return (
            f"Message(r{self.sent_round} {self.sender}->{self.receiver} "
            f"{self.payload!r})"
        )


def sort_delivery(messages: list[Message]) -> tuple[Message, ...]:
    """Canonical delivery order: by sending round, then sender id.

    Payloads are excluded from the ordering (dataclass ``compare=False``);
    a (sent_round, sender, receiver) triple uniquely identifies a message
    within one run, so the order is total in practice.
    """
    return tuple(sorted(messages))


DUMMY: Payload = ("DUMMY",)
"""Payload sent when an algorithm has nothing to say in a round.

The paper (footnote 1) assumes processes send messages to all others in
every round, inserting dummy messages when the algorithm generates none;
suspicion semantics ("no round-k message received in round k") rely on this.
"""
