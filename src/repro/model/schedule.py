"""Adversary schedules: crashes, message delays and losses.

A :class:`Schedule` is a complete, deterministic description of everything
the environment does in one run: which processes crash in which round, which
of their crash-round messages still get through, and which messages are
delayed to later rounds or lost.  Executing a fixed algorithm against a
fixed schedule yields exactly one run — this is what makes the paper's
indistinguishability arguments machine-checkable.

Terminology (matching the paper):

* A process *crashes in round k* means it enters round k, sends its round-k
  message to an adversary-chosen subset of processes, and never acts again.
* A message sent in round k is *delayed* if it is received in a round > k,
  and *lost* if it is never received.
* Round k is *synchronous* if every round-k message from a process that
  does **not** crash in round k is received in round k.  (Messages sent by a
  process in the round in which it crashes may be lost or delayed even in
  synchronous runs — paper, footnotes 2 and 5.)
* A run is *synchronous* if every round is synchronous (K = 1), and
  *synchronous after round k* if every round > k is synchronous.
* A run is *serial* if it is synchronous, at most one process crashes per
  round, and at most t processes crash overall.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from typing import Iterable, Mapping

from repro.errors import ScheduleError
from repro.types import ProcessId, Round, validate_system_size


@dataclass(frozen=True)
class CrashSpec:
    """How a single process crashes.

    Attributes:
        round: the round in which the process crashes (it still sends in
            this round, to the receivers below, but never completes it).
        delivered_same_round: receivers that get the crash-round message in
            the crash round itself.
        delayed: receivers that get the crash-round message in a *later*
            round, as a tuple of ``(receiver, delivery_round)`` pairs.
            Receivers in neither set lose the message.
    """

    round: Round
    delivered_same_round: frozenset[ProcessId] = frozenset()
    delayed: tuple[tuple[ProcessId, Round], ...] = ()

    def __post_init__(self) -> None:
        if self.round < 1:
            raise ScheduleError(f"crash round must be >= 1, got {self.round}")
        delayed_receivers = [r for r, _ in self.delayed]
        if len(delayed_receivers) != len(set(delayed_receivers)):
            raise ScheduleError("duplicate receiver in CrashSpec.delayed")
        overlap = self.delivered_same_round.intersection(delayed_receivers)
        if overlap:
            raise ScheduleError(
                f"receivers {sorted(overlap)} both same-round and delayed"
            )
        for receiver, delivery in self.delayed:
            if delivery <= self.round:
                raise ScheduleError(
                    f"delayed delivery round {delivery} must exceed crash "
                    f"round {self.round} (receiver {receiver})"
                )

    def delayed_delivery(self, receiver: ProcessId) -> Round | None:
        """Delivery round of the crash-round message to *receiver*, if delayed.

        Backed by a lazily-built ``receiver -> round`` mapping (validators
        and the schedule compiler ask this once per sender×receiver pair,
        so a linear scan over ``delayed`` turns quadratic at large n).
        The mapping is cached on the instance and rebuilt on demand after
        unpickling (:meth:`__getstate__` strips caches).
        """
        mapping = self.__dict__.get("_delayed_map")
        if mapping is None:
            mapping = dict(self.delayed)
            object.__setattr__(self, "_delayed_map", mapping)
        return mapping.get(receiver)

    def __getstate__(self) -> dict:
        """Pickle only the dataclass fields, never the lazy caches."""
        return {f.name: getattr(self, f.name) for f in dataclass_fields(self)}


@dataclass(frozen=True)
class Schedule:
    """A complete adversary schedule for a run of ``n`` processes.

    Use :class:`ScheduleBuilder` or the convenience constructors
    (:meth:`failure_free`, :meth:`synchronous`) rather than instantiating
    directly.

    Attributes:
        n: number of processes.
        t: resilience bound the run is validated against.
        horizon: number of rounds the kernel will simulate at most.  All
            delayed deliveries must land within the horizon.
        crashes: per-process crash specifications.
        delays: delivery round for delayed non-crash-round messages, keyed
            by ``(sender, receiver, sent_round)``.
        losses: lost non-crash-round messages, as ``(sender, receiver,
            sent_round)`` triples.  (Whether a loss is *legal* depends on
            the model; the ES validator flags correct→correct losses.)
    """

    n: int
    t: int
    horizon: Round
    crashes: Mapping[ProcessId, CrashSpec] = field(default_factory=dict)
    delays: Mapping[tuple[ProcessId, ProcessId, Round], Round] = field(
        default_factory=dict
    )
    losses: frozenset[tuple[ProcessId, ProcessId, Round]] = frozenset()

    # -- basic facts ----------------------------------------------------

    @property
    def processes(self) -> range:
        return range(self.n)

    @property
    def faulty(self) -> frozenset[ProcessId]:
        """Processes that crash at some point in this schedule.

        Memoized per instance (the schedule is frozen): metrics and
        record production read this per case, and at large n rebuilding
        the set per access is measurable.
        """
        cached = self.__dict__.get("_faulty_cache")
        if cached is None:
            cached = frozenset(self.crashes)
            object.__setattr__(self, "_faulty_cache", cached)
        return cached

    @property
    def correct(self) -> frozenset[ProcessId]:
        """Processes that never crash in this schedule (memoized)."""
        cached = self.__dict__.get("_correct_cache")
        if cached is None:
            cached = frozenset(
                p for p in self.processes if p not in self.crashes
            )
            object.__setattr__(self, "_correct_cache", cached)
        return cached

    def crash_round(self, pid: ProcessId) -> Round | None:
        spec = self.crashes.get(pid)
        return spec.round if spec is not None else None

    def sends_in_round(self, pid: ProcessId, k: Round) -> bool:
        """True iff *pid* is still up at the start of round k (so it sends)."""
        crash = self.crash_round(pid)
        return crash is None or crash >= k

    def completes_round(self, pid: ProcessId, k: Round) -> bool:
        """True iff *pid* survives the whole of round k."""
        crash = self.crash_round(pid)
        return crash is None or crash > k

    def crashed_in(self, k: Round) -> frozenset[ProcessId]:
        return frozenset(
            p for p, spec in self.crashes.items() if spec.round == k
        )

    # -- delivery semantics ---------------------------------------------

    def delivery_round(
        self, sender: ProcessId, receiver: ProcessId, k: Round
    ) -> Round | None:
        """The round in which the (sender → receiver, round k) message arrives.

        Returns ``None`` if the message is lost or was never sent (the
        sender crashed in an earlier round).  Self-delivery is always
        immediate: a process "receives" its own round-k message in round k.
        """
        if sender == receiver:
            return k if self.sends_in_round(sender, k) else None
        if not self.sends_in_round(sender, k):
            return None
        spec = self.crashes.get(sender)
        if spec is not None and spec.round == k:
            if receiver in spec.delivered_same_round:
                return k
            return spec.delayed_delivery(receiver)
        if (sender, receiver, k) in self.losses:
            return None
        return self.delays.get((sender, receiver, k), k)

    def deliveries_to(
        self, receiver: ProcessId, k: Round
    ) -> list[tuple[ProcessId, Round]]:
        """All ``(sender, sent_round)`` pairs arriving at *receiver* in round k."""
        arrivals = []
        for sender in self.processes:
            for sent in range(1, k + 1):
                if self.delivery_round(sender, receiver, sent) == k:
                    arrivals.append((sender, sent))
        return arrivals

    # -- synchrony classification ----------------------------------------

    def is_synchronous_round(self, k: Round) -> bool:
        """True iff every round-k message from a non-crashing sender arrives in round k.

        Messages from a process crashing in round k are unconstrained
        (paper, footnote 5).  Messages to receivers that do not complete
        round k are ignored.
        """
        for sender in self.processes:
            if not self.sends_in_round(sender, k):
                continue
            if self.crash_round(sender) == k:
                continue
            for receiver in self.processes:
                if receiver == sender:
                    continue
                if not self.completes_round(receiver, k):
                    continue
                if self.delivery_round(sender, receiver, k) != k:
                    return False
        return True

    def sync_from(self) -> Round:
        """Smallest K such that every round >= K is synchronous.

        A fully synchronous schedule returns 1.  Scans down from the
        horizon; the result is the paper's (unknown-to-the-algorithm) K.
        Memoized per instance (the scan is O(n² · horizon) and record
        production asks for K once per case); the schedule compiler
        (:mod:`repro.sim.compiled`) pre-seeds the cache as a by-product
        of its delivery sweep.
        """
        cached = self.__dict__.get("_sync_from_cache")
        if cached is not None:
            return cached
        first_bad = 0
        for k in range(1, self.horizon + 1):
            if not self.is_synchronous_round(k):
                first_bad = k
        object.__setattr__(self, "_sync_from_cache", first_bad + 1)
        return first_bad + 1

    def is_synchronous_run(self) -> bool:
        """True iff the run is synchronous (K = 1)."""
        return all(
            self.is_synchronous_round(k) for k in range(1, self.horizon + 1)
        )

    def is_serial_run(self) -> bool:
        """True iff synchronous, at most one crash per round, at most t total."""
        if len(self.crashes) > self.t:
            return False
        rounds = [spec.round for spec in self.crashes.values()]
        if len(rounds) != len(set(rounds)):
            return False
        return self.is_synchronous_run()

    # -- derived schedules -----------------------------------------------

    def with_horizon(self, horizon: Round) -> "Schedule":
        """A copy of this schedule with a different horizon."""
        if horizon < self.horizon:
            for delivery in self.delays.values():
                if delivery > horizon:
                    raise ScheduleError(
                        "cannot shrink horizon below a scheduled delivery"
                    )
        return Schedule(
            n=self.n,
            t=self.t,
            horizon=horizon,
            crashes=dict(self.crashes),
            delays=dict(self.delays),
            losses=self.losses,
        )

    # -- convenience constructors -----------------------------------------

    @staticmethod
    def failure_free(n: int, t: int, horizon: Round) -> "Schedule":
        """A synchronous schedule with no crashes, delays or losses."""
        validate_system_size(n, t)
        return Schedule(n=n, t=t, horizon=horizon)

    @staticmethod
    def synchronous(
        n: int,
        t: int,
        horizon: Round,
        crashes: Mapping[ProcessId, tuple[Round, Iterable[ProcessId]]] = {},
    ) -> "Schedule":
        """A synchronous schedule with the given crashes.

        ``crashes`` maps each crashing process to ``(round, delivered_to)``
        where ``delivered_to`` are the receivers of its crash-round message
        (delivered in the crash round; all other receivers lose it).
        """
        builder = ScheduleBuilder(n, t, horizon)
        for pid, (round_, delivered_to) in crashes.items():
            builder.crash(pid, round_, delivered_to=delivered_to)
        return builder.build()

    # -- equality / hashing (canonical key) -------------------------------

    def _key(self) -> tuple:
        return (
            self.n,
            self.t,
            self.horizon,
            tuple(sorted(self.crashes.items())),
            tuple(sorted(self.delays.items())),
            tuple(sorted(self.losses)),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self._key() == other._key()

    def __getstate__(self) -> dict:
        """Pickle only the dataclass fields, never the lazy caches.

        Schedules memoize their digest, synchrony round and compiled
        execution plan (:mod:`repro.sim.compiled`) on the instance; the
        plan in particular is O(n² · horizon) and would dominate every
        case pickled to a process-pool worker.  Workers recompute the
        caches on first use.
        """
        return {f.name: getattr(self, f.name) for f in dataclass_fields(self)}

    def __hash__(self) -> int:
        return hash(self._key())

    def digest(self) -> str:
        """Stable SHA-256 hex digest of the schedule's canonical identity.

        Two schedules compare equal iff their digests match: the digest
        hashes a normalized rendering of :meth:`_key` — the same structure
        that defines equality, with unordered sets flattened to sorted
        tuples and nested dataclasses (``CrashSpec``) expanded field by
        field, so any field added to the identity automatically reaches
        the digest too.  Independent of construction order, process
        identity and Python hash randomization, this is the schedule
        component of the batch engine's content-addressed cache keys
        (:mod:`repro.engine.cache`) and is safe to persist across runs,
        machines and Python versions.  Memoized per instance (schedules
        are immutable and shared across a grid's algorithms).
        """
        cached = self.__dict__.get("_digest_cache")
        if cached is not None:
            return cached

        def normalize(value):
            if isinstance(value, CrashSpec):
                return tuple(
                    normalize(getattr(value, f.name))
                    for f in dataclass_fields(value)
                )
            if isinstance(value, frozenset):
                return tuple(sorted(value))
            if isinstance(value, tuple):
                return tuple(normalize(item) for item in value)
            return value

        payload = repr(normalize(self._key()))
        value = hashlib.sha256(payload.encode()).hexdigest()
        object.__setattr__(self, "_digest_cache", value)
        return value

    def describe(self) -> str:
        """Human-readable multi-line summary, for example scripts and logs."""
        lines = [
            f"Schedule(n={self.n}, t={self.t}, horizon={self.horizon})",
            f"  synchronous from round K={self.sync_from()}"
            + (" (synchronous run)" if self.is_synchronous_run() else ""),
        ]
        for pid in sorted(self.crashes):
            spec = self.crashes[pid]
            got = sorted(spec.delivered_same_round)
            lines.append(
                f"  p{pid} crashes in round {spec.round}; "
                f"same-round delivery to {got}; delayed {list(spec.delayed)}"
            )
        for (s, r, k), until in sorted(self.delays.items()):
            lines.append(f"  delay  r{k} {s}->{r} until round {until}")
        for s, r, k in sorted(self.losses):
            lines.append(f"  lose   r{k} {s}->{r}")
        return "\n".join(lines)


class ScheduleBuilder:
    """Mutable builder for :class:`Schedule` with consistency checking."""

    def __init__(self, n: int, t: int, horizon: Round) -> None:
        validate_system_size(n, t)
        if horizon < 1:
            raise ScheduleError(f"horizon must be >= 1, got {horizon}")
        self.n = n
        self.t = t
        self.horizon = horizon
        self._crashes: dict[ProcessId, CrashSpec] = {}
        self._delays: dict[tuple[ProcessId, ProcessId, Round], Round] = {}
        self._losses: set[tuple[ProcessId, ProcessId, Round]] = set()

    def _check_pid(self, pid: ProcessId) -> None:
        if not 0 <= pid < self.n:
            raise ScheduleError(f"process id {pid} out of range 0..{self.n - 1}")

    def crash(
        self,
        pid: ProcessId,
        round_: Round,
        delivered_to: Iterable[ProcessId] = (),
        delayed: Mapping[ProcessId, Round] | None = None,
    ) -> "ScheduleBuilder":
        """Crash *pid* in round *round_*.

        ``delivered_to`` receivers get the crash-round message in the crash
        round; ``delayed`` maps receivers to later delivery rounds; all
        other receivers lose the message.
        """
        self._check_pid(pid)
        if pid in self._crashes:
            raise ScheduleError(f"process {pid} already crashes")
        delivered = frozenset(delivered_to) - {pid}
        for receiver in delivered:
            self._check_pid(receiver)
        delayed_items: tuple[tuple[ProcessId, Round], ...] = ()
        if delayed:
            for receiver, delivery in delayed.items():
                self._check_pid(receiver)
                if delivery > self.horizon:
                    raise ScheduleError(
                        f"delayed delivery at round {delivery} exceeds "
                        f"horizon {self.horizon}"
                    )
            delayed_items = tuple(sorted(delayed.items()))
        self._crashes[pid] = CrashSpec(
            round=round_,
            delivered_same_round=delivered,
            delayed=delayed_items,
        )
        return self

    def delay(
        self, sender: ProcessId, receiver: ProcessId, k: Round, until: Round
    ) -> "ScheduleBuilder":
        """Deliver the (sender → receiver) round-k message in round *until* > k."""
        self._check_pid(sender)
        self._check_pid(receiver)
        if sender == receiver:
            raise ScheduleError("self-delivery cannot be delayed")
        if until <= k:
            raise ScheduleError(
                f"delayed delivery round {until} must exceed sending round {k}"
            )
        if until > self.horizon:
            raise ScheduleError(
                f"delivery round {until} exceeds horizon {self.horizon}"
            )
        key = (sender, receiver, k)
        if key in self._losses:
            raise ScheduleError(f"message {key} is already lost")
        self._delays[key] = until
        return self

    def lose(
        self, sender: ProcessId, receiver: ProcessId, k: Round
    ) -> "ScheduleBuilder":
        """Lose the (sender → receiver) round-k message."""
        self._check_pid(sender)
        self._check_pid(receiver)
        if sender == receiver:
            raise ScheduleError("self-delivery cannot be lost")
        key = (sender, receiver, k)
        if key in self._delays:
            raise ScheduleError(f"message {key} is already delayed")
        self._losses.add(key)
        return self

    def build(self) -> Schedule:
        """Validate cross-entry consistency and freeze into a Schedule."""
        for (sender, _receiver, k), _until in self._delays.items():
            spec = self._crashes.get(sender)
            if spec is not None and spec.round <= k:
                raise ScheduleError(
                    f"process {sender} crashes in round {spec.round}; use "
                    f"CrashSpec.delayed for its crash-round messages, and it "
                    f"sends nothing after that"
                )
        for sender, _receiver, k in self._losses:
            spec = self._crashes.get(sender)
            if spec is not None and spec.round <= k:
                raise ScheduleError(
                    f"process {sender} crashes in round {spec.round}; "
                    f"round-{k} losses are implied or impossible"
                )
        for pid, spec in self._crashes.items():
            if spec.round > self.horizon:
                raise ScheduleError(
                    f"process {pid} crashes after the horizon; drop the crash "
                    f"or extend the horizon"
                )
        return Schedule(
            n=self.n,
            t=self.t,
            horizon=self.horizon,
            crashes=dict(self._crashes),
            delays=dict(self._delays),
            losses=frozenset(self._losses),
        )
