"""The eventually synchronous model ES — validator.

Every run of ES satisfies (paper, Section 1.2):

* **t-resilience** — every process completing round k receives round-k
  messages from at least n − t processes (within round k);
* **reliable channels** — messages from correct processes to correct
  processes are never lost (they may be delayed finitely);
* **eventual synchrony** — there is a round K such that every round k ≥ K
  is synchronous: round-k messages from processes that do not crash in
  round k arrive in round k, and crash-round messages arrive in round k or
  are lost (or delayed — footnote 5 — which only weakens the adversary we
  validate against, so we accept it).

A run is *synchronous* iff K = 1.  Since simulations are finite, the
validator checks eventual synchrony **within the horizon**: some suffix of
the simulated window must be synchronous.  Pass ``require_sync_by=None`` to
skip that check for deliberately asynchronous-window experiments.
"""

from __future__ import annotations

from repro.errors import ModelViolation
from repro.model.constraints import same_round_senders
from repro.model.schedule import Schedule
from repro.types import Round


def check_es(
    schedule: Schedule, *, require_sync_by: Round | None = -1
) -> list[str]:
    """Return a list of ES violations (empty iff the schedule is ES-legal).

    Args:
        schedule: the schedule to validate.
        require_sync_by: latest acceptable synchrony round K.  The default
            ``-1`` means "within the horizon"; ``None`` disables the
            eventual-synchrony check (useful when the simulated window is
            an asynchronous prefix of a longer notional run).
    """
    violations: list[str] = []
    n, t = schedule.n, schedule.t

    if len(schedule.crashes) > t:
        violations.append(
            f"{len(schedule.crashes)} crashes exceed the resilience bound t={t}"
        )

    # t-resilience.
    for k in range(1, schedule.horizon + 1):
        for receiver in schedule.processes:
            if not schedule.completes_round(receiver, k):
                continue
            got = len(same_round_senders(schedule, receiver, k))
            if got < n - t:
                violations.append(
                    f"t-resilience: p{receiver} receives only {got} < "
                    f"n-t={n - t} round-{k} messages in round {k}"
                )

    # Reliable channels: correct -> correct messages are never lost.
    correct = schedule.correct
    for sender, receiver, k in sorted(schedule.losses):
        if sender in correct and receiver in correct:
            violations.append(
                f"reliable channels: correct->correct message r{k} "
                f"{sender}->{receiver} is lost"
            )

    # Eventual synchrony within the horizon (or by the requested round).
    if require_sync_by is not None:
        bound = schedule.horizon if require_sync_by == -1 else require_sync_by
        sync_from = schedule.sync_from()
        if sync_from > bound:
            violations.append(
                f"eventual synchrony: first all-synchronous suffix starts at "
                f"round {sync_from} > {bound}"
            )

    return violations


def is_es(schedule: Schedule, *, require_sync_by: Round | None = -1) -> bool:
    return not check_es(schedule, require_sync_by=require_sync_by)


def enforce_es(
    schedule: Schedule, *, require_sync_by: Round | None = -1
) -> Schedule:
    """Raise :class:`ModelViolation` unless the schedule is ES-legal."""
    violations = check_es(schedule, require_sync_by=require_sync_by)
    if violations:
        raise ModelViolation(
            "schedule violates ES:\n  " + "\n  ".join(violations)
        )
    return schedule
