"""Round-based system models: messages, adversary schedules, SCS and ES.

The paper works with two round-based crash-stop models:

* **SCS** — the classic synchronous crash-stop model (Lynch 1996): a message
  sent in round k by a process that does not crash in round k is received in
  round k; messages from a process crashing in round k reach an arbitrary
  subset of receivers (the rest are lost).
* **ES** — the eventually synchronous model: runs may be asynchronous for an
  arbitrary finite prefix.  Every run satisfies *t-resilience* (each process
  completing round k receives at least n−t round-k messages in round k),
  *reliable channels* (correct→correct messages are never lost, only
  delayed finitely), and *eventual synchrony* (from some unknown round K
  onwards the run behaves synchronously).

Both are expressed here as *constraints over adversary schedules*
(:mod:`repro.model.schedule`); validators in :mod:`repro.model.scs` and
:mod:`repro.model.es` classify schedules, and the kernel in
:mod:`repro.sim.kernel` executes any schedule deterministically.
"""

from repro.model.messages import Message
from repro.model.schedule import CrashSpec, Schedule, ScheduleBuilder

__all__ = ["Message", "CrashSpec", "Schedule", "ScheduleBuilder"]
