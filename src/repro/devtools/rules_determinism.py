"""DET rules: iteration order, seeded randomness, clocks, address hashes.

The engine's headline contract — the same grid produces byte-identical
exports across backends, pool sizes, trace modes, shards and spools —
holds only while every record-feeding computation is a pure function of
the case.  These rules ban the four classic ways Python code silently
stops being one:

* **DET001** — iterating a set in an order-sensitive position.  Python
  set iteration order depends on insertion history and (for strings) on
  ``PYTHONHASHSEED``; two processes can disagree.  Wrap in ``sorted()``.
* **DET002** — the module-level ``random.*`` API (shared, unseeded
  global state) and OS entropy (``os.urandom``, ``uuid.uuid4``,
  ``random.SystemRandom``).  The repo's one allowed idiom is an explicit
  seeded ``random.Random(seed)`` instance, as in
  ``sim/random_schedules.py``.
* **DET003** — wall-clock and monotonic-clock reads inside the
  record-producing packages.  Timing is for benchmarks and the engine's
  operational layer (timeouts, gc ages), never for anything a record,
  cache key or export is derived from.
* **DET004** — ``id()`` (memory addresses vary per process) and builtin
  ``hash()`` (salted per process for str/bytes) feeding values.  A bare
  ``hash(x)`` expression statement — the kernel's fail-fast hashability
  probe — and ``__hash__`` implementations are allowed: neither value
  escapes the process.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.rules import (
    CLOCK_FREE_DOMAINS,
    DETERMINISTIC_DOMAINS,
    LintContext,
    Rule,
    register_rule,
)


def _is_set_expression(node: ast.AST) -> bool:
    """Syntactically-certain set expressions: literals, comprehensions,
    and direct ``set(...)``/``frozenset(...)`` calls."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


#: Callables through which set iteration order cannot leak: they either
#: impose an order themselves or reduce order-insensitively.
_ORDER_SAFE_CALLEES = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset"}
)

#: Callables that *preserve* their argument's iteration order, so a set
#: argument leaks its order into the result.
_ORDER_LEAKING_CALLEES = frozenset({"list", "tuple", "enumerate"})


@register_rule
class UnsortedSetIteration(Rule):
    code = "DET001"
    name = "unsorted-set-iteration"
    rationale = (
        "Set iteration order is insertion- and hash-seed-dependent; any "
        "order-sensitive consumption of it (loops, comprehensions, "
        "list()/tuple() conversion, str.join) can differ between two "
        "processes and break the byte-identical-exports contract. "
        "Wrap the set in sorted()."
    )
    node_types = (ast.For, ast.comprehension, ast.Call)
    domains = None  # everywhere: order discipline is repo-wide

    def check(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterable[tuple[ast.AST, str]]:
        if isinstance(node, ast.For):
            if _is_set_expression(node.iter):
                yield node.iter, (
                    "iteration over a set has nondeterministic order; "
                    "wrap it in sorted()"
                )
        elif isinstance(node, ast.comprehension):
            if _is_set_expression(node.iter):
                yield node.iter, (
                    "comprehension over a set has nondeterministic order; "
                    "wrap it in sorted()"
                )
        elif isinstance(node, ast.Call):
            yield from self._check_call(node)

    def _check_call(
        self, node: ast.Call
    ) -> Iterable[tuple[ast.AST, str]]:
        func = node.func
        if isinstance(func, ast.Name):
            if (
                func.id in _ORDER_LEAKING_CALLEES
                and node.args
                and _is_set_expression(node.args[0])
            ):
                yield node, (
                    f"{func.id}() of a set captures nondeterministic "
                    f"order; wrap the set in sorted()"
                )
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            if node.args and _is_set_expression(node.args[0]):
                yield node, (
                    "str.join over a set concatenates in nondeterministic "
                    "order; wrap the set in sorted()"
                )


@register_rule
class UnseededRandomness(Rule):
    code = "DET002"
    name = "unseeded-randomness"
    rationale = (
        "The module-level random.* API mutates shared unseeded global "
        "state, and OS entropy is nondeterministic by construction; "
        "records, schedules and cache keys must derive all randomness "
        "from an explicit seeded random.Random(seed) instance (the "
        "sim/random_schedules.py idiom) so any case can be regenerated "
        "from its seed."
    )
    node_types = (ast.Attribute,)
    domains = None  # everywhere: benches and tests must replay too

    def check(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterable[tuple[ast.AST, str]]:
        assert isinstance(node, ast.Attribute)
        value = node.value
        if not isinstance(value, ast.Name):
            return
        if value.id == "random":
            if node.attr == "Random":
                return  # the allowed, seedable idiom
            yield node, (
                f"random.{node.attr} uses the shared global RNG"
                + (
                    " (OS entropy)"
                    if node.attr == "SystemRandom"
                    else ""
                )
                + "; use an explicit seeded random.Random(seed) instance"
            )
        elif value.id == "os" and node.attr == "urandom":
            yield node, (
                "os.urandom is OS entropy; derive randomness from an "
                "explicit seed"
            )
        elif value.id == "uuid" and node.attr in ("uuid1", "uuid4"):
            yield node, (
                f"uuid.{node.attr} is nondeterministic; derive ids from "
                f"case content (e.g. SHA-256 digests) instead"
            )
        elif value.id == "secrets":
            yield node, (
                "the secrets module is OS entropy; derive randomness "
                "from an explicit seed"
            )


_CLOCK_ATTRS = frozenset(
    {
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns",
        "clock_gettime", "clock_gettime_ns",
    }
)

_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


@register_rule
class WallClockInDeterministicCode(Rule):
    code = "DET003"
    name = "wall-clock-read"
    rationale = (
        "The record-producing packages must be pure functions of their "
        "inputs; a clock read anywhere in them can only feed "
        "nondeterminism into records, cache keys or exports. Timing "
        "belongs in benchmarks/ and the engine's operational layer "
        "(timeouts, gc ages), which are outside this rule's scope."
    )
    node_types = (ast.Attribute,)
    domains = CLOCK_FREE_DOMAINS

    def check(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterable[tuple[ast.AST, str]]:
        assert isinstance(node, ast.Attribute)
        value = node.value
        if not isinstance(value, ast.Name):
            return
        if value.id == "time" and node.attr in _CLOCK_ATTRS:
            yield node, (
                f"time.{node.attr} read in a deterministic module; "
                f"records must not depend on clocks"
            )
        elif (
            value.id in ("datetime", "date")
            and node.attr in _DATETIME_ATTRS
        ):
            yield node, (
                f"{value.id}.{node.attr} read in a deterministic module; "
                f"records must not depend on clocks"
            )


@register_rule
class AddressOrSaltedHash(Rule):
    code = "DET004"
    name = "address-or-salted-hash"
    rationale = (
        "id() is a memory address (differs per process) and builtin "
        "hash() is salted per process for str/bytes (PYTHONHASHSEED); "
        "neither may feed a value that reaches a record, sort key or "
        "cache key. Use hashlib digests for content addressing. A bare "
        "hash(x) statement (fail-fast hashability probe), __hash__ "
        "implementations, and hash-to-hash comparisons like "
        "hash(a) == hash(b) (the __hash__ contract test) are allowed: "
        "the value never leaves the process."
    )
    node_types = (ast.Call,)
    domains = DETERMINISTIC_DOMAINS

    def check(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterable[tuple[ast.AST, str]]:
        assert isinstance(node, ast.Call)
        func = node.func
        if not isinstance(func, ast.Name):
            return
        if func.id == "id":
            yield node, (
                "id() is a per-process memory address; key on content "
                "(names, digests, indices) instead"
            )
        elif func.id == "hash":
            if ctx.is_discarded_expression(node):
                return  # fail-fast hashability probe: value discarded
            enclosing = ctx.enclosing_function(node)
            if enclosing is not None and enclosing.name == "__hash__":
                return  # in-process hashing protocol
            if self._in_hash_to_hash_comparison(node, ctx):
                return  # hash(a) == hash(b): the __hash__ contract test
            yield node, (
                "builtin hash() is salted per process (PYTHONHASHSEED); "
                "use hashlib for any value that crosses a process or "
                "lands in a record"
            )

    @staticmethod
    def _in_hash_to_hash_comparison(
        node: ast.Call, ctx: LintContext
    ) -> bool:
        """True for ``hash(a) == hash(b)``-shaped comparisons: every
        comparand is itself a ``hash(...)`` call, so the salted values
        only ever meet each other inside this process."""
        parent = ctx.parent(node)
        if not isinstance(parent, ast.Compare):
            return False
        comparands = [parent.left, *parent.comparators]
        return all(
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id == "hash"
            for expr in comparands
        )
