"""The pluggable rule framework behind ``repro lint``.

A rule is a small object with a **code** (``DET001``), the **node types**
it wants to see, an optional **path scope**, and a ``check`` method
producing ``(node, message)`` pairs.  The analyzer
(:mod:`repro.devtools.analyzer`) parses each file once, walks the tree
once, and dispatches every node to the rules registered for its type —
adding a rule never adds a traversal.

Path scoping keeps rules honest about *where* an invariant holds: the
determinism rules apply to the record-producing packages, the bitset
rules only to the simulation hot-path files, and so on.  Scope is
matched against the module's path *parts* (the segments after the
``repro`` package root when present), so fixture files in the test
corpus can opt into any scope via a virtual path — no special-casing in
the rules themselves.

Rules self-register at import time (:func:`register_rule`); the
``rules_*`` modules in this package are imported by the analyzer, so the
stock set is always loaded.  Out-of-tree extensions register the same
way — see ``docs/static-analysis.md``.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable, Iterator

from repro.devtools.findings import Finding

#: The record-producing packages whose outputs feed exports, cache keys
#: and sweep records — where iteration order and seeded randomness are
#: load-bearing.  ``engine`` is included: its merge/expansion order IS
#: the byte-identity contract.
DETERMINISTIC_DOMAINS = (
    "sim", "algorithms", "core", "model", "detectors", "workloads",
    "lowerbound", "engine",
)

#: The subset of :data:`DETERMINISTIC_DOMAINS` where wall-clock reads are
#: banned outright.  ``engine`` is deliberately absent: cache gc ages and
#: orchestrator timeouts legitimately read clocks — nothing they feed is
#: part of a record.
CLOCK_FREE_DOMAINS = (
    "sim", "algorithms", "core", "model", "detectors", "workloads",
    "lowerbound",
)

#: The simulation hot-path files PR 7 moved onto the bitset data plane
#: (plus the batched Phase-1 plane, which lives entirely on it); the
#: BIT rules hold these (and only these) to interning discipline.
BITSET_HOT_FILES = ("kernel.py", "view.py", "compiled.py", "phase1_plane.py")

#: Packages whose objects cross the executor pickle boundary.
PICKLE_DOMAINS = ("model", "sim", "engine")


class LintContext:
    """Everything a rule may ask about the module under analysis.

    Built once per file by the analyzer: the parsed tree, the source
    lines, the path parts used for scope matching, and a parent map so
    rules can walk *up* (is this call a ``with`` item? is it inside a
    function? a ``__hash__`` method?) without each rule re-traversing.
    """

    def __init__(self, path: str, tree: ast.AST, lines: list[str]):
        self.path = path
        self.tree = tree
        self.lines = lines
        self.rel_parts = module_parts(path)
        self._parents: dict[int, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The chain of enclosing nodes, innermost first."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def is_discarded_expression(self, node: ast.AST) -> bool:
        """True iff *node* is the expression of a bare ``Expr`` statement
        — called for effect (e.g. a fail-fast hashability probe), its
        value never feeding anything."""
        parent = self.parent(node)
        return isinstance(parent, ast.Expr)

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


def module_parts(path: str) -> tuple[str, ...]:
    """The scope-matching parts of *path*.

    The segments after the last ``repro`` package directory when the
    path contains one (``src/repro/sim/kernel.py`` → ``("sim",
    "kernel.py")``), the full normalized parts otherwise — so test-tree
    paths still match the unscoped rules and fixture files can claim any
    scope through a virtual path.
    """
    parts = tuple(part for part in path.replace("\\", "/").split("/") if part)
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return parts[index + 1:]
    return parts


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`;
    instances are stateless (one shared instance serves every file).

    Attributes:
        code: unique rule id, ``<GROUP><NNN>`` (suppression and baseline
            key).
        name: short kebab-case label for listings.
        rationale: one-paragraph statement of the invariant protected.
        node_types: AST node classes the rule wants dispatched.
        domains: path segments the rule applies to (``None`` =
            everywhere).
        files: basenames the rule applies to within its domains
            (``None`` = every file).
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    node_types: tuple[type, ...] = ()
    domains: tuple[str, ...] | None = None
    files: tuple[str, ...] | None = None

    def applies_to(self, parts: tuple[str, ...]) -> bool:
        """Whether the rule is in scope for a module with these path parts."""
        if self.domains is not None:
            if not any(part in self.domains for part in parts[:-1]):
                return False
        if self.files is not None:
            if not parts or parts[-1] not in self.files:
                return False
        return True

    def check(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterable[tuple[ast.AST, str]]:
        """Yield ``(node, message)`` for each violation at *node*."""
        raise NotImplementedError

    def finding(self, node: ast.AST, message: str, ctx: LintContext) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            path=ctx.path,
            line=lineno,
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
            source_line=ctx.source_line(lineno),
        )


_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule by its code.

    Re-registering a code replaces the previous rule (last wins), so a
    repo-local override can shadow a stock rule without forking it.
    """
    rule = cls()
    if not rule.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    _REGISTRY[rule.code] = rule
    return cls


def _load_stock_rules() -> None:
    # Imported lazily so the registry exists before the rule modules
    # (which use @register_rule at module level) are executed.
    from repro.devtools import (  # noqa: F401  (import-for-effect)
        rules_bitset,
        rules_determinism,
        rules_orchestrator,
        rules_pickle,
    )


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by code (stock set auto-loaded)."""
    _load_stock_rules()
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def rules_for(
    parts: tuple[str, ...], select: Callable[[Rule], bool] | None = None
) -> dict[type, list[Rule]]:
    """The in-scope rules for a module, indexed by AST node type."""
    dispatch: dict[type, list[Rule]] = {}
    for rule in all_rules():
        if select is not None and not select(rule):
            continue
        if not rule.applies_to(parts):
            continue
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)
    return dispatch
