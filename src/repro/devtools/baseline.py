"""Committed finding baseline: new rules land without blocking CI.

A new rule usually surfaces legacy findings that are real but not worth
fixing in the same PR that introduces the rule.  The baseline records
those as *allowed debt*: ``repro lint`` subtracts baselined findings
from its report, so CI gates only on findings that are **new** relative
to the committed file (``lint-baseline.json`` at the repo root).

Keys are position-independent — ``path::CODE::stripped-source-line`` —
with an allowance *count* per key, so reformatting or moving a line does
not churn the file, while adding a second identical violation on the
same line-text does fail the gate.  The file is canonical JSON (sorted
keys, fixed indent): regenerating it from an unchanged tree is a no-op
diff.

Workflow::

    repro lint src/ --baseline lint-baseline.json               # gate
    repro lint src/ --baseline lint-baseline.json --update-baseline
    repro lint src/ --no-baseline            # nightly: show all debt

The nightly lane runs with the baseline ignored so the debt stays
visible; shrinking the baseline is always welcome, growing it needs a
reviewed ``--update-baseline`` commit.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

from repro.devtools.findings import Finding

_FORMAT_VERSION = 1


class Baseline:
    """An allowance multiset of finding keys, persisted as JSON."""

    def __init__(self, entries: dict[str, int] | None = None) -> None:
        self.entries: dict[str, int] = dict(entries or {})

    # ------------------------------------------------------------------
    # Persistence

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline, a
        malformed one is an error (a truncated baseline silently waving
        findings through would defeat the gate)."""
        if not os.path.exists(path):
            return cls()
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if (
            not isinstance(data, dict)
            or data.get("version") != _FORMAT_VERSION
            or not isinstance(data.get("entries"), dict)
        ):
            raise ValueError(
                f"{path}: not a version-{_FORMAT_VERSION} lint baseline"
            )
        entries: dict[str, int] = {}
        for key, count in data["entries"].items():
            if not isinstance(key, str) or not isinstance(count, int):
                raise ValueError(f"{path}: malformed entry {key!r}")
            if count > 0:
                entries[key] = count
        return cls(entries)

    def save(self, path: str) -> None:
        data = {
            "version": _FORMAT_VERSION,
            "entries": dict(sorted(self.entries.items())),
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        entries: dict[str, int] = {}
        for finding in findings:
            key = finding.key()
            entries[key] = entries.get(key, 0) + 1
        return cls(entries)

    # ------------------------------------------------------------------
    # Filtering

    def filter(
        self, findings: Sequence[Finding]
    ) -> tuple[list[Finding], int]:
        """Split *findings* into (kept, baselined-count).

        Each key absorbs at most its allowance count; findings beyond
        the allowance — or with no entry at all — are kept and fail the
        gate.
        """
        remaining = dict(self.entries)
        kept: list[Finding] = []
        baselined = 0
        for finding in findings:
            key = finding.key()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined += 1
            else:
                kept.append(finding)
        return kept, baselined

    def __len__(self) -> int:
        return sum(self.entries.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Baseline):
            return NotImplemented
        return self.entries == other.entries
