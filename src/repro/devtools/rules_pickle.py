"""PKL rules: pickle hygiene for slots classes crossing the pool boundary.

The process-pool backends ship cases, schedules and records between
workers as pickles.  Two slots-related traps have already cost this repo
real bugs (PR 5's ``Message`` port):

* A ``dataclass(slots=True)`` that is also ``frozen`` has no instance
  ``__dict__`` for pickle's default state protocol, and on Python 3.10
  the frozen ``__setattr__`` rejects the fallback slot restoration —
  the class pickles on 3.12 and explodes on 3.10.  **PKL001** requires
  every slots dataclass in the pickle-crossing packages to define
  ``__getstate__`` *and* ``__setstate__`` explicitly (the
  ``model/messages.py`` idiom).
* A hand-slotted class defining only one of the pair gets the default
  behavior for the other half, which silently mismatches the custom
  half's state shape.  **PKL002** requires the pair to be complete.
  (Dict-backed classes defining only ``__getstate__`` to *strip memo
  caches* — ``Schedule``'s ``CompiledSchedule`` memo — are fine: the
  default ``__setstate__`` restores a dict state correctly.)
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.rules import (
    LintContext,
    PICKLE_DOMAINS,
    Rule,
    register_rule,
)


def _is_slots_dataclass(node: ast.ClassDef) -> bool:
    """True iff the class is decorated ``@dataclass(..., slots=True)``."""
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "dataclass":
            continue
        for keyword in decorator.keywords:
            if keyword.arg == "slots" and isinstance(
                keyword.value, ast.Constant
            ):
                return bool(keyword.value.value)
    return False


def _has_dunder_slots(node: ast.ClassDef) -> bool:
    for statement in node.body:
        targets: list[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def _defined_methods(node: ast.ClassDef) -> frozenset[str]:
    return frozenset(
        statement.name
        for statement in node.body
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
    )


@register_rule
class SlotsDataclassWithoutStateProtocol(Rule):
    code = "PKL001"
    name = "slots-dataclass-state"
    rationale = (
        "A frozen dataclass(slots=True) has no __dict__ for pickle's "
        "default state protocol and fails slot restoration on Python "
        "3.10; classes crossing the executor boundary must define "
        "__getstate__ AND __setstate__ explicitly (the model/messages.py "
        "idiom) so pickling behaves identically on every supported "
        "interpreter."
    )
    node_types = (ast.ClassDef,)
    domains = PICKLE_DOMAINS

    def check(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterable[tuple[ast.AST, str]]:
        assert isinstance(node, ast.ClassDef)
        if not _is_slots_dataclass(node):
            return
        methods = _defined_methods(node)
        missing = [
            name
            for name in ("__getstate__", "__setstate__")
            if name not in methods
        ]
        if missing:
            yield node, (
                f"dataclass(slots=True) {node.name} must define "
                f"{' and '.join(missing)} for 3.10-safe pickling across "
                f"the executor boundary"
            )


@register_rule
class HalfStateProtocolOnSlotsClass(Rule):
    code = "PKL002"
    name = "half-state-protocol"
    rationale = (
        "A __slots__ class defining only one of __getstate__ / "
        "__setstate__ pairs custom state with default restoration (or "
        "vice versa); the state shapes silently mismatch and the class "
        "unpickles corrupt or not at all. Define both, or neither."
    )
    node_types = (ast.ClassDef,)
    domains = PICKLE_DOMAINS

    def check(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterable[tuple[ast.AST, str]]:
        assert isinstance(node, ast.ClassDef)
        if _is_slots_dataclass(node):
            return  # PKL001's stricter check owns dataclasses
        if not _has_dunder_slots(node):
            return  # dict-backed: default half-protocols compose fine
        methods = _defined_methods(node)
        has_get = "__getstate__" in methods
        has_set = "__setstate__" in methods
        if has_get != has_set:
            present = "__getstate__" if has_get else "__setstate__"
            absent = "__setstate__" if has_get else "__getstate__"
            yield node, (
                f"__slots__ class {node.name} defines {present} without "
                f"{absent}; the default other half mismatches the custom "
                f"state shape — define both"
            )
