"""BIT rules: bitset-plane discipline in the simulation hot paths.

PR 7 moved the kernel's per-round bookkeeping onto int bitmasks with
*interned* frozenset views (:mod:`repro.sim.bitset`): structurally equal
sets are one shared object for the life of the process, and per-round
set churn — the n = 1000 bottleneck — is gone.  PR 5 did the same for
messages: the hot paths materialize :class:`~repro.model.messages.Message`
through :func:`~repro.model.messages.fast_message`, which skips the
dataclass constructor and the per-instance hashability probe.

Both optimizations are conventions, not types: nothing stops a future
edit from writing ``frozenset(pids)`` or ``Message(...)`` straight into
``kernel.execute`` and silently reintroducing per-round allocation at
n·rounds·receivers scale.  These rules pin the convention to the three
hot-path files (``sim/kernel.py``, ``sim/view.py``, ``sim/compiled.py``):

* **BIT001** — no direct ``frozenset(...)`` materialization inside a
  function; route through ``bitset.interned_set(mask)`` (pid sets) or
  ``bitset.intern_values`` (value sets).  Module-level constants are
  exempt (they are allocated once).
* **BIT002** — no direct ``Message(...)`` construction; route through
  ``fast_message`` (the caller owns the one-per-broadcast hashability
  probe).

The reference kernel (``execute_reference``) is kept verbatim as the
equivalence oracle and carries explicit suppressions — the one place the
old idiom is load-bearing.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.rules import (
    BITSET_HOT_FILES,
    LintContext,
    Rule,
    register_rule,
)


@register_rule
class DirectFrozensetMaterialization(Rule):
    code = "BIT001"
    name = "uninterned-frozenset"
    rationale = (
        "In the simulation hot paths every frozenset materialization "
        "must go through the interning tables (bitset.interned_set / "
        "intern_values): a direct frozenset(...) allocates a fresh "
        "object per round per receiver, exactly the churn the bitset "
        "data plane removed. Module-level constants are exempt."
    )
    node_types = (ast.Call,)
    domains = ("sim",)
    files = BITSET_HOT_FILES

    def check(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterable[tuple[ast.AST, str]]:
        assert isinstance(node, ast.Call)
        func = node.func
        if not (isinstance(func, ast.Name) and func.id == "frozenset"):
            return
        if ctx.enclosing_function(node) is None:
            return  # one-shot module-level constant
        yield node, (
            "direct frozenset(...) in a simulation hot path; "
            "materialize through bitset.interned_set(mask) / "
            "intern_values so equal sets share one object"
        )


@register_rule
class DirectMessageConstruction(Rule):
    code = "BIT002"
    name = "slow-message-construction"
    rationale = (
        "The hot paths materialize Message through fast_message, which "
        "skips the dataclass constructor and the per-instance "
        "hashability probe (the kernel probes each payload once per "
        "broadcast instead of once per receiver); a direct Message(...) "
        "reintroduces O(n^2)-per-round constructor overhead."
    )
    node_types = (ast.Call,)
    domains = ("sim",)
    files = BITSET_HOT_FILES

    def check(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterable[tuple[ast.AST, str]]:
        assert isinstance(node, ast.Call)
        func = node.func
        if not (isinstance(func, ast.Name) and func.id == "Message"):
            return
        if ctx.enclosing_function(node) is None:
            return
        yield node, (
            "direct Message(...) construction in a simulation hot path; "
            "use fast_message (callers own the one-per-broadcast "
            "hashability probe)"
        )
