"""``repro lint`` — the command-line face of :mod:`repro.devtools`.

Argument wiring lives in :mod:`repro.cli` next to the other
subcommands; this module owns the behavior so tests can drive it
without a subprocess.

Exit codes: 0 clean (after noqa + baseline filtering), 1 findings,
2 usage error (unknown path, unknown rule code, malformed baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Sequence, TextIO

from repro.devtools.analyzer import LintReport, lint_paths
from repro.devtools.baseline import Baseline
from repro.devtools.rules import Rule, all_rules

#: Default baseline location, relative to the invocation directory
#: (the repo root in CI and the tier-1 self-check).
DEFAULT_BASELINE = "lint-baseline.json"


def _make_select(codes: str | None) -> Callable[[Rule], bool] | None:
    """Build a rule predicate from a ``--select DET001,BIT002`` string."""
    if codes is None:
        return None
    wanted = frozenset(
        code.strip().upper() for code in codes.split(",") if code.strip()
    )
    known = {rule.code for rule in all_rules()}
    unknown = sorted(wanted - known)
    if unknown:
        raise SystemExit(
            f"repro lint: unknown rule code(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )
    return lambda rule: rule.code in wanted


def _print_rules(stream: TextIO) -> None:
    for rule in all_rules():
        scope = "everywhere" if rule.domains is None else (
            ", ".join(rule.domains)
        )
        stream.write(f"{rule.code}  {rule.name}  [{scope}]\n")
        stream.write(f"    {rule.rationale}\n")


def _print_report(report: LintReport, stream: TextIO) -> None:
    for finding in report.findings:
        stream.write(finding.describe() + "\n")
    counts = report.counts_by_code()
    summary = ", ".join(f"{code}: {n}" for code, n in counts.items())
    if report.findings:
        stream.write(
            f"{len(report.findings)} finding(s) in "
            f"{report.files_checked} file(s)"
            + (f" ({summary})" if summary else "")
            + (
                f"; {report.baselined} baselined"
                if report.baselined
                else ""
            )
            + "\n"
        )
    else:
        stream.write(
            f"clean: {report.files_checked} file(s)"
            + (
                f", {report.baselined} baselined finding(s)"
                if report.baselined
                else ""
            )
            + "\n"
        )


def run_lint(
    args: argparse.Namespace, stream: TextIO | None = None
) -> int:
    """Execute ``repro lint`` for parsed *args*; returns the exit code."""
    out = stream if stream is not None else sys.stdout
    if args.list_rules:
        _print_rules(out)
        return 0

    try:
        select = _make_select(args.select)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2

    baseline: Baseline | None = None
    if not args.no_baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2

    try:
        if args.update_baseline:
            # Regenerate allowances from the tree as it stands: lint
            # without the old baseline, persist every finding as debt.
            raw = lint_paths(args.paths, baseline=None, select=select)
            Baseline.from_findings(raw.findings).save(args.baseline)
            out.write(
                f"baseline updated: {args.baseline} now allows "
                f"{len(raw.findings)} finding(s)\n"
            )
            return 0
        report = lint_paths(args.paths, baseline=baseline, select=select)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report.to_data(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    _print_report(report, out)
    return 0 if report.clean else 1


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach ``repro lint``'s arguments to its subparser."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files and/or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json", dest="json_out", metavar="FILE", default=None,
        help="also write the machine-readable report to FILE",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE, metavar="FILE",
        help="allowed-findings file (default: %(default)s; a missing "
             "file is an empty baseline)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline and report all findings (nightly mode)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to allow exactly the current findings",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.devtools.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST lint for the repro codebase's invariants",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
