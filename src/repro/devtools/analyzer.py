"""The ``repro lint`` analyzer: parse once, walk once, dispatch to rules.

Per file: parse to an AST, build the :class:`~repro.devtools.rules.
LintContext` (parent map + source lines), collect the rules in scope for
the file's path, and dispatch every node to the rules registered for its
type.  Findings are then filtered through the file's ``# repro:
noqa[...]`` suppressions; baseline filtering happens one level up
(:mod:`repro.devtools.baseline`), where findings from every file are
visible.

Suppression syntax, on the offending line::

    risky_thing()  # repro: noqa[DET001]
    other_thing()  # repro: noqa[DET001,BIT002]
    anything()     # repro: noqa

A bare ``noqa`` suppresses every rule on the line; the bracketed form
only the named codes.  Suppressions are deliberate, reviewable
declarations that an invariant holds for a non-obvious reason — each
should carry a justifying comment nearby (see docs/static-analysis.md).

Files that do not parse produce a single ``PARSE`` finding rather than
crashing the run: a syntax error in one module must not hide findings
in fifty others.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.devtools.findings import Finding
from repro.devtools.rules import LintContext, Rule, rules_for

#: Pseudo-code reported for unparsable files (not a registered rule; it
#: cannot be suppressed or baselined away — broken source is always new).
PARSE_ERROR_CODE = "PARSE"

_NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?"
)

#: Directory basenames the file walker never descends into.  The lint
#: fixture corpus is excluded by name: its ``bad_*`` files violate rules
#: *on purpose* and are exercised by tests/devtools/ via lint_source.
EXCLUDED_DIRS = frozenset(
    {"__pycache__", ".git", ".mypy_cache", "lint_fixtures"}
)


def _noqa_map(lines: Sequence[str]) -> dict[int, frozenset[str] | None]:
    """Per-line suppressions: line -> codes, or ``None`` for blanket noqa."""
    suppressions: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(lines, start=1):
        if "noqa" not in line:  # cheap pre-filter
            continue
        match = _NOQA_PATTERN.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressions[lineno] = None
        else:
            suppressions[lineno] = frozenset(
                code.strip().upper()
                for code in codes.split(",")
                if code.strip()
            )
    return suppressions


def _suppressed(
    finding: Finding, suppressions: dict[int, frozenset[str] | None]
) -> bool:
    if finding.line not in suppressions:
        return False
    codes = suppressions[finding.line]
    return codes is None or finding.code in codes


def normalize_path(path: str) -> str:
    """The canonical (posix-separator, ``./``-free) form of *path* used
    in findings and baseline keys; repo-root-relative when linted from
    the repo root, which is how CI and the self-check run."""
    return os.path.normpath(path).replace(os.sep, "/")


def lint_source(
    source: str,
    path: str,
    *,
    select: Callable[[Rule], bool] | None = None,
) -> list[Finding]:
    """Lint one module's *source*, scoped as if it lived at *path*.

    ``path`` drives rule scoping (see :func:`~repro.devtools.rules.
    module_parts`) and is stamped into the findings verbatim (after
    normalization) — the fixture corpus lints bad snippets under
    *virtual* hot-path names this way.  ``select`` optionally restricts
    the rule set (e.g. a single code).
    """
    path = normalize_path(path)
    lines = source.splitlines()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        lineno = exc.lineno or 1
        return [
            Finding(
                path=path,
                line=lineno,
                col=(exc.offset or 1) - 1,
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
                source_line=(
                    lines[lineno - 1].strip() if lineno <= len(lines) else ""
                ),
            )
        ]

    ctx = LintContext(path, tree, lines)
    dispatch = rules_for(ctx.rel_parts, select)
    if not dispatch:
        return []
    findings: list[Finding] = []
    for node in ast.walk(tree):
        rules = dispatch.get(type(node))
        if not rules:
            continue
        for rule in rules:
            for bad_node, message in rule.check(node, ctx):
                findings.append(rule.finding(bad_node, message, ctx))
    suppressions = _noqa_map(lines)
    if suppressions:
        findings = [
            finding
            for finding in findings
            if not _suppressed(finding, suppressions)
        ]
    findings.sort()
    return findings


def lint_file(
    path: str, *, select: Callable[[Rule], bool] | None = None
) -> list[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path, select=select)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Every ``*.py`` file under *paths*, deterministically ordered.

    Directories are walked recursively, skipping :data:`EXCLUDED_DIRS`;
    explicit file arguments are taken as-is (whatever their suffix —
    naming a file is opting it in).  Nonexistent paths raise
    ``FileNotFoundError`` — a typo'd path must not pass as "clean".
    """
    for target in paths:
        if os.path.isfile(target):
            yield normalize_path(target)
        elif os.path.isdir(target):
            for dirpath, dirnames, filenames in os.walk(target):
                dirnames[:] = sorted(
                    name
                    for name in dirnames
                    if name not in EXCLUDED_DIRS and not name.startswith(".")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        yield normalize_path(
                            os.path.join(dirpath, filename)
                        )
        else:
            raise FileNotFoundError(f"no such file or directory: {target}")


@dataclass(frozen=True)
class LintReport:
    """The outcome of one analyzer run over a set of paths.

    ``findings`` are the violations that survived noqa and baseline
    filtering; ``baselined`` counts the legacy findings the baseline
    absorbed (reported so burn-down progress is visible);
    ``files_checked`` the number of modules analyzed.
    """

    findings: tuple[Finding, ...]
    baselined: int = 0
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts_by_code(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))

    def to_data(self) -> dict:
        """JSON-safe report (``repro lint --json``), canonically ordered."""
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "baselined": self.baselined,
            "counts": self.counts_by_code(),
            "findings": [finding.to_data() for finding in self.findings],
        }


def lint_paths(
    paths: Sequence[str],
    *,
    baseline: "object | None" = None,
    select: Callable[[Rule], bool] | None = None,
) -> LintReport:
    """Lint every Python file under *paths* and apply the *baseline*.

    ``baseline`` is a :class:`~repro.devtools.baseline.Baseline` (or
    ``None`` for no filtering).  Findings are globally sorted — path,
    then line — so two runs over the same tree emit identical reports.
    """
    all_findings: list[Finding] = []
    files_checked = 0
    for path in iter_python_files(paths):
        files_checked += 1
        all_findings.extend(lint_file(path, select=select))
    all_findings.sort()
    baselined = 0
    if baseline is not None:
        kept, baselined = baseline.filter(all_findings)
        all_findings = kept
    return LintReport(
        findings=tuple(all_findings),
        baselined=baselined,
        files_checked=files_checked,
    )
