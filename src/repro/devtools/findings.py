"""Lint findings: what a rule reports, and how findings are keyed.

A :class:`Finding` pins down one rule violation: file, position, rule
code, message, and the stripped source text of the offending line.  The
*baseline key* deliberately excludes the line **number**: baselines match
on ``(path, code, line text)`` so that unrelated edits moving a legacy
finding up or down the file do not churn the committed baseline — only
adding a new violation (or editing the offending line itself) surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: normalized (posix-separator) path of the linted file, as
            reported to the user and keyed into baselines.
        line: 1-based line of the violation.
        col: 0-based column of the violation.
        code: the rule code (``DET001``, ``BIT002``, ...).
        message: the human-readable explanation, naming the fix.
        source_line: the stripped text of the offending line (the
            position-independent part of the baseline key).
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    source_line: str = ""

    def key(self) -> str:
        """The position-independent baseline key for this finding."""
        return f"{self.path}::{self.code}::{self.source_line}"

    def describe(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"

    def to_data(self) -> dict:
        """A JSON-safe representation (``repro lint --json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "source_line": self.source_line,
        }
