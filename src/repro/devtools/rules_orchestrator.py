"""ORC rules: executor and orchestrator failure-handling discipline.

The distributed layer's reliability story (PR 6) is explicit: every
failure is *observed* — counted, retried, reassigned, reported — never
swallowed; and every pool is torn down deterministically, because a
worker process leaked past its batch holds memory and file descriptors
until GC feels like collecting it (the PR 6 pool-drain bug).

* **ORC001** — no bare ``except:``.  It catches ``SystemExit`` and
  ``KeyboardInterrupt``, making workers unkillable and hiding infra
  failures from the retry machinery.
* **ORC002** — no ``except Exception: pass`` (or ``BaseException``).
  Swallowing the broadest classes silently converts an infra failure
  into a hang or a wrong count; narrow the type (an ``OSError`` touch
  failure is fine to drop) or record the failure.
* **ORC003** — pool lifecycle: ``multiprocessing``/``concurrent.futures``
  pools must be created as ``with`` contexts, and their results drained
  *inside* the ``with`` block — a generator that ``yield``s lazily from
  inside the context leaks live workers whenever the consumer abandons
  the iterator mid-stream (collect to a list inside, yield outside).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.devtools.rules import LintContext, Rule, register_rule

#: Constructor names that produce worker pools, however imported.
_POOL_NAMES = frozenset(
    {"Pool", "ThreadPool", "ProcessPoolExecutor", "ThreadPoolExecutor"}
)


def _callee_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_pool_call(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and _callee_name(node) in _POOL_NAMES


@register_rule
class BareExcept(Rule):
    code = "ORC001"
    name = "bare-except"
    rationale = (
        "A bare except: catches SystemExit and KeyboardInterrupt, making "
        "worker loops unkillable and hiding infra failures from the "
        "retry/reassign machinery; name the exception type (and at "
        "minimum count the failure)."
    )
    node_types = (ast.ExceptHandler,)
    domains = None

    def check(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterable[tuple[ast.AST, str]]:
        assert isinstance(node, ast.ExceptHandler)
        if node.type is None:
            yield node, (
                "bare except: catches SystemExit/KeyboardInterrupt; "
                "name the exception type"
            )


@register_rule
class SilentBroadSwallow(Rule):
    code = "ORC002"
    name = "silent-broad-swallow"
    rationale = (
        "except Exception: pass silently converts infra failures into "
        "hangs and wrong counts; the reliability layer requires every "
        "failure observed — narrow the exception type or record the "
        "failure before continuing."
    )
    node_types = (ast.ExceptHandler,)
    domains = None

    def check(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterable[tuple[ast.AST, str]]:
        assert isinstance(node, ast.ExceptHandler)
        if not (
            isinstance(node.type, ast.Name)
            and node.type.id in ("Exception", "BaseException")
        ):
            return
        if len(node.body) == 1 and isinstance(node.body[0], ast.Pass):
            yield node, (
                f"except {node.type.id}: pass swallows every failure "
                f"silently; narrow the type or record the failure"
            )


def _yields_outside_nested_defs(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Yield/YieldFrom nodes lexically in *body*, not inside nested defs."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue  # a nested function's yields are its own business
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register_rule
class PoolLifecycle(Rule):
    code = "ORC003"
    name = "pool-lifecycle"
    rationale = (
        "Pools must be context-managed and their results drained inside "
        "the with block: a pool constructed bare leaks workers on any "
        "exception path, and a generator yielding lazily from inside "
        "the context keeps worker processes alive until GC whenever the "
        "consumer abandons the iterator mid-stream (the PR 6 pool-drain "
        "bug). Collect results to a list inside the with, yield outside."
    )
    node_types = (ast.Call, ast.With)
    domains = None

    def check(
        self, node: ast.AST, ctx: LintContext
    ) -> Iterable[tuple[ast.AST, str]]:
        if isinstance(node, ast.Call):
            yield from self._check_constructor(node, ctx)
        elif isinstance(node, ast.With):
            yield from self._check_lazy_drain(node)

    def _check_constructor(
        self, node: ast.Call, ctx: LintContext
    ) -> Iterable[tuple[ast.AST, str]]:
        if not _is_pool_call(node):
            return
        parent = ctx.parent(node)
        if isinstance(parent, ast.withitem):
            return
        yield node, (
            f"{_callee_name(node)}(...) created outside a with "
            f"statement; context-manage pools so workers are torn down "
            f"on every exit path"
        )

    def _check_lazy_drain(
        self, node: ast.With
    ) -> Iterable[tuple[ast.AST, str]]:
        if not any(
            _is_pool_call(item.context_expr) for item in node.items
        ):
            return
        for yield_node in _yields_outside_nested_defs(node.body):
            yield yield_node, (
                "yield inside a pool's with block hands control to the "
                "consumer while workers are alive; drain results to a "
                "list inside the block and yield after it exits"
            )
