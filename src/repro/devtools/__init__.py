"""Repo-specific developer tooling: the ``repro lint`` static analyzer.

Every guarantee this reproduction makes — byte-identical sweeps across
backends, trace modes, shards, spools and killed orchestrator workers —
rests on a handful of coding conventions: deterministic iteration order,
seeded-only randomness, interning-only frozenset materialization on the
bitset data plane, pickle hygiene for slots classes, and disciplined
executor teardown.  This package turns those conventions into
machine-checked invariants: an AST-based rule framework
(:mod:`repro.devtools.rules`), the rule set encoding the repo's real
invariants (``rules_*`` modules), and the analyzer front end
(:mod:`repro.devtools.analyzer`) exposed as ``python -m repro lint``.

See ``docs/static-analysis.md`` for the rule catalogue, the invariant
each rule protects, suppression syntax (``# repro: noqa[CODE]``) and the
baseline workflow.
"""

from repro.devtools.analyzer import (
    LintReport,
    lint_paths,
    lint_source,
    iter_python_files,
)
from repro.devtools.baseline import Baseline
from repro.devtools.findings import Finding
from repro.devtools.rules import Rule, all_rules

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "Rule",
    "all_rules",
    "iter_python_files",
    "lint_paths",
    "lint_source",
]
