"""Compiled adversary schedules: the kernel's pre-resolved execution plan.

A declarative :class:`~repro.model.schedule.Schedule` answers point
queries — ``sends_in_round``, ``completes_round``, ``delivery_round`` —
each a method call over dict-backed crash/delay/loss tables.  The
execution kernel used to issue O(n²) such calls *per round*, which is
exactly the bookkeeping that made large-n sweeps impractical.

:func:`compile_schedule` performs that resolution **once per schedule**
and freezes the answers into a :class:`CompiledSchedule`:

* ``senders[k]`` — the processes that send in round k (still up at the
  start of the round);
* ``completers[k]`` — the processes that survive the whole of round k;
* ``delayed_inboxes[k][receiver]`` / ``current_senders[k][receiver]`` —
  the delivery plan, pre-bucketed for
  :class:`~repro.sim.view.RoundView` construction: the canonically
  ordered earlier-round ``(sent_round, sender)`` pairs, and the
  ascending senders whose round-k message arrives in round k (their
  ``sent_round`` is implied) — the per-message age test is resolved at
  compile time.  Messages to receivers that leave the computation
  before the delivery round are already filtered out, so the kernel
  never buffers anything it would later drop.  The merged flat form is
  available as the derived ``inboxes`` property (diagnostics/tests
  only — storing it would double the plan);
* ``current_groups[k]`` / ``delayed_groups[k]`` — for each receiver,
  the lowest receiver id with a byte-identical current-round
  (respectively delayed) round-k plan.  Payload availability is global
  (a sender either broadcast in a round or did not), so receivers in
  one group see identical ``(sender, payload)`` buckets and the kernel
  builds them once per group.  The two keys are independent: a delayed
  delivery only desynchronizes a receiver's *delayed* bucket, so in the
  common sparse-delay rounds nearly every receiver still shares the one
  expensive current-round bucket set — in an all-to-all synchronous
  round, the partitioning work is paid once per *round*;
* ``crashed[k]`` — the processes crashing in round k (trace metadata).

The plan captures everything the *schedule* contributes to a run; only
the dynamic part — which processes have halted, and what payloads the
automata produce — remains for the kernel's hot loop, whose per-round
cost drops from O(n²) schedule method calls to plain list indexing.

Compilation costs one O(n² · horizon) sweep — the same work as a single
reference execution's bookkeeping — and is memoized on the schedule
instance, so a grid running A algorithms against one schedule compiles
once and executes A times.  As a by-product the sweep also computes the
schedule's synchrony round K, pre-seeding the
:meth:`~repro.model.schedule.Schedule.sync_from` cache that record
production reads.  The memo is stripped from pickles
(:meth:`~repro.model.schedule.Schedule.__getstate__`), so process-pool
workers receive lean schedules and recompile locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.model.schedule import Schedule
from repro.sim.bitset import interned_set, mask_of
from repro.types import ProcessId, Round

__all__ = ["CompiledSchedule", "compile_schedule"]

#: The interned empty crash set — most rounds crash nobody, and every
#: such round in every compiled plan shares this one object.
_EMPTY_PIDS: frozenset[ProcessId] = frozenset()


@dataclass(frozen=True)
class CompiledSchedule:
    """A schedule's pre-resolved, per-round execution plan.

    All per-round sequences are indexed directly by the 1-based round
    number (index 0 is an unused placeholder), matching the kernel's
    loop variable.

    Attributes:
        schedule: the schedule this plan was compiled from.
        n: number of processes.
        horizon: the compiled round horizon (``schedule.horizon``).
        senders: per round, the processes that send (ascending pids).
        completers: per round, the processes that complete the round's
            receive phase per the schedule (ascending pids; dynamic
            halting is the kernel's concern).
        delayed_inboxes: per round and receiver, the earlier-round
            ``(sent_round, sender)`` pairs delivered to that receiver
            in that round, in canonical order and already filtered of
            messages whose receiver leaves the computation before
            delivery.
        current_senders: the current-round half of the delivery plan —
            per round and receiver, the ascending senders whose round-k
            message arrives in round k.
        current_groups: per round and receiver, the lowest receiver id
            whose ``current_senders`` round plan is identical — the key
            under which the kernel shares one current-round
            :class:`~repro.sim.view.RoundView` bucket set.
        current_masks: ``current_senders`` as per-receiver int bitmasks —
            what lets the kernel hand every receiver its arrived-sender
            mask (``plan mask & round's broadcaster mask``) in O(1)
            without materializing the round's ``(sender, payload)``
            buckets (they build lazily, once per sharing group, on first
            structured access).
        delayed_groups: the same sharing key for the delayed plan.
        crashed: per round, the processes crashing in that round.
        sender_masks: ``senders`` as per-round int bitmasks (bit ``i``
            set iff process ``i`` sends in the round).
        completer_masks: ``completers`` as per-round bitmasks.
        crashed_masks: ``crashed`` as per-round bitmasks.

    The tuple rows and the mask rows describe the same sets; the masks
    are the data plane's working representation (single-word complement
    and membership), the tuples/frozensets the iteration-order-carrying
    boundary one.  Rounds in which nothing crashes *share* their
    sender/completer rows with the previous round — in a failure-free
    schedule the whole plan holds one sender tuple, not ``horizon`` of
    them.
    """

    schedule: Schedule
    n: int
    horizon: Round
    senders: tuple[tuple[ProcessId, ...], ...]
    completers: tuple[tuple[ProcessId, ...], ...]
    delayed_inboxes: tuple[
        tuple[tuple[tuple[Round, ProcessId], ...], ...], ...
    ]
    current_senders: tuple[tuple[tuple[ProcessId, ...], ...], ...]
    current_groups: tuple[tuple[ProcessId, ...], ...]
    current_masks: tuple[tuple[int, ...], ...]
    delayed_groups: tuple[tuple[ProcessId, ...], ...]
    crashed: tuple[frozenset[ProcessId], ...]
    sender_masks: tuple[int, ...]
    completer_masks: tuple[int, ...]
    crashed_masks: tuple[int, ...]

    @cached_property
    def inboxes(
        self,
    ) -> tuple[tuple[tuple[tuple[Round, ProcessId], ...], ...], ...]:
        """The merged flat delivery plan: per round and receiver, the
        canonically ordered ``(sent_round, sender)`` pairs.

        Derived on demand from the split halves the kernel actually
        reads — storing it eagerly would double every memoized plan's
        O(n² · horizon) footprint for a structure only diagnostics and
        tests consume.
        """
        return tuple(
            tuple(
                delayed + tuple((k, sender) for sender in current)
                for delayed, current in zip(per_delayed, per_current)
            )
            for k, (per_delayed, per_current) in enumerate(
                zip(self.delayed_inboxes, self.current_senders)
            )
        )


def _compile(schedule: Schedule) -> CompiledSchedule:
    n = schedule.n
    horizon = schedule.horizon
    crash_round = [schedule.crash_round(pid) for pid in range(n)]
    never = horizon + 1
    crash_at = [never if r is None else r for r in crash_round]

    senders: list[tuple[ProcessId, ...]] = [()]
    completers: list[tuple[ProcessId, ...]] = [()]
    crashed: list[frozenset[ProcessId]] = [_EMPTY_PIDS]
    sender_masks: list[int] = [0]
    completer_masks: list[int] = [0]
    crashed_masks: list[int] = [0]
    inboxes: list[list[list[tuple[Round, ProcessId]]]] = [
        [[] for _ in range(n)] for _ in range(horizon + 1)
    ]
    # sync_ok[k] goes False when round k violates the synchrony condition
    # (a non-crash-round message to a completing receiver not arriving in
    # its sending round) — the same predicate as
    # Schedule.is_synchronous_round, folded into this sweep for free.
    sync_ok = [True] * (horizon + 1)

    # Crash rounds bucketed once: rounds without an entry reuse the
    # previous round's sender/completer rows wholesale instead of
    # rebuilding n-element tuples per round.
    crashes_in: dict[Round, list[ProcessId]] = {}
    for pid in range(n):
        if crash_at[pid] <= horizon:
            crashes_in.setdefault(crash_at[pid], []).append(pid)

    # Live at the start of round 1: everyone whose crash round is >= 1
    # (i.e. everyone — crash rounds are 1-based — unless a degenerate
    # schedule crashes a process before the run starts).
    live = tuple(pid for pid in range(n) if crash_at[pid] >= 1)
    live_mask = mask_of(live)

    delivery_round = schedule.delivery_round
    for k in range(1, horizon + 1):
        round_senders = live
        crashing = crashes_in.get(k)
        if crashing is None:
            round_completers = live
            completer_mask = live_mask
            crashed.append(_EMPTY_PIDS)
            crashed_masks.append(0)
        else:
            crashed_mask = mask_of(crashing)
            round_completers = tuple(
                pid for pid in live if crash_at[pid] > k
            )
            completer_mask = live_mask & ~crashed_mask
            crashed.append(interned_set(crashed_mask))
            crashed_masks.append(crashed_mask)
        senders.append(round_senders)
        sender_masks.append(live_mask)
        completers.append(round_completers)
        completer_masks.append(completer_mask)
        live = round_completers
        live_mask = completer_mask
        for sender in round_senders:
            sender_crashes_now = crash_at[sender] == k
            for receiver in range(n):
                delivery = delivery_round(sender, receiver, k)
                if (
                    not sender_crashes_now
                    and receiver != sender
                    and crash_at[receiver] > k
                    and delivery != k
                ):
                    sync_ok[k] = False
                if delivery is None or delivery > horizon:
                    continue
                if crash_at[receiver] <= delivery:
                    # The receiver leaves the computation before the
                    # delivery round; the message can never be received.
                    continue
                inboxes[delivery][receiver].append((k, sender))

    delayed_inboxes: list[tuple] = [()]
    current_senders: list[tuple] = [()]
    current_groups: list[tuple] = [()]
    current_masks: list[tuple] = [()]
    delayed_groups: list[tuple] = [()]
    for k in range(1, horizon + 1):
        round_delayed = []
        round_current = []
        round_cgroups = []
        round_cmasks = []
        round_dgroups = []
        cgroup_reps: dict[tuple, ProcessId] = {}
        cmask_memo: dict[tuple, int] = {}
        dgroup_reps: dict[tuple, ProcessId] = {}
        for receiver in range(n):
            entries = inboxes[k][receiver]
            entries.sort()
            delayed = tuple(
                pair for pair in entries if pair[0] != k
            )
            current = tuple(
                sender for sent_round, sender in entries if sent_round == k
            )
            round_delayed.append(delayed)
            round_current.append(current)
            round_cgroups.append(cgroup_reps.setdefault(current, receiver))
            cmask = cmask_memo.get(current)
            if cmask is None:
                cmask = cmask_memo[current] = mask_of(current)
            round_cmasks.append(cmask)
            round_dgroups.append(dgroup_reps.setdefault(delayed, receiver))
        delayed_inboxes.append(tuple(round_delayed))
        current_senders.append(tuple(round_current))
        current_groups.append(tuple(round_cgroups))
        current_masks.append(tuple(round_cmasks))
        delayed_groups.append(tuple(round_dgroups))

    if schedule.__dict__.get("_sync_from_cache") is None:
        first_bad = 0
        for k in range(1, horizon + 1):
            if not sync_ok[k]:
                first_bad = k
        object.__setattr__(schedule, "_sync_from_cache", first_bad + 1)

    return CompiledSchedule(
        schedule=schedule,
        n=n,
        horizon=horizon,
        senders=tuple(senders),
        completers=tuple(completers),
        delayed_inboxes=tuple(delayed_inboxes),
        current_senders=tuple(current_senders),
        current_groups=tuple(current_groups),
        current_masks=tuple(current_masks),
        delayed_groups=tuple(delayed_groups),
        crashed=tuple(crashed),
        sender_masks=tuple(sender_masks),
        completer_masks=tuple(completer_masks),
        crashed_masks=tuple(crashed_masks),
    )


def compile_schedule(schedule: Schedule) -> CompiledSchedule:
    """The compiled execution plan for *schedule* (memoized per instance).

    Schedules are immutable, so the plan is cached on the instance the
    same way as :meth:`~repro.model.schedule.Schedule.digest` — shared
    across every algorithm a grid runs against the schedule, and never
    pickled (workers recompile on first use).
    """
    cached = schedule.__dict__.get("_compiled_cache")
    if cached is not None:
        return cached
    plan = _compile(schedule)
    object.__setattr__(schedule, "_compiled_cache", plan)
    return plan
