"""Bitmask process sets and the canonical-set interning tables.

At n = 1000 the kernel's per-round bookkeeping is dominated by small-set
churn: present/absent sender sets, crash sets and suspicion (Halt) rows
are rebuilt as fresh ``frozenset`` objects every round, for every
receiver.  This module gives the data plane one flat representation —
a plain ``int`` used as a bitmask, bit ``i`` standing for process ``i``
— plus the interning tables that materialize *canonical* ``frozenset``
objects from masks only when an algorithm (or a trace consumer) needs
the set form.

Masks are the working representation: complement, union, difference and
membership are single machine-word operations (``&``, ``|``, ``~``,
shifts) and ``int.bit_count`` replaces ``len``.  Frozensets remain the
*boundary* representation — payload tuples, traces and the public
algorithm state keep their documented types — but every materialization
goes through :func:`interned_set`, so structurally equal sets are one
shared object for the lifetime of the process instead of a new
allocation per round per receiver.

The tables are bounded (``_CACHE_CAP`` entries each): past the cap,
lookups still dedupe against what is cached but new shapes are built
uncached, so a pathological sweep cannot grow the tables without bound.
:func:`intern_values` is the same idea for *value* sets (FloodSet's
``W``), whose elements are arbitrary hashables rather than pids — keyed
by the set itself rather than a mask.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.types import ProcessId

__all__ = [
    "full_mask",
    "mask_of",
    "iter_bits",
    "interned_set",
    "intern_values",
]

#: Per-table entry cap; beyond it sets are built uncached (no eviction —
#: the first shapes seen are overwhelmingly the recurring ones).
_CACHE_CAP = 1 << 16

_FULL_MASKS: dict[int, int] = {}
_SET_CACHE: dict[int, frozenset] = {0: frozenset()}
_VALUE_CACHE: dict[frozenset, frozenset] = {}


def full_mask(n: int) -> int:
    """The all-processes mask for an n-process system: n low bits set."""
    mask = _FULL_MASKS.get(n)
    if mask is None:
        mask = _FULL_MASKS[n] = (1 << n) - 1
    return mask


def mask_of(pids: Iterable[ProcessId]) -> int:
    """The bitmask with exactly the bits in *pids* set."""
    mask = 0
    for pid in pids:
        mask |= 1 << pid
    return mask


def iter_bits(mask: int) -> Iterator[ProcessId]:
    """The set bit indices of *mask*, ascending — pids of a mask set."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def interned_set(mask: int) -> frozenset[ProcessId]:
    """The canonical ``frozenset`` of *mask*'s bit indices.

    Structurally equal masks return the *same* frozenset object, so a
    suspicion row or absent-sender set materialized by every receiver in
    a round costs one shared allocation, and downstream equality checks
    are usually pointer comparisons.
    """
    cached = _SET_CACHE.get(mask)
    if cached is not None:
        return cached
    built = frozenset(iter_bits(mask))
    if len(_SET_CACHE) < _CACHE_CAP:
        _SET_CACHE[mask] = built
    return built


def intern_values(values: frozenset) -> frozenset:
    """The canonical object for a *value* frozenset (FloodSet ``W`` sets).

    Value sets hold arbitrary hashables, so the key is the set itself:
    the first instance of each distinct set becomes the canonical one
    and every structurally equal union thereafter dedupes onto it.
    """
    cached = _VALUE_CACHE.get(values)
    if cached is not None:
        return cached
    if len(_VALUE_CACHE) < _CACHE_CAP:
        _VALUE_CACHE[values] = values
    return values
