"""Round views: the structured inbox the kernel hands each automaton.

Before this layer, the kernel delivered a flat, canonically sorted tuple
of :class:`~repro.model.messages.Message` objects, and every automaton
re-derived the same structure from it each round: filter to the current
round, dispatch on the payload tag, collect the sender set for
suspicion, scan for DECIDE messages.  Across ~10 algorithms that was
3–7 passes over every inbox — and at n = 100 an inbox is 100 messages,
delivered to 100 receivers, every round.

A :class:`RoundView` is that structure computed *once*, straight from
the compiled plan (:mod:`repro.sim.compiled`), before the automaton
runs:

* ``current`` — the round-k ``(sender, payload)`` items, ascending by
  sender (the canonical delivery order restricted to one round);
* ``tagged(tag)`` — the current-round items pre-partitioned by payload
  tag;
* ``delayed`` — earlier-round ``(sent_round, sender, payload)`` triples
  whose delayed delivery lands in this round;
* ``current_mask`` / ``absent_mask`` — the present/absent sender sets as
  int bitmasks (the suspicion machinery's working representation), with
  ``current_senders`` / ``absent`` lazily materializing the interned
  frozensets for set-consuming call sites;
* ``decides`` — every DECIDE payload in the delivery, in canonical
  message order, so the universal decide-adoption protocol is one tuple
  iteration instead of a full-inbox scan.

Message objects are materialized lazily (:attr:`RoundView.messages`):
an automaton ported onto :meth:`~repro.algorithms.base.Automaton.
deliver_view` that only touches the structured accessors never pays for
them, which is where most of the large-n delivery speedup comes from.
Receivers with byte-identical delivery plans share one set of buckets
per round — current-round and delayed plans are keyed independently
(``CompiledSchedule.current_groups`` / ``delayed_groups``), so a sparse
delayed delivery only desynchronizes the small delayed bucket and the
expensive current-round partitioning is still paid once per round in
the common all-to-all case.  The partitioning itself starts from a
:class:`SendTable` the kernel fills during the send phase, so payload
tags are classified once per broadcast, not once per receiver.

The current-round partitioning is itself lazy on the kernel path
(:class:`CurrentCell`, :meth:`RoundView.lazy`): a kernel-built view
carries only the arrived-sender *mask* (one ``&`` of the compiled
plan's per-receiver mask against the send table's broadcaster mask) and
a per-group cell that materializes the ``(sender, payload)`` buckets on
first structured access.  A receiver whose round consumes only masks —
the batched Phase-1 suspicion plane (:mod:`repro.sim.phase1_plane`) is
the flagship — never builds its bucket set at all, which is what breaks
the O(n · plan-size) per-round floor on schedules whose per-receiver
delivery plans are all distinct (random ES runs at n ≥ 500).  The
DECIDE scan stays O(1) on bucket-free rounds: the send table already
knows whether *any* broadcast this round was a DECIDE, so
:attr:`RoundView.decides` materializes buckets only in announcement
rounds (plus whatever delayed DECIDEs the eager delayed bucket carries).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.model.messages import Message, fast_message
from repro.sim.bitset import full_mask, interned_set
from repro.types import Payload, ProcessId, Round

__all__ = [
    "CurrentCell", "RoundView", "SendTable", "all_pids",
    "build_current_buckets", "build_delayed_buckets",
]

#: The universal decide tag (mirrors ``repro.algorithms.common.DECIDE``;
#: defined here so the view layer never imports the algorithm layer).
_DECIDE = "DECIDE"


def _is_decide_payload(payload: Payload) -> bool:
    """Payload-level ``is_decide`` (tuple-tagged DECIDE, same predicate
    as ``repro.algorithms.common.is_decide``).  Every bucket builder
    must classify decides identically — the byte-identical-across-paths
    invariant hinges on this being the one definition.
    (``SendTable.record`` keeps an inlined copy fused into its tag
    classification; the view tests pin the two against each other.)
    """
    return (
        isinstance(payload, tuple) and bool(payload) and payload[0] == _DECIDE
    )


_ALL_PIDS_CACHE: dict[int, frozenset[int]] = {}


def all_pids(n: int) -> frozenset[ProcessId]:
    """The interned ``frozenset(range(n))`` — suspicion updates build
    absent-sender sets against it every round, so it is cached per n."""
    cached = _ALL_PIDS_CACHE.get(n)
    if cached is None:
        # This IS an interning table: one materialization per n for the
        # process lifetime, never evicted (unlike bitset's capped cache).
        cached = _ALL_PIDS_CACHE[n] = frozenset(range(n))  # repro: noqa[BIT001]
    return cached


class RoundView:
    """One receiver's structured round-k delivery.

    Attributes:
        round: the 1-based round the delivery belongs to.
        receiver: the receiving process id.
        n: system size.
        delayed: earlier-round deliveries landing this round, as
            ``(sent_round, sender, payload)`` triples in canonical order.
        current: round-``round`` deliveries as ``(sender, payload)``
            pairs, ascending by sender.
        by_tag: the ``current`` items partitioned by payload tag (first
            tuple element, or the payload itself for non-tuple payloads).
        decides: every DECIDE payload in the whole delivery (delayed and
            current), in canonical message order.
        current_mask: the senders of ``current`` as an int bitmask (bit
            ``i`` set iff process ``i``'s round-k message arrived) — the
            working representation; :attr:`current_senders` /
            :attr:`absent` materialize the interned frozensets lazily.

    The bucket attributes may be shared between views of different
    receivers with identical delivery plans; views are read-only.

    On the kernel path (:meth:`lazy`) the current-round buckets are not
    built up front: the view carries the arrived-sender mask plus a
    per-group :class:`CurrentCell`, and ``current`` / ``by_tag`` /
    ``decides`` materialize (group-shared, once) on first access.  Every
    accessor returns exactly what the eager constructor would have been
    handed, so callers cannot observe which constructor built the view.
    """

    __slots__ = (
        "round", "receiver", "n", "delayed", "current_mask", "_current",
        "_by_tag", "_decides", "_cell", "_delayed_decides", "_messages",
        "_current_senders", "_absent",
    )

    def __init__(
        self,
        round: Round,
        receiver: ProcessId,
        n: int,
        delayed: tuple[tuple[Round, ProcessId, Payload], ...],
        current: tuple[tuple[ProcessId, Payload], ...],
        by_tag: dict,
        decides: tuple[Payload, ...],
        current_mask: int,
    ):
        self.round = round
        self.receiver = receiver
        self.n = n
        self.delayed = delayed
        self.current_mask = current_mask
        self._current = current
        self._by_tag = by_tag
        self._decides = decides
        self._cell = None
        self._delayed_decides = ()
        self._messages = None
        self._current_senders = None
        self._absent = None

    @classmethod
    def lazy(
        cls,
        round: Round,
        receiver: ProcessId,
        n: int,
        delayed: tuple[tuple[Round, ProcessId, Payload], ...],
        delayed_decides: tuple[Payload, ...],
        cell: "CurrentCell",
        current_mask: int,
    ) -> "RoundView":
        """A kernel-path view whose current buckets build on demand.

        *current_mask* must equal the mask of senders the cell's built
        ``current`` bucket will carry (the compiled plan mask ANDed with
        the round's broadcaster mask) — the kernel computes it in O(1)
        so mask-only consumers never trigger the build.
        """
        view = cls.__new__(cls)
        view.round = round
        view.receiver = receiver
        view.n = n
        view.delayed = delayed
        view.current_mask = current_mask
        view._current = None
        view._by_tag = None
        view._decides = None
        view._cell = cell
        view._delayed_decides = delayed_decides
        view._messages = None
        view._current_senders = None
        view._absent = None
        return view

    def _materialize(self) -> None:
        """Pull the group-shared buckets out of the cell (lazy views)."""
        current, by_tag, decides, _mask = self._cell.built()
        self._current = current
        self._by_tag = by_tag
        # Canonical delivery order: delayed messages sort ahead of
        # current-round ones, exactly as the eager construction
        # concatenates them.
        self._decides = self._delayed_decides + decides

    # -- structured accessors ------------------------------------------------

    @property
    def current(self) -> tuple[tuple[ProcessId, Payload], ...]:
        current = self._current
        if current is None:
            self._materialize()
            current = self._current
        return current

    @property
    def by_tag(self) -> dict:
        by_tag = self._by_tag
        if by_tag is None:
            self._materialize()
            by_tag = self._by_tag
        return by_tag

    @property
    def decides(self) -> tuple[Payload, ...]:
        decides = self._decides
        if decides is None:
            if self._cell.table.has_decides:
                self._materialize()
                decides = self._decides
            else:
                # No broadcast this round was a DECIDE, so the whole
                # delivery's decides are the delayed ones — resolved
                # without building the current buckets.
                decides = self._decides = self._delayed_decides
        return decides

    def tagged(self, tag: object) -> tuple[tuple[ProcessId, Payload], ...]:
        """Current-round ``(sender, payload)`` items carrying *tag*."""
        by_tag = self._by_tag
        if by_tag is None:
            self._materialize()
            by_tag = self._by_tag
        return by_tag.get(tag, ())

    @property
    def all_pids(self) -> frozenset[ProcessId]:
        return all_pids(self.n)

    @property
    def current_senders(self) -> frozenset[ProcessId]:
        """The senders of ``current`` as an interned frozenset.

        Materialized lazily from :attr:`current_mask` — mask-consuming
        call sites never pay for the set object.
        """
        senders = self._current_senders
        if senders is None:
            senders = self._current_senders = interned_set(self.current_mask)
        return senders

    @property
    def absent_mask(self) -> int:
        """:attr:`absent` as a bitmask — the complement of
        :attr:`current_mask` within the n-process universe."""
        return full_mask(self.n) & ~self.current_mask

    @property
    def absent(self) -> frozenset[ProcessId]:
        """Processes from which no current-round message arrived.

        Includes the receiver itself when its own message is missing;
        suspicion call sites subtract their own pid, matching the
        paper's "a process never suspects itself".
        """
        absent = self._absent
        if absent is None:
            absent = self._absent = interned_set(self.absent_mask)
        return absent

    @property
    def size(self) -> int:
        """Number of messages delivered this round (all ages)."""
        current = self._current
        if current is None:
            # Lazy (kernel-built) views carry at most one current-round
            # message per sender, so the popcount IS the count — no need
            # to build the buckets.  Eager hand-built views may carry
            # duplicate senders; their tuple length is authoritative.
            return len(self.delayed) + self.current_mask.bit_count()
        return len(self.delayed) + len(current)

    @property
    def messages(self) -> tuple[Message, ...]:
        """The legacy flat inbox, in canonical delivery order.

        Materialized on first access (and cached): delayed messages first
        — they sort ahead on ``sent_round`` — then current-round messages
        ascending by sender.  This is what the
        :meth:`~repro.algorithms.base.Automaton.deliver_view` fallback
        shim feeds to unported ``deliver`` implementations.
        """
        messages = self._messages
        if messages is None:
            k = self.round
            receiver = self.receiver
            messages = self._messages = tuple(
                [
                    fast_message(sent_round, sender, receiver, payload)
                    for sent_round, sender, payload in self.delayed
                ]
                + [
                    fast_message(k, sender, receiver, payload)
                    for sender, payload in self.current
                ]
            )
        return messages

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_entries(
        cls,
        round: Round,
        receiver: ProcessId,
        n: int,
        entries: Iterable[tuple[Round, ProcessId, Payload]],
    ) -> "RoundView":
        """Build a view from ``(sent_round, sender, payload)`` triples.

        *entries* must already be in canonical delivery order (ascending
        ``(sent_round, sender)``) — the compiled plan's inboxes are.
        """
        delayed: list = []
        current: list = []
        by_tag: dict = {}
        decides: list = []
        sender_mask = 0
        for sent_round, sender, payload in entries:
            if isinstance(payload, tuple) and payload:
                tag = payload[0]
                if _is_decide_payload(payload):
                    decides.append(payload)
            else:
                tag = payload
            if sent_round == round:
                sender_mask |= 1 << sender
                item = (sender, payload)
                current.append(item)
                bucket = by_tag.get(tag)
                if bucket is None:
                    by_tag[tag] = [item]
                else:
                    bucket.append(item)
            else:
                delayed.append((sent_round, sender, payload))
        return cls(
            round, receiver, n,
            tuple(delayed), tuple(current),
            {tag: tuple(items) for tag, items in by_tag.items()},
            tuple(decides), sender_mask,
        )

    @classmethod
    def from_messages(
        cls,
        round: Round,
        receiver: ProcessId,
        n: int,
        messages: Sequence[Message],
    ) -> "RoundView":
        """Build a view from an already-materialized flat inbox.

        The bridge for legacy entry points: direct ``deliver`` calls
        (tests, out-of-tree drivers) reach the ported
        ``round_deliver_view`` implementations through this constructor.
        Message order is preserved — for kernel-built inboxes that is
        the canonical order; hand-built test inboxes keep whatever order
        the test chose, exactly as the flat ``deliver`` path did.
        """
        view = cls.from_entries(
            round, receiver, n,
            ((m.sent_round, m.sender, m.payload) for m in messages),
        )
        view._messages = tuple(messages)
        return view

    def shifted(self, offset: Round) -> "RoundView":
        """This delivery re-timestamped *offset* rounds earlier.

        Used to drive a nested automaton that started ``offset`` rounds
        late (A_{t+2}'s underlying consensus module): current items stay
        current, delayed items sent at or before round *offset* are
        dropped (they predate the nested automaton), the remainder shift
        by *offset*.  Requires a delivery with no DECIDE messages — the
        decide-adoption protocol consumes those before any nested
        automaton runs.
        """
        if self.decides:
            raise ValueError(
                "cannot shift a delivery containing DECIDE messages"
            )
        return RoundView(
            self.round - offset, self.receiver, self.n,
            tuple(
                (sent_round - offset, sender, payload)
                for sent_round, sender, payload in self.delayed
                if sent_round > offset
            ),
            self.current, self.by_tag, (), self.current_mask,
        )

    def __repr__(self) -> str:
        return (
            f"RoundView(r{self.round} ->p{self.receiver}: "
            f"{len(self.current)} current, {len(self.delayed)} delayed)"
        )


class CurrentCell:
    """One current-group's lazily-built shared buckets.

    The kernel creates one cell per ``current_groups`` representative
    per round and hands it to every :meth:`RoundView.lazy` view in the
    group; the first structured access on *any* of them runs
    :func:`build_current_buckets` and the result is shared by the rest.
    Rounds whose receivers consume only masks (the batched Phase-1
    plane) never trigger the build at all.

    *mask* is the group's surviving-sender mask (plan ∩ broadcasters).
    A group that hears **every** broadcaster — the overwhelmingly common
    shape even on schedules whose delivery plans are all distinct, where
    fragmentation comes from a few delayed messages — resolves to the
    table's round-wide full bucket set instead of building its own, so
    the per-round materialization cost collapses from O(groups · n) to
    O(n) plus the stragglers.
    """

    __slots__ = ("plan", "table", "mask", "_built")

    def __init__(
        self, plan: Sequence[ProcessId], table: "SendTable", mask: int
    ) -> None:
        self.plan = plan
        self.table = table
        self.mask = mask
        self._built: tuple | None = None

    def built(self) -> tuple:
        """The group's ``(current, by_tag, decides, mask)``, built once."""
        built = self._built
        if built is None:
            table = self.table
            if self.mask == table.sender_mask:
                built = table.full_buckets()
            else:
                built = build_current_buckets(self.plan, table, self.mask)
            self._built = built
        return built


class SendTable:
    """One round's broadcast payloads, structured for bucket building.

    Filled by the kernel *during* the send phase (no extra pass): for
    every process that actually broadcast, the interned ``(sender,
    payload)`` item and the payload tag; plus three round-level facts
    the bucket builders use for their fast paths — the broadcaster
    bitmask (and its interned frozenset), whether the whole round
    carries a single tag, and whether any broadcast is a DECIDE
    announcement.  All of it is a pure function of the round's sends, so
    every receiver shares one table.

    The table is a preallocated per-run buffer: the kernel allocates one
    per execution and calls :meth:`reset` between rounds, which clears
    only the slots the previous round touched (walking the sender mask),
    so a sparse round costs O(broadcasters), not O(n).
    """

    __slots__ = (
        "items", "tags", "is_decide", "count", "sender_mask", "senders",
        "single_tag", "has_decides", "_full_buckets",
    )

    def __init__(self, n: int):
        self.items: list = [None] * n      # (sender, payload) or None
        self.tags: list = [None] * n       # payload tag, for senders
        self.is_decide: list = [False] * n
        self.count = 0                      # number of broadcasters
        self.sender_mask = 0                # broadcasters as a bitmask
        self.senders: frozenset = interned_set(0)
        self.single_tag = None              # the round's tag, if unique
        self.has_decides = False
        self._full_buckets: tuple | None = None

    def record(self, sender: ProcessId, payload: Payload) -> None:
        """Note that *sender* broadcast *payload* this round."""
        self.items[sender] = (sender, payload)
        self.sender_mask |= 1 << sender
        if isinstance(payload, tuple) and payload:
            tag = payload[0]
            if tag == _DECIDE:
                self.is_decide[sender] = True
                self.has_decides = True
        else:
            tag = payload
        self.tags[sender] = tag
        if self.count == 0:
            self.single_tag = tag
        elif tag != self.single_tag:
            self.single_tag = None
        self.count += 1

    def seal(self) -> None:
        """Finalize after the send phase (interns the sender set)."""
        self.senders = interned_set(self.sender_mask)

    def full_buckets(self) -> tuple:
        """The complete-hearing bucket set ``(current, by_tag, decides,
        sender_mask)`` — what :func:`build_current_buckets` returns for
        any plan whose surviving senders are *all* of this round's
        broadcasters.  Built once per round, shared by every such group
        (see :class:`CurrentCell`)."""
        built = self._full_buckets
        if built is None:
            senders = []
            mask = self.sender_mask
            while mask:
                low = mask & -mask
                senders.append(low.bit_length() - 1)
                mask ^= low
            built = self._full_buckets = build_current_buckets(
                senders, self, self.sender_mask
            )
        return built

    def reset(self) -> None:
        """Clear for the next round, touching only last round's slots."""
        mask = self.sender_mask
        if mask:
            items = self.items
            tags = self.tags
            is_decide = self.is_decide
            while mask:
                low = mask & -mask
                sender = low.bit_length() - 1
                items[sender] = None
                tags[sender] = None
                is_decide[sender] = False
                mask ^= low
        self.count = 0
        self.sender_mask = 0
        self.senders = interned_set(0)
        self.single_tag = None
        self.has_decides = False
        self._full_buckets = None


def build_current_buckets(
    current_plan: Sequence[ProcessId],
    table: SendTable,
    known_mask: int | None = None,
) -> tuple:
    """One current-group's shared buckets: ``(current, by_tag, decides,
    current_mask)``.

    *current_plan* is the compiled ascending sender list for one
    receiver group; senders that never broadcast (halted) drop out via
    the table.  The sender set travels as a bitmask — the
    :class:`RoundView` interns the frozenset only on demand; callers
    that already hold the surviving-sender mask (the kernel's
    :class:`CurrentCell` computes it in O(1) from the compiled plan
    mask) pass it as *known_mask* to skip the recomputation.  The
    common round shape — every broadcast carries the same tag, none of
    them a DECIDE — collapses to a single filtered copy of the table's
    items; mixed rounds (coordinator phases, decide announcements) take
    the general partitioning path.
    """
    items = table.items
    current = [
        item for s in current_plan if (item := items[s]) is not None
    ]
    if not current:
        return ((), {}, (), 0)
    current = tuple(current)
    if known_mask is not None:
        sender_mask = known_mask
    elif len(current) == table.count:
        sender_mask = table.sender_mask
    else:
        sender_mask = 0
        for item in current:
            sender_mask |= 1 << item[0]
    single_tag = table.single_tag
    if single_tag is not None and not table.has_decides:
        return (current, {single_tag: current}, (), sender_mask)
    tags = table.tags
    is_decide = table.is_decide
    by_tag: dict = {}
    decides: list = []
    for item in current:
        sender = item[0]
        if is_decide[sender]:
            decides.append(item[1])
        tag = tags[sender]
        bucket = by_tag.get(tag)
        if bucket is None:
            by_tag[tag] = [item]
        else:
            bucket.append(item)
    return (
        current,
        {tag: tuple(bucket) for tag, bucket in by_tag.items()},
        tuple(decides),
        sender_mask,
    )


def build_delayed_buckets(
    delayed_plan: Sequence[tuple[Round, ProcessId]],
    payloads: Sequence[Sequence[Payload]],
    not_sent: object,
) -> tuple:
    """One delayed-group's shared buckets: ``(delayed, decides)``.

    *payloads* is the kernel's ``payloads[sender][sent_round]`` grid
    with *not_sent* marking senders that never broadcast in the
    message's round (halted before it).
    """
    if not delayed_plan:
        return ((), ())
    delayed: list = []
    decides: list = []
    for sent_round, sender in delayed_plan:
        payload = payloads[sender][sent_round]
        if payload is not_sent:
            continue
        delayed.append((sent_round, sender, payload))
        if _is_decide_payload(payload):
            decides.append(payload)
    return tuple(delayed), tuple(decides)
