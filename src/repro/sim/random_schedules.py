"""Seeded random generation of model-legal schedules.

Property-based tests and the randomized sweeps need large families of
ES-legal (and SCS-legal) schedules.  All generators are deterministic
functions of their seed; the ES generator maintains the three ES
constraints by construction (and the tests re-validate every emitted
schedule with :func:`repro.model.es.check_es`).
"""

from __future__ import annotations

import random

from repro.model.schedule import Schedule, ScheduleBuilder
from repro.types import ProcessId, Round, validate_system_size


def random_es_schedule(
    n: int,
    t: int,
    seed: int,
    *,
    horizon: Round = 12,
    sync_by: Round | None = None,
    max_crashes: int | None = None,
    delay_span: Round = 3,
    loss_prob: float = 0.3,
) -> Schedule:
    """A random ES-legal schedule.

    Args:
        sync_by: the latest allowed synchrony round K (rounds >= K are
            synchronous).  Defaults to ``horizon // 2`` so that every
            generated run has a synchronous suffix to terminate in.
        max_crashes: cap on faulty processes (default t).
        delay_span: delayed messages arrive within this many rounds.
        loss_prob: probability that an undelivered crash-round message is
            lost rather than delayed (losses from faulty senders are
            ES-legal).
    """
    validate_system_size(n, t)
    rng = random.Random(seed)
    sync_by = max(1, horizon // 2) if sync_by is None else sync_by
    cap = t if max_crashes is None else min(max_crashes, t)

    builder = ScheduleBuilder(n, t, horizon)
    f = rng.randint(0, cap)
    faulty = sorted(rng.sample(range(n), f))
    crash_rounds: dict[ProcessId, Round] = {}
    for pid in faulty:
        crash_rounds[pid] = rng.randint(1, horizon)

    # Crash specifications: some receivers get the crash-round message now,
    # some later, the rest never.
    same_round_crash_delivery: dict[ProcessId, frozenset[ProcessId]] = {}
    for pid, crash_round in crash_rounds.items():
        others = [q for q in range(n) if q != pid]
        delivered = sorted(
            rng.sample(others, rng.randint(0, len(others)))
        )
        leftovers = [q for q in others if q not in delivered]
        delayed: dict[ProcessId, Round] = {}
        for q in leftovers:
            if crash_round < horizon and rng.random() > loss_prob:
                delayed[q] = rng.randint(
                    crash_round + 1, min(crash_round + delay_span, horizon)
                )
        same_round_crash_delivery[pid] = frozenset(delivered)
        builder.crash(pid, crash_round, delivered_to=delivered,
                      delayed=delayed)

    # Asynchronous prefix: per-receiver random delays, respecting the
    # t-resilience quota of n - t same-round messages.
    for k in range(1, min(sync_by - 1, horizon - 1) + 1):
        crashing_now = [p for p, r in crash_rounds.items() if r == k]
        steady = [
            p
            for p in range(n)
            if crash_rounds.get(p, horizon + 1) > k
        ]
        for receiver in range(n):
            if crash_rounds.get(receiver, horizon + 1) <= k:
                continue
            crash_deliveries = sum(
                1
                for p in crashing_now
                if receiver in same_round_crash_delivery[p]
            )
            candidates = [p for p in steady if p != receiver]
            # Receiver always hears itself; keep >= n - t same-round total.
            same_round_now = 1 + len(candidates) + crash_deliveries
            slack = same_round_now - (n - t)
            if slack <= 0:
                continue
            count = rng.randint(0, min(slack, len(candidates)))
            for victim in sorted(rng.sample(candidates, count)):
                until = rng.randint(k + 1, min(k + delay_span, horizon))
                builder.delay(victim, receiver, k, until)

    return builder.build()


def random_scs_schedule(
    n: int,
    t: int,
    seed: int,
    *,
    horizon: Round = 8,
    max_crashes: int | None = None,
) -> Schedule:
    """A random SCS-legal (synchronous) schedule: crashes with partial delivery."""
    validate_system_size(n, t)
    rng = random.Random(seed)
    cap = t if max_crashes is None else min(max_crashes, t)
    builder = ScheduleBuilder(n, t, horizon)
    f = rng.randint(0, cap)
    for pid in sorted(rng.sample(range(n), f)):
        crash_round = rng.randint(1, horizon)
        others = [q for q in range(n) if q != pid]
        delivered = sorted(rng.sample(others, rng.randint(0, len(others))))
        builder.crash(pid, crash_round, delivered_to=delivered)
    return builder.build()


def random_serial_schedule(
    n: int,
    t: int,
    seed: int,
    *,
    horizon: Round = 8,
    max_crashes: int | None = None,
) -> Schedule:
    """A random *serial* schedule: synchronous, at most one crash per round."""
    validate_system_size(n, t)
    rng = random.Random(seed)
    cap = t if max_crashes is None else min(max_crashes, t)
    builder = ScheduleBuilder(n, t, horizon)
    f = rng.randint(0, cap)
    crashers = sorted(rng.sample(range(n), f))
    rounds = sorted(rng.sample(range(1, horizon + 1), f))
    for pid, crash_round in zip(crashers, rounds):
        others = [q for q in range(n) if q != pid]
        delivered = sorted(rng.sample(others, rng.randint(0, len(others))))
        builder.crash(pid, crash_round, delivered_to=delivered)
    return builder.build()


def random_proposals(
    n: int, seed: int, *, pool: int | None = None
) -> list[int]:
    """Deterministic random proposals in ``0 .. pool-1`` (default pool = n)."""
    rng = random.Random(seed)
    pool = n if pool is None else pool
    return [rng.randrange(pool) for _ in range(n)]
