"""Run traces: the complete record of one simulated execution.

A :class:`Trace` captures, for every round, what each process sent, what it
received, when it decided, crashed or halted.  Two runs are
*indistinguishable at process p through round k* exactly when p's
:meth:`Trace.view` prefixes agree — the central notion of the paper's lower
bound proof (Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.model.messages import Message
from repro.model.schedule import Schedule
from repro.types import Payload, ProcessId, Round, Value


@dataclass(frozen=True)
class RoundRecord:
    """What happened in a single round.

    Attributes:
        round: the 1-based round number.
        sent: payload broadcast by each process, or ``None`` if the process
            did not send this round (already crashed or halted).
        delivered: messages received by each process that completed the
            round's receive phase, in canonical order.  Processes that
            crashed mid-round, or had halted, are absent.
        decided: decisions made during this round's receive phase.
        crashed: processes that crashed in this round.
        halted: processes that halted (returned) at the end of this round.
    """

    round: Round
    sent: Mapping[ProcessId, Payload | None]
    delivered: Mapping[ProcessId, tuple[Message, ...]]
    decided: Mapping[ProcessId, Value]
    crashed: frozenset[ProcessId]
    halted: frozenset[ProcessId]


@dataclass(frozen=True)
class Trace:
    """The full record of one run.

    Attributes:
        schedule: the adversary schedule the run was executed against.
        proposals: the value proposed by each process, by id.
        rounds: per-round records, ``rounds[0]`` being round 1.
        decisions: for each process that decided, its decision value and
            the round in which it decided.
    """

    schedule: Schedule
    proposals: tuple[Value, ...]
    rounds: tuple[RoundRecord, ...]
    decisions: Mapping[ProcessId, tuple[Value, Round]] = field(
        default_factory=dict
    )

    # -- basic accessors ---------------------------------------------------

    @property
    def n(self) -> int:
        return self.schedule.n

    @property
    def t(self) -> int:
        return self.schedule.t

    @property
    def rounds_executed(self) -> int:
        return len(self.rounds)

    def record(self, k: Round) -> RoundRecord:
        """The record for round *k* (1-based)."""
        return self.rounds[k - 1]

    def decision_value(self, pid: ProcessId) -> Value | None:
        entry = self.decisions.get(pid)
        return entry[0] if entry is not None else None

    def decision_round(self, pid: ProcessId) -> Round | None:
        entry = self.decisions.get(pid)
        return entry[1] if entry is not None else None

    def decided_values(self) -> set[Value]:
        """The distinct decided values, as an (unordered) set.

        Callers that iterate the result into anything order-sensitive
        must wrap it in ``sorted()`` — set order is hash-seed-dependent
        and would leak into records/exports.  Audited consumers either
        sort (metrics disagreement listing, figure1, experiments) or
        consume order-insensitively (len, membership in valency).
        """
        return {value for value, _round in self.decisions.values()}

    def deciders(self) -> frozenset[ProcessId]:
        """The processes that decided (memoized — the trace is frozen)."""
        cached = self.__dict__.get("_deciders_cache")
        if cached is None:
            cached = frozenset(self.decisions)
            object.__setattr__(self, "_deciders_cache", cached)
        return cached

    def global_decision_round(self) -> Round | None:
        """The round at which the run achieves a *global decision*.

        Per the paper (Section 1.3): the round k such that every process
        that ever decides does so at round k or lower, and at least one
        process decides at round k.  ``None`` if no process decided within
        the simulated horizon.
        """
        if not self.decisions:
            return None
        return max(round_ for _value, round_ in self.decisions.values())

    def first_decision_round(self) -> Round | None:
        if not self.decisions:
            return None
        return min(round_ for _value, round_ in self.decisions.values())

    # -- process views (indistinguishability) -------------------------------

    def view(self, pid: ProcessId, upto: Round) -> tuple:
        """The local history of *pid* through round *upto*, as a hashable value.

        The view consists of the process's proposal followed by one entry
        per round: the payload it sent (``None`` if it did not send) and
        the canonical tuple of ``(sent_round, sender, payload)`` triples it
        received (``None`` if it did not complete the round).  Because
        automata are deterministic, equal view prefixes imply equal process
        states — the formal sense in which two runs are indistinguishable
        at a process.
        """
        entries = []
        for k in range(1, min(upto, self.rounds_executed) + 1):
            rec = self.record(k)
            sent = rec.sent.get(pid)
            delivered = rec.delivered.get(pid)
            received = (
                tuple((m.sent_round, m.sender, m.payload) for m in delivered)
                if delivered is not None
                else None
            )
            entries.append((k, sent, received))
        return (self.proposals[pid], tuple(entries))

    def completed(self, pid: ProcessId, k: Round) -> bool:
        """True iff *pid* completed round k's receive phase in this run."""
        if k > self.rounds_executed:
            return False
        return pid in self.record(k).delivered

    # -- convenience -------------------------------------------------------

    def crash_rounds(self) -> dict[ProcessId, Round]:
        return {
            pid: spec.round for pid, spec in self.schedule.crashes.items()
        }

    def alive_at_end(self) -> frozenset[ProcessId]:
        # Schedule.correct is itself memoized, so this is one dict hit.
        return self.schedule.correct

    def iter_messages(self) -> Iterator[Message]:
        """All messages delivered in the run, in round order."""
        for rec in self.rounds:
            for msgs in rec.delivered.values():
                yield from msgs

    def message_count(self) -> int:
        return sum(
            len(msgs)
            for rec in self.rounds
            for msgs in rec.delivered.values()
        )

    def describe(self) -> str:
        """Human-readable multi-line dump, for examples and debugging."""
        lines = [
            f"Trace: n={self.n} t={self.t} "
            f"rounds={self.rounds_executed} proposals={list(self.proposals)}"
        ]
        for rec in self.rounds:
            parts = [f"  round {rec.round}:"]
            if rec.crashed:
                parts.append(f"crashed={sorted(rec.crashed)}")
            if rec.decided:
                decided = {p: v for p, v in sorted(rec.decided.items())}
                parts.append(f"decided={decided}")
            if rec.halted:
                parts.append(f"halted={sorted(rec.halted)}")
            lines.append(" ".join(parts))
        if self.decisions:
            lines.append(
                "  decisions: "
                + ", ".join(
                    f"p{p}->{v}@r{r}"
                    for p, (v, r) in sorted(self.decisions.items())
                )
            )
        else:
            lines.append("  decisions: none within horizon")
        return "\n".join(lines)


def views_equal(
    trace_a: Trace, trace_b: Trace, pid: ProcessId, upto: Round
) -> bool:
    """True iff *pid* cannot distinguish the two runs through round *upto*."""
    return trace_a.view(pid, upto) == trace_b.view(pid, upto)


@dataclass(frozen=True)
class LeanTrace:
    """The decision-level record of one run — everything metrics need,
    nothing else.

    Sweeps consume only decisions and aggregate counters, yet the kernel
    used to materialize a full per-round :class:`Trace` for every case.
    A ``LeanTrace`` carries the proposals, the decisions, each process's
    halt round, the executed round count and the delivered-message total
    — so :mod:`repro.analysis.metrics` produces **identical** numbers
    from either trace kind, while the lean kernel path skips all
    per-round record construction.

    Per-round payloads and inboxes are *not* recorded; anything that
    needs views or round records (replay, diagrams, the lower-bound
    machinery) must request ``trace="full"``.

    Attributes:
        schedule: the adversary schedule the run was executed against.
        proposals: the value proposed by each process, by id.
        rounds_executed: number of rounds the kernel simulated.
        decisions: for each process that decided, its decision value and
            the round in which it decided.
        halted_rounds: for each process that halted (returned), the
            round at whose end it did so.
        messages: total messages delivered over the whole run.
    """

    schedule: Schedule
    proposals: tuple[Value, ...]
    rounds_executed: int
    decisions: Mapping[ProcessId, tuple[Value, Round]] = field(
        default_factory=dict
    )
    halted_rounds: Mapping[ProcessId, Round] = field(default_factory=dict)
    messages: int = 0

    # -- the Trace-compatible surface metrics consume ----------------------

    @property
    def n(self) -> int:
        return self.schedule.n

    @property
    def t(self) -> int:
        return self.schedule.t

    def decision_value(self, pid: ProcessId) -> Value | None:
        entry = self.decisions.get(pid)
        return entry[0] if entry is not None else None

    def decision_round(self, pid: ProcessId) -> Round | None:
        entry = self.decisions.get(pid)
        return entry[1] if entry is not None else None

    def decided_values(self) -> set[Value]:
        """The distinct decided values, as an (unordered) set.

        Callers that iterate the result into anything order-sensitive
        must wrap it in ``sorted()`` — set order is hash-seed-dependent
        and would leak into records/exports.  Audited consumers either
        sort (metrics disagreement listing, figure1, experiments) or
        consume order-insensitively (len, membership in valency).
        """
        return {value for value, _round in self.decisions.values()}

    def deciders(self) -> frozenset[ProcessId]:
        """The processes that decided (memoized — the trace is frozen)."""
        cached = self.__dict__.get("_deciders_cache")
        if cached is None:
            cached = frozenset(self.decisions)
            object.__setattr__(self, "_deciders_cache", cached)
        return cached

    def global_decision_round(self) -> Round | None:
        if not self.decisions:
            return None
        return max(round_ for _value, round_ in self.decisions.values())

    def first_decision_round(self) -> Round | None:
        if not self.decisions:
            return None
        return min(round_ for _value, round_ in self.decisions.values())

    def message_count(self) -> int:
        return self.messages

    def crash_rounds(self) -> dict[ProcessId, Round]:
        return {
            pid: spec.round for pid, spec in self.schedule.crashes.items()
        }

    def alive_at_end(self) -> frozenset[ProcessId]:
        # Schedule.correct is itself memoized, so this is one dict hit.
        return self.schedule.correct

    def describe(self) -> str:
        """Human-readable one-screen summary (no per-round detail)."""
        lines = [
            f"LeanTrace: n={self.n} t={self.t} "
            f"rounds={self.rounds_executed} proposals={list(self.proposals)}"
        ]
        if self.decisions:
            lines.append(
                "  decisions: "
                + ", ".join(
                    f"p{p}->{v}@r{r}"
                    for p, (v, r) in sorted(self.decisions.items())
                )
            )
        else:
            lines.append("  decisions: none within horizon")
        if self.halted_rounds:
            lines.append(
                "  halted: "
                + ", ".join(
                    f"p{p}@r{r}"
                    for p, r in sorted(self.halted_rounds.items())
                )
            )
        return "\n".join(lines)


#: Either trace kind; the shared surface consumed by the metrics layer.
AnyTrace = Trace | LeanTrace


def require_full_trace(trace: AnyTrace, what: str) -> None:
    """Fail with an actionable message when *what* needs per-round data.

    Lean traces carry no round records, so consumers that render or
    compare rounds (diagrams, replay, the lower-bound machinery) cannot
    work from them; without this guard the failure surfaces as an
    ``AttributeError`` deep inside the consumer.  The error names the
    fix so callers don't have to.
    """
    if not isinstance(trace, Trace):
        from repro.errors import SimulationError

        raise SimulationError(
            f"{what} requires a full trace; this run was executed with "
            f"trace=\"lean\", which records no per-round data — re-run "
            f"with trace=\"full\""
        )
