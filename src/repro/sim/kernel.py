"""The deterministic round-based execution kernel.

:func:`execute` runs one automaton per process against an adversary
:class:`~repro.model.schedule.Schedule` and returns the run's trace — a
complete :class:`~repro.sim.trace.Trace` (``trace="full"``) or a
decision-level :class:`~repro.sim.trace.LeanTrace` (``trace="lean"``).

Round structure (paper, Section 1.2): each round k has a send phase — every
non-crashed, non-halted process broadcasts one payload, timestamped k — and
a receive phase — every process that completes the round receives the
round-k messages the schedule delivers in round k, plus any earlier-round
messages whose delayed delivery lands in round k.  A process that crashes
in round k sends to the schedule-chosen subset and never executes the
receive phase.

Execution runs on a compiled plan (:mod:`repro.sim.compiled`): the
schedule's send/completion/delivery structure is resolved once per
schedule, so the per-round hot loop touches only flat tuples — no
``sends_in_round``/``delivery_round``/``completes_round`` calls.
Delivery goes through :class:`~repro.sim.view.RoundView`: the kernel
builds each receiver's structured inbox (current-round items bucketed
by tag, delayed messages separate, present-sender set) straight from
the plan — shared across receivers with identical delivery plans — and
drives the automata through
:meth:`~repro.algorithms.base.Automaton.deliver_view`.  Automata that
only implement the legacy ``deliver`` receive the canonically ordered
flat message tuple via the base-class shim.  The original
query-at-a-time loop is preserved verbatim as
:func:`execute_reference`; the equivalence tests and the kernel
microbenchmark hold the two byte-identical on full traces.

The kernel is *model-agnostic*: it executes any schedule.  Whether the
schedule obeys SCS or ES is checked separately by the validators in
:mod:`repro.model.scs` and :mod:`repro.model.es`.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.algorithms.base import (
    AlgorithmFactory,
    Automaton,
    prefers_legacy_deliver,
)
from repro.errors import SimulationError
from repro.model.messages import DUMMY, Message, sort_delivery
from repro.model.schedule import Schedule
from repro.sim.bitset import interned_set, mask_of
from repro.sim.compiled import CompiledSchedule, compile_schedule
from repro.sim.phase1_plane import Phase1Plane, build_run_plane
from repro.sim.trace import AnyTrace, LeanTrace, RoundRecord, Trace
from repro.sim.view import (
    CurrentCell,
    RoundView,
    SendTable,
    build_delayed_buckets,
)
from repro.types import Payload, ProcessId, Round, Value

#: The supported ``trace=`` modes, in documentation order.
TRACE_MODES = ("full", "lean")

#: Payload-grid sentinel: "this process did not send in this round".
#: (``None`` cannot serve — the kernel substitutes DUMMY for it, and no
#: payload may legitimately be the sentinel itself.)
_NOT_SENT = object()


def _round_view_factory(
    k: Round,
    n: int,
    plan: CompiledSchedule,
    table: SendTable,
    payloads: Sequence[Sequence[Payload]],
    shared_current: dict[ProcessId, CurrentCell],
    shared_delayed: dict[ProcessId, tuple],
) -> Callable[[ProcessId], RoundView]:
    """One round's view builder, sharing buckets across plan groups.

    Returns ``view_for(pid)``; both trace-mode loops drive it, so the
    bucket-sharing and decide-concatenation logic exists exactly once —
    a divergence here would break the byte-identical-across-modes
    invariant the suite asserts.  ``shared_current``/``shared_delayed``
    are the run's preallocated group-bucket maps; the caller clears them
    between rounds instead of allocating fresh dicts.

    Current-round buckets are *lazy*: each plan group gets one shared
    :class:`CurrentCell` and views carry only the arrived-sender mask
    (the compiled plan mask ANDed with the round's broadcaster mask —
    exactly the senders surviving the table filter in
    :func:`build_current_buckets`).  A receiver whose round never
    touches ``current``/``by_tag``/``decides`` — the batched Phase-1
    plane path — skips the O(plan-size) build entirely.
    """
    delayed_plan = plan.delayed_inboxes[k]
    current_plan = plan.current_senders[k]
    cgroups = plan.current_groups[k]
    cmasks = plan.current_masks[k]
    dgroups = plan.delayed_groups[k]
    sender_mask = table.sender_mask

    def view_for(pid: ProcessId) -> RoundView:
        cmask = cmasks[pid] & sender_mask
        rep = cgroups[pid]
        cell = shared_current.get(rep)
        if cell is None:
            cell = shared_current[rep] = CurrentCell(
                current_plan[pid], table, cmask
            )
        rep = dgroups[pid]
        dly = shared_delayed.get(rep)
        if dly is None:
            dly = shared_delayed[rep] = build_delayed_buckets(
                delayed_plan[pid], payloads, _NOT_SENT
            )
        return RoundView.lazy(k, pid, n, dly[0], dly[1], cell, cmask)

    return view_for


def _check_run(automata: Sequence[Automaton], schedule: Schedule) -> None:
    n = schedule.n
    if len(automata) != n:
        raise SimulationError(
            f"schedule is for {n} processes, got {len(automata)} automata"
        )
    for pid, automaton in enumerate(automata):
        if automaton.pid != pid:
            raise SimulationError(
                f"automaton at index {pid} reports pid {automaton.pid}"
            )


def _bounded_horizon(schedule: Schedule, max_rounds: Round | None) -> Round:
    horizon = schedule.horizon
    if max_rounds is not None:
        horizon = min(horizon, max_rounds)
    return horizon


def execute(
    automata: Sequence[Automaton],
    schedule: Schedule,
    *,
    max_rounds: Round | None = None,
    stop_when_quiescent: bool = True,
    trace: str = "full",
) -> AnyTrace:
    """Execute one run and return its trace.

    Args:
        automata: one automaton per process, index = process id.
        schedule: the adversary schedule; its ``horizon`` bounds the run.
        max_rounds: optional tighter bound on the number of rounds.
        stop_when_quiescent: stop early once every process has crashed or
            halted (the run's outcome can no longer change).
        trace: ``"full"`` records every round into a
            :class:`~repro.sim.trace.Trace`; ``"lean"`` skips per-round
            records and returns a :class:`~repro.sim.trace.LeanTrace`
            carrying only what the metrics layer consumes.  Both modes
            drive the automata identically, so decisions and metrics
            never depend on the choice.

    Returns:
        The run's trace.  The kernel never raises on non-termination —
        a run that fails to decide simply ends at the horizon with missing
        decisions, which the analysis layer reports.
    """
    _check_run(automata, schedule)
    if trace not in TRACE_MODES:
        raise SimulationError(
            f"unknown trace mode {trace!r}; known: " + ", ".join(TRACE_MODES)
        )
    plan = compile_schedule(schedule)
    horizon = _bounded_horizon(schedule, max_rounds)
    proposals = tuple(a.proposal for a in automata)
    # The run-level batched-delivery plane (None unless every automaton
    # declares the protocol — see repro.sim.phase1_plane).  The plane is
    # active only between begin_round/end_round below, so automata
    # driven outside this kernel (execute_reference, direct deliver
    # calls) always take their per-automaton path.
    plane = build_run_plane(automata)
    if trace == "lean":
        return _execute_lean(
            automata, schedule, plan, horizon, stop_when_quiescent,
            proposals, plane,
        )
    return _execute_full(
        automata, schedule, plan, horizon, stop_when_quiescent,
        proposals, plane,
    )


def _execute_full(
    automata: Sequence[Automaton],
    schedule: Schedule,
    plan: CompiledSchedule,
    horizon: Round,
    stop_when_quiescent: bool,
    proposals: tuple[Value, ...],
    plane: Phase1Plane | None,
) -> Trace:
    n = schedule.n
    halted: set[ProcessId] = set()
    decided_at: dict[ProcessId, tuple[Value, Round]] = {}
    # payloads[pid][k] is what pid broadcast in round k (or _NOT_SENT).
    payloads = [[_NOT_SENT] * (horizon + 1) for _ in range(n)]
    # Per-automaton delivery dispatch: a class whose most-derived hook
    # is the legacy ``deliver`` gets the flat tuple directly, so legacy
    # overrides are honored even when an ancestor ported to views.
    legacy_entry = [prefers_legacy_deliver(type(a)) for a in automata]
    records: list[RoundRecord] = []
    # Preallocated per-run buffers, reset (not reallocated) per round.
    table = SendTable(n)
    shared_current: dict[ProcessId, CurrentCell] = {}
    shared_delayed: dict[ProcessId, tuple] = {}

    for k in range(1, horizon + 1):
        sent: dict[ProcessId, object | None] = dict.fromkeys(range(n))
        decided_this_round: dict[ProcessId, Value] = {}
        halted_this_round: set[ProcessId] = set()

        # --- send phase ---------------------------------------------------
        table.reset()
        record_send = table.record
        for pid in plan.senders[k]:
            if pid in halted:
                continue
            payload = automata[pid].payload(k)
            if payload is None:
                payload = DUMMY
            else:
                hash(payload)  # fail fast on unhashable payloads
            sent[pid] = payload
            payloads[pid][k] = payload
            record_send(pid, payload)
        table.seal()

        # --- receive phase --------------------------------------------------
        delivered: dict[ProcessId, tuple[Message, ...]] = {}
        shared_current.clear()
        shared_delayed.clear()
        view_for = _round_view_factory(
            k, n, plan, table, payloads, shared_current, shared_delayed
        )
        if plane is not None:
            # Post-send, pre-receive: the plane's refreshed rows are
            # exactly the Halt sets this round's payloads carry, and
            # the sealed table is the round's broadcast universe.
            plane.begin_round(k, table)
        for pid in plan.completers[k]:
            if pid in halted:
                continue
            view = view_for(pid)
            # Materialize the receiver's inbox for the round record; the
            # automaton sees the structured view (or, on the legacy
            # path, the same tuple).
            inbox = view.messages
            automaton = automata[pid]
            if legacy_entry[pid]:
                automaton.deliver(k, inbox)
            else:
                automaton.deliver_view(k, view)
            delivered[pid] = inbox
            if automaton.decided and pid not in decided_at:
                decided_at[pid] = (automaton.decision, k)
                decided_this_round[pid] = automaton.decision
            if automaton.halted:
                halted_this_round.add(pid)
        if plane is not None:
            plane.end_round()

        halted.update(halted_this_round)
        records.append(
            RoundRecord(
                round=k,
                sent=sent,
                delivered=delivered,
                decided=decided_this_round,
                crashed=plan.crashed[k],
                halted=interned_set(mask_of(halted_this_round)),
            )
        )

        if stop_when_quiescent and all(
            pid in halted for pid in plan.completers[k]
        ):
            break

    return Trace(
        schedule=schedule,
        proposals=proposals,
        rounds=tuple(records),
        decisions=decided_at,
    )


def _execute_lean(
    automata: Sequence[Automaton],
    schedule: Schedule,
    plan: CompiledSchedule,
    horizon: Round,
    stop_when_quiescent: bool,
    proposals: tuple[Value, ...],
    plane: Phase1Plane | None,
) -> LeanTrace:
    n = schedule.n
    halted: set[ProcessId] = set()
    halted_rounds: dict[ProcessId, Round] = {}
    decided_at: dict[ProcessId, tuple[Value, Round]] = {}
    payloads = [[_NOT_SENT] * (horizon + 1) for _ in range(n)]
    legacy_entry = [prefers_legacy_deliver(type(a)) for a in automata]
    message_count = 0
    rounds_executed = 0
    # Preallocated per-run buffers, reset (not reallocated) per round.
    table = SendTable(n)
    shared_current: dict[ProcessId, CurrentCell] = {}
    shared_delayed: dict[ProcessId, tuple] = {}

    for k in range(1, horizon + 1):
        rounds_executed = k

        table.reset()
        record_send = table.record
        for pid in plan.senders[k]:
            if pid in halted:
                continue
            payload = automata[pid].payload(k)
            if payload is None:
                payload = DUMMY
            else:
                hash(payload)  # fail fast on unhashable payloads
            payloads[pid][k] = payload
            record_send(pid, payload)
        table.seal()

        # The lean receive phase never materializes Message objects
        # unless an automaton falls back to the legacy ``deliver``
        # (the RoundView then builds the flat tuple on demand): ported
        # automata consume the shared per-group buckets directly, so
        # the per-round delivery cost is one bucket build per view
        # group plus the automaton logic itself.
        shared_current.clear()
        shared_delayed.clear()
        view_for = _round_view_factory(
            k, n, plan, table, payloads, shared_current, shared_delayed
        )
        if plane is not None:
            plane.begin_round(k, table)
        for pid in plan.completers[k]:
            if pid in halted:
                continue
            view = view_for(pid)
            automaton = automata[pid]
            if legacy_entry[pid]:
                automaton.deliver(k, view.messages)
            else:
                automaton.deliver_view(k, view)
            message_count += view.size
            if automaton.decided and pid not in decided_at:
                decided_at[pid] = (automaton.decision, k)
            if automaton.halted:
                halted.add(pid)
                halted_rounds[pid] = k
        if plane is not None:
            plane.end_round()

        if stop_when_quiescent and all(
            pid in halted for pid in plan.completers[k]
        ):
            break

    return LeanTrace(
        schedule=schedule,
        proposals=proposals,
        rounds_executed=rounds_executed,
        decisions=decided_at,
        halted_rounds=halted_rounds,
        messages=message_count,
    )


def execute_reference(
    automata: Sequence[Automaton],
    schedule: Schedule,
    *,
    max_rounds: Round | None = None,
    stop_when_quiescent: bool = True,
) -> Trace:
    """The original query-at-a-time kernel, kept as the oracle.

    Semantically identical to ``execute(..., trace="full")`` but issues
    O(n²) schedule method calls per round; the equivalence test suite
    (``tests/sim/test_compiled.py``) and the ``kernel-bench`` CI lane
    assert the compiled kernel's traces match this one exactly.
    """
    _check_run(automata, schedule)
    n = schedule.n
    horizon = _bounded_horizon(schedule, max_rounds)

    proposals = tuple(a.proposal for a in automata)
    halted: set[ProcessId] = set()
    decided_at: dict[ProcessId, tuple[Value, Round]] = {}
    # Messages awaiting delivery: (receiver, delivery_round) -> list.
    pending: dict[tuple[ProcessId, Round], list[Message]] = {}
    records: list[RoundRecord] = []

    for k in range(1, horizon + 1):
        sent: dict[ProcessId, object | None] = {}
        delivered: dict[ProcessId, tuple[Message, ...]] = {}
        decided_this_round: dict[ProcessId, Value] = {}
        halted_this_round: set[ProcessId] = set()

        # --- send phase ---------------------------------------------------
        for pid in range(n):
            if pid in halted or not schedule.sends_in_round(pid, k):
                sent[pid] = None
                continue
            payload = automata[pid].payload(k)
            if payload is None:
                payload = DUMMY
            sent[pid] = payload
            for receiver in range(n):
                delivery = schedule.delivery_round(pid, receiver, k)
                if delivery is None:
                    continue
                if receiver in halted or not schedule.completes_round(
                    receiver, delivery
                ):
                    # The receiver leaves the computation before the
                    # delivery round, so the message can never be received;
                    # buffering it would leak until the end of the run.
                    continue
                # The reference kernel is the equivalence oracle and is
                # kept on the original, obviously-correct idioms on
                # purpose — it must share no shortcuts with the fast
                # path it checks.
                message = Message(  # repro: noqa[BIT002]
                    sent_round=k, sender=pid, receiver=receiver,
                    payload=payload,
                )
                pending.setdefault((receiver, delivery), []).append(message)

        # --- receive phase --------------------------------------------------
        for pid in range(n):
            if pid in halted or not schedule.completes_round(pid, k):
                pending.pop((pid, k), None)
                continue
            inbox = sort_delivery(pending.pop((pid, k), []))
            automaton = automata[pid]
            automaton.deliver(k, inbox)
            delivered[pid] = inbox
            if automaton.decided and pid not in decided_at:
                decided_at[pid] = (automaton.decision, k)
                decided_this_round[pid] = automaton.decision
            if automaton.halted:
                halted_this_round.add(pid)

        halted.update(halted_this_round)
        if halted_this_round:
            # Purge messages already buffered for processes that halted
            # this round; they would otherwise sit in ``pending`` until
            # their delivery round only to be dropped there.
            for key in [
                key for key in pending if key[0] in halted_this_round
            ]:
                del pending[key]
        records.append(
            RoundRecord(
                round=k,
                sent=sent,
                delivered=delivered,
                decided=decided_this_round,
                crashed=schedule.crashed_in(k),
                # Oracle idiom, uninterned on purpose (see above).
                halted=frozenset(halted_this_round),  # repro: noqa[BIT001]
            )
        )

        if stop_when_quiescent:
            still_running = [
                pid
                for pid in range(n)
                if pid not in halted and schedule.completes_round(pid, k)
            ]
            if not still_running:
                break

    return Trace(
        schedule=schedule,
        proposals=proposals,
        rounds=tuple(records),
        decisions=decided_at,
    )


def run_algorithm(
    factory: AlgorithmFactory,
    schedule: Schedule,
    proposals: Sequence[Value],
    *,
    max_rounds: Round | None = None,
    trace: str = "full",
) -> AnyTrace:
    """Convenience wrapper: build automata from *factory* and execute.

    Equivalent to ``execute(make_automata(factory, n, t, proposals),
    schedule)``; exists because nearly every test, bench and example starts
    a run this way.  ``trace`` selects the trace mode (see :func:`execute`).
    """
    from repro.algorithms.base import make_automata

    automata = make_automata(factory, schedule.n, schedule.t, proposals)
    return execute(automata, schedule, max_rounds=max_rounds, trace=trace)
