"""The deterministic round-based execution kernel.

:func:`execute` runs one automaton per process against an adversary
:class:`~repro.model.schedule.Schedule` and returns a complete
:class:`~repro.sim.trace.Trace`.

Round structure (paper, Section 1.2): each round k has a send phase — every
non-crashed, non-halted process broadcasts one payload, timestamped k — and
a receive phase — every process that completes the round receives the
round-k messages the schedule delivers in round k, plus any earlier-round
messages whose delayed delivery lands in round k.  A process that crashes
in round k sends to the schedule-chosen subset and never executes the
receive phase.

The kernel is *model-agnostic*: it executes any schedule.  Whether the
schedule obeys SCS or ES is checked separately by the validators in
:mod:`repro.model.scs` and :mod:`repro.model.es`.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.base import Automaton
from repro.errors import SimulationError
from repro.model.messages import DUMMY, Message, sort_delivery
from repro.model.schedule import Schedule
from repro.sim.trace import RoundRecord, Trace
from repro.types import ProcessId, Round, Value


def execute(
    automata: Sequence[Automaton],
    schedule: Schedule,
    *,
    max_rounds: Round | None = None,
    stop_when_quiescent: bool = True,
) -> Trace:
    """Execute one run and return its trace.

    Args:
        automata: one automaton per process, index = process id.
        schedule: the adversary schedule; its ``horizon`` bounds the run.
        max_rounds: optional tighter bound on the number of rounds.
        stop_when_quiescent: stop early once every process has crashed or
            halted (the run's outcome can no longer change).

    Returns:
        The complete trace.  The kernel never raises on non-termination —
        a run that fails to decide simply ends at the horizon with missing
        decisions, which the analysis layer reports.
    """
    n = schedule.n
    if len(automata) != n:
        raise SimulationError(
            f"schedule is for {n} processes, got {len(automata)} automata"
        )
    for pid, automaton in enumerate(automata):
        if automaton.pid != pid:
            raise SimulationError(
                f"automaton at index {pid} reports pid {automaton.pid}"
            )

    horizon = schedule.horizon
    if max_rounds is not None:
        horizon = min(horizon, max_rounds)

    proposals = tuple(a.proposal for a in automata)
    halted: set[ProcessId] = set()
    decided_at: dict[ProcessId, tuple[Value, Round]] = {}
    # Messages awaiting delivery: (receiver, delivery_round) -> list.
    pending: dict[tuple[ProcessId, Round], list[Message]] = {}
    records: list[RoundRecord] = []

    for k in range(1, horizon + 1):
        sent: dict[ProcessId, object | None] = {}
        delivered: dict[ProcessId, tuple[Message, ...]] = {}
        decided_this_round: dict[ProcessId, Value] = {}
        halted_this_round: set[ProcessId] = set()

        # --- send phase ---------------------------------------------------
        for pid in range(n):
            if pid in halted or not schedule.sends_in_round(pid, k):
                sent[pid] = None
                continue
            payload = automata[pid].payload(k)
            if payload is None:
                payload = DUMMY
            sent[pid] = payload
            for receiver in range(n):
                delivery = schedule.delivery_round(pid, receiver, k)
                if delivery is None:
                    continue
                if receiver in halted or not schedule.completes_round(
                    receiver, delivery
                ):
                    # The receiver leaves the computation before the
                    # delivery round, so the message can never be received;
                    # buffering it would leak until the end of the run.
                    continue
                message = Message(
                    sent_round=k, sender=pid, receiver=receiver,
                    payload=payload,
                )
                pending.setdefault((receiver, delivery), []).append(message)

        # --- receive phase --------------------------------------------------
        for pid in range(n):
            if pid in halted or not schedule.completes_round(pid, k):
                pending.pop((pid, k), None)
                continue
            inbox = sort_delivery(pending.pop((pid, k), []))
            automaton = automata[pid]
            automaton.deliver(k, inbox)
            delivered[pid] = inbox
            if automaton.decided and pid not in decided_at:
                decided_at[pid] = (automaton.decision, k)
                decided_this_round[pid] = automaton.decision
            if automaton.halted:
                halted_this_round.add(pid)

        halted.update(halted_this_round)
        if halted_this_round:
            # Purge messages already buffered for processes that halted
            # this round; they would otherwise sit in ``pending`` until
            # their delivery round only to be dropped there.
            for key in [
                key for key in pending if key[0] in halted_this_round
            ]:
                del pending[key]
        records.append(
            RoundRecord(
                round=k,
                sent=sent,
                delivered=delivered,
                decided=decided_this_round,
                crashed=schedule.crashed_in(k),
                halted=frozenset(halted_this_round),
            )
        )

        if stop_when_quiescent:
            still_running = [
                pid
                for pid in range(n)
                if pid not in halted and schedule.completes_round(pid, k)
            ]
            if not still_running:
                break

    return Trace(
        schedule=schedule,
        proposals=proposals,
        rounds=tuple(records),
        decisions=decided_at,
    )


def run_algorithm(
    factory,
    schedule: Schedule,
    proposals: Sequence[Value],
    *,
    max_rounds: Round | None = None,
) -> Trace:
    """Convenience wrapper: build automata from *factory* and execute.

    Equivalent to ``execute(make_automata(factory, n, t, proposals),
    schedule)``; exists because nearly every test, bench and example starts
    a run this way.
    """
    from repro.algorithms.base import make_automata

    automata = make_automata(factory, schedule.n, schedule.t, proposals)
    return execute(automata, schedule, max_rounds=max_rounds)
