"""Deterministic round-based simulation: kernel, traces, schedule generators.

The kernel executes one algorithm automaton per process against an
adversary :class:`~repro.model.schedule.Schedule` and produces a
:class:`~repro.sim.trace.Trace` — a complete, replayable record of the run.
Determinism is a hard guarantee: the same automata and schedule always
produce the identical trace, which the lower-bound machinery exploits to
compare process *views* across runs.
"""

from repro.sim.compiled import CompiledSchedule, compile_schedule
from repro.sim.kernel import TRACE_MODES, execute, execute_reference
from repro.sim.trace import AnyTrace, LeanTrace, RoundRecord, Trace
from repro.sim.view import RoundView

__all__ = [
    "AnyTrace",
    "CompiledSchedule",
    "LeanTrace",
    "RoundRecord",
    "RoundView",
    "TRACE_MODES",
    "Trace",
    "compile_schedule",
    "execute",
    "execute_reference",
]
