"""Deterministic round-based simulation: kernel, traces, schedule generators.

The kernel executes one algorithm automaton per process against an
adversary :class:`~repro.model.schedule.Schedule` and produces a
:class:`~repro.sim.trace.Trace` — a complete, replayable record of the run.
Determinism is a hard guarantee: the same automata and schedule always
produce the identical trace, which the lower-bound machinery exploits to
compare process *views* across runs.
"""

from repro.sim.kernel import execute
from repro.sim.trace import RoundRecord, Trace

__all__ = ["execute", "RoundRecord", "Trace"]
