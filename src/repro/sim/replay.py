"""Schedule serialization and trace replay.

Reproducibility plumbing: a schedule (plus proposals and algorithm name)
pins down a run completely, so persisting the schedule as plain JSON-able
data is enough to re-create any run — including lower-bound witnesses
found by exhaustive search — on another machine.

``schedule_to_data`` / ``schedule_from_data`` round-trip through plain
dicts/lists (JSON-safe); :func:`replay` re-executes a trace's schedule and
verifies the outcome is identical, which doubles as a determinism check.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.algorithms.base import AlgorithmFactory
from repro.errors import SimulationError
from repro.model.schedule import CrashSpec, Schedule
from repro.sim.kernel import run_algorithm
from repro.sim.trace import Trace, require_full_trace

FORMAT_VERSION = 1


def schedule_to_data(schedule: Schedule) -> dict[str, Any]:
    """A plain-data (JSON-safe) representation of the schedule."""
    return {
        "version": FORMAT_VERSION,
        "n": schedule.n,
        "t": schedule.t,
        "horizon": schedule.horizon,
        "crashes": [
            {
                "pid": pid,
                "round": spec.round,
                "delivered_to": sorted(spec.delivered_same_round),
                "delayed": [list(item) for item in spec.delayed],
            }
            for pid, spec in sorted(schedule.crashes.items())
        ],
        "delays": [
            [sender, receiver, sent, until]
            for (sender, receiver, sent), until in sorted(
                schedule.delays.items()
            )
        ],
        "losses": [list(key) for key in sorted(schedule.losses)],
    }


def schedule_from_data(data: Mapping[str, Any]) -> Schedule:
    """Rebuild a schedule from :func:`schedule_to_data` output."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise SimulationError(
            f"unsupported schedule format version {version!r}"
        )
    crashes = {
        entry["pid"]: CrashSpec(
            round=entry["round"],
            delivered_same_round=frozenset(entry["delivered_to"]),
            delayed=tuple(
                (receiver, until) for receiver, until in entry["delayed"]
            ),
        )
        for entry in data["crashes"]
    }
    delays = {
        (sender, receiver, sent): until
        for sender, receiver, sent, until in data["delays"]
    }
    losses = frozenset(tuple(item) for item in data["losses"])
    return Schedule(
        n=data["n"],
        t=data["t"],
        horizon=data["horizon"],
        crashes=crashes,
        delays=delays,
        losses=losses,
    )


def replay(trace: Trace, factory: "AlgorithmFactory") -> Trace:
    """Re-execute a trace's schedule and check the outcome matches.

    Raises :class:`SimulationError` on any divergence — which, for the
    deterministic kernel, indicates either a non-deterministic automaton
    or a corrupted trace.  Requires a full trace: the per-process view
    comparison below is meaningless without per-round records.
    """
    require_full_trace(trace, "replay")
    fresh = run_algorithm(factory, trace.schedule, list(trace.proposals))
    if dict(fresh.decisions) != dict(trace.decisions):
        raise SimulationError(
            f"replay diverged: decisions {dict(fresh.decisions)} != "
            f"{dict(trace.decisions)}"
        )
    if fresh.rounds_executed != trace.rounds_executed:
        raise SimulationError(
            f"replay diverged: {fresh.rounds_executed} rounds != "
            f"{trace.rounds_executed}"
        )
    for pid in range(trace.n):
        if fresh.view(pid, fresh.rounds_executed) != trace.view(
            pid, trace.rounds_executed
        ):
            raise SimulationError(f"replay diverged at p{pid}'s view")
    return fresh


def roundtrip(schedule: Schedule) -> Schedule:
    """Serialize and deserialize; the result compares equal."""
    rebuilt = schedule_from_data(schedule_to_data(schedule))
    if rebuilt != schedule:
        raise SimulationError("schedule serialization round-trip mismatch")
    return rebuilt
