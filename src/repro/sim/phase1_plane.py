"""The run-level Phase-1 suspicion plane: batched ``compute()`` rounds.

The paper's Phase-1 update (Figure 2's ``compute()``, shared by A_{t+2}
and FloodSetWS through :class:`~repro.algorithms.suspicion.
EstimateState`) is the last O(n²)-per-round *automaton-state* loop in
the system: every receiver independently re-scans all n round-k
``(sender, payload)`` ESTIMATE items to find who arrived, who suspects
it, and the minimum circulating estimate.  At n = 1000 that scan —
n receivers × n items × t+1 rounds — dominates every att2 sweep row
(see the ``xxl_systems`` breakdown in ``BENCH_kernel.json``).

:class:`Phase1Plane` computes the same round for *every live receiver
at once*, against the same state rows, with three structural moves:

* **Send-table-driven round setup.**  Every Phase-1 broadcast of a
  round already sits in the kernel's :class:`~repro.sim.view.SendTable`
  when the receive phase opens, so :meth:`Phase1Plane.begin_round`
  derives the round's *entire* fold input once, globally: the
  ESTIMATE-broadcaster bitmask and one est-sorted ``(est, sender_bit)``
  order.  A receiver's arrived-ESTIMATE set is then a single word op —
  ``est_mask & view.current_mask`` — because each sender broadcasts
  exactly one payload per round; no per-receiver (or even per-group)
  bucket, scan, or sort exists on this path at all.  Combined with the
  lazy :class:`~repro.sim.view.RoundView` buckets, a Phase-1 round
  never materializes current-round item tuples for any receiver.
* **An incrementally-maintained bit-transpose of the Halt matrix.**
  ``suspecting-me`` for receiver i is "which arrived senders carry i in
  their round-k Halt payload".  Payload Halt sets equal the senders'
  state rows at send time, so the plane keeps ``transpose[i]`` = the
  mask of processes whose Halt row contains i, and the per-receiver
  query collapses to ``arrived & transpose[i]`` — one word op instead
  of n frozenset membership tests.  Halt rows are monotone and change
  rarely; :meth:`Phase1Plane.begin_round` re-transposes **only the rows
  that changed** since the previous round (O(n) mask compares plus one
  word op per new suspicion, ever).
* **First-hit min-est fold.**  With the round's ``(est, sender_bit)``
  entries pre-sorted (tuple order: est first, ascending sender bit on
  ties — exactly the strict-``<`` first-minimal fold's tie-break), each
  receiver's new estimate is the first entry whose sender is delivered
  and outside its updated Halt mask — usually the very first entry —
  instead of an O(n) re-scan.  Rounds whose est values are mutually
  unorderable (the sort raises ``TypeError``) mark themselves unsorted
  and every receiver falls back to the exact per-receiver scan, which
  only compares values that actually meet in one inbox.

The plane is **opt-in and run-scoped**.  Automata declare the protocol
via :attr:`~repro.algorithms.base.Automaton.phase1_plane_protocol`;
:func:`build_run_plane` builds and binds one plane per execution only
when *every* automaton in the run speaks it (a mixed run falls back to
the untouched per-automaton ``deliver_view`` path — out-of-tree
automata never see a plane).  The kernel drives
:meth:`Phase1Plane.begin_round` / :meth:`Phase1Plane.end_round` once
per round around the receive phase; between the two, bound automata
route their Phase-1 state updates through
:meth:`Phase1Plane.compute_view`, which falls back to the exact
per-receiver :meth:`~repro.algorithms.suspicion.EstimateState.
compute_view` whenever the plane is not mid-round (direct ``deliver``
calls, ``execute_reference``, post-run pokes) — so every entry point
computes the identical update and the byte-identity suite can hold the
batched kernel to ``execute_reference`` across trace modes.

Protocol contract (what declaring ``PHASE1_ESTIMATE`` promises): the
automaton owns an :class:`~repro.algorithms.suspicion.EstimateState`
at ``self.state`` for the run's lifetime, its Phase-1 broadcasts are
``state.payload(k)`` (or non-ESTIMATE payloads, e.g. DECIDE), and all
Phase-1 state changes go through ``compute_view``.  The
:meth:`begin_round` row refresh makes the plane robust to out-of-band
halt-row changes *between* rounds (it diffs against the live states),
but mid-round mutation outside the plane would desynchronize the
transpose — exactly the invariant the property suite in
``tests/algorithms/test_phase1_plane.py`` drives against the preserved
per-receiver oracle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.sim.bitset import full_mask, interned_set
from repro.types import Round, Value

if TYPE_CHECKING:  # runtime stays decoupled from the algorithm layer
    from repro.algorithms.base import Automaton
    from repro.algorithms.suspicion import EstimateState
    from repro.sim.view import RoundView, SendTable

__all__ = ["PHASE1_ESTIMATE", "Phase1Plane", "build_run_plane"]

#: The one plane protocol this module implements (see the module
#: docstring for the contract an automaton accepts by declaring it).
PHASE1_ESTIMATE = "phase1/estimate"

#: The ESTIMATE payload tag (mirrors ``repro.algorithms.suspicion.
#: ESTIMATE``; defined here so the plane's hot loop never imports the
#: algorithm layer — same idiom as ``view._DECIDE``).
_ESTIMATE = "ESTIMATE"


class Phase1Plane:
    """One run's shared Phase-1 state plane (see the module docstring).

    Holds every process's ``(est, halt_mask)`` row by reference to the
    automata's own :class:`~repro.algorithms.suspicion.EstimateState`
    objects — the plane writes the same public state the per-receiver
    path would, so Phase 2 and the Figure-4 fast path read estimates
    and Halt sets exactly as before.
    """

    __slots__ = (
        "n", "_states", "_full", "_rows", "_transpose", "_nonempty_rows",
        "_est_mask", "_order", "_sortable", "_round", "_active",
    )

    def __init__(self, states: Sequence["EstimateState"]) -> None:
        self.n = len(states)
        self._states = tuple(states)
        self._full = full_mask(self.n)
        # Last-seen halt rows, refreshed per round; transpose[i] is the
        # mask of processes whose (last-seen) Halt row contains i, and
        # _nonempty_rows the mask of processes with a non-empty row.
        self._rows = [state._halt_mask for state in self._states]
        transpose = [0] * self.n
        nonempty = 0
        for j, row in enumerate(self._rows):
            if row:
                nonempty |= 1 << j
            bit = 1 << j
            while row:
                low = row & -row
                transpose[low.bit_length() - 1] |= bit
                row ^= low
        self._transpose = transpose
        self._nonempty_rows = nonempty
        # Round-scoped fold inputs, rebuilt by begin_round.
        self._est_mask = 0
        self._order: list[tuple[Value, int]] = []
        self._sortable = True
        self._round: Round = 0
        self._active = False

    # -- kernel-facing round protocol -------------------------------------

    def begin_round(self, k: Round, table: "SendTable") -> None:
        """Open round *k*'s receive phase (kernel, once per round).

        Re-transposes exactly the Halt rows that changed since the last
        refresh, then derives the round's global fold inputs from the
        sealed send *table*: the ESTIMATE-broadcaster mask and the
        est-sorted ``(est, sender_bit)`` order.  Runs *after* the send
        phase, so the refreshed rows are the rows the round-k ESTIMATE
        payloads carry — which is what makes ``arrived &
        transpose[pid]`` equal the per-receiver ``pid in payload[3]``
        scan.
        """
        rows = self._rows
        transpose = self._transpose
        for j, state in enumerate(self._states):
            mask = state._halt_mask
            added = mask & ~rows[j]
            if added:
                bit = 1 << j
                if not rows[j]:
                    self._nonempty_rows |= bit
                while added:
                    low = added & -added
                    transpose[low.bit_length() - 1] |= bit
                    added ^= low
                rows[j] = mask
        # The round's ESTIMATE broadcasters and their ests, in one walk
        # of the send table.  Built in ascending sender order, so the
        # tuple sort's tie-break (equal ests compare on the int bit)
        # ranks equal-est senders ascending — the first entry a
        # receiver's eligibility mask hits is exactly the value object
        # its strict-< first-minimal fold would keep.
        items = table.items
        entries: list[tuple[Value, int]] = []
        est_mask = 0
        mask = table.sender_mask
        if table.single_tag == _ESTIMATE:
            est_mask = mask
            while mask:
                low = mask & -mask
                item = items[low.bit_length() - 1]
                assert item is not None
                entries.append((item[1][2], low))
                mask ^= low
        elif mask:
            tags = table.tags
            while mask:
                low = mask & -mask
                sender = low.bit_length() - 1
                if tags[sender] == _ESTIMATE:
                    est_mask |= low
                    item = items[sender]
                    assert item is not None
                    entries.append((item[1][2], low))
                mask ^= low
        try:
            entries.sort()
            self._sortable = True
        except TypeError:
            # Mutually unorderable ests this round: receivers fall back
            # to the per-receiver scan, which only ever compares values
            # delivered into one inbox.
            self._sortable = False
        self._est_mask = est_mask
        self._order = entries
        self._round = k
        self._active = True

    def end_round(self) -> None:
        """Close the receive phase (kernel, once per round).

        Outside an open round the plane refuses to answer — state
        updates fall back to the per-receiver path, so automata driven
        directly (tests, replay, the reference kernel) behave exactly
        as unbound ones.
        """
        self._active = False

    # -- automaton-facing state updates ------------------------------------

    def compute_view(
        self, state: "EstimateState", k: Round, view: "RoundView"
    ) -> None:
        """The paper's ``compute()`` for *state*, batched.

        Byte-equivalent to ``state.compute_view(k, view)`` — the
        per-receiver cost is a handful of word ops plus the first-hit
        walk of the round's est-sorted order.  Falls back to the
        per-receiver scan when the plane is not mid-round *k* or the
        round's ests resisted the global sort.
        """
        if not self._active or k != self._round or not self._sortable:
            state.compute_view(k, view)
            return
        arrived = self._est_mask & view.current_mask
        pid = state.pid
        halt_mask = state._halt_mask
        additions = (
            (self._full & ~arrived & ~(1 << pid))   # suspected now
            | (arrived & self._transpose[pid])      # suspecting me
        ) & ~halt_mask
        if additions:
            halt_mask |= additions
            state._halt_mask = halt_mask
            state.halt = interned_set(halt_mask)
        eligible = arrived & ~halt_mask
        if eligible:
            for est, bit in self._order:
                if eligible & bit:
                    state.est = est
                    return

    def round2_stats(
        self, k: Round, view: "RoundView"
    ) -> "tuple[int, bool, Value] | None":
        """The Figure-4 failure-free fast path's fold, batched.

        Returns ``(count, any_halt_nonempty, min_est)`` over the view's
        current-round ESTIMATE items — count and taint are word ops on
        the round's global masks, ``min_est`` the first-hit walk of the
        est order (``None`` only when ``count`` is 0, no halt exclusion:
        the fast path folds over *all* arrived ESTIMATE items).
        Returns ``None`` when the plane is not mid-round *k* or the
        round's ests resisted the global sort (callers fall back to
        their local scan).
        """
        if not self._active or k != self._round or not self._sortable:
            return None
        arrived = self._est_mask & view.current_mask
        count = arrived.bit_count()
        if not count:
            return (0, False, None)
        tainted = bool(arrived & self._nonempty_rows)
        best: Value = None
        for est, bit in self._order:
            if arrived & bit:
                best = est
                break
        return (count, tainted, best)


def build_run_plane(
    automata: Sequence["Automaton"],
) -> Phase1Plane | None:
    """Build and bind one plane for *automata*, or ``None``.

    The batched dispatch engages only when **every** automaton in the
    run declares the (one) known protocol — a mixed or legacy run keeps
    the untouched per-automaton delivery path.  On success the plane is
    bound into each automaton via
    :meth:`~repro.algorithms.base.Automaton.bind_phase1_plane` and
    returned for the kernel's per-round ``begin_round``/``end_round``
    dispatch.
    """
    if not automata:
        return None
    for automaton in automata:
        if type(automaton).phase1_plane_protocol != PHASE1_ESTIMATE:
            return None
    plane = Phase1Plane(tuple(a.state for a in automata))  # type: ignore[attr-defined]
    for automaton in automata:
        automaton.bind_phase1_plane(plane)
    return plane
