"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the algorithm registry with models and summaries.
* ``run`` — execute one algorithm on one workload and print the trace,
  optionally as a space-time diagram.
* ``experiments`` — print the compact experiment tables (the full,
  asserted versions live in ``benchmarks/``).
* ``sweep`` — expand a declarative case grid and execute it on the batch
  engine (:mod:`repro.engine`), optionally across a worker pool.

Examples::

    python -m repro list
    python -m repro run --algorithm att2 --n 5 --t 2 \
        --workload cascade --proposals 3,1,4,1,5 --diagram
    python -m repro experiments
    python -m repro sweep --workers 4 --json sweep.json
    python -m repro sweep --algorithms att2,hurfin_raynal \
        --n 7 --t 3 --cases-per-family 40 --seed 7
    python -m repro sweep --cache .sweep-cache --workers 4

The ``sweep`` grid schema
-------------------------

A grid (:class:`repro.engine.grids.GridSpec`) is the cross product

    ``algorithms × schedule families × proposal pattern``

* **algorithms** — registry names (``python -m repro list``); every
  family instance is run against every algorithm.
* **families** (:class:`repro.engine.grids.FamilySpec`) — each names a
  generator ``kind`` plus parameters.  Seeded kinds (``random_es``,
  ``random_scs``, ``random_serial``) expand into ``count`` instances
  whose per-instance seeds are derived as SHA-256 of
  ``(grid seed, family name, index)``; deterministic kinds
  (``failure_free``, ``cascade``, ``hiding_chain``, ``block``,
  ``killer``, ``async_prefix``, ``rotating``) wrap the structured
  workload generators.
* **proposal pattern** — ``range`` (``0..n-1``) or ``random``
  (per-case seeded).

The CLI exposes the stock grid of
:func:`repro.engine.grids.default_sweep_grid` — seeded ES/SCS/serial
families plus the five structured workloads of experiment E5 — sized by
``--cases-per-family``; bespoke grids are a few lines of Python against
:mod:`repro.engine`.  Expansion is a pure function of the spec, records
are re-sorted into expansion order after execution, and ``--workers N``
therefore yields byte-identical output to serial execution — any
``--json`` export of the same grid and seed diffs empty.

The ``sweep`` result cache
--------------------------

``--cache DIR`` threads a content-addressed on-disk record cache
(:mod:`repro.engine.cache`) through the engine: each case is keyed by
SHA-256 over (key-scheme tag, algorithm name, a source hash of the
algorithm's transitive module closure, a source hash of the simulation
kernel and record machinery, the schedule's canonical digest, the
proposals), so only cache *misses* ever reach the kernel.  Re-running an
identical grid against a warm cache executes zero cases and produces
byte-identical ``--json`` output; editing an algorithm's source
invalidates only that algorithm's entries (and its dependents'), while
editing the kernel or metrics invalidates everything.  The CLI prints
the hit/miss tally after each cached sweep; ``--no-cache`` bypasses a
configured ``--cache`` without having to edit scripted invocations, and
deleting the directory is always safe — it costs only recomputation.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.algorithms.registry import available_algorithms, get_factory
from repro.analysis.diagram import render_run
from repro.analysis.metrics import check_consensus, summarize
from repro.analysis.tables import format_table
from repro.model.schedule import Schedule
from repro.sim.kernel import run_algorithm


def _build_workload(name: str, n: int, t: int, horizon: int,
                    sync_after: int):
    from repro.workloads import (
        async_prefix,
        block_crashes,
        coordinator_killer,
        serial_cascade,
        value_hiding_chain,
    )

    builders = {
        "failure_free": lambda: Schedule.failure_free(n, t, horizon),
        "cascade": lambda: serial_cascade(n, t, horizon),
        "hiding_chain": lambda: value_hiding_chain(n, t, horizon),
        "block": lambda: block_crashes(n, t, horizon),
        "killer2": lambda: coordinator_killer(n, t, horizon,
                                              rounds_per_cycle=2),
        "killer3": lambda: coordinator_killer(n, t, horizon,
                                              rounds_per_cycle=3),
        "async_prefix": lambda: async_prefix(n, t, horizon, k=sync_after),
    }
    if name not in builders:
        known = ", ".join(sorted(builders))
        raise SystemExit(f"unknown workload {name!r}; known: {known}")
    return builders[name]()


def _cmd_list(_args) -> int:
    rows = [
        (info.name, info.model, info.summary)
        for info in available_algorithms().values()
    ]
    print(format_table(["name", "model", "summary"], rows,
                       title="Registered consensus algorithms"))
    return 0


def _cmd_run(args) -> int:
    factory = get_factory(args.algorithm)
    schedule = _build_workload(
        args.workload, args.n, args.t, args.horizon, args.sync_after
    )
    if args.proposals:
        try:
            proposals = [int(v) for v in args.proposals.split(",")]
        except ValueError:
            raise SystemExit(
                f"proposals must be comma-separated integers, "
                f"got {args.proposals!r}"
            )
        if len(proposals) != args.n:
            raise SystemExit(
                f"need {args.n} proposals, got {len(proposals)}"
            )
    else:
        proposals = list(range(args.n))

    trace = run_algorithm(factory, schedule, proposals)
    print(schedule.describe())
    print()
    if args.diagram:
        print(render_run(trace, title=f"{args.algorithm} on "
                                      f"{args.workload}"))
        print()
    print(trace.describe())
    summary = summarize(trace)
    print(f"\nglobal decision round: {summary.global_round}")
    problems = check_consensus(trace, expect_termination=False)
    if problems:
        print("CONSENSUS VIOLATIONS:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("consensus properties: ok")
    return 0


def _ensure_writable(path: str) -> None:
    """Fail fast if *path* cannot be written — before minutes of compute.

    Opens in append mode so an existing export is never truncated; a file
    the probe itself created is removed again, so a sweep that later fails
    leaves no misleading empty export behind.
    """
    existed = os.path.exists(path)
    try:
        with open(path, "a", encoding="utf-8"):
            pass
    except OSError as exc:
        raise SystemExit(f"cannot write --json output {path!r}: {exc}")
    if not existed:
        try:
            os.remove(path)
        except OSError:
            pass


def _cmd_sweep(args) -> int:
    from repro.engine import (
        AlgorithmSummary,
        ResultCache,
        default_sweep_grid,
        expand_grid,
        run_batch,
    )
    from repro.engine.grids import DEFAULT_SWEEP_ALGORITHMS
    from repro.engine.runner import resolve_workers

    if args.json:
        _ensure_writable(args.json)
    cache = None
    if args.cache and not args.no_cache:
        try:
            cache = ResultCache(args.cache)
        except OSError as exc:
            raise SystemExit(
                f"cannot use --cache directory {args.cache!r}: {exc}"
            )

    algorithms = (
        tuple(name.strip() for name in args.algorithms.split(",") if name)
        if args.algorithms
        else DEFAULT_SWEEP_ALGORITHMS
    )
    grid = default_sweep_grid(
        args.n,
        args.t,
        seed=args.seed,
        algorithms=algorithms,
        cases_per_family=args.cases_per_family,
        proposal_mode=args.proposals_mode,
    )
    cases = expand_grid(grid)
    workers = resolve_workers(args.workers, len(cases))
    print(
        f"sweep: {len(cases)} cases ({len(algorithms)} algorithms x "
        f"{sum(f.count for f in grid.families)} schedules), "
        f"seed={args.seed}, workers={workers}"
    )
    result = run_batch(cases, workers=workers, cache=cache)
    rows = [summary.row() for summary in result.summaries()]
    print()
    print(format_table(
        list(AlgorithmSummary.ROW_HEADERS), rows,
        title=f"Batch sweep (n={grid.n}, t={grid.t})",
    ))
    if cache is not None:
        print(f"\n{cache.describe()}")
    violations = result.violations()
    if args.json:
        result.save(args.json)
        print(f"\nwrote {result.case_count} records to {args.json}")
    if violations:
        print(f"\nSAFETY VIOLATIONS in {len(violations)} cases:")
        for record in violations:
            print(f"  - {record.algorithm} on {record.workload}")
        return 1
    print("\nsafety (agreement + validity): ok on every case")
    return 0


def _cmd_experiments(_args) -> int:
    from repro.analysis.experiments import all_experiments

    for title, headers, rows in all_experiments():
        print(format_table(headers, rows, title=title))
        print()
    print("(Full, asserted experiment suite: "
          "pytest benchmarks/ --benchmark-only)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'The inherent price of indulgence' "
                    "(Dutta & Guerraoui, PODC 2002).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered algorithms")

    run_parser = sub.add_parser("run", help="run one algorithm on one "
                                            "workload")
    run_parser.add_argument("--algorithm", default="att2")
    run_parser.add_argument("--n", type=int, default=5)
    run_parser.add_argument("--t", type=int, default=2)
    run_parser.add_argument("--workload", default="failure_free")
    run_parser.add_argument("--horizon", type=int, default=24)
    run_parser.add_argument("--sync-after", type=int, default=3,
                            help="async prefix length for async_prefix")
    run_parser.add_argument("--proposals", default="",
                            help="comma-separated ints (default 0..n-1)")
    run_parser.add_argument("--diagram", action="store_true",
                            help="print a space-time diagram")

    sub.add_parser("experiments", help="print the experiment tables")

    sweep_parser = sub.add_parser(
        "sweep",
        help="run a declarative case grid on the batch engine",
    )
    sweep_parser.add_argument("--n", type=int, default=5)
    sweep_parser.add_argument("--t", type=int, default=2)
    sweep_parser.add_argument(
        "--algorithms", default="",
        help="comma-separated registry names (default: the five E5 "
             "algorithms)",
    )
    sweep_parser.add_argument(
        "--cases-per-family", type=int, default=12,
        help="instances per seeded schedule family (default 12)",
    )
    sweep_parser.add_argument("--seed", type=int, default=0,
                              help="master seed for the grid (default 0)")
    sweep_parser.add_argument(
        "--workers", type=int, default=0,
        help="worker processes; 0 = auto-size to the machine, 1 = serial",
    )
    sweep_parser.add_argument(
        "--proposals-mode", choices=("range", "random"), default="random",
        help="proposal pattern per case (default random)",
    )
    sweep_parser.add_argument("--json", default="",
                              help="write all records to this JSON file")
    sweep_parser.add_argument(
        "--cache", default="",
        help="content-addressed result cache directory: repeated "
             "identical grids only execute cache misses",
    )
    sweep_parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass --cache (run every case) without editing scripts",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "experiments": _cmd_experiments,
        "sweep": _cmd_sweep,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
