"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the algorithm registry with models and summaries.
* ``run`` — execute one algorithm on one workload and print the trace,
  optionally as a space-time diagram.
* ``experiments`` — print the compact experiment tables (the full,
  asserted versions live in ``benchmarks/``).
* ``sweep`` — execute a declarative case grid (stock, from a versioned
  ``--grid`` JSON file or directory of them, or a named ``--profile``)
  on the batch engine (:mod:`repro.engine`), on a selectable execution
  backend and kernel trace mode, optionally as one shard of a
  distributed run.
* ``orchestrate`` — drive a whole distributed sweep: plan shards,
  launch them on a worker inventory (``--local N`` subprocesses or a
  ``--workers-file hosts.toml`` of local/SSH machines), retry and
  reassign failed shards with backoff, and merge incrementally into
  one export.
* ``merge`` — recombine per-shard ``--json`` exports into the
  whole-grid result.
* ``grid validate`` — lint grid JSON files (or directories of them)
  without running anything.
* ``cache stats`` — inspect a result-cache directory (entries, bytes,
  lifetime hit rate, last gc).
* ``cache gc`` — evict cache entries by age and/or LRU size bound.

Examples::

    python -m repro list
    python -m repro run --algorithm att2 --n 5 --t 2 \
        --workload cascade --proposals 3,1,4,1,5 --diagram
    python -m repro experiments
    python -m repro sweep --workers 4 --json sweep.json
    python -m repro sweep --algorithms att2,hurfin_raynal \
        --n 7 --t 3 --cases-per-family 40 --seed 7
    python -m repro sweep --cache .sweep-cache --workers 4
    python -m repro sweep --save-grid grid.json
    python -m repro sweep --grid grid.json --backend threads \
        --shard 0/2 --json shard0.json
    python -m repro sweep --grid experiments/ --json all.json
    python -m repro sweep --profile large --trace lean
    python -m repro sweep --profile xlarge --trace lean
    python -m repro sweep --profile xxlarge --trace lean \
        --spool xxl.jsonl --json xxl.json
    python -m repro orchestrate --grid grid.json --local 4 --json all.json
    python -m repro orchestrate --profile large --workers-file hosts.toml \
        --cache .sweep-cache --warm-cache --json large.json
    python -m repro merge shard0.json shard1.json --json whole.json
    python -m repro grid validate experiments/
    python -m repro cache stats .sweep-cache
    python -m repro cache gc .sweep-cache --max-age 30 --max-bytes 50000000

The ``sweep`` grid schema
-------------------------

A grid (:class:`repro.engine.grids.GridSpec`) is the cross product

    ``algorithms × schedule families × proposal pattern``

* **algorithms** — registry names (``python -m repro list``); every
  family instance is run against every algorithm.
* **families** (:class:`repro.engine.grids.FamilySpec`) — each names a
  generator ``kind`` plus parameters.  Seeded kinds (``random_es``,
  ``random_scs``, ``random_serial``) expand into ``count`` instances
  whose per-instance seeds are derived as SHA-256 of
  ``(grid seed, family name, index)``; deterministic kinds
  (``failure_free``, ``cascade``, ``hiding_chain``, ``block``,
  ``killer``, ``async_prefix``, ``rotating``) wrap the structured
  workload generators.
* **proposal pattern** — ``range`` (``0..n-1``) or ``random``
  (per-case seeded).

The CLI exposes the stock grid of
:func:`repro.engine.grids.default_sweep_grid` — seeded ES/SCS/serial
families plus the five structured workloads of experiment E5 — sized by
``--cases-per-family``.  ``--save-grid grid.json`` writes the grid being
run as a versioned JSON file and ``--grid grid.json`` runs one, so
experiment definitions can be shared and diffed without touching Python
(the file round-trips ``GridSpec.to_data``/``from_data`` losslessly).
``--grid DIR`` runs every ``*.json`` grid in the directory (sorted by
name) as one combined sweep: case indices are offset per grid and
workload labels prefixed with the grid file's stem, so the single
``--json`` export merges all grids canonically.  ``--profile large``
runs the stock large-n preset (n = 25 and n = 50, long horizons) the
same way, ``--profile xlarge`` the n = 100 milestone preset (one
instance per family, horizon 102) that the round-view delivery
pipeline makes a seconds-not-minutes run, and ``--profile xxlarge``
the n = 250 preset (t pinned at the xlarge value, isolating the
per-round n² data-plane cost) that the bitset data plane makes
tractable — pair it with ``--spool`` so the driver's memory stays
bounded.  ``repro grid validate FILE_OR_DIR...`` lints grid files for
CI without executing them.

``--spool FILE`` streams every record to an append-only JSONL spool as
it completes instead of accumulating the batch in memory
(:mod:`repro.engine.sink`): the driver holds one record at a time, a
killed run leaves the spool loadable as a clean partial result, and the
``--json`` export is rebuilt from the spool byte-identical to the
in-memory path.

Trace modes
-----------

``--trace {full,lean}`` selects the kernel's trace mode
(:func:`repro.sim.kernel.execute`).  ``lean`` — the sweep default —
skips all per-round trace records and materializes only decisions and
counters, which is everything a sweep record consumes; ``full`` drives
the automata identically but keeps the complete per-round
:class:`~repro.sim.trace.Trace` alive while each case runs.  Records,
exports and cache entries are **byte-identical** across modes.

Backends and shards
-------------------

``--backend`` picks the execution backend (:mod:`repro.engine.executors`):
``processes`` (default; ``--workers N`` sizes the pool, omit to
auto-size), ``threads``, or ``serial``.  Expansion is a pure function of
the spec, records are re-sorted into expansion order after execution, and
every backend therefore yields byte-identical output — any ``--json``
export of the same grid and seed diffs empty.

``--shard I/N`` runs only the cases with ``index % N == I``, so N
machines can split one grid file without coordination; each shard's
``--json`` export carries its case indices, and ``repro merge`` (or
:meth:`repro.engine.results.BatchResult.merge`) recombines the exports —
in any order — into output byte-identical to the unsharded run.

The ``sweep`` result cache
--------------------------

``--cache DIR`` threads a content-addressed on-disk record cache
(:mod:`repro.engine.cache`) through the engine: each case is keyed by
SHA-256 over (key-scheme tag, algorithm name, a source hash of the
algorithm's transitive module closure, a source hash of the simulation
kernel and record machinery, the schedule's canonical digest, the
proposals), so only cache *misses* ever reach the kernel.  Re-running an
identical grid against a warm cache executes zero cases and produces
byte-identical ``--json`` output; editing an algorithm's source
invalidates only that algorithm's entries (and its dependents'), while
editing the kernel or metrics invalidates everything.  The CLI prints
the hit/miss tally after each cached sweep; ``--no-cache`` bypasses a
configured ``--cache`` without having to edit scripted invocations, and
deleting the directory is always safe — it costs only recomputation.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.algorithms.registry import available_algorithms, get_factory
from repro.analysis.diagram import render_run
from repro.analysis.metrics import check_consensus, summarize
from repro.analysis.tables import format_table
from repro.model.schedule import Schedule
from repro.sim.kernel import run_algorithm


def _build_workload(name: str, n: int, t: int, horizon: int,
                    sync_after: int):
    from repro.workloads import (
        async_prefix,
        block_crashes,
        coordinator_killer,
        serial_cascade,
        value_hiding_chain,
    )

    builders = {
        "failure_free": lambda: Schedule.failure_free(n, t, horizon),
        "cascade": lambda: serial_cascade(n, t, horizon),
        "hiding_chain": lambda: value_hiding_chain(n, t, horizon),
        "block": lambda: block_crashes(n, t, horizon),
        "killer2": lambda: coordinator_killer(n, t, horizon,
                                              rounds_per_cycle=2),
        "killer3": lambda: coordinator_killer(n, t, horizon,
                                              rounds_per_cycle=3),
        "async_prefix": lambda: async_prefix(n, t, horizon, k=sync_after),
    }
    if name not in builders:
        known = ", ".join(sorted(builders))
        raise SystemExit(f"unknown workload {name!r}; known: {known}")
    return builders[name]()


def _cmd_list(_args) -> int:
    rows = [
        (info.name, info.model, info.summary)
        for info in available_algorithms().values()
    ]
    print(format_table(["name", "model", "summary"], rows,
                       title="Registered consensus algorithms"))
    return 0


def _cmd_run(args) -> int:
    if args.diagram and args.trace == "lean":
        # Fail before the run, with the fix in the message: the diagram
        # renders per-round records, which lean traces do not carry.
        raise SystemExit(
            "repro run --diagram requires --trace full: lean traces "
            "record no per-round data to render"
        )
    factory = get_factory(args.algorithm)
    schedule = _build_workload(
        args.workload, args.n, args.t, args.horizon, args.sync_after
    )
    if args.proposals:
        try:
            proposals = [int(v) for v in args.proposals.split(",")]
        except ValueError:
            raise SystemExit(
                f"proposals must be comma-separated integers, "
                f"got {args.proposals!r}"
            )
        if len(proposals) != args.n:
            raise SystemExit(
                f"need {args.n} proposals, got {len(proposals)}"
            )
    else:
        proposals = list(range(args.n))

    trace = run_algorithm(factory, schedule, proposals, trace=args.trace)
    print(schedule.describe())
    print()
    if args.diagram:
        print(render_run(trace, title=f"{args.algorithm} on "
                                      f"{args.workload}"))
        print()
    print(trace.describe())
    summary = summarize(trace)
    print(f"\nglobal decision round: {summary.global_round}")
    problems = check_consensus(trace, expect_termination=False)
    if problems:
        print("CONSENSUS VIOLATIONS:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("consensus properties: ok")
    return 0


def _ensure_writable(path: str, flag: str = "--json") -> None:
    """Fail fast if *path* cannot be written — before minutes of compute.

    Opens in append mode so an existing export is never truncated; a file
    the probe itself created is removed again, so a sweep that later fails
    leaves no misleading empty export behind.  *flag* names the offending
    option in the error message.
    """
    existed = os.path.exists(path)
    try:
        with open(path, "a", encoding="utf-8"):
            pass
    except OSError as exc:
        raise SystemExit(f"cannot write {flag} output {path!r}: {exc}")
    if not existed:
        try:
            os.remove(path)
        except OSError:
            pass


def _parse_workers(args) -> int | None:
    """The validated ``--workers`` value (``None`` = auto-size).

    Explicit non-positive counts are rejected up front with a clean
    message; historically ``--workers 0`` silently meant "auto", which
    made typos indistinguishable from intent.
    """
    if args.workers is None:
        return None
    if args.workers < 1:
        raise SystemExit(
            f"--workers must be >= 1, got {args.workers} "
            f"(omit the flag to auto-size)"
        )
    return args.workers


def _parse_shard(args):
    """The validated ``--shard`` spec, or ``None``."""
    from repro.engine import GridError, ShardSpec

    if not args.shard:
        return None
    try:
        return ShardSpec.parse(args.shard)
    except GridError as exc:
        raise SystemExit(f"invalid --shard: {exc}")


#: Grid-shaping sweep flags, every one defaulting to ``None`` in the
#: parser so "explicitly passed" is detectable — a grid file defines the
#: whole experiment, and silently ignoring an explicit flag next to
#: ``--grid`` would let someone believe they swept a seed they didn't.
_GRID_SHAPE_FLAGS = (
    ("--n", "n"),
    ("--t", "t"),
    ("--algorithms", "algorithms"),
    ("--cases-per-family", "cases_per_family"),
    ("--seed", "seed"),
    ("--proposals-mode", "proposals_mode"),
)


def _grid_paths(directory: str) -> list[str]:
    """Every ``*.json`` grid file in *directory*, sorted by name.

    The one definition of "which files make up a grid directory" —
    shared by ``sweep --grid DIR`` and ``grid validate DIR`` so the two
    commands can never disagree about what constitutes the experiment.
    An empty directory is a clean error, not an empty sweep.
    """
    import glob as globmod

    paths = sorted(globmod.glob(os.path.join(directory, "*.json")))
    if not paths:
        raise SystemExit(
            f"no *.json grid files in directory {directory!r}"
        )
    return paths


def _load_grid_file(path: str):
    """One validated grid from *path* (clean exits on any problem)."""
    from repro.engine import GridError, GridSpec

    try:
        return GridSpec.load(path)
    except OSError as exc:
        raise SystemExit(f"cannot read --grid {path!r}: {exc}")
    except GridError as exc:
        raise SystemExit(f"invalid --grid {path!r}: {exc}")


def _reject_shape_flags(args, option: str, *, allow_seed: bool = False):
    """Fail when grid-shaping flags were passed next to *option*."""
    explicit = [
        flag for flag, attr in _GRID_SHAPE_FLAGS
        if getattr(args, attr) is not None
        and not (allow_seed and attr == "seed")
    ]
    if explicit:
        raise SystemExit(
            f"{option} and {', '.join(explicit)} are mutually exclusive: "
            f"{option} already defines the experiment"
        )


def _load_grids(args) -> list:
    """The labelled grids to sweep, as ``(label, GridSpec)`` pairs.

    A single grid (stock flags, or ``--grid FILE``) gets label ``None``
    and runs exactly as before.  Multiple grids — ``--grid DIR`` (every
    ``*.json``, sorted by name) or ``--profile NAME`` — are combined
    into one sweep: the caller offsets case indices per grid and
    prefixes workload labels with the grid label, so one export holds
    the merged result.
    """
    from repro.engine import GridError, default_sweep_grid, profile_grids
    from repro.engine.grids import DEFAULT_SWEEP_ALGORITHMS

    if args.grid and args.profile:
        raise SystemExit("--grid and --profile are mutually exclusive")
    if args.profile:
        # --seed stays available: a profile fixes the experiment's shape,
        # not its randomness.
        _reject_shape_flags(args, "--profile", allow_seed=True)
        try:
            return profile_grids(
                args.profile,
                seed=args.seed if args.seed is not None else 0,
            )
        except GridError as exc:
            raise SystemExit(str(exc))
    if args.grid:
        _reject_shape_flags(args, "--grid")
        if os.path.isdir(args.grid):
            grids = [
                (os.path.splitext(os.path.basename(path))[0],
                 _load_grid_file(path))
                for path in _grid_paths(args.grid)
            ]
            return grids if len(grids) > 1 else [(None, grids[0][1])]
        return [(None, _load_grid_file(args.grid))]
    algorithms = (
        tuple(name.strip() for name in args.algorithms.split(",") if name)
        if args.algorithms
        else DEFAULT_SWEEP_ALGORITHMS
    )
    return [(None, default_sweep_grid(
        args.n if args.n is not None else 5,
        args.t if args.t is not None else 2,
        seed=args.seed if args.seed is not None else 0,
        algorithms=algorithms,
        cases_per_family=(
            args.cases_per_family
            if args.cases_per_family is not None
            else 12
        ),
        proposal_mode=args.proposals_mode or "random",
    ))]


def _expand_grids(grids) -> list:
    """The combined case list of one or more labelled grids.

    A single grid expands exactly as always.  Multiple grids are
    concatenated with per-grid index offsets (keeping case indices
    unique, the invariant every merge and shard contract rests on) and
    workload labels prefixed with the grid label, so records remain
    attributable in the combined export.
    """
    from dataclasses import replace

    from repro.engine import expand_grid

    cases = []
    for label, grid in grids:
        expanded = expand_grid(grid)
        if len(grids) > 1:
            offset = len(cases)
            expanded = [
                replace(
                    case,
                    index=case.index + offset,
                    workload=f"{label}:{case.workload}",
                )
                for case in expanded
            ]
        cases.extend(expanded)
    return cases


def _cmd_sweep(args) -> int:
    from repro.engine import (
        AlgorithmSummary,
        BatchResult,
        ExecutorError,
        JsonlRecordSink,
        ResultCache,
        resolve_executor,
        run_batch,
        stream_batch,
    )

    workers = _parse_workers(args)
    shard = _parse_shard(args)
    grids = _load_grids(args)
    try:
        executor = resolve_executor(args.backend, workers=workers)
    except ExecutorError as exc:
        raise SystemExit(str(exc))
    if args.json:
        _ensure_writable(args.json)
    if args.spool:
        if os.path.exists(args.spool) and os.path.getsize(args.spool):
            raise SystemExit(
                f"--spool {args.spool!r} already exists and is not empty; "
                f"the spool is append-only, so streaming into it again "
                f"would duplicate case indices — remove it or pick a "
                f"fresh path"
            )
        _ensure_writable(args.spool, flag="--spool")
    if args.save_grid:
        if len(grids) > 1:
            raise SystemExit(
                "--save-grid writes a single grid file; it cannot "
                "represent a multi-grid sweep (--grid DIR / --profile)"
            )
        _ensure_writable(args.save_grid, flag="--save-grid")
        try:
            grids[0][1].save(args.save_grid)
        except OSError as exc:
            raise SystemExit(
                f"cannot write --save-grid {args.save_grid!r}: {exc}"
            )
    cache = None
    if args.cache and not args.no_cache:
        try:
            cache = ResultCache(args.cache)
        except OSError as exc:
            raise SystemExit(
                f"cannot use --cache directory {args.cache!r}: {exc}"
            )

    cases = _expand_grids(grids)
    total = len(cases)
    if shard is not None:
        cases = shard.select(cases)
        sharding = f", {shard.describe()} of {total}"
    else:
        sharding = ""
    if len(grids) == 1:
        _label, grid = grids[0]
        shape = (
            f"{len(grid.algorithms)} algorithms x "
            f"{sum(f.count for f in grid.families)} schedules{sharding}), "
            f"seed={grid.seed}"
        )
        title = f"Batch sweep (n={grid.n}, t={grid.t})"
    else:
        shape = (
            ", ".join(
                f"{label}: n={grid.n}/t={grid.t}" for label, grid in grids
            )
            + sharding + ")"
        )
        title = f"Batch sweep ({len(grids)} grids)"
    print(
        f"sweep: {len(cases)} cases ({shape}, "
        f"backend={executor.name}, trace={args.trace}"
    )
    if args.spool:
        # Stream to the spool with a bounded driver: no record is ever
        # accumulated in memory.  The canonical result (summaries,
        # --json export) is then rebuilt from the spool — byte-identical
        # to the in-memory path, per the engine's determinism contract.
        sink = JsonlRecordSink(args.spool)
        try:
            streamed = stream_batch(
                cases, sink=sink, executor=executor,
                cache=cache, trace=args.trace,
            )
        finally:
            sink.close()
        print(f"spooled {streamed} records to {args.spool}")
        result = BatchResult.load_spool(args.spool)
    else:
        result = run_batch(
            cases, executor=executor, cache=cache, trace=args.trace
        )
    rows = [summary.row() for summary in result.summaries()]
    print()
    print(format_table(
        list(AlgorithmSummary.ROW_HEADERS), rows,
        title=title,
    ))
    if cache is not None:
        print(f"\n{cache.describe()}")
        cache.flush_stats()
    violations = result.violations()
    if args.json:
        result.save(args.json)
        print(f"\nwrote {result.case_count} records to {args.json}")
    if violations:
        print(f"\nSAFETY VIOLATIONS in {len(violations)} cases:")
        for record in violations:
            print(f"  - {record.algorithm} on {record.workload}")
        return 1
    print("\nsafety (agreement + validity): ok on every case")
    return 0


def _grid_pass_through_args(args) -> tuple[str, ...]:
    """The grid-selecting CLI prefix every orchestrated worker re-runs.

    Workers re-expand the grid themselves (``repro sweep --grid ...
    --shard I/N``), so the orchestrator forwards the *selection* — a
    grid file/directory path or a profile name (plus ``--seed``) —
    verbatim; byte-identity of the merged export rests on every worker
    agreeing on the expansion, which the engine's determinism contract
    guarantees for identical selections.
    """
    if bool(args.grid) == bool(args.profile):
        raise SystemExit(
            "orchestrate needs exactly one of --grid or --profile"
        )
    if args.grid:
        if args.seed is not None:
            raise SystemExit(
                "--grid and --seed are mutually exclusive: the grid "
                "file already defines the experiment"
            )
        return ("--grid", args.grid)
    prefix: tuple[str, ...] = ("--profile", args.profile)
    if args.seed is not None:
        prefix += ("--seed", str(args.seed))
    return prefix


def _orchestrate_workers(args):
    """The validated worker inventory (``--local N`` or ``--workers-file``)."""
    from repro.engine.orchestrator import (
        OrchestratorError,
        load_workers_file,
        local_workers,
    )

    if bool(args.workers_file) == bool(args.local):
        raise SystemExit(
            "orchestrate needs exactly one of --workers-file or --local N"
        )
    try:
        if args.local:
            return local_workers(args.local)
        return load_workers_file(args.workers_file)
    except OrchestratorError as exc:
        raise SystemExit(str(exc))


def _cmd_orchestrate(args) -> int:
    import shutil
    import tempfile

    from repro.engine import AlgorithmSummary, JsonlRecordSink
    from repro.engine.orchestrator import (
        OrchestratorError,
        build_backend,
        orchestrate,
    )

    grid_args = _grid_pass_through_args(args)
    workers = _orchestrate_workers(args)
    if args.grid and not os.path.exists(args.grid) and not any(
        worker.is_remote for worker in workers
    ):
        raise SystemExit(f"cannot read --grid {args.grid!r}: not found")
    shards = args.shards if args.shards is not None else 2 * len(workers)
    if shards < 1:
        raise SystemExit(f"--shards must be >= 1, got {shards}")
    if args.retries < 0:
        raise SystemExit(f"--retries must be >= 0, got {args.retries}")
    if args.timeout is not None and args.timeout < 0:
        raise SystemExit(f"--timeout must be >= 0, got {args.timeout}")
    if args.backoff < 0:
        raise SystemExit(f"--backoff must be >= 0, got {args.backoff}")
    if args.warm_cache and not args.cache:
        raise SystemExit("--warm-cache needs --cache DIR to warm from")
    chaos = frozenset()
    if args.chaos_kill is not None:
        if not 0 <= args.chaos_kill < shards:
            raise SystemExit(
                f"--chaos-kill shard must be in 0..{shards - 1}, "
                f"got {args.chaos_kill}"
            )
        chaos = frozenset({args.chaos_kill})
    if args.json:
        _ensure_writable(args.json)
    if args.spool:
        if os.path.exists(args.spool) and os.path.getsize(args.spool):
            raise SystemExit(
                f"--spool {args.spool!r} already exists and is not empty; "
                f"the spool is append-only, so streaming into it again "
                f"would duplicate case indices — remove it or pick a "
                f"fresh path"
            )
        _ensure_writable(args.spool, flag="--spool")

    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-orchestrate-")
    backend = build_backend(
        workers,
        grid_args=grid_args,
        workdir=workdir,
        cache=args.cache,
        trace=args.trace,
        worker_backend=args.worker_backend,
        chaos_kill=chaos,
    )

    def show(event) -> None:
        print(f"orchestrate {event.describe()}", flush=True)

    print(
        f"orchestrate: {shards} shards of "
        f"{' '.join(grid_args)} over {len(workers)} workers "
        f"({', '.join(worker.describe() for worker in workers)}), "
        f"retries={args.retries}, timeout={args.timeout or 'none'}"
    )
    sink = JsonlRecordSink(args.spool) if args.spool else None
    try:
        report = orchestrate(
            workers,
            backend,
            shards,
            retries=args.retries,
            timeout=args.timeout or None,
            backoff=args.backoff,
            heartbeat=args.heartbeat or None,
            warm=args.warm_cache,
            on_event=show,
            sink=sink,
        )
    except OrchestratorError as exc:
        raise SystemExit(str(exc))
    finally:
        if sink is not None:
            sink.close()
    if sink is not None:
        print(f"spooled {sink.count} records to {args.spool}")

    print()
    print(report.describe())
    result = report.result
    if result.case_count:
        print()
        print(format_table(
            list(AlgorithmSummary.ROW_HEADERS),
            [summary.row() for summary in result.summaries()],
            title=f"Orchestrated sweep ({len(report.completed)}/"
                  f"{report.shard_count} shards)",
        ))
    if not report.complete:
        # Keep the per-attempt shard exports around for post-mortems,
        # and never write a partial result where a complete export is
        # expected — the .partial suffix makes the difference explicit.
        if args.json:
            partial = f"{args.json}.partial"
            result.save(partial)
            print(f"\nwrote PARTIAL result ({result.case_count} cases) "
                  f"to {partial}")
        print(f"shard attempt files kept in {workdir}")
        return 1
    if args.json:
        result.save(args.json)
        print(f"\nwrote {result.case_count} records to {args.json}")
    if not args.workdir:
        shutil.rmtree(workdir, ignore_errors=True)
    violations = result.violations()
    if violations:
        print(f"\nSAFETY VIOLATIONS in {len(violations)} cases:")
        for record in violations:
            print(f"  - {record.algorithm} on {record.workload}")
        return 1
    print("\nsafety (agreement + validity): ok on every case")
    return 0


def _cmd_merge(args) -> int:
    """Recombine per-shard ``--json`` exports into the whole-grid result."""
    from repro.engine import BatchResult

    _ensure_writable(args.json)
    results = []
    for path in args.inputs:
        try:
            results.append(BatchResult.load(path))
        except OSError as exc:
            raise SystemExit(f"cannot read shard {path!r}: {exc}")
        except (ValueError, TypeError, KeyError) as exc:
            raise SystemExit(f"invalid shard export {path!r}: {exc}")
    if any(
        record.case_index < 0
        for result in results
        for record in result.records
    ):
        raise SystemExit(
            "shard exports contain records without case indices; "
            "only engine-produced exports can be merged canonically"
        )
    try:
        merged = BatchResult.merge(results)
    except ValueError as exc:
        raise SystemExit(str(exc))
    merged.save(args.json)
    print(
        f"merged {merged.case_count} records from {len(args.inputs)} "
        f"shards into {args.json}"
    )
    return 0


def _cmd_cache_stats(args) -> int:
    """Report entry count, size, lifetime hit rate and last gc of a cache."""
    import time

    from repro.engine import cache_stats

    try:
        stats = cache_stats(args.directory)
    except OSError as exc:
        raise SystemExit(f"cannot read cache directory: {exc}")
    print(
        f"cache {args.directory}: {stats['entries']} entries, "
        f"{stats['total_bytes']} bytes"
    )
    if stats["hit_rate"] is None:
        print("lifetime: no recorded sweeps")
    else:
        extras = ""
        if stats["deduped"]:
            extras += f", {stats['deduped']} deduped"
        if stats["store_failures"]:
            extras += f", {stats['store_failures']} store failures"
        print(
            f"lifetime: {stats['hits']} hits, {stats['misses']} misses"
            f"{extras} over {stats['sweeps']} sweeps "
            f"(hit rate {100 * stats['hit_rate']:.1f}%)"
        )
    last_gc = stats.get("last_gc")
    if last_gc:
        when = time.strftime(
            "%Y-%m-%d %H:%M:%S UTC", time.gmtime(last_gc.get("at", 0))
        )
        print(
            f"last gc: removed {last_gc.get('removed', 0)} entries "
            f"({last_gc.get('removed_bytes', 0)} bytes) at {when}"
        )
    else:
        print("last gc: never")
    return 0


def _cmd_cache_gc(args) -> int:
    """Evict cache entries by age and/or LRU size bound."""
    from repro.engine import cache_gc

    if args.max_age is None and args.max_bytes is None:
        raise SystemExit(
            "cache gc needs at least one bound: --max-age DAYS and/or "
            "--max-bytes N"
        )
    try:
        summary = cache_gc(
            args.directory,
            max_age_days=args.max_age,
            max_bytes=args.max_bytes,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    except OSError as exc:
        raise SystemExit(f"cannot gc cache directory: {exc}")
    print(
        f"cache gc {args.directory}: removed {summary['removed']} entries "
        f"({summary['removed_bytes']} bytes); {summary['remaining']} "
        f"entries ({summary['remaining_bytes']} bytes) remain"
    )
    return 0


def _cmd_cache(args) -> int:
    handlers = {"stats": _cmd_cache_stats, "gc": _cmd_cache_gc}
    return handlers[args.cache_command](args)


def _cmd_grid_validate(args) -> int:
    """Lint grid files (or directories of them) without running anything."""
    from repro.engine import GridError, GridSpec

    paths = []
    for target in args.paths:
        if os.path.isdir(target):
            paths.extend(_grid_paths(target))
        else:
            paths.append(target)
    invalid = 0
    for path in paths:
        try:
            grid = GridSpec.load(path)
        except OSError as exc:
            print(f"INVALID {path}: cannot read: {exc}")
            invalid += 1
        except GridError as exc:
            print(f"INVALID {path}: {exc}")
            invalid += 1
        else:
            print(
                f"ok      {path}: {len(grid.algorithms)} algorithms x "
                f"{sum(f.count for f in grid.families)} schedules = "
                f"{grid.case_count} cases (n={grid.n}, t={grid.t})"
            )
    if invalid:
        print(f"\n{invalid} of {len(paths)} grid files invalid")
        return 1
    return 0


def _cmd_grid(args) -> int:
    handlers = {"validate": _cmd_grid_validate}
    return handlers[args.grid_command](args)


def _cmd_lint(args) -> int:
    from repro.devtools.cli import run_lint

    return run_lint(args)


def _cmd_experiments(_args) -> int:
    from repro.analysis.experiments import all_experiments

    for title, headers, rows in all_experiments():
        print(format_table(headers, rows, title=title))
        print()
    print("(Full, asserted experiment suite: "
          "pytest benchmarks/ --benchmark-only)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'The inherent price of indulgence' "
                    "(Dutta & Guerraoui, PODC 2002).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered algorithms")

    run_parser = sub.add_parser("run", help="run one algorithm on one "
                                            "workload")
    run_parser.add_argument("--algorithm", default="att2")
    run_parser.add_argument("--n", type=int, default=5)
    run_parser.add_argument("--t", type=int, default=2)
    run_parser.add_argument("--workload", default="failure_free")
    run_parser.add_argument("--horizon", type=int, default=24)
    run_parser.add_argument("--sync-after", type=int, default=3,
                            help="async prefix length for async_prefix")
    run_parser.add_argument("--proposals", default="",
                            help="comma-separated ints (default 0..n-1)")
    run_parser.add_argument("--diagram", action="store_true",
                            help="print a space-time diagram "
                                 "(requires --trace full)")
    run_parser.add_argument(
        "--trace", choices=("full", "lean"), default="full",
        help="kernel trace mode (default full; lean skips per-round "
             "records and cannot drive --diagram)",
    )

    sub.add_parser("experiments", help="print the experiment tables")

    sweep_parser = sub.add_parser(
        "sweep",
        help="run a declarative case grid on the batch engine",
    )
    sweep_parser.add_argument(
        "--grid", default="",
        help="run a grid spec from this JSON file (see --save-grid) "
             "instead of building the stock grid from flags; a directory "
             "runs every *.json grid in it as one combined sweep",
    )
    sweep_parser.add_argument(
        "--profile", default="",
        help="run a stock multi-grid preset (large: n=25 and n=50 with "
             "long horizons; xlarge: the n=100 milestone; xxlarge: the "
             "n=250 preset, best with --spool); mutually exclusive with "
             "--grid and the grid-shaping flags (except --seed)",
    )
    sweep_parser.add_argument(
        "--trace", choices=("full", "lean"), default="lean",
        help="kernel trace mode (default lean: skip per-round trace "
             "records; output is byte-identical either way)",
    )
    sweep_parser.add_argument(
        "--save-grid", default="",
        help="write the grid being run to this JSON file (versionable; "
             "re-runnable via --grid)",
    )
    # Grid-shaping flags default to None so _load_grid can reject any of
    # them passed explicitly alongside --grid (see _GRID_SHAPE_FLAGS).
    sweep_parser.add_argument("--n", type=int, default=None,
                              help="processes per case (default 5)")
    sweep_parser.add_argument("--t", type=int, default=None,
                              help="resilience bound (default 2)")
    sweep_parser.add_argument(
        "--algorithms", default=None,
        help="comma-separated registry names (default: the five E5 "
             "algorithms)",
    )
    sweep_parser.add_argument(
        "--cases-per-family", type=int, default=None,
        help="instances per seeded schedule family (default 12)",
    )
    sweep_parser.add_argument("--seed", type=int, default=None,
                              help="master seed for the grid (default 0)")
    sweep_parser.add_argument(
        "--backend", choices=("serial", "processes", "threads"),
        default="processes",
        help="execution backend (default processes)",
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=None,
        help="pool size for processes/threads backends "
             "(default: auto-size to the machine)",
    )
    sweep_parser.add_argument(
        "--shard", default="",
        help="run only shard I of N (format I/N, e.g. 0/2); merge the "
             "per-shard --json exports with `repro merge`",
    )
    sweep_parser.add_argument(
        "--proposals-mode", choices=("range", "random"), default=None,
        help="proposal pattern per case (default random)",
    )
    sweep_parser.add_argument("--json", default="",
                              help="write all records to this JSON file")
    sweep_parser.add_argument(
        "--spool", default="",
        help="stream records to this append-only JSONL spool as they "
             "complete (bounded driver memory; summaries and --json are "
             "rebuilt from the spool, byte-identical to the in-memory "
             "path)",
    )
    sweep_parser.add_argument(
        "--cache", default="",
        help="content-addressed result cache directory: repeated "
             "identical grids only execute cache misses",
    )
    sweep_parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass --cache (run every case) without editing scripts",
    )

    orch_parser = sub.add_parser(
        "orchestrate",
        help="drive a whole distributed sweep: shards on workers, with "
             "retry/reassign and incremental merge",
    )
    orch_parser.add_argument(
        "--grid", default="",
        help="grid JSON file or directory to sweep (forwarded to every "
             "worker; remote workers resolve it against their checkout)",
    )
    orch_parser.add_argument(
        "--profile", default="",
        help="stock multi-grid preset to sweep instead of --grid "
             "(large, xlarge, xxlarge)",
    )
    orch_parser.add_argument(
        "--seed", type=int, default=None,
        help="reseed a --profile's random families (invalid with --grid)",
    )
    orch_parser.add_argument(
        "--workers-file", default="",
        help="TOML worker inventory (hosts.toml: [[workers]] tables "
             "with name/host/python/repo; see docs/engine.md)",
    )
    orch_parser.add_argument(
        "--local", type=int, default=0, metavar="N",
        help="use N local subprocess workers instead of a workers file",
    )
    orch_parser.add_argument(
        "--shards", type=int, default=None,
        help="shard count to plan (default: 2x the worker count, so "
             "reassignment always has slack)",
    )
    orch_parser.add_argument(
        "--retries", type=int, default=2,
        help="retries per shard after its first failure (default 2)",
    )
    orch_parser.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="per-attempt timeout (default 600; 0 disables)",
    )
    orch_parser.add_argument(
        "--backoff", type=float, default=0.5, metavar="SECONDS",
        help="base retry backoff, doubled per attempt (default 0.5)",
    )
    orch_parser.add_argument(
        "--heartbeat", type=float, default=15.0, metavar="SECONDS",
        help="liveness-probe interval for in-flight workers "
             "(default 15; 0 disables)",
    )
    orch_parser.add_argument(
        "--trace", choices=("full", "lean"), default="lean",
        help="kernel trace mode inside workers (default lean)",
    )
    orch_parser.add_argument(
        "--worker-backend", choices=("serial", "processes", "threads"),
        default="serial",
        help="execution backend inside each worker process (default "
             "serial: the orchestrator owns the parallelism)",
    )
    orch_parser.add_argument(
        "--cache", default="",
        help="shared result-cache directory forwarded to workers: a "
             "retried shard warm-hits everything its predecessor finished",
    )
    orch_parser.add_argument(
        "--warm-cache", action="store_true",
        help="pre-start cache warm per worker (ships --cache to remote "
             "workers; local workers share it already)",
    )
    orch_parser.add_argument(
        "--workdir", default="",
        help="directory for per-attempt shard exports (default: a "
             "temp dir, removed on success, kept on partial failure)",
    )
    orch_parser.add_argument(
        "--chaos-kill", type=int, default=None, metavar="SHARD",
        help="fault-injection: SIGKILL this shard's first attempt "
             "mid-run (CI exercises the retry path with this)",
    )
    orch_parser.add_argument(
        "--json", default="",
        help="write the merged result to this JSON file (byte-identical "
             "to a serial whole-grid sweep; partial results get a "
             ".partial suffix)",
    )
    orch_parser.add_argument(
        "--spool", default="",
        help="append accepted shards' records to this JSONL spool as "
             "they merge: a driver killed mid-run leaves every completed "
             "shard durable and loadable as a clean partial result",
    )

    merge_parser = sub.add_parser(
        "merge",
        help="recombine per-shard sweep --json exports canonically",
    )
    merge_parser.add_argument(
        "inputs", nargs="+",
        help="shard export files (any order)",
    )
    merge_parser.add_argument(
        "--json", required=True,
        help="write the merged result to this JSON file",
    )

    grid_parser = sub.add_parser(
        "grid",
        help="work with versioned grid spec files",
    )
    grid_sub = grid_parser.add_subparsers(
        dest="grid_command", required=True
    )
    validate_parser = grid_sub.add_parser(
        "validate",
        help="lint grid JSON files (or directories of them) without "
             "running anything",
    )
    validate_parser.add_argument(
        "paths", nargs="+",
        help="grid files and/or directories containing *.json grids",
    )

    lint_parser = sub.add_parser(
        "lint",
        help="AST lint the tree against the repo's determinism, bitset, "
             "pickle and executor invariants",
    )
    from repro.devtools.cli import add_lint_arguments
    add_lint_arguments(lint_parser)

    cache_parser = sub.add_parser(
        "cache",
        help="inspect or collect a result-cache directory",
    )
    cache_sub = cache_parser.add_subparsers(
        dest="cache_command", required=True
    )
    stats_parser = cache_sub.add_parser(
        "stats",
        help="entry count, total bytes, lifetime hit rate and last gc",
    )
    stats_parser.add_argument("directory", help="cache directory to inspect")
    gc_parser = cache_sub.add_parser(
        "gc",
        help="evict entries by age (--max-age) and/or LRU size bound "
             "(--max-bytes); eviction only ever costs recomputation",
    )
    gc_parser.add_argument("directory", help="cache directory to collect")
    gc_parser.add_argument(
        "--max-age", type=float, default=None, metavar="DAYS",
        help="remove entries older than this many days",
    )
    gc_parser.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="then remove oldest entries until at most N bytes remain",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "experiments": _cmd_experiments,
        "sweep": _cmd_sweep,
        "orchestrate": _cmd_orchestrate,
        "merge": _cmd_merge,
        "grid": _cmd_grid,
        "cache": _cmd_cache,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
